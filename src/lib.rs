//! `supremm-suite`: workspace umbrella crate.
//!
//! Hosts the workspace-level runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). All functionality lives in the
//! member crates; this crate simply re-exports them under one roof so the
//! examples can `use supremm_suite::prelude::*`.

pub use supremm_analytics as analytics;
pub use supremm_appkernels as appkernels;
pub use supremm_clustersim as clustersim;
pub use supremm_core as core;
pub use supremm_metrics as metrics;
pub use supremm_procsim as procsim;
pub use supremm_relay as relay;
pub use supremm_ratlog as ratlog;
pub use supremm_taccstats as taccstats;
pub use supremm_warehouse as warehouse;
pub use supremm_xdmod as xdmod;

/// Convenience re-exports for the examples.
pub mod prelude {
    pub use supremm_core::prelude::*;
}
