//! The per-node kernel counter state and the read interface the collector
//! uses.

use crate::activity::NodeActivity;
use crate::node::NodeSpec;
use crate::perfctr::{PerfCounterSet, PerfEvent, COUNTERS_PER_CORE};
use crate::JIFFIES_PER_SEC;
use supremm_metrics::schema::{CounterKind, DeviceClass};

/// One device instance as read by the collector: the instance name (core
/// index, interface name, mount name, ...) and the values in the device
/// class's schema order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceReading {
    pub device: String,
    pub values: Vec<u64>,
}

/// What the collector reads. This trait sits exactly where the real
/// TACC_Stats reads `/proc` and `/sys`; `KernelState` is the simulated
/// implementation, and tests can substitute hand-built sources.
pub trait KernelSource {
    /// Node hardware description.
    fn spec(&self) -> &NodeSpec;

    /// Read all instances of a device class. Values are reported with the
    /// register width of the schema applied (narrow counters wrap).
    fn read_class(&self, class: DeviceClass) -> Vec<DeviceReading>;

    /// Program the performance counters (job begin). Reads never do this.
    fn program_perfctrs(&mut self, events: [Option<PerfEvent>; COUNTERS_PER_CORE]);
}

/// Internal cumulative counters, stored at full 64-bit width; register
/// narrowing happens on the read path so the *collector* sees wraps.
#[derive(Debug, Clone, Default)]
struct CpuCounters {
    user: u64,
    nice: u64,
    system: u64,
    idle: u64,
    iowait: u64,
    irq: u64,
    softirq: u64,
}

#[derive(Debug, Clone, Default)]
struct IoCounters {
    read_bytes: u64,
    write_bytes: u64,
    open: u64,
    close: u64,
    fsync: u64,
    getattr: u64,
}

#[derive(Debug, Clone, Default)]
struct NetCounters {
    rx_bytes: u64,
    rx_packets: u64,
    tx_bytes: u64,
    tx_packets: u64,
}

#[derive(Debug, Clone, Default)]
struct IbCounters {
    xmit_data: u64,
    rcv_data: u64,
    xmit_pkts: u64,
    rcv_pkts: u64,
}

#[derive(Debug, Clone, Default)]
struct LnetCounters {
    tx_bytes: u64,
    rx_bytes: u64,
    tx_msgs: u64,
    rx_msgs: u64,
    drop_count: u64,
}

#[derive(Debug, Clone, Default)]
struct BlockCounters {
    rd_sectors: u64,
    wr_sectors: u64,
    rd_ios: u64,
    wr_ios: u64,
    io_ticks: u64,
}

#[derive(Debug, Clone, Default)]
struct VmCounters {
    pgpgin: u64,
    pgpgout: u64,
    pswpin: u64,
    pswpout: u64,
    pgfault: u64,
    pgmajfault: u64,
}

#[derive(Debug, Clone, Default)]
struct NumaCounters {
    hit: u64,
    miss: u64,
    foreign: u64,
    local: u64,
    other: u64,
}

#[derive(Debug, Clone, Default)]
struct PsCounters {
    ctxt: u64,
    processes: u64,
}

/// The full simulated kernel of one node.
#[derive(Debug, Clone)]
pub struct KernelState {
    spec: NodeSpec,
    cpus: Vec<CpuCounters>,
    /// Gauges at the last `advance`.
    mem_used: u64,
    mem_cached: u64,
    lustre: Vec<IoCounters>,
    lnet: LnetCounters,
    net: Vec<NetCounters>,
    ib: Vec<IbCounters>,
    block: Vec<BlockCounters>,
    vm: VmCounters,
    numa: Vec<NumaCounters>,
    ps: PsCounters,
    nr_running: u32,
    load_1: f64,
    sysv_shm_bytes: u64,
    tmpfs_bytes: u64,
    irq_counts: Vec<u64>,
    perf: PerfCounterSet,
    /// Average mean size of a network packet / IB message, used to derive
    /// packet counts from byte counts.
    avg_pkt_bytes: u64,
}

/// Number of IRQ vectors we model (timer, net, ib, block, ipi...).
const IRQ_VECTORS: usize = 6;

impl KernelState {
    pub fn new(spec: NodeSpec) -> KernelState {
        let cores = spec.cores as usize;
        KernelState {
            cpus: vec![CpuCounters::default(); cores],
            mem_used: 600 << 20,
            mem_cached: 200 << 20,
            lustre: vec![IoCounters::default(); spec.lustre_mounts.len()],
            lnet: LnetCounters::default(),
            net: vec![NetCounters::default(); spec.eth_devices.len()],
            ib: vec![IbCounters::default(); spec.ib_ports as usize],
            block: vec![BlockCounters::default(); spec.block_devices.len()],
            vm: VmCounters::default(),
            numa: vec![NumaCounters::default(); spec.sockets as usize],
            ps: PsCounters::default(),
            nr_running: 0,
            load_1: 0.0,
            sysv_shm_bytes: 0,
            tmpfs_bytes: 0,
            irq_counts: vec![0; IRQ_VECTORS],
            perf: PerfCounterSet::new(spec.cores),
            avg_pkt_bytes: 4096,
            spec,
        }
    }

    pub fn perfctrs_mut(&mut self) -> &mut PerfCounterSet {
        &mut self.perf
    }

    /// Advance all counters by one slice of activity.
    pub fn advance(&mut self, act: &NodeActivity, slice_secs: f64) {
        let act = act.normalized();
        let jiffies = (slice_secs * JIFFIES_PER_SEC as f64) as u64;

        // CPU time is spread uniformly across cores; per-core skew does not
        // affect any analysis in the paper (which works at node level).
        let user_j = (jiffies as f64 * act.user_frac) as u64;
        let sys_j = (jiffies as f64 * act.system_frac) as u64;
        let iow_j = (jiffies as f64 * act.iowait_frac) as u64;
        let idle_j = jiffies.saturating_sub(user_j + sys_j + iow_j);
        for cpu in &mut self.cpus {
            cpu.user += user_j;
            cpu.system += sys_j;
            cpu.iowait += iow_j;
            cpu.idle += idle_j;
            cpu.irq += (sys_j as f64 * 0.02) as u64;
            cpu.softirq += (sys_j as f64 * 0.05) as u64;
        }

        self.mem_used = act.mem_used_bytes.min(self.spec.mem_bytes);
        self.mem_cached = act.mem_cached_bytes.min(self.mem_used);

        let mount_io: Vec<(u64, u64)> = self
            .spec
            .lustre_mounts
            .iter()
            .map(|&m| match m {
                "scratch" => (act.scratch_read_bytes, act.scratch_write_bytes),
                "work" => (act.work_read_bytes, act.work_write_bytes),
                "share" => (act.share_read_bytes, act.share_write_bytes),
                _ => (0, 0),
            })
            .collect();
        for (c, (rd, wr)) in self.lustre.iter_mut().zip(mount_io) {
            c.read_bytes += rd;
            c.write_bytes += wr;
            // Metadata operations scale weakly with data volume.
            let ops = ((rd + wr) / (16 << 20)) + u64::from(rd + wr > 0);
            c.open += ops;
            c.close += ops;
            c.fsync += ops / 4;
            c.getattr += ops * 3;
        }

        self.lnet.tx_bytes += act.lnet_tx_bytes;
        self.lnet.rx_bytes += act.lnet_rx_bytes;
        self.lnet.tx_msgs += act.lnet_tx_bytes / self.avg_pkt_bytes;
        self.lnet.rx_msgs += act.lnet_rx_bytes / self.avg_pkt_bytes;

        if let Some(ib) = self.ib.first_mut() {
            ib.xmit_data += act.ib_tx_bytes;
            ib.rcv_data += act.ib_rx_bytes;
            ib.xmit_pkts += act.ib_tx_bytes / self.avg_pkt_bytes;
            ib.rcv_pkts += act.ib_rx_bytes / self.avg_pkt_bytes;
        }

        if let Some(eth) = self.net.first_mut() {
            eth.tx_bytes += act.eth_tx_bytes;
            eth.rx_bytes += act.eth_rx_bytes;
            eth.tx_packets += act.eth_tx_bytes / 1500;
            eth.rx_packets += act.eth_rx_bytes / 1500;
        }

        if let Some(blk) = self.block.first_mut() {
            // Local disk sees swap and a trickle of log writes.
            let wr = act.pswpout * 8 + 64;
            let rd = act.pswpin * 8;
            blk.wr_sectors += wr;
            blk.rd_sectors += rd;
            blk.wr_ios += wr / 8 + 1;
            blk.rd_ios += rd / 8;
            blk.io_ticks += iow_j;
        }

        self.vm.pgfault += act.pgfault;
        self.vm.pgmajfault += act.pgmajfault;
        self.vm.pswpin += act.pswpin;
        self.vm.pswpout += act.pswpout;
        self.vm.pgpgin += act.pswpin * 4 + act.pgmajfault * 4;
        self.vm.pgpgout += act.pswpout * 4;

        let mem_accesses = act.effective_mem_accesses();
        for n in &mut self.numa {
            let per_socket = mem_accesses / self.spec.sockets as f64;
            let local = per_socket * act.numa_local_frac;
            let remote = per_socket - local;
            n.hit += local as u64;
            n.local += local as u64;
            n.miss += remote as u64;
            n.other += remote as u64;
            n.foreign += (remote * 0.5) as u64;
        }

        self.ps.ctxt += (slice_secs * 1000.0 * (1.0 + act.load_1)) as u64;
        self.ps.processes += (slice_secs * 0.5) as u64;
        self.nr_running = act.nr_running;
        self.load_1 = act.load_1;
        self.sysv_shm_bytes = act.sysv_shm_bytes;
        self.tmpfs_bytes = act.tmpfs_bytes;

        let total_j = jiffies;
        self.irq_counts[0] += total_j; // timer
        self.irq_counts[1] += (act.eth_tx_bytes + act.eth_rx_bytes) / 1500;
        self.irq_counts[2] += (act.ib_tx_bytes + act.ib_rx_bytes) / self.avg_pkt_bytes;
        self.irq_counts[3] += (act.pswpin + act.pswpout) / 8;
        self.irq_counts[4] += (sys_j as f64 * 0.3) as u64;
        self.irq_counts[5] += user_j / 10;

        self.perf.advance(&act, slice_secs);
    }

    /// Apply schema register widths so the collector sees hardware-like
    /// (possibly wrapped) values.
    fn narrow(class: DeviceClass, values: &mut [u64]) {
        for (v, entry) in values.iter_mut().zip(class.schema().entries) {
            if let CounterKind::Event { width } = entry.kind {
                if width < 64 {
                    *v &= (1u64 << width) - 1;
                }
            }
        }
    }
}

impl KernelSource for KernelState {
    fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    fn read_class(&self, class: DeviceClass) -> Vec<DeviceReading> {
        let mut out: Vec<DeviceReading> = match class {
            DeviceClass::Cpu => self
                .cpus
                .iter()
                .enumerate()
                .map(|(i, c)| DeviceReading {
                    device: i.to_string(),
                    values: vec![c.user, c.nice, c.system, c.idle, c.iowait, c.irq, c.softirq],
                })
                .collect(),
            DeviceClass::Mem => {
                // Per-socket split of the node-level gauges.
                let sockets = self.spec.sockets as u64;
                let used = self.mem_used / sockets;
                let cached = self.mem_cached / sockets;
                let total = self.spec.mem_bytes / sockets;
                (0..sockets)
                    .map(|i| DeviceReading {
                        device: i.to_string(),
                        values: vec![
                            total >> 10,
                            (total - used) >> 10,
                            (cached / 4) >> 10,
                            cached >> 10,
                            used >> 10,
                            (used / 100) >> 10,
                            (used.saturating_sub(cached)) >> 10,
                            (used / 50) >> 10,
                        ],
                    })
                    .collect()
            }
            DeviceClass::Net => self
                .spec
                .eth_devices
                .iter()
                .zip(&self.net)
                .map(|(name, c)| DeviceReading {
                    device: (*name).to_string(),
                    values: vec![c.rx_bytes, c.rx_packets, c.tx_bytes, c.tx_packets, 0, 0],
                })
                .collect(),
            DeviceClass::Ib => self
                .ib
                .iter()
                .enumerate()
                .map(|(i, c)| DeviceReading {
                    device: format!("mlx4_0/{}", i + 1),
                    values: vec![c.xmit_data, c.rcv_data, c.xmit_pkts, c.rcv_pkts],
                })
                .collect(),
            DeviceClass::Llite => self
                .spec
                .lustre_mounts
                .iter()
                .zip(&self.lustre)
                .map(|(name, c)| DeviceReading {
                    device: (*name).to_string(),
                    values: vec![
                        c.read_bytes,
                        c.write_bytes,
                        c.open,
                        c.close,
                        c.fsync,
                        c.getattr,
                    ],
                })
                .collect(),
            DeviceClass::Lnet => vec![DeviceReading {
                device: "lnet".to_string(),
                values: vec![
                    self.lnet.tx_bytes,
                    self.lnet.rx_bytes,
                    self.lnet.tx_msgs,
                    self.lnet.rx_msgs,
                    self.lnet.drop_count,
                ],
            }],
            DeviceClass::Block => self
                .spec
                .block_devices
                .iter()
                .zip(&self.block)
                .map(|(name, c)| DeviceReading {
                    device: (*name).to_string(),
                    values: vec![c.rd_sectors, c.wr_sectors, c.rd_ios, c.wr_ios, c.io_ticks],
                })
                .collect(),
            DeviceClass::Vm => vec![DeviceReading {
                device: "vm".to_string(),
                values: vec![
                    self.vm.pgpgin,
                    self.vm.pgpgout,
                    self.vm.pswpin,
                    self.vm.pswpout,
                    self.vm.pgfault,
                    self.vm.pgmajfault,
                ],
            }],
            DeviceClass::Numa => self
                .numa
                .iter()
                .enumerate()
                .map(|(i, n)| DeviceReading {
                    device: i.to_string(),
                    values: vec![n.hit, n.miss, n.foreign, n.local, n.other],
                })
                .collect(),
            DeviceClass::Ps => vec![DeviceReading {
                device: "ps".to_string(),
                values: vec![
                    self.nr_running as u64,
                    self.nr_running as u64 * 2,
                    (self.load_1 * 100.0) as u64,
                    (self.load_1 * 90.0) as u64,
                    (self.load_1 * 80.0) as u64,
                    self.ps.ctxt,
                    self.ps.processes,
                ],
            }],
            DeviceClass::SysvShm => vec![DeviceReading {
                device: "shm".to_string(),
                values: vec![self.sysv_shm_bytes, u64::from(self.sysv_shm_bytes > 0)],
            }],
            DeviceClass::Tmpfs => vec![DeviceReading {
                device: "/dev/shm".to_string(),
                values: vec![self.tmpfs_bytes, self.tmpfs_bytes / 4096],
            }],
            DeviceClass::Irq => self
                .irq_counts
                .iter()
                .enumerate()
                .map(|(i, &c)| DeviceReading { device: i.to_string(), values: vec![c] })
                .collect(),
            DeviceClass::PerfCtr => (0..self.spec.cores)
                .map(|core| {
                    let slots = self.perf.read_core(core);
                    DeviceReading {
                        // Encode the select codes into the instance name so
                        // the collector can detect user reprogramming.
                        device: format!(
                            "{}:{:03x},{:03x},{:03x},{:03x}",
                            core, slots[0].0, slots[1].0, slots[2].0, slots[3].0
                        ),
                        values: slots.iter().map(|&(_, v)| v).collect(),
                    }
                })
                .collect(),
        };
        for r in &mut out {
            Self::narrow(class, &mut r.values);
        }
        out
    }

    fn program_perfctrs(&mut self, events: [Option<PerfEvent>; COUNTERS_PER_CORE]) {
        self.perf.program_all(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::CpuArch;

    fn busy() -> NodeActivity {
        NodeActivity {
            user_frac: 0.85,
            system_frac: 0.05,
            flops: 5.0e9 * 600.0,
            mem_used_bytes: 8 << 30,
            mem_cached_bytes: 2 << 30,
            scratch_write_bytes: 600 << 20,
            ib_tx_bytes: 3 << 30,
            ib_rx_bytes: 3 << 30,
            lnet_tx_bytes: 700 << 20,
            lnet_rx_bytes: 100 << 20,
            ..NodeActivity::idle()
        }
    }

    #[test]
    fn cpu_jiffies_partition_the_slice() {
        let mut k = KernelState::new(NodeSpec::ranger());
        k.advance(&busy(), 600.0);
        let cpu0 = &k.read_class(DeviceClass::Cpu)[0];
        let total: u64 = [0usize, 2, 3, 4].iter().map(|&i| cpu0.values[i]).sum();
        let expected = 600 * JIFFIES_PER_SEC;
        assert!(
            (total as i64 - expected as i64).unsigned_abs() <= 2,
            "user+system+idle+iowait = {total}, expected ~{expected}"
        );
    }

    #[test]
    fn counters_are_monotonic_across_slices() {
        let mut k = KernelState::new(NodeSpec::ranger());
        k.program_perfctrs(CpuArch::AmdOpteron.tacc_stats_events());
        let mut prev: Option<Vec<Vec<u64>>> = None;
        for _ in 0..5 {
            k.advance(&busy(), 600.0);
            let snap: Vec<Vec<u64>> = [DeviceClass::Cpu, DeviceClass::Llite, DeviceClass::Vm]
                .iter()
                .flat_map(|&c| k.read_class(c))
                .map(|r| r.values)
                .collect();
            if let Some(p) = prev {
                for (a, b) in p.iter().flatten().zip(snap.iter().flatten()) {
                    assert!(b >= a, "counter went backwards: {a} -> {b}");
                }
            }
            prev = Some(snap);
        }
    }

    #[test]
    fn ib_extended_counters_do_not_wrap_at_32_bits() {
        let mut k = KernelState::new(NodeSpec::ranger());
        // Push ~5 GiB through IB; the 64-bit extended register holds it.
        let act = NodeActivity { ib_tx_bytes: 5 << 30, ..NodeActivity::idle() };
        k.advance(&act, 600.0);
        let ib = &k.read_class(DeviceClass::Ib)[0];
        assert_eq!(ib.values[0], 5 << 30);
    }

    #[test]
    fn perfctr_reads_wrap_at_48_bits() {
        let mut k = KernelState::new(NodeSpec::ranger());
        k.program_perfctrs(CpuArch::AmdOpteron.tacc_stats_events());
        // Drive the per-core FLOPS counter past 2^48.
        let act = NodeActivity {
            user_frac: 0.9,
            flops: 2.0f64.powi(49) * 16.0,
            ..NodeActivity::idle()
        };
        k.advance(&act, 600.0);
        let perf = &k.read_class(DeviceClass::PerfCtr)[0];
        assert!(perf.values[0] < (1u64 << 48));
    }

    #[test]
    fn mem_gauges_track_activity_not_accumulate() {
        let mut k = KernelState::new(NodeSpec::ranger());
        k.advance(&busy(), 600.0);
        let used_kb_1: u64 =
            k.read_class(DeviceClass::Mem).iter().map(|r| r.values[4]).sum();
        k.advance(&busy(), 600.0);
        let used_kb_2: u64 =
            k.read_class(DeviceClass::Mem).iter().map(|r| r.values[4]).sum();
        assert_eq!(used_kb_1, used_kb_2, "gauges must not accumulate");
        let node_used = used_kb_2 << 10;
        assert!((node_used as i64 - (8i64 << 30)).abs() < (1 << 20), "{node_used}");
    }

    #[test]
    fn mem_used_cannot_exceed_physical() {
        let mut k = KernelState::new(NodeSpec::lonestar4());
        let act = NodeActivity { mem_used_bytes: 100 << 30, ..NodeActivity::idle() };
        k.advance(&act, 600.0);
        let used: u64 = k.read_class(DeviceClass::Mem).iter().map(|r| r.values[4] << 10).sum();
        assert!(used <= NodeSpec::lonestar4().mem_bytes);
    }

    #[test]
    fn device_instances_match_spec() {
        let k = KernelState::new(NodeSpec::ranger());
        assert_eq!(k.read_class(DeviceClass::Cpu).len(), 16);
        assert_eq!(k.read_class(DeviceClass::Mem).len(), 4);
        assert_eq!(k.read_class(DeviceClass::Llite).len(), 3);
        assert_eq!(k.read_class(DeviceClass::Numa).len(), 4);
        assert_eq!(k.read_class(DeviceClass::PerfCtr).len(), 16);
        let ls4 = KernelState::new(NodeSpec::lonestar4());
        assert_eq!(ls4.read_class(DeviceClass::Cpu).len(), 12);
        assert_eq!(ls4.read_class(DeviceClass::Llite).len(), 2);
    }

    #[test]
    fn every_class_reading_matches_schema_arity() {
        let mut k = KernelState::new(NodeSpec::ranger());
        k.advance(&busy(), 600.0);
        for class in DeviceClass::ALL {
            let schema_len = class.schema().len();
            for r in k.read_class(class) {
                assert_eq!(r.values.len(), schema_len, "{class}/{}", r.device);
            }
        }
    }

    #[test]
    fn lustre_mount_traffic_goes_to_right_mount() {
        let mut k = KernelState::new(NodeSpec::ranger());
        let act = NodeActivity {
            scratch_write_bytes: 100 << 20,
            work_write_bytes: 7 << 20,
            ..NodeActivity::idle()
        };
        k.advance(&act, 600.0);
        let llite = k.read_class(DeviceClass::Llite);
        let by_mount: std::collections::HashMap<_, _> =
            llite.iter().map(|r| (r.device.as_str(), r.values[1])).collect();
        assert_eq!(by_mount["scratch"], 100 << 20);
        assert_eq!(by_mount["work"], 7 << 20);
        assert_eq!(by_mount["share"], 0);
    }
}
