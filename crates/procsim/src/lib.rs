//! `supremm-procsim`: a simulated Linux kernel counter surface.
//!
//! The real TACC_Stats reads `/proc`, `/sys` and the performance-counter
//! MSRs of every compute node (§3 of the paper). We do not have Ranger or
//! Lonestar4, so this crate provides the substitution: a per-node
//! [`KernelState`] that maintains *cumulative counters with kernel
//! semantics* — monotonic event counters in jiffies/bytes/counts, gauge
//! values, per-core / per-socket / per-device instance layout, narrow
//! (32-bit) InfiniBand registers that wrap, and a programmable
//! performance-counter model with the AMD Opteron and Intel
//! Nehalem/Westmere event sets the paper lists.
//!
//! The workload simulator (`supremm-clustersim`) drives counters forward by
//! applying [`NodeActivity`] slices; the collector (`supremm-taccstats`)
//! reads them through the [`KernelSource`] trait exactly where the real
//! collector would read procfs. Counter *semantics* (monotonicity, wrap,
//! reprogram-clears) are preserved so the collector's delta/wrap/reprogram
//! logic is genuinely exercised.

pub mod activity;
pub mod kernel;
pub mod node;
pub mod perfctr;

pub use activity::NodeActivity;
pub use kernel::{DeviceReading, KernelSource, KernelState};
pub use node::{CpuArch, NodeSpec};
pub use perfctr::{PerfCounterSet, PerfEvent, COUNTERS_PER_CORE};

/// Scheduler ticks per second on the simulated kernel.
pub const JIFFIES_PER_SEC: u64 = 100;
