//! The programmable hardware performance-counter model.
//!
//! §3 of the paper: *"Before beginning each job, TACC_Stats reprograms the
//! performance counters it uses. ... At the periodic invocations,
//! TACC_Stats only reads values from performance registers without
//! reprogramming them to avoid overriding measurements initiated by users
//! while ignoring user set counters."*
//!
//! This module models exactly that surface: four counter slots per core,
//! each programmable with an event; programming a slot clears it; counters
//! are 48-bit (as on real MSRs) and advance as a function of node activity.
//! A *user* (e.g. a PAPI-instrumented application) can also reprogram
//! slots mid-job — the collector must detect the event mismatch on read and
//! discard rather than misattribute those values.

use crate::activity::NodeActivity;

/// Counter slots per core.
pub const COUNTERS_PER_CORE: usize = 4;

/// Width of a counter register in bits (real perf MSRs are 48-bit).
pub const CTR_WIDTH_BITS: u32 = 48;
const CTR_MASK: u64 = (1u64 << CTR_WIDTH_BITS) - 1;

/// A hardware event a counter slot can be programmed to count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerfEvent {
    /// Retired floating-point operations (SSE, on these machines).
    Flops,
    /// Memory accesses (AMD event set).
    MemAccesses,
    /// Data-cache fills (AMD event set).
    DCacheFills,
    /// SMP/NUMA traffic (both event sets).
    NumaTraffic,
    /// L1 data-cache hits (Intel event set).
    L1DHits,
    /// An event selected by the user's own tooling (PAPI etc.); the raw
    /// select code is kept so a mismatch is observable.
    UserDefined(u16),
}

impl PerfEvent {
    /// Event-select code, as it would appear in the control MSR.
    pub fn select_code(self) -> u16 {
        match self {
            PerfEvent::Flops => 0x003,
            PerfEvent::MemAccesses => 0x029,
            PerfEvent::DCacheFills => 0x042,
            PerfEvent::NumaTraffic => 0x1e0,
            PerfEvent::L1DHits => 0x0cb,
            PerfEvent::UserDefined(code) => code,
        }
    }

    /// Events per second per core implied by a slice of node activity.
    ///
    /// The exact magnitudes are synthetic but dimensionally sensible; what
    /// matters downstream is that `Flops` is exact (it feeds `cpu_flops`)
    /// and the others co-vary with the right activity components.
    fn rate(self, act: &NodeActivity, cores: u32, slice_secs: f64) -> f64 {
        let per_core = |total: f64| total / cores as f64 / slice_secs;
        match self {
            PerfEvent::Flops => per_core(act.flops),
            // Explicit memory traffic when given, else ~1.5 accesses per
            // flop, plus page-cache churn.
            PerfEvent::MemAccesses => {
                per_core(act.effective_mem_accesses())
                    + per_core(act.mem_used_bytes as f64 / 64.0 * 0.01)
            }
            // A fill per 64-byte line of "new" traffic.
            PerfEvent::DCacheFills => per_core(act.flops * 0.05),
            PerfEvent::NumaTraffic => {
                per_core(act.flops * 0.02 * (1.0 - act.numa_local_frac).max(0.001))
            }
            PerfEvent::L1DHits => per_core(act.flops * 2.0),
            PerfEvent::UserDefined(_) => per_core(act.flops * 0.1),
        }
    }
}

/// One programmable counter slot.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Slot {
    event: Option<PerfEvent>,
    value: u64,
}

/// The performance counters of one node (all cores).
#[derive(Debug, Clone)]
pub struct PerfCounterSet {
    cores: u32,
    slots: Vec<[Slot; COUNTERS_PER_CORE]>,
}

impl PerfCounterSet {
    pub fn new(cores: u32) -> PerfCounterSet {
        PerfCounterSet {
            cores,
            slots: vec![[Slot { event: None, value: 0 }; COUNTERS_PER_CORE]; cores as usize],
        }
    }

    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Program every core's slots to the given events, clearing the
    /// registers — what TACC_Stats does at job begin.
    pub fn program_all(&mut self, events: [Option<PerfEvent>; COUNTERS_PER_CORE]) {
        for core in &mut self.slots {
            for (slot, ev) in core.iter_mut().zip(events) {
                *slot = Slot { event: ev, value: 0 };
            }
        }
    }

    /// Reprogram one slot on every core — what a user's PAPI session does
    /// mid-job, clobbering the collector's programming.
    pub fn user_reprogram(&mut self, slot_idx: usize, event: PerfEvent) {
        assert!(slot_idx < COUNTERS_PER_CORE);
        for core in &mut self.slots {
            core[slot_idx] = Slot { event: Some(event), value: 0 };
        }
    }

    /// Advance all programmed counters by a slice of activity.
    pub fn advance(&mut self, act: &NodeActivity, slice_secs: f64) {
        // Rates are identical across cores in this model, so compute once.
        let mut rates = [0.0f64; COUNTERS_PER_CORE];
        let sample = &self.slots[0];
        for (i, slot) in sample.iter().enumerate() {
            if let Some(ev) = slot.event {
                rates[i] = ev.rate(act, self.cores, slice_secs);
            }
        }
        for core in &mut self.slots {
            for (i, slot) in core.iter_mut().enumerate() {
                if slot.event.is_some() {
                    let inc = (rates[i] * slice_secs) as u64;
                    slot.value = (slot.value + inc) & CTR_MASK;
                }
            }
        }
    }

    /// Read one core's slots: `(event select code or 0, value)` per slot.
    /// Reading never reprograms (the §3 guarantee).
    pub fn read_core(&self, core: u32) -> [(u16, u64); COUNTERS_PER_CORE] {
        let mut out = [(0u16, 0u64); COUNTERS_PER_CORE];
        for (o, slot) in out.iter_mut().zip(self.slots[core as usize]) {
            *o = (slot.event.map_or(0, |e| e.select_code()), slot.value);
        }
        out
    }

    /// Sum of a given event over all cores, `None` if no slot currently
    /// counts that event (e.g. it was clobbered by a user reprogram).
    pub fn total(&self, event: PerfEvent) -> Option<u64> {
        let code = event.select_code();
        let mut found = false;
        let mut sum = 0u64;
        for core in &self.slots {
            for slot in core {
                if slot.event.map(|e| e.select_code()) == Some(code) {
                    found = true;
                    sum += slot.value;
                }
            }
        }
        found.then_some(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_activity(flops: f64) -> NodeActivity {
        NodeActivity { flops, user_frac: 0.9, ..NodeActivity::idle() }
    }

    #[test]
    fn programming_clears_and_counts() {
        let mut pcs = PerfCounterSet::new(4);
        pcs.program_all([Some(PerfEvent::Flops), None, None, None]);
        pcs.advance(&busy_activity(4.0e9), 1.0);
        let total = pcs.total(PerfEvent::Flops).unwrap();
        // 4e9 flops over 4 cores -> 1e9 per core, 4e9 total.
        assert!((total as f64 - 4.0e9).abs() / 4.0e9 < 0.01, "{total}");
        // Reprogramming clears.
        pcs.program_all([Some(PerfEvent::Flops), None, None, None]);
        assert_eq!(pcs.total(PerfEvent::Flops), Some(0));
    }

    #[test]
    fn unprogrammed_slots_stay_zero() {
        let mut pcs = PerfCounterSet::new(2);
        pcs.program_all([Some(PerfEvent::Flops), None, None, None]);
        pcs.advance(&busy_activity(1.0e9), 10.0);
        for core in 0..2 {
            let slots = pcs.read_core(core);
            assert_eq!(slots[1], (0, 0));
            assert_eq!(slots[3], (0, 0));
        }
    }

    #[test]
    fn user_reprogram_is_detectable_on_read() {
        let mut pcs = PerfCounterSet::new(2);
        pcs.program_all(crate::node::CpuArch::AmdOpteron.tacc_stats_events());
        pcs.advance(&busy_activity(1.0e9), 1.0);
        pcs.user_reprogram(0, PerfEvent::UserDefined(0x777));
        pcs.advance(&busy_activity(1.0e9), 1.0);
        // Slot 0 no longer reports the FLOPS select code.
        let (code, _) = pcs.read_core(0)[0];
        assert_eq!(code, 0x777);
        assert_ne!(code, PerfEvent::Flops.select_code());
        // And the aggregate FLOPS view is gone.
        assert_eq!(pcs.total(PerfEvent::Flops), None);
    }

    #[test]
    fn counters_wrap_at_48_bits() {
        let mut pcs = PerfCounterSet::new(1);
        pcs.program_all([Some(PerfEvent::Flops), None, None, None]);
        // Drive close to the mask by many large advances.
        let huge = busy_activity(2.0e14);
        for _ in 0..2 {
            pcs.advance(&huge, 1.0);
        }
        let v = pcs.read_core(0)[0].1;
        assert!(v <= CTR_MASK);
        assert_eq!(v, (4.0e14 as u64) & CTR_MASK);
    }

    #[test]
    fn reads_do_not_reprogram() {
        let mut pcs = PerfCounterSet::new(1);
        pcs.program_all([Some(PerfEvent::Flops), None, None, None]);
        pcs.advance(&busy_activity(1.0e9), 1.0);
        let before = pcs.read_core(0);
        let again = pcs.read_core(0);
        assert_eq!(before, again);
        pcs.advance(&busy_activity(1.0e9), 1.0);
        assert!(pcs.read_core(0)[0].1 > before[0].1, "still counting after reads");
    }
}
