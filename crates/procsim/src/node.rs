//! Hardware description of a simulated compute node.

use crate::perfctr::PerfEvent;

/// CPU microarchitecture, which determines the performance-counter event
/// set TACC_Stats programs at job start (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuArch {
    /// Ranger: quad-socket quad-core AMD Opteron "Barcelona".
    AmdOpteron,
    /// Lonestar4: dual-socket hexa-core Intel Xeon 5680 (Westmere).
    IntelWestmere,
}

impl CpuArch {
    /// The events TACC_Stats programs on this architecture, in counter
    /// order. The paper: on AMD Opteron — FLOPS, memory accesses, data
    /// cache fills and SMP/NUMA traffic; on Intel Nehalem/Westmere —
    /// FLOPS, SMP/NUMA traffic, and L1 data cache hits (one counter left
    /// free for the user).
    pub fn tacc_stats_events(self) -> [Option<PerfEvent>; 4] {
        match self {
            CpuArch::AmdOpteron => [
                Some(PerfEvent::Flops),
                Some(PerfEvent::MemAccesses),
                Some(PerfEvent::DCacheFills),
                Some(PerfEvent::NumaTraffic),
            ],
            CpuArch::IntelWestmere => [
                Some(PerfEvent::Flops),
                Some(PerfEvent::NumaTraffic),
                Some(PerfEvent::L1DHits),
                None,
            ],
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CpuArch::AmdOpteron => "amd64_core",
            CpuArch::IntelWestmere => "intel_wtm",
        }
    }
}

/// Static hardware configuration of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    pub arch: CpuArch,
    /// Total cores (sockets × cores-per-socket).
    pub cores: u32,
    pub sockets: u32,
    /// Nominal clock, GHz.
    pub clock_ghz: f64,
    /// Physical memory, bytes.
    pub mem_bytes: u64,
    /// Peak double-precision GFLOP/s for the whole node (used only by
    /// reports that compare achieved to peak, e.g. Fig 9/10).
    pub peak_gflops: f64,
    /// InfiniBand HCA port count.
    pub ib_ports: u32,
    /// Ethernet device names.
    pub eth_devices: Vec<&'static str>,
    /// Lustre client mounts (e.g. "scratch", "work", "share").
    pub lustre_mounts: Vec<&'static str>,
    /// Local block devices.
    pub block_devices: Vec<&'static str>,
}

impl NodeSpec {
    /// A Ranger compute node: four 2.3 GHz AMD Opteron quad-cores (16
    /// cores), 32 GB, Lustre (scratch/work/share), InfiniBand.
    pub fn ranger() -> NodeSpec {
        NodeSpec {
            arch: CpuArch::AmdOpteron,
            cores: 16,
            sockets: 4,
            clock_ghz: 2.3,
            // 16 cores × 2.3 GHz × 4 flops/cycle (SSE2) = 147.2 GF/node;
            // 3936 nodes × 147.2 ≈ 579 TF, the paper's benchmarked peak.
            peak_gflops: 147.2,
            mem_bytes: 32 << 30,
            ib_ports: 1,
            eth_devices: vec!["eth0"],
            lustre_mounts: vec!["scratch", "work", "share"],
            block_devices: vec!["sda"],
        }
    }

    /// A Lonestar4 compute node: two 3.33 GHz Intel Xeon 5680 hexa-cores
    /// (12 cores), 24 GB, Lustre + NFS, InfiniBand.
    pub fn lonestar4() -> NodeSpec {
        NodeSpec {
            arch: CpuArch::IntelWestmere,
            cores: 12,
            sockets: 2,
            clock_ghz: 3.33,
            // 12 × 3.33 GHz × 4 flops/cycle ≈ 160 GF/node.
            peak_gflops: 159.8,
            mem_bytes: 24 << 30,
            ib_ports: 1,
            eth_devices: vec!["eth0"],
            lustre_mounts: vec!["scratch", "work"],
            block_devices: vec!["sda"],
        }
    }

    /// A Stampede compute node (§5: "TACC_Stats will soon be deployed on
    /// TACC's Stampede"): two 2.7 GHz Intel Xeon E5-2680 octa-cores
    /// (16 cores), 32 GB, Lustre, FDR InfiniBand. Included as the
    /// forward-deployment target; the Sandy Bridge counters use the same
    /// Intel event set as Westmere in this model.
    pub fn stampede() -> NodeSpec {
        NodeSpec {
            arch: CpuArch::IntelWestmere,
            cores: 16,
            sockets: 2,
            clock_ghz: 2.7,
            // 16 × 2.7 GHz × 8 flops/cycle (AVX) ≈ 346 GF/node.
            peak_gflops: 345.6,
            mem_bytes: 32 << 30,
            ib_ports: 1,
            eth_devices: vec!["eth0"],
            lustre_mounts: vec!["scratch", "work"],
            block_devices: vec!["sda"],
        }
    }

    pub fn cores_per_socket(&self) -> u32 {
        self.cores / self.sockets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranger_matches_paper_hardware() {
        let n = NodeSpec::ranger();
        assert_eq!(n.cores, 16);
        assert_eq!(n.sockets, 4);
        assert_eq!(n.mem_bytes, 32 << 30);
        assert_eq!(n.arch, CpuArch::AmdOpteron);
        // 3936 nodes at this per-node peak give the benchmarked 579 TF.
        let system_tf = 3936.0 * n.peak_gflops / 1000.0;
        assert!((system_tf - 579.0).abs() < 1.0, "{system_tf}");
    }

    #[test]
    fn lonestar4_matches_paper_hardware() {
        let n = NodeSpec::lonestar4();
        assert_eq!(n.cores, 12);
        assert_eq!(n.sockets, 2);
        assert_eq!(n.mem_bytes, 24 << 30);
        assert_eq!(n.arch, CpuArch::IntelWestmere);
        assert_eq!(n.cores_per_socket(), 6);
    }

    #[test]
    fn stampede_matches_published_hardware() {
        let n = NodeSpec::stampede();
        assert_eq!(n.cores, 16);
        assert_eq!(n.mem_bytes, 32 << 30);
        // 6400 nodes × 345.6 GF ≈ 2.2 PF, Stampede's base-cluster peak.
        let system_pf = 6400.0 * n.peak_gflops / 1e6;
        assert!((system_pf - 2.2).abs() < 0.1, "{system_pf}");
    }

    #[test]
    fn amd_programs_four_events_intel_three() {
        let amd = CpuArch::AmdOpteron.tacc_stats_events();
        assert!(amd.iter().all(|e| e.is_some()));
        let intel = CpuArch::IntelWestmere.tacc_stats_events();
        assert_eq!(intel.iter().filter(|e| e.is_some()).count(), 3);
        assert_eq!(amd[0], Some(PerfEvent::Flops));
        assert_eq!(intel[0], Some(PerfEvent::Flops));
    }
}
