//! What happened on a node during a slice of simulated time.
//!
//! [`NodeActivity`] is the interface between the workload model and the
//! kernel counters: the simulator decides *what the job did*; the kernel
//! state turns that into counter increments with proper semantics.

/// Resource activity on one node over one time slice.
///
/// CPU fields are node-level fractions of total CPU time; size fields are
/// totals over the slice (bytes / operations); gauge fields are the value
/// at the *end* of the slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeActivity {
    /// Fraction of CPU time in user space, `[0, 1]`.
    pub user_frac: f64,
    /// Fraction of CPU time in the kernel.
    pub system_frac: f64,
    /// Fraction of CPU time waiting on I/O (counted as not-idle by the
    /// paper's cpu_idle definition only if the job owns it; we follow
    /// /proc/stat and report it separately).
    pub iowait_frac: f64,

    /// Floating-point operations performed during the slice.
    pub flops: f64,
    /// Memory accesses performed during the slice (cache-line grain).
    /// Zero means "derive from flops" (the 1.5/flop rule of thumb);
    /// bandwidth-bound kernels set it explicitly.
    pub mem_accesses: f64,

    /// Memory in use at end of slice (bytes), including page cache —
    /// the paper's `mem_used` definition includes the kernel disk
    /// buffer/cache.
    pub mem_used_bytes: u64,
    /// Of which page cache (bytes).
    pub mem_cached_bytes: u64,

    /// Lustre traffic during the slice (bytes), per mount.
    pub scratch_read_bytes: u64,
    pub scratch_write_bytes: u64,
    pub work_read_bytes: u64,
    pub work_write_bytes: u64,
    pub share_read_bytes: u64,
    pub share_write_bytes: u64,

    /// Interconnect traffic during the slice (bytes).
    pub ib_tx_bytes: u64,
    pub ib_rx_bytes: u64,
    /// Lustre networking traffic (bytes); rides the same fabric but is
    /// counted by LNET.
    pub lnet_tx_bytes: u64,
    pub lnet_rx_bytes: u64,
    /// Ethernet traffic (bytes) — NFS and management traffic.
    pub eth_tx_bytes: u64,
    pub eth_rx_bytes: u64,

    /// Paging activity (page counts).
    pub pgfault: u64,
    pub pgmajfault: u64,
    pub pswpin: u64,
    pub pswpout: u64,

    /// Runnable tasks at end of slice.
    pub nr_running: u32,
    /// One-minute load average at end of slice.
    pub load_1: f64,

    /// Fraction of memory accesses satisfied from the local NUMA node.
    pub numa_local_frac: f64,

    /// SysV shared memory in use at end of slice (bytes).
    pub sysv_shm_bytes: u64,
    /// tmpfs usage at end of slice (bytes).
    pub tmpfs_bytes: u64,
}

impl NodeActivity {
    /// A completely idle node (what the kernel does between jobs).
    pub fn idle() -> NodeActivity {
        NodeActivity {
            user_frac: 0.001,
            system_frac: 0.004,
            iowait_frac: 0.0,
            flops: 0.0,
            mem_accesses: 0.0,
            mem_used_bytes: 600 << 20, // OS footprint
            mem_cached_bytes: 200 << 20,
            scratch_read_bytes: 0,
            scratch_write_bytes: 0,
            work_read_bytes: 0,
            work_write_bytes: 0,
            share_read_bytes: 0,
            share_write_bytes: 0,
            ib_tx_bytes: 0,
            ib_rx_bytes: 0,
            lnet_tx_bytes: 0,
            lnet_rx_bytes: 0,
            eth_tx_bytes: 10 << 10,
            eth_rx_bytes: 12 << 10,
            pgfault: 100,
            pgmajfault: 0,
            pswpin: 0,
            pswpout: 0,
            nr_running: 0,
            load_1: 0.01,
            numa_local_frac: 1.0,
            sysv_shm_bytes: 0,
            tmpfs_bytes: 1 << 20,
        }
    }

    /// Effective memory accesses: the explicit figure, or the 1.5/flop
    /// rule when none was given.
    pub fn effective_mem_accesses(&self) -> f64 {
        if self.mem_accesses > 0.0 {
            self.mem_accesses
        } else {
            self.flops * 1.5
        }
    }

    /// The idle fraction implied by the CPU fields.
    pub fn idle_frac(&self) -> f64 {
        (1.0 - self.user_frac - self.system_frac - self.iowait_frac).max(0.0)
    }

    /// Clamp CPU fractions so they form a valid partition of CPU time.
    pub fn normalized(mut self) -> NodeActivity {
        self.user_frac = self.user_frac.clamp(0.0, 1.0);
        self.system_frac = self.system_frac.clamp(0.0, 1.0);
        self.iowait_frac = self.iowait_frac.clamp(0.0, 1.0);
        let total = self.user_frac + self.system_frac + self.iowait_frac;
        if total > 1.0 {
            self.user_frac /= total;
            self.system_frac /= total;
            self.iowait_frac /= total;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_node_is_mostly_idle() {
        let a = NodeActivity::idle();
        assert!(a.idle_frac() > 0.99);
    }

    #[test]
    fn normalized_rescales_oversubscribed_cpu() {
        let a = NodeActivity { user_frac: 0.9, system_frac: 0.3, ..NodeActivity::idle() };
        let n = a.normalized();
        let total = n.user_frac + n.system_frac + n.iowait_frac;
        assert!(total <= 1.0 + 1e-12);
        assert!((n.user_frac / n.system_frac - 3.0).abs() < 1e-9, "ratio preserved");
    }

    #[test]
    fn normalized_clamps_negatives() {
        let a = NodeActivity { user_frac: -0.5, ..NodeActivity::idle() };
        assert_eq!(a.normalized().user_frac, 0.0);
    }
}
