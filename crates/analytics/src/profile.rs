//! Normalized usage profiles — the radar-chart octagons of Figures 2, 3
//! and 5.
//!
//! A profile is the eight key metrics of an entity (user, application,
//! job) divided by the all-jobs average of each metric on the same
//! machine, so a perfectly typical entity plots as a unit octagon and
//! values above 1 mean heavier-than-average use.

use supremm_metrics::metric::KeyMetricVec;
use supremm_metrics::KeyMetric;

use crate::stats::WeightedMoments;

/// Accumulates node·hour-weighted means of the eight key metrics.
#[derive(Debug, Clone, Default)]
pub struct ProfileAccumulator {
    acc: [WeightedMoments; 8],
}

impl ProfileAccumulator {
    pub fn new() -> ProfileAccumulator {
        ProfileAccumulator::default()
    }

    /// Add one job's metric vector with its node·hour weight.
    pub fn push(&mut self, metrics: &KeyMetricVec, weight: f64) {
        for m in KeyMetric::ALL {
            self.acc[m.index()].push(metrics.get(m), weight);
        }
    }

    pub fn count(&self) -> u64 {
        self.acc[0].count()
    }

    pub fn weight_sum(&self) -> f64 {
        self.acc[0].weight_sum()
    }

    /// The weighted mean vector.
    pub fn means(&self) -> KeyMetricVec {
        let mut v = KeyMetricVec::default();
        for m in KeyMetric::ALL {
            v.set(m, self.acc[m.index()].mean());
        }
        v
    }

    pub fn merge(mut self, other: ProfileAccumulator) -> ProfileAccumulator {
        for i in 0..8 {
            self.acc[i] = self.acc[i].merge(other.acc[i]);
        }
        self
    }
}

/// Normalize an entity's mean vector by the global (all-jobs) means:
/// `profile[m] = entity[m] / global[m]`. Metrics whose global mean is
/// zero or non-finite normalize to zero rather than NaN/∞.
pub fn normalize(entity: &KeyMetricVec, global: &KeyMetricVec) -> KeyMetricVec {
    entity.map(|m, v| {
        let g = global.get(m);
        if g.is_finite() && g != 0.0 {
            v / g
        } else {
            0.0
        }
    })
}

/// A labelled, normalized profile ready for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    pub label: String,
    pub values: KeyMetricVec,
    /// Node·hours behind this profile (its statistical weight).
    pub node_hours: f64,
}

impl Profile {
    /// Render one line per metric, `name value` — the dataset behind a
    /// radar chart.
    pub fn to_rows(&self) -> Vec<(String, f64)> {
        self.values
            .iter()
            .map(|(m, v)| (m.name().to_string(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(vals: [f64; 8]) -> KeyMetricVec {
        KeyMetricVec(vals)
    }

    #[test]
    fn average_entity_normalizes_to_unit_octagon() {
        let global = vec_of([0.1, 8e9, 12e9, 5e9, 2e6, 1e5, 3e7, 2e6]);
        let profile = normalize(&global.clone(), &global);
        for (m, v) in profile.iter() {
            assert!((v - 1.0).abs() < 1e-12, "{m}");
        }
    }

    #[test]
    fn heavier_usage_exceeds_one() {
        let global = vec_of([0.1; 8]);
        let entity = vec_of([0.2; 8]);
        let p = normalize(&entity, &global);
        for (_, v) in p.iter() {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_global_mean_normalizes_to_zero_not_nan() {
        let mut global = vec_of([1.0; 8]);
        global.set(KeyMetric::IoWorkWrite, 0.0);
        let entity = vec_of([1.0; 8]);
        let p = normalize(&entity, &global);
        assert_eq!(p.get(KeyMetric::IoWorkWrite), 0.0);
        assert_eq!(p.get(KeyMetric::CpuIdle), 1.0);
    }

    #[test]
    fn accumulator_weights_jobs_by_node_hours() {
        let mut acc = ProfileAccumulator::new();
        let mut a = KeyMetricVec::default();
        a.set(KeyMetric::CpuIdle, 0.0);
        let mut b = KeyMetricVec::default();
        b.set(KeyMetric::CpuIdle, 1.0);
        acc.push(&a, 1.0);
        acc.push(&b, 9.0);
        assert!((acc.means().get(KeyMetric::CpuIdle) - 0.9).abs() < 1e-12);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.weight_sum(), 10.0);
    }

    #[test]
    fn accumulator_merge_matches_single_pass() {
        let jobs: Vec<(KeyMetricVec, f64)> = (0..20)
            .map(|i| {
                let mut v = KeyMetricVec::default();
                v.set(KeyMetric::CpuFlops, i as f64);
                v.set(KeyMetric::MemUsed, 100.0 - i as f64);
                (v, 1.0 + (i % 3) as f64)
            })
            .collect();
        let mut whole = ProfileAccumulator::new();
        for (v, w) in &jobs {
            whole.push(v, *w);
        }
        let mut left = ProfileAccumulator::new();
        let mut right = ProfileAccumulator::new();
        for (v, w) in &jobs[..7] {
            left.push(v, *w);
        }
        for (v, w) in &jobs[7..] {
            right.push(v, *w);
        }
        let merged = left.merge(right);
        for m in KeyMetric::ALL {
            assert!((whole.means().get(m) - merged.means().get(m)).abs() < 1e-9);
        }
    }

    #[test]
    fn profile_rows_cover_all_eight_metrics() {
        let p = Profile {
            label: "user 1".into(),
            values: vec_of([1.0; 8]),
            node_hours: 5.0,
        };
        let rows = p.to_rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].0, "cpu_idle");
    }
}
