//! Pearson correlation and the minimal-independent-metric selection.
//!
//! §4.2: "We have chosen these eight based on a correlation analysis over
//! all of the measured metrics. We found that there are many highly
//! correlated or anti-correlated metrics, such as cpu user is negatively
//! correlated to cpu idle, or net ib rx is positively correlated to net
//! ib tx. Therefore, we have selected the smallest independent set of
//! metrics that describe the execution behavior of the job mix."

use rayon::prelude::*;

/// Pearson correlation of two equal-length series. `NaN` when either
/// side is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if x.is_empty() {
        return f64::NAN;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    sxy / (sxx * syy).sqrt()
}

/// Full correlation matrix of `vars` (each an equal-length series),
/// computed in parallel over the upper triangle.
pub fn correlation_matrix(vars: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = vars.len();
    let pairs: Vec<(usize, usize)> =
        (0..k).flat_map(|i| (i..k).map(move |j| (i, j))).collect();
    let vals: Vec<((usize, usize), f64)> = pairs
        .into_par_iter()
        .map(|(i, j)| ((i, j), if i == j { 1.0 } else { pearson(&vars[i], &vars[j]) }))
        .collect();
    let mut m = vec![vec![0.0; k]; k];
    for ((i, j), v) in vals {
        m[i][j] = v;
        m[j][i] = v;
    }
    m
}

/// Select a (greedy) smallest independent subset: walk candidates in
/// priority order, keep one iff its |r| against every already-kept metric
/// is below `threshold`. Returns kept indices.
///
/// `priority` orders the candidates (the paper keeps the most
/// operationally meaningful member of each correlated cluster — e.g.
/// `cpu_idle` rather than `cpu_user`); pass `0..k` for no preference.
pub fn select_independent(corr: &[Vec<f64>], priority: &[usize], threshold: f64) -> Vec<usize> {
    let mut kept: Vec<usize> = Vec::new();
    for &i in priority {
        let independent = kept.iter().all(|&j| {
            let r = corr[i][j];
            r.is_nan() || r.abs() < threshold
        });
        if independent {
            kept.push(i);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..200).map(f).collect()
    }

    #[test]
    fn perfect_correlation_and_anticorrelation() {
        let x = series(|i| i as f64);
        let y = series(|i| 3.0 * i as f64 + 7.0);
        let z = series(|i| -2.0 * i as f64);
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_series_are_uncorrelated() {
        // Deterministic pseudo-random pair with no linear relation.
        let x = series(|i| ((i * 2654435761) % 1000) as f64);
        let y = series(|i| ((i * 40503 + 7) % 997) as f64);
        assert!(pearson(&x, &y).abs() < 0.15);
    }

    #[test]
    fn constant_series_gives_nan() {
        let x = series(|_| 4.0);
        let y = series(|i| i as f64);
        assert!(pearson(&x, &y).is_nan());
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let vars = vec![
            series(|i| i as f64),
            series(|i| (i as f64).sin()),
            series(|i| -(i as f64) + 3.0),
        ];
        let m = correlation_matrix(&vars);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert!((m[0][2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn selection_drops_correlated_partners() {
        // 0 and 1 perfectly anticorrelated; 2 independent.
        let vars = vec![
            series(|i| i as f64),
            series(|i| -(i as f64)),
            series(|i| ((i * 2654435761) % 1000) as f64),
        ];
        let m = correlation_matrix(&vars);
        let kept = select_independent(&m, &[0, 1, 2], 0.8);
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn priority_order_decides_the_survivor() {
        let vars = vec![series(|i| i as f64), series(|i| -(i as f64))];
        let m = correlation_matrix(&vars);
        assert_eq!(select_independent(&m, &[1, 0], 0.8), vec![1]);
        assert_eq!(select_independent(&m, &[0, 1], 0.8), vec![0]);
    }

    #[test]
    fn threshold_one_keeps_everything_noncollinear() {
        let vars = vec![series(|i| i as f64), series(|i| (i as f64) * 0.9 + 1.0)];
        let m = correlation_matrix(&vars);
        // r ≈ 1.0, threshold 1.0 is exclusive but |r| < 1 only numerically;
        // use a strictly higher threshold to keep both.
        let kept = select_independent(&m, &[0, 1], 1.1);
        assert_eq!(kept, vec![0, 1]);
    }
}
