//! Wasted-node-hour accounting (Figure 4) and efficiency lines.
//!
//! Figure 4 plots, per user, total node-hours consumed vs node-hours
//! "wasted" (spent with the CPU idle), with a reference line at the
//! machine's average efficiency (90 % on Ranger, 85 % on Lonestar4) and
//! the worst offenders circled.

/// Per-user usage/waste tallies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserUsage {
    pub node_hours: f64,
    /// Node-hours × cpu_idle fraction.
    pub wasted_node_hours: f64,
}

impl UserUsage {
    pub fn push_job(&mut self, node_hours: f64, cpu_idle_frac: f64) {
        self.node_hours += node_hours;
        self.wasted_node_hours += node_hours * cpu_idle_frac.clamp(0.0, 1.0);
    }

    /// Efficiency = fraction of node-hours *not* idle.
    pub fn efficiency(&self) -> f64 {
        if self.node_hours <= 0.0 {
            return f64::NAN;
        }
        1.0 - self.wasted_node_hours / self.node_hours
    }

    pub fn idle_frac(&self) -> f64 {
        1.0 - self.efficiency()
    }
}

/// One point of the Figure 4 scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPoint<K> {
    pub key: K,
    pub usage: UserUsage,
}

/// The Figure 4 dataset: scatter points plus the machine-average
/// efficiency (the red line's slope: wasted = (1−eff)·total).
#[derive(Debug, Clone)]
pub struct WastedHoursReport<K> {
    pub points: Vec<ScatterPoint<K>>,
    pub average_efficiency: f64,
}

impl<K: Clone> WastedHoursReport<K> {
    /// Build from per-key usage tallies.
    pub fn build(points: Vec<ScatterPoint<K>>) -> WastedHoursReport<K> {
        let total: f64 = points.iter().map(|p| p.usage.node_hours).sum();
        let wasted: f64 = points.iter().map(|p| p.usage.wasted_node_hours).sum();
        let average_efficiency = if total > 0.0 { 1.0 - wasted / total } else { f64::NAN };
        WastedHoursReport { points, average_efficiency }
    }

    /// Users above the efficiency line (more wasted hours than the
    /// machine-average waste for their consumption).
    pub fn above_line(&self) -> impl Iterator<Item = &ScatterPoint<K>> {
        let waste_slope = 1.0 - self.average_efficiency;
        self.points
            .iter()
            .filter(move |p| p.usage.wasted_node_hours > waste_slope * p.usage.node_hours)
    }

    /// The Figure 4 "circled user": the heaviest consumer among those
    /// idling at least `idle_threshold` of their node-hours.
    pub fn worst_heavy_offender(&self, idle_threshold: f64) -> Option<&ScatterPoint<K>> {
        self.points
            .iter()
            .filter(|p| p.usage.idle_frac() >= idle_threshold)
            .max_by(|a, b| a.usage.node_hours.total_cmp(&b.usage.node_hours))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(key: u32, hours: f64, idle: f64) -> ScatterPoint<u32> {
        let mut usage = UserUsage::default();
        usage.push_job(hours, idle);
        ScatterPoint { key, usage }
    }

    #[test]
    fn efficiency_accounting() {
        let mut u = UserUsage::default();
        u.push_job(100.0, 0.1);
        u.push_job(300.0, 0.2);
        assert_eq!(u.node_hours, 400.0);
        assert_eq!(u.wasted_node_hours, 70.0);
        assert!((u.efficiency() - 0.825).abs() < 1e-12);
    }

    #[test]
    fn idle_clamped_to_valid_range() {
        let mut u = UserUsage::default();
        u.push_job(10.0, 1.7);
        assert_eq!(u.wasted_node_hours, 10.0);
        u.push_job(10.0, -0.5);
        assert_eq!(u.wasted_node_hours, 10.0);
    }

    #[test]
    fn average_line_is_node_hour_weighted() {
        let report = WastedHoursReport::build(vec![
            point(1, 900.0, 0.10),
            point(2, 100.0, 0.90),
        ]);
        // Weighted idle = (900·0.1 + 100·0.9)/1000 = 0.18.
        assert!((report.average_efficiency - 0.82).abs() < 1e-12);
    }

    #[test]
    fn above_line_flags_only_wasters() {
        let report = WastedHoursReport::build(vec![
            point(1, 500.0, 0.05),
            point(2, 500.0, 0.40),
        ]);
        let above: Vec<u32> = report.above_line().map(|p| p.key).collect();
        assert_eq!(above, vec![2]);
    }

    #[test]
    fn worst_offender_is_heaviest_among_high_idle() {
        let report = WastedHoursReport::build(vec![
            point(1, 100.0, 0.88),
            point(2, 5000.0, 0.05),
            point(3, 800.0, 0.87),
        ]);
        let worst = report.worst_heavy_offender(0.8).unwrap();
        assert_eq!(worst.key, 3);
        assert!(report.worst_heavy_offender(0.95).is_none());
    }

    #[test]
    fn empty_usage_is_nan_not_panic() {
        assert!(UserUsage::default().efficiency().is_nan());
        let report: WastedHoursReport<u32> = WastedHoursReport::build(vec![]);
        assert!(report.average_efficiency.is_nan());
    }
}
