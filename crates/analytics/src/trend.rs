//! Resource-use trends and predictions (§4.3.5).
//!
//! The resource-manager reports include "Job-level resource use trends"
//! and "Resource use trends and predictions"; the funding-agency section
//! wants "trends in resource use by applications and at the system
//! level". This module provides the machinery: a classical additive
//! decomposition of a system series into diurnal season + linear trend +
//! residual, and a forecast built from the two structured parts.

use crate::regression::{linear_fit, LinearFit};

/// Additive decomposition `x(t) = trend(t) + season(t mod period) + resid`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Samples per season cycle (e.g. 144 ten-minute bins per day).
    pub period: usize,
    /// The fitted linear trend over the de-seasonalised series.
    pub trend: LinearFit,
    /// Seasonal offsets, one per position in the cycle (mean zero).
    pub seasonal: Vec<f64>,
    /// Residual standard deviation (forecast uncertainty).
    pub resid_sd: f64,
    pub n: usize,
}

/// Decompose an equally-spaced series with the given season length.
/// Returns `None` when the series is shorter than two full cycles.
pub fn decompose(series: &[f64], period: usize) -> Option<Decomposition> {
    if period < 2 || series.len() < 2 * period {
        return None;
    }
    let x: Vec<f64> = (0..series.len()).map(|i| i as f64).collect();
    // 1. Rough trend on the raw series (the season averages out over full
    //    cycles, but a one-pass seasonal estimate would absorb the
    //    within-cycle part of the trend — hence detrend first).
    let rough = linear_fit(&x, series)?;
    // 2. Seasonal means by phase on the detrended series.
    let mut phase_sum = vec![0.0f64; period];
    let mut phase_n = vec![0usize; period];
    for (i, &v) in series.iter().enumerate() {
        phase_sum[i % period] += v - rough.predict(i as f64);
        phase_n[i % period] += 1;
    }
    let mut seasonal: Vec<f64> =
        phase_sum.iter().zip(&phase_n).map(|(s, &n)| s / n as f64).collect();
    let grand = seasonal.iter().sum::<f64>() / period as f64;
    for s in &mut seasonal {
        *s -= grand;
    }
    // 3. Final linear trend on the de-seasonalised series.
    let y: Vec<f64> =
        series.iter().enumerate().map(|(i, &v)| v - seasonal[i % period]).collect();
    let trend = linear_fit(&x, &y)?;
    // 3. Residuals.
    let resid_var = series
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let fitted = trend.predict(i as f64) + seasonal[i % period];
            (v - fitted).powi(2)
        })
        .sum::<f64>()
        / series.len() as f64;
    Some(Decomposition {
        period,
        trend,
        seasonal,
        resid_sd: resid_var.sqrt(),
        n: series.len(),
    })
}

impl Decomposition {
    /// Point forecast for `steps` past the end of the fitted series.
    pub fn forecast(&self, steps: usize) -> f64 {
        let i = self.n + steps;
        self.trend.predict(i as f64) + self.seasonal[i % self.period]
    }

    /// Forecast with a ±2σ band.
    pub fn forecast_band(&self, steps: usize) -> (f64, f64, f64) {
        let p = self.forecast(steps);
        (p - 2.0 * self.resid_sd, p, p + 2.0 * self.resid_sd)
    }

    /// Growth per cycle (e.g. per day for a diurnal period) — the number
    /// a capacity planner extrapolates.
    pub fn growth_per_cycle(&self) -> f64 {
        self.trend.slope * self.period as f64
    }

    /// Whether the trend is statistically significant at the given level.
    pub fn trend_significant(&self, alpha: f64) -> bool {
        self.trend.slope_p < alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize, base: f64, slope: f64, amp: f64, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let phase = (i % period) as f64 / period as f64 * std::f64::consts::TAU;
                let noise = (((i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15) >> 40) as f64
                    / (1u64 << 24) as f64
                    - 0.5)
                    * 0.2;
                base + slope * i as f64 + amp * phase.sin() + noise
            })
            .collect()
    }

    #[test]
    fn recovers_trend_and_season() {
        let s = synth(144 * 14, 50.0, 0.01, 5.0, 144);
        let d = decompose(&s, 144).unwrap();
        assert!((d.trend.slope - 0.01).abs() < 0.0005, "{}", d.trend.slope);
        // Seasonal amplitude ≈ 5 (peak-to-mean).
        let amp = d.seasonal.iter().cloned().fold(0.0, f64::max);
        assert!((amp - 5.0).abs() < 0.3, "{amp}");
        assert!(d.trend_significant(0.001));
        assert!(d.resid_sd < 0.2);
    }

    #[test]
    fn forecast_extends_trend_plus_season() {
        let s = synth(144 * 10, 100.0, 0.02, 8.0, 144);
        let d = decompose(&s, 144).unwrap();
        // One full cycle ahead, same phase as the series end.
        let want = 100.0 + 0.02 * (s.len() + 144) as f64 + d.seasonal[(s.len() + 144) % 144];
        let got = d.forecast(144);
        assert!((got - want).abs() < 0.5, "{got} vs {want}");
        let (lo, mid, hi) = d.forecast_band(144);
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn flat_series_has_negligible_growth() {
        // The deterministic test noise carries a microscopic drift that a
        // large-n OLS happily calls "significant", so judge by effect
        // size: the fitted growth must be practically zero.
        let s = synth(144 * 8, 10.0, 0.0, 2.0, 144);
        let d = decompose(&s, 144).unwrap();
        assert!(d.growth_per_cycle().abs() < 0.05, "{}", d.growth_per_cycle());
        assert!(d.trend.slope.abs() < 3e-4, "{}", d.trend.slope);
    }

    #[test]
    fn too_short_series_is_rejected() {
        let s = synth(200, 1.0, 0.0, 1.0, 144);
        assert!(decompose(&s, 144).is_none());
        assert!(decompose(&s, 1).is_none());
    }

    #[test]
    fn growth_per_cycle_scales_slope() {
        let s = synth(144 * 12, 0.0, 0.05, 1.0, 144);
        let d = decompose(&s, 144).unwrap();
        assert!((d.growth_per_cycle() - 0.05 * 144.0).abs() < 0.5);
    }
}
