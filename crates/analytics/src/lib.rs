//! `supremm-analytics`: the statistics underneath the paper's analyses.
//!
//! Pure math over plain slices — no I/O, no storage types — so every
//! report layer (and the test suite) can drive it directly:
//!
//! - [`stats`] — streaming and weighted moments (all job statistics in
//!   the paper are node·hour-weighted, §4.1).
//! - [`correlation`] — Pearson matrices and the §4.2 minimal-independent-
//!   metric-set selection.
//! - [`kde`] — Gaussian kernel density estimation (the paper uses R's
//!   `density()`, citing Scott \[28\], for Figures 10 and 12).
//! - [`regression`] — OLS with standard errors, t statistics, two-sided
//!   p-values and R² (Figure 6 reports all of these).
//! - [`persistence`] — the offset-σ-ratio predictability analysis of
//!   Table 1 / Figure 6.
//! - [`profile`] — normalized usage profiles (the radar charts of
//!   Figures 2, 3, 5).
//! - [`efficiency`] — wasted-node-hour accounting (Figure 4).
//! - [`outlier`] — anomaly flagging for jobs/users with aberrant
//!   profiles.
//! - [`control`] — Shewhart/CUSUM process control for the application-
//!   kernel performance auditing of the paper's companion framework
//!   (reference \[2\]).

pub mod control;
pub mod correlation;
pub mod efficiency;
pub mod kde;
pub mod outlier;
pub mod persistence;
pub mod profile;
pub mod quantile;
pub mod regression;
pub mod stats;
pub mod trend;

pub use correlation::{correlation_matrix, pearson, select_independent};
pub use kde::Kde;
pub use persistence::{persistence_ratios, PersistencePoint};
pub use regression::{linear_fit, LinearFit};
pub use stats::{Moments, WeightedMoments};
