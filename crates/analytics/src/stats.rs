//! Streaming and weighted moments.
//!
//! Every job-level statistic in the paper is weighted by node·hours
//! (§4.1: "values were calculated by the job weighted by node*hour"), so
//! the weighted accumulator is the workhorse here. Welford's update keeps
//! both numerically stable over millions of samples.

/// Unweighted streaming moments (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    pub fn new() -> Moments {
        Moments { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (n−1).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation σ/μ (the paper orders metric
    /// predictability by it).
    pub fn cv(&self) -> f64 {
        self.std_dev() / self.mean()
    }

    /// Merge two accumulators (parallel reduction).
    pub fn merge(self, other: Moments) -> Moments {
        if self.n == 0 {
            return other;
        }
        if other.n == 0 {
            return self;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        Moments { n, mean, m2, min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    pub fn from_slice(xs: &[f64]) -> Moments {
        let mut m = Moments::new();
        for &x in xs {
            m.push(x);
        }
        m
    }
}

/// Weighted streaming moments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedMoments {
    w_sum: f64,
    mean: f64,
    m2: f64,
    n: u64,
    max: f64,
}

impl WeightedMoments {
    pub fn new() -> WeightedMoments {
        WeightedMoments { w_sum: 0.0, mean: 0.0, m2: 0.0, n: 0, max: f64::NEG_INFINITY }
    }

    /// Push `x` with weight `w` (ignored if `w <= 0`).
    pub fn push(&mut self, x: f64, w: f64) {
        if w <= 0.0 {
            return;
        }
        self.n += 1;
        self.w_sum += w;
        let d = x - self.mean;
        self.mean += d * w / self.w_sum;
        self.m2 += w * d * (x - self.mean);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn weight_sum(&self) -> f64 {
        self.w_sum
    }

    pub fn mean(&self) -> f64 {
        if self.w_sum <= 0.0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    pub fn variance(&self) -> f64 {
        if self.w_sum <= 0.0 {
            f64::NAN
        } else {
            self.m2 / self.w_sum
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn merge(self, other: WeightedMoments) -> WeightedMoments {
        if other.w_sum <= 0.0 {
            return self;
        }
        if self.w_sum <= 0.0 {
            return other;
        }
        let w = self.w_sum + other.w_sum;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.w_sum / w;
        let m2 = self.m2 + other.m2 + d * d * self.w_sum * other.w_sum / w;
        WeightedMoments { w_sum: w, mean, m2, n: self.n + other.n, max: self.max.max(other.max) }
    }
}

/// p-th percentile (linear interpolation) of a sorted slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 1.0);
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m = Moments::from_slice(&xs);
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let whole = Moments::from_slice(&xs);
        let merged = Moments::from_slice(&xs[..37]).merge(Moments::from_slice(&xs[37..]));
        assert!((whole.mean() - merged.mean()).abs() < 1e-10);
        assert!((whole.variance() - merged.variance()).abs() < 1e-10);
        assert_eq!(whole.count(), merged.count());
    }

    #[test]
    fn empty_moments_are_nan_not_garbage() {
        let m = Moments::new();
        assert!(m.mean().is_nan());
        assert!(m.variance().is_nan());
    }

    #[test]
    fn weighted_mean_reduces_to_plain_when_equal_weights() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        let mut w = WeightedMoments::new();
        for &x in &xs {
            w.push(x, 2.5);
        }
        let m = Moments::from_slice(&xs);
        assert!((w.mean() - m.mean()).abs() < 1e-12);
        assert!((w.variance() - m.variance()).abs() < 1e-12);
    }

    #[test]
    fn weighting_shifts_the_mean() {
        let mut w = WeightedMoments::new();
        w.push(0.0, 1.0);
        w.push(10.0, 9.0);
        assert!((w.mean() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn zero_and_negative_weights_are_ignored() {
        let mut w = WeightedMoments::new();
        w.push(5.0, 1.0);
        w.push(100.0, 0.0);
        w.push(200.0, -3.0);
        assert_eq!(w.count(), 1);
        assert!((w.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_merge_equals_single_pass() {
        let data: Vec<(f64, f64)> =
            (0..50).map(|i| (i as f64, 1.0 + (i % 7) as f64)).collect();
        let mut whole = WeightedMoments::new();
        for &(x, w) in &data {
            whole.push(x, w);
        }
        let mut a = WeightedMoments::new();
        let mut b = WeightedMoments::new();
        for &(x, w) in &data[..20] {
            a.push(x, w);
        }
        for &(x, w) in &data[20..] {
            b.push(x, w);
        }
        let merged = a.merge(b);
        assert!((whole.mean() - merged.mean()).abs() < 1e-10);
        assert!((whole.variance() - merged.variance()).abs() < 1e-10);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 4.0);
        assert_eq!(percentile_sorted(&xs, 0.5), 2.5);
    }

    #[test]
    fn cv_is_scale_invariant() {
        let a = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let b = Moments::from_slice(&[10.0, 20.0, 30.0]);
        assert!((a.cv() - b.cv()).abs() < 1e-12);
    }
}
