//! Ordinary least squares with inference.
//!
//! Figure 6 of the paper reports, for the combined persistence fit,
//! intercept/slope *with standard errors and p-values* plus R²
//! (Ranger: intercept −0.17(6) p=0.016, slope 0.36(2) p=5e−12, R²=0.87).
//! Reproducing those numbers needs a real OLS implementation: standard
//! errors from the residual variance and two-sided p-values from the
//! Student-t distribution (via the regularized incomplete beta function).

/// Result of a simple linear fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    pub intercept: f64,
    pub slope: f64,
    pub intercept_se: f64,
    pub slope_se: f64,
    /// Two-sided p-value of the intercept against 0.
    pub intercept_p: f64,
    /// Two-sided p-value of the slope against 0.
    pub slope_p: f64,
    pub r_squared: f64,
    pub n: usize,
}

impl LinearFit {
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit `y = a + b·x` by OLS. Returns `None` for fewer than 3 points or a
/// degenerate (constant-x) design.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 3 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxx += (a - mx) * (a - mx);
        sxy += (a - mx) * (b - my);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let df = nf - 2.0;
    // Residual sum of squares.
    let rss: f64 = x
        .iter()
        .zip(y)
        .map(|(&a, &b)| {
            let e = b - (intercept + slope * a);
            e * e
        })
        .sum();
    let sigma2 = rss / df;
    let slope_se = (sigma2 / sxx).sqrt();
    let intercept_se = (sigma2 * (1.0 / nf + mx * mx / sxx)).sqrt();
    let r_squared = if syy > 0.0 { 1.0 - rss / syy } else { 1.0 };
    let t_slope = slope / slope_se;
    let t_intercept = intercept / intercept_se;
    Some(LinearFit {
        intercept,
        slope,
        intercept_se,
        slope_se,
        intercept_p: student_t_two_sided(t_intercept, df),
        slope_p: student_t_two_sided(t_slope, df),
        r_squared,
        n,
    })
}

/// Two-sided p-value for a t statistic with `df` degrees of freedom:
/// `P(|T| >= |t|) = I_{df/(df+t²)}(df/2, 1/2)`.
pub fn student_t_two_sided(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// ln Γ via the Lanczos approximation (g = 7, n = 9).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = 0.999_999_999_999_81;
    for (i, &c) in COEFFS.iter().enumerate() {
        a += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta `I_x(a, b)` via the continued fraction
/// (Numerical Recipes `betacf`, with the symmetry transformation).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovers_coefficients() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.5 * v - 1.0).collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 2.5).abs() < 1e-10);
        assert!((f.intercept + 1.0).abs() < 1e-10);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!(f.slope_p < 1e-10);
    }

    #[test]
    fn noisy_line_fit_is_reasonable() {
        // Deterministic noise.
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 3.0 * v + 1.0 + ((i * 7919 % 100) as f64 / 100.0 - 0.5))
            .collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 3.0).abs() < 0.05, "{}", f.slope);
        assert!((f.intercept - 1.0).abs() < 0.2, "{}", f.intercept);
        assert!(f.r_squared > 0.99);
        assert!(f.slope_se > 0.0 && f.intercept_se > 0.0);
    }

    #[test]
    fn pure_noise_has_insignificant_slope() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| ((i * 2654435761u64 as usize) % 100) as f64).collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!(f.slope_p > 0.05, "p={}", f.slope_p);
        assert!(f.r_squared < 0.2);
    }

    #[test]
    fn degenerate_designs_return_none() {
        assert!(linear_fit(&[1.0, 2.0], &[1.0, 2.0]).is_none());
        assert!(linear_fit(&[3.0; 10], &(0..10).map(|i| i as f64).collect::<Vec<_>>()).is_none());
    }

    #[test]
    fn incomplete_beta_reference_values() {
        // I_x(a,b) checked against scipy.special.betainc.
        let cases = [
            (0.5, 0.5, 0.5, 0.5),
            (2.0, 3.0, 0.4, 0.5248),
            (5.0, 1.0, 0.8, 0.32768),
            (1.0, 1.0, 0.25, 0.25),
        ];
        for (a, b, x, want) in cases {
            let got = incomplete_beta(a, b, x);
            assert!((got - want).abs() < 2e-4, "I_{x}({a},{b}) = {got}, want {want}");
        }
    }

    #[test]
    fn t_distribution_reference_values() {
        // Two-sided p-values checked against scipy.stats.t.sf(t, df)*2.
        let cases = [
            (2.0, 10.0, 0.0734),
            (1.0, 5.0, 0.3632),
            (3.5, 30.0, 0.00147),
            (0.0, 7.0, 1.0),
        ];
        for (t, df, want) in cases {
            let got = student_t_two_sided(t, df);
            assert!(
                (got - want).abs() < f64::max(2e-3, want * 0.05),
                "p(|T|>{t}, df={df}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn t_p_value_is_symmetric_in_sign() {
        let p_pos = student_t_two_sided(2.3, 12.0);
        let p_neg = student_t_two_sided(-2.3, 12.0);
        assert!((p_pos - p_neg).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..10 {
            let fact: u64 = (1..n).product();
            let got = ln_gamma(n as f64);
            assert!((got - (fact as f64).ln()).abs() < 1e-9, "Γ({n})");
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }
}
