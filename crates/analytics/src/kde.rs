//! Gaussian kernel density estimation.
//!
//! Figures 10 and 12 of the paper show kernel densities "produced by the
//! R statistical software environment ... in order to avoid making
//! binning choices", citing Scott's *Multivariate Density Estimation*.
//! This is the same estimator family: a Gaussian kernel with bandwidth
//! from Scott's / Silverman's rule, evaluated on a regular grid.

use rayon::prelude::*;

use crate::stats::{percentile_sorted, Moments};

/// A fitted kernel density estimate.
#[derive(Debug, Clone)]
pub struct Kde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fit with Silverman's rule-of-thumb bandwidth
    /// `0.9·min(σ, IQR/1.34)·n^(−1/5)` (what R's `density()` defaults to,
    /// modulo the `bw.nrd0` details).
    pub fn fit(data: &[f64]) -> Kde {
        assert!(!data.is_empty(), "KDE needs data");
        let m = Moments::from_slice(data);
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let iqr = percentile_sorted(&sorted, 0.75) - percentile_sorted(&sorted, 0.25);
        let sigma = m.std_dev();
        let spread = if iqr > 0.0 { sigma.min(iqr / 1.34) } else { sigma };
        let bw = 0.9 * spread * (data.len() as f64).powf(-0.2);
        Kde::with_bandwidth(data, if bw > 0.0 { bw } else { 1.0 })
    }

    pub fn with_bandwidth(data: &[f64], bandwidth: f64) -> Kde {
        assert!(bandwidth > 0.0);
        Kde { data: data.to_vec(), bandwidth }
    }

    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density at a point.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.data.len() as f64);
        let sum: f64 = self
            .data
            .iter()
            .map(|&xi| {
                let u = (x - xi) / h;
                (-0.5 * u * u).exp()
            })
            .sum();
        norm * sum
    }

    /// Evaluate on a regular grid of `points` spanning the data range
    /// padded by 3 bandwidths (R's `cut = 3`). Returns `(x, density)`
    /// pairs.
    pub fn grid(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        let lo = self.data.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let hi =
            self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 3.0 * self.bandwidth;
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .into_par_iter()
            .map(|i| {
                let x = lo + i as f64 * step;
                (x, self.density(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic, roughly-normal sample via inverse-ish construction.
    fn normalish(n: usize, mean: f64, sd: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                // Sum of 12 uniforms − 6 ≈ N(0, 1).
                let mut acc = 0.0;
                let mut state = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                for _ in 0..12 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    acc += (state >> 11) as f64 / (1u64 << 53) as f64;
                }
                mean + sd * (acc - 6.0)
            })
            .collect()
    }

    #[test]
    fn density_integrates_to_one() {
        let data = normalish(500, 10.0, 2.0);
        let kde = Kde::fit(&data);
        let grid = kde.grid(512);
        let dx = grid[1].0 - grid[0].0;
        let integral: f64 = grid.iter().map(|&(_, d)| d * dx).sum();
        assert!((integral - 1.0).abs() < 0.01, "{integral}");
    }

    #[test]
    fn density_peaks_near_the_mean() {
        let data = normalish(500, 10.0, 2.0);
        let kde = Kde::fit(&data);
        let grid = kde.grid(512);
        let peak = grid.iter().cloned().fold((0.0, 0.0), |a, b| if b.1 > a.1 { b } else { a });
        assert!((peak.0 - 10.0).abs() < 0.7, "peak at {}", peak.0);
    }

    #[test]
    fn bimodal_data_gives_two_modes() {
        let mut data = normalish(400, 0.0, 1.0);
        data.extend(normalish(400, 12.0, 1.0));
        let kde = Kde::fit(&data);
        let grid = kde.grid(600);
        // Count strict local maxima with meaningful height.
        let max_d = grid.iter().map(|&(_, d)| d).fold(0.0, f64::max);
        let modes = grid
            .windows(3)
            .filter(|w| w[1].1 > w[0].1 && w[1].1 > w[2].1 && w[1].1 > 0.2 * max_d)
            .count();
        assert_eq!(modes, 2);
    }

    #[test]
    fn silverman_bandwidth_shrinks_with_n() {
        let small = Kde::fit(&normalish(100, 0.0, 1.0));
        let large = Kde::fit(&normalish(10_000, 0.0, 1.0));
        assert!(large.bandwidth() < small.bandwidth());
    }

    #[test]
    fn constant_data_does_not_panic() {
        let kde = Kde::fit(&[5.0; 50]);
        assert!(kde.density(5.0) > 0.0);
        assert!(kde.bandwidth() > 0.0);
    }

    #[test]
    fn density_is_nonnegative_everywhere() {
        let data = normalish(200, 3.0, 1.5);
        let kde = Kde::fit(&data);
        for (_, d) in kde.grid(256) {
            assert!(d >= 0.0);
        }
    }
}
