//! The persistence (predictability) analysis of §4.3.4.
//!
//! "We can introduce an offset, for example X minutes, and take the
//! difference between the offset values and the original values and look
//! at the standard deviation of this difference. ... If there is no
//! tendency to persist, the standard deviation should be approximately
//! equal to the original standard deviation of the metric." — the paper
//! actually normalizes by the original σ (Table 1 entries run 0→1), i.e.
//! it reports `σ(x(t+Δ) − x(t)) / σ(x)`... with the caveat that for an
//! uncorrelated series that ratio tends to √2; the tabulated values
//! approaching 1.0 at large offsets indicate the σ of the *difference
//! divided by √2* (the per-sample innovation), which is what we compute:
//! `ratio(Δ) = σ(diff) / (√2·σ(x))`, giving exactly 0 for perfect
//! persistence and 1 for none.

use crate::regression::{linear_fit, LinearFit};

/// One offset's persistence measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersistencePoint {
    /// Offset in number of samples.
    pub offset_samples: usize,
    /// Offset in minutes (given the sample spacing).
    pub offset_minutes: f64,
    /// σ(x(t+Δ)−x(t)) / (√2 σ(x)), in `[0, ~1+ε]`.
    pub ratio: f64,
}

/// Compute persistence ratios of an equally-spaced series at the given
/// offsets (in samples). Offsets not smaller than the series length are
/// skipped.
pub fn persistence_ratios(
    series: &[f64],
    sample_minutes: f64,
    offsets: &[usize],
) -> Vec<PersistencePoint> {
    let n = series.len();
    if n < 3 {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return Vec::new();
    }
    let sigma = var.sqrt();
    let mut out = Vec::new();
    for &k in offsets {
        if k == 0 || k >= n {
            continue;
        }
        let diffs: Vec<f64> = series.windows(k + 1).map(|w| w[k] - w[0]).collect();
        let dm = diffs.iter().sum::<f64>() / diffs.len() as f64;
        let dvar = diffs.iter().map(|d| (d - dm).powi(2)).sum::<f64>() / diffs.len() as f64;
        out.push(PersistencePoint {
            offset_samples: k,
            offset_minutes: k as f64 * sample_minutes,
            ratio: dvar.sqrt() / (std::f64::consts::SQRT_2 * sigma),
        });
    }
    out
}

/// Fit the paper's logarithmic model `ratio = a + b·log10(offset_min)`
/// over a set of persistence points (Figure 6 / Table 1's last row).
pub fn log_fit(points: &[PersistencePoint]) -> Option<LinearFit> {
    let x: Vec<f64> = points.iter().map(|p| p.offset_minutes.log10()).collect();
    let y: Vec<f64> = points.iter().map(|p| p.ratio).collect();
    linear_fit(&x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// AR(1) series with coefficient `rho`, deterministic innovations.
    fn ar1(n: usize, rho: f64) -> Vec<f64> {
        let mut x = 0.0f64;
        let mut state = 88172645463325252u64;
        (0..n)
            .map(|_| {
                // xorshift noise in [-1, 1].
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let z = (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
                x = rho * x + z;
                x
            })
            .collect()
    }

    #[test]
    fn white_noise_ratio_is_one_at_all_offsets() {
        let series = ar1(200_000, 0.0);
        let pts = persistence_ratios(&series, 10.0, &[1, 3, 10, 50]);
        for p in pts {
            assert!((p.ratio - 1.0).abs() < 0.02, "offset {}: {}", p.offset_samples, p.ratio);
        }
    }

    #[test]
    fn persistent_series_ratio_grows_from_small_to_one() {
        let series = ar1(200_000, 0.98);
        let pts = persistence_ratios(&series, 10.0, &[1, 10, 100, 1000]);
        assert!(pts[0].ratio < 0.25, "short-offset ratio {}", pts[0].ratio);
        assert!(pts[3].ratio > 0.9, "long-offset ratio {}", pts[3].ratio);
        for w in pts.windows(2) {
            assert!(w[1].ratio > w[0].ratio, "monotone increase");
        }
    }

    #[test]
    fn ar1_ratio_matches_theory() {
        // For AR(1), σ²(diff at k) = 2σ²(1−ρᵏ), so ratio = √(1−ρᵏ).
        let rho: f64 = 0.9;
        let series = ar1(400_000, rho);
        let pts = persistence_ratios(&series, 1.0, &[1, 5, 20]);
        for p in &pts {
            let want = (1.0 - rho.powi(p.offset_samples as i32)).sqrt();
            assert!(
                (p.ratio - want).abs() < 0.02,
                "k={}: got {}, theory {}",
                p.offset_samples,
                p.ratio,
                want
            );
        }
    }

    #[test]
    fn perfect_persistence_gives_zero() {
        let series: Vec<f64> = (0..1000).map(|i| if i < 500 { 1.0 } else { 3.0 }).collect();
        // Constant except one step; tiny offsets see almost no change.
        let pts = persistence_ratios(&series, 10.0, &[1]);
        assert!(pts[0].ratio < 0.1, "{}", pts[0].ratio);
    }

    #[test]
    fn offsets_and_minutes_are_consistent() {
        let series = ar1(1000, 0.5);
        let pts = persistence_ratios(&series, 10.0, &[1, 3, 10, 5000]);
        // 5000 >= n skipped.
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1].offset_minutes, 30.0);
    }

    #[test]
    fn constant_series_yields_nothing() {
        assert!(persistence_ratios(&[2.0; 100], 10.0, &[1, 2]).is_empty());
        assert!(persistence_ratios(&[1.0, 2.0], 10.0, &[1]).is_empty());
    }

    #[test]
    fn log_fit_recovers_logarithmic_shape() {
        // Construct points exactly on ratio = -0.2 + 0.4·log10(min).
        let pts: Vec<PersistencePoint> = [10.0, 30.0, 100.0, 500.0, 1000.0]
            .iter()
            .map(|&m| PersistencePoint {
                offset_samples: (m / 10.0) as usize,
                offset_minutes: m,
                ratio: -0.2 + 0.4 * m.log10(),
            })
            .collect();
        let fit = log_fit(&pts).unwrap();
        assert!((fit.intercept + 0.2).abs() < 1e-9);
        assert!((fit.slope - 0.4).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }
}
