//! Anomaly flagging for jobs and users with aberrant resource profiles.
//!
//! §4.3.1: "Anomalous resource use patterns may be an indicator of
//! undetected bugs in a program. They are also commonly the precursors of
//! job failures." The detector uses the robust modified z-score
//! (median/MAD), which tolerates the heavy-tailed usage distributions
//! HPC workloads actually have.

/// Robust location/scale of a sample: `(median, MAD)`.
pub fn median_mad(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
    dev.sort_by(f64::total_cmp);
    (median, dev[dev.len() / 2])
}

/// Modified z-score `0.6745·(x − median)/MAD` (Iglewicz & Hoaglin).
/// Returns 0 when the MAD is zero (more than half the sample identical).
pub fn modified_z(x: f64, median: f64, mad: f64) -> f64 {
    if mad <= 0.0 {
        return 0.0;
    }
    0.6745 * (x - median) / mad
}

/// One flagged entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Outlier<K> {
    pub key: K,
    pub value: f64,
    pub score: f64,
}

/// Flag entities whose value's |modified z| exceeds `threshold`
/// (conventionally 3.5). Results are sorted by descending |score|.
pub fn flag_outliers<K: Clone>(
    entities: impl IntoIterator<Item = (K, f64)>,
    threshold: f64,
) -> Vec<Outlier<K>> {
    let items: Vec<(K, f64)> = entities.into_iter().collect();
    if items.len() < 4 {
        return Vec::new();
    }
    let values: Vec<f64> = items.iter().map(|(_, v)| *v).collect();
    let (median, mad) = median_mad(&values);
    let mut out: Vec<Outlier<K>> = items
        .into_iter()
        .filter_map(|(key, value)| {
            let score = modified_z(value, median, mad);
            (score.abs() > threshold).then(|| Outlier { key, value, score })
        })
        .collect();
    out.sort_by(|a, b| b.score.abs().total_cmp(&a.score.abs()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_mad_basics() {
        let (med, mad) = median_mad(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(med, 3.0);
        assert_eq!(mad, 1.0);
    }

    #[test]
    fn obvious_outlier_is_flagged_first() {
        let data: Vec<(u32, f64)> =
            (0..50).map(|i| (i, 10.0 + (i % 5) as f64 * 0.1)).chain([(99, 50.0)]).collect();
        let flags = flag_outliers(data, 3.5);
        assert!(!flags.is_empty());
        assert_eq!(flags[0].key, 99);
        assert!(flags[0].score > 3.5);
    }

    #[test]
    fn clean_data_produces_no_flags() {
        let data: Vec<(u32, f64)> = (0..50).map(|i| (i, 5.0 + (i % 7) as f64 * 0.2)).collect();
        assert!(flag_outliers(data, 3.5).is_empty());
    }

    #[test]
    fn low_outliers_also_flagged() {
        let data: Vec<(u32, f64)> =
            (0..40).map(|i| (i, 100.0 + (i % 3) as f64)).chain([(7_000, 1.0)]).collect();
        let flags = flag_outliers(data, 3.5);
        assert_eq!(flags[0].key, 7_000);
        assert!(flags[0].score < -3.5);
    }

    #[test]
    fn tiny_samples_are_not_judged() {
        assert!(flag_outliers(vec![(1, 1.0), (2, 100.0)], 3.5).is_empty());
    }

    #[test]
    fn degenerate_mad_means_no_flags() {
        // More than half identical -> MAD 0 -> nothing flagged.
        let data: Vec<(u32, f64)> =
            (0..10).map(|i| (i, 5.0)).chain([(99, 1e9)]).collect();
        assert!(flag_outliers(data, 3.5).is_empty());
    }
}
