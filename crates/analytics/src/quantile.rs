//! Streaming quantile estimation (P² algorithm, Jain & Chlamtac 1985).
//!
//! The warehouse summarises millions of samples; reports want tail
//! quantiles (p95/p99 memory, wait-time percentiles) without buffering
//! everything. P² maintains five markers per tracked quantile in O(1)
//! memory with good accuracy on smooth distributions.

/// One streaming quantile estimator.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based counts).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments.
    dn: [f64; 5],
    count: usize,
    /// First five observations, before the markers initialise.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Track the `p`-quantile, `0 < p < 1`.
    pub fn new(p: f64) -> P2Quantile {
        assert!(p > 0.0 && p < 1.0);
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.warmup.len() < 5 {
            self.warmup.push(x);
            if self.warmup.len() == 5 {
                self.warmup.sort_by(f64::total_cmp);
                for (qi, &w) in self.q.iter_mut().zip(&self.warmup) {
                    *qi = w;
                }
            }
            return;
        }
        // Find the cell k such that q[k] <= x < q[k+1].
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            (0..4).find(|&i| x < self.q[i + 1]).unwrap_or(3)
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_q = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.q[i] = new_q;
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate. `None` before any data; exact for ≤5 samples.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.warmup.len() < 5 {
            // Exact small-sample quantile.
            let mut v = self.warmup.clone();
            v.sort_by(f64::total_cmp);
            let idx = ((self.p * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
            return Some(v[idx]);
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    fn exact_quantile(xs: &[f64], p: f64) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(f64::total_cmp);
        v[((p * v.len() as f64) as usize).min(v.len() - 1)]
    }

    /// Deterministic pseudo-uniform values in [0, 1).
    fn pseudo_uniform(i: usize) -> f64 {
        let h = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn median_of_uniform_stream() {
        let xs = stream(50_000, pseudo_uniform);
        let mut est = P2Quantile::new(0.5);
        for &x in &xs {
            est.push(x);
        }
        let got = est.estimate().unwrap();
        assert!((got - 0.5).abs() < 0.01, "{got}");
    }

    #[test]
    fn p99_of_skewed_stream() {
        // Exponential-ish via inverse transform.
        let xs = stream(50_000, |i| -(1.0 - pseudo_uniform(i)).ln());
        let mut est = P2Quantile::new(0.99);
        for &x in &xs {
            est.push(x);
        }
        let got = est.estimate().unwrap();
        let want = exact_quantile(&xs, 0.99);
        assert!((got / want - 1.0).abs() < 0.05, "{got} vs {want}");
    }

    #[test]
    fn small_samples_are_exact() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        for x in [5.0, 1.0, 3.0] {
            est.push(x);
        }
        assert_eq!(est.estimate(), Some(3.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn monotone_stream_tracks_the_right_tail() {
        let mut est = P2Quantile::new(0.9);
        for i in 0..10_000 {
            est.push(i as f64);
        }
        let got = est.estimate().unwrap();
        assert!((got / 9000.0 - 1.0).abs() < 0.05, "{got}");
    }

    #[test]
    fn constant_stream_returns_the_constant() {
        let mut est = P2Quantile::new(0.75);
        for _ in 0..1000 {
            est.push(7.5);
        }
        assert_eq!(est.estimate(), Some(7.5));
    }

    #[test]
    fn extremes_update_the_outer_markers() {
        let mut est = P2Quantile::new(0.5);
        for &x in &[10.0, 20.0, 30.0, 40.0, 50.0, 5.0, 55.0] {
            est.push(x);
        }
        // Estimator survives out-of-range pushes and stays in range.
        let got = est.estimate().unwrap();
        assert!((5.0..=55.0).contains(&got));
    }
}
