//! Statistical process control for performance auditing.
//!
//! XDMoD's application-kernel framework (the paper's reference \[2\],
//! Furlani et al., "Performance metrics and auditing framework using
//! application kernels") runs fixed benchmark kernels on a cadence and
//! flags when a machine's delivered performance *changes*. The detectors
//! here are the classical ones that framework uses: Shewhart control
//! limits for gross excursions and a two-sided CUSUM for slow drifts.

/// Baseline statistics learned from an in-control window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    pub mean: f64,
    pub sd: f64,
    pub n: usize,
}

impl Baseline {
    /// Learn a baseline from the first `window` points of a series.
    /// Returns `None` when there are too few points or no variance.
    pub fn learn(series: &[f64], window: usize) -> Option<Baseline> {
        if series.len() < window || window < 4 {
            return None;
        }
        let w = &series[..window];
        let mean = w.iter().sum::<f64>() / window as f64;
        let var = w.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (window - 1) as f64;
        if var <= 0.0 {
            return None;
        }
        Some(Baseline { mean, sd: var.sqrt(), n: window })
    }

    pub fn z(&self, x: f64) -> f64 {
        (x - self.mean) / self.sd
    }
}

/// A detected change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Index into the series where the alarm fired.
    pub at: usize,
    /// Positive = the statistic drifted up, negative = down.
    pub direction: f64,
    /// The accumulated CUSUM (or z for Shewhart) at the alarm.
    pub statistic: f64,
}

/// Two-sided CUSUM over a series with a learned baseline.
///
/// `k` is the allowance (slack) in σ units — drifts smaller than `k·σ`
/// are ignored; `h` is the decision threshold in σ units. Standard
/// choices `k = 0.5`, `h = 5` detect ~1σ shifts within a handful of
/// samples at a very low false-alarm rate.
pub fn cusum(series: &[f64], baseline: Baseline, k: f64, h: f64) -> Option<Detection> {
    let mut s_hi = 0.0f64;
    let mut s_lo = 0.0f64;
    for (i, &x) in series.iter().enumerate().skip(baseline.n) {
        let z = baseline.z(x);
        s_hi = (s_hi + z - k).max(0.0);
        s_lo = (s_lo + (-z) - k).max(0.0);
        if s_hi > h {
            return Some(Detection { at: i, direction: 1.0, statistic: s_hi });
        }
        if s_lo > h {
            return Some(Detection { at: i, direction: -1.0, statistic: s_lo });
        }
    }
    None
}

/// Shewhart 3σ rule: first point beyond `limit_sigma` after the baseline
/// window.
pub fn shewhart(series: &[f64], baseline: Baseline, limit_sigma: f64) -> Option<Detection> {
    for (i, &x) in series.iter().enumerate().skip(baseline.n) {
        let z = baseline.z(x);
        if z.abs() > limit_sigma {
            return Some(Detection { at: i, direction: z.signum(), statistic: z });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic noise in ±0.5.
    fn noise(i: usize) -> f64 {
        (((i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15) >> 40) as f64
            / (1u64 << 24) as f64)
            - 0.5
    }

    fn series_with_shift(n: usize, shift_at: usize, shift: f64) -> Vec<f64> {
        (0..n)
            .map(|i| 100.0 + noise(i) + if i >= shift_at { shift } else { 0.0 })
            .collect()
    }

    #[test]
    fn baseline_learning() {
        let s = series_with_shift(50, 100, 0.0);
        let b = Baseline::learn(&s, 20).unwrap();
        assert!((b.mean - 100.0).abs() < 0.2);
        assert!(b.sd > 0.0 && b.sd < 1.0);
        assert!(Baseline::learn(&s, 2).is_none());
        assert!(Baseline::learn(&[1.0; 30], 10).is_none(), "no variance");
    }

    #[test]
    fn cusum_detects_downward_drift_quickly() {
        // A 15% performance loss = huge in σ units here.
        let s = series_with_shift(60, 30, -15.0);
        let b = Baseline::learn(&s, 20).unwrap();
        let d = cusum(&s, b, 0.5, 5.0).expect("detected");
        assert!(d.direction < 0.0);
        assert!(d.at >= 30 && d.at <= 33, "alarm at {}", d.at);
    }

    #[test]
    fn cusum_detects_subtle_drift_eventually() {
        let s = series_with_shift(200, 60, -0.35); // ~1.2 sigma
        let b = Baseline::learn(&s, 40).unwrap();
        let d = cusum(&s, b, 0.5, 5.0).expect("detected");
        assert!(d.at > 60 && d.at < 90, "alarm at {}", d.at);
    }

    #[test]
    fn cusum_stays_quiet_in_control() {
        let s = series_with_shift(300, 1000, 0.0);
        let b = Baseline::learn(&s, 40).unwrap();
        assert_eq!(cusum(&s, b, 0.5, 5.0), None);
    }

    #[test]
    fn shewhart_catches_gross_excursions_only() {
        let mut s = series_with_shift(80, 1000, 0.0);
        s[50] = 80.0; // one broken run
        let b = Baseline::learn(&s, 20).unwrap();
        let d = shewhart(&s, b, 3.0).expect("detected");
        assert_eq!(d.at, 50);
        assert!(d.direction < 0.0);
        // A mild drift stays under the 3σ radar (that's CUSUM's job).
        let s = series_with_shift(80, 40, -0.3);
        let b = Baseline::learn(&s, 20).unwrap();
        assert_eq!(shewhart(&s, b, 3.0), None);
    }

    #[test]
    fn upward_shifts_detected_with_positive_direction() {
        let s = series_with_shift(60, 30, 4.0);
        let b = Baseline::learn(&s, 20).unwrap();
        let d = cusum(&s, b, 0.5, 5.0).unwrap();
        assert!(d.direction > 0.0);
    }
}
