//! `obs` — the suite's dependency-free self-observability layer.
//!
//! A process-wide telemetry registry of atomic counters, gauges and
//! fixed-bucket latency histograms, plus a bounded ring-buffer event /
//! slow-query log. The hot path is lock-free: instrumented code holds
//! cloned [`Counter`]/[`Gauge`]/[`Histogram`] handles (an `Arc` around
//! the atomic cells) and never touches the registry lock after
//! registration. Snapshots iterate `BTreeMap`s, so rendering order is
//! deterministic (suplint R2) and [`render_prometheus`] output is
//! byte-stable for a given set of observations.
//!
//! Metric naming scheme: `snake_case` with a layer prefix
//! (`pipeline_`, `tsdb_`, `serve_`, `warehouse_`), `_total` suffix for
//! counters, `_micros` for latency histograms. Label sets are encoded
//! into the registered name itself — `serve_requests_total{endpoint="v1_series"}`
//! — which keeps the registry a flat string map while still rendering
//! as real Prometheus labels.
//!
//! See DESIGN.md § "Self-observability" for the overhead budget and
//! the full metric catalogue.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Histogram bucket upper bounds: a 1-2-5 ladder from 1 µs to 1000 s.
/// Every histogram in the process shares this ladder, which is what
/// makes [`HistSnapshot::merge`] element-wise (and thus associative
/// and commutative) by construction.
pub const BUCKET_BOUNDS: [u64; 28] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
];

const NBUCKETS: usize = BUCKET_BOUNDS.len();

/// Recover from a poisoned lock instead of propagating the panic: the
/// protected state (telemetry cells, ring buffer) stays structurally
/// valid even if a holder panicked mid-update.
macro_rules! unpoison {
    ($guard:expr) => {
        $guard.unwrap_or_else(|e| e.into_inner())
    };
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Monotonically increasing event tally. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, open connections, bytes
/// resident). Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; NBUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistCells {
    fn default() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Fixed-bucket latency histogram over [`BUCKET_BOUNDS`]. Values are
/// dimensionless `u64`s; by convention the suite records microseconds.
/// Cloning shares the cells.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    pub fn observe(&self, v: u64) {
        let idx = BUCKET_BOUNDS.partition_point(|b| *b < v);
        match self.cells.buckets.get(idx) {
            Some(b) => b.fetch_add(1, Ordering::Relaxed),
            None => self.cells.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record an elapsed [`Timer`] in microseconds.
    pub fn observe_timer(&self, t: Timer) {
        self.observe(t.elapsed_micros());
    }

    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.cells.buckets[i].load(Ordering::Relaxed)),
            overflow: self.cells.overflow.load(Ordering::Relaxed),
            count: self.cells.count.load(Ordering::Relaxed),
            sum: self.cells.sum.load(Ordering::Relaxed),
        }
    }
}

/// Wall-clock stopwatch for feeding histograms.
#[derive(Clone, Copy, Debug)]
pub struct Timer(Instant);

impl Timer {
    pub fn start() -> Timer {
        Timer(Instant::now())
    }

    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram. Per-bucket (non-cumulative)
/// counts; Prometheus rendering derives the cumulative form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; NBUCKETS],
    pub overflow: u64,
    pub count: u64,
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { buckets: [0; NBUCKETS], overflow: 0, count: 0, sum: 0 }
    }
}

impl HistSnapshot {
    /// Element-wise sum — the merge of two disjoint observation sets.
    /// Associative and commutative because every histogram shares
    /// [`BUCKET_BOUNDS`] and all fields add independently (wrapping on
    /// the astronomically unlikely overflow, so merge never panics).
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| {
                self.buckets[i].wrapping_add(other.buckets[i])
            }),
            overflow: self.overflow.wrapping_add(other.overflow),
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
        }
    }
}

/// One entry in the bounded event / slow-query log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Process-wide monotonically increasing sequence number; survives
    /// ring-buffer eviction, so gaps reveal dropped events.
    pub seq: u64,
    /// Machine-readable category: `"slow_query"`, `"deprecation"`, …
    pub kind: String,
    /// Human-readable detail line.
    pub detail: String,
}

/// Point-in-time copy of the whole registry, in deterministic
/// (lexicographic) metric order.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistSnapshot)>,
    /// Oldest-first surviving events.
    pub events: Vec<Event>,
    /// Events evicted from the ring buffer since process start.
    pub events_dropped: u64,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

// ---------------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------------

/// Bounded ring buffer of [`Event`]s. Push is O(1), never panics, and
/// evicts the oldest entry once `capacity` is reached (a capacity of 0
/// records nothing but still counts sequence numbers and drops).
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<VecDeque<Event>>,
}

impl EventLog {
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            capacity,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    pub fn push(&self, kind: &str, detail: impl Into<String>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ev = Event { seq, kind: to_owned_kind(kind), detail: detail.into() };
        let mut buf = unpoison!(self.buf.lock());
        while buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(ev);
    }

    /// Oldest-first copy of the surviving entries.
    pub fn entries(&self) -> Vec<Event> {
        unpoison!(self.buf.lock()).iter().cloned().collect()
    }

    /// The `n` most recent entries, oldest-first.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let buf = unpoison!(self.buf.lock());
        let skip = buf.len().saturating_sub(n);
        buf.iter().skip(skip).cloned().collect()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        unpoison!(self.buf.lock()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn to_owned_kind(kind: &str) -> String {
    kind.to_string()
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Shared handle to a registry — what gets threaded through
/// `PipelineOptions` / `ServeOptions` / `Tsdb::open_with_obs`.
pub type ObsHandle = Arc<ObsRegistry>;

/// Process-wide telemetry registry. Registration takes a write lock
/// once per metric name; after that, instrumented code operates on the
/// returned handles without touching the registry again.
#[derive(Debug)]
pub struct ObsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    events: EventLog,
}

impl Default for ObsRegistry {
    fn default() -> Self {
        ObsRegistry::new()
    }
}

impl ObsRegistry {
    pub fn new() -> ObsRegistry {
        ObsRegistry::with_event_capacity(1024)
    }

    pub fn with_event_capacity(capacity: usize) -> ObsRegistry {
        ObsRegistry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            events: EventLog::new(capacity),
        }
    }

    /// Register (or look up) a counter. Idempotent: the same name
    /// always resolves to the same underlying cell.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = unpoison!(self.counters.read()).get(name) {
            return c.clone();
        }
        unpoison!(self.counters.write()).entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = unpoison!(self.gauges.read()).get(name) {
            return g.clone();
        }
        unpoison!(self.gauges.write()).entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = unpoison!(self.histograms.read()).get(name) {
            return h.clone();
        }
        unpoison!(self.histograms.write()).entry(name.to_string()).or_default().clone()
    }

    /// The event / slow-query ring buffer.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Append an event; convenience for `events().push(..)`.
    pub fn event(&self, kind: &str, detail: impl Into<String>) {
        self.events.push(kind, detail);
    }

    /// Deterministic point-in-time copy: metrics in lexicographic
    /// order, events oldest-first.
    pub fn snapshot(&self) -> Snapshot {
        let counters = unpoison!(self.counters.read())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = unpoison!(self.gauges.read())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = unpoison!(self.histograms.read())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            events: self.events.entries(),
            events_dropped: self.events.dropped(),
        }
    }
}

/// The process-wide default registry. Layers fall back to this when no
/// explicit [`ObsHandle`] is threaded in; tests that need isolation
/// construct their own `ObsRegistry` instead.
pub fn global() -> ObsHandle {
    static GLOBAL: OnceLock<ObsHandle> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(ObsRegistry::new())).clone()
}

// ---------------------------------------------------------------------------
// Prometheus text rendering
// ---------------------------------------------------------------------------

/// Split `name{labels}` into the base name and the brace-less label
/// body (if any).
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.strip_suffix('}').unwrap_or(rest))),
        None => (name, None),
    }
}

fn label_line(out: &mut String, base: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) {
    out.push_str(base);
    out.push_str(suffix);
    match (labels, extra) {
        (None, None) => {}
        (l, e) => {
            out.push('{');
            if let Some(l) = l {
                out.push_str(l);
                if e.is_some() {
                    out.push(',');
                }
            }
            if let Some(e) = e {
                out.push_str(e);
            }
            out.push('}');
        }
    }
    out.push(' ');
}

/// Render a [`Snapshot`] in the Prometheus text exposition format.
/// Output is byte-deterministic for a given snapshot: metric order is
/// the snapshot's (lexicographic) order and every number is an
/// integer. `# TYPE` headers are emitted once per base metric name.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_type: Option<String> = None;
    let mut type_header = |out: &mut String, base: &str, kind: &str| {
        if last_type.as_deref() != Some(base) {
            out.push_str("# TYPE ");
            out.push_str(base);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_type = Some(base.to_string());
        }
    };

    for (name, v) in &snap.counters {
        let (base, labels) = split_labels(name);
        type_header(&mut out, base, "counter");
        label_line(&mut out, base, "", labels, None);
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for (name, v) in &snap.gauges {
        let (base, labels) = split_labels(name);
        type_header(&mut out, base, "gauge");
        label_line(&mut out, base, "", labels, None);
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for (name, h) in &snap.histograms {
        let (base, labels) = split_labels(name);
        type_header(&mut out, base, "histogram");
        let mut cum = 0u64;
        for (i, b) in h.buckets.iter().enumerate() {
            cum = cum.wrapping_add(*b);
            let le = format!("le=\"{}\"", BUCKET_BOUNDS[i]);
            label_line(&mut out, base, "_bucket", labels, Some(&le));
            out.push_str(&cum.to_string());
            out.push('\n');
        }
        label_line(&mut out, base, "_bucket", labels, Some("le=\"+Inf\""));
        out.push_str(&h.count.to_string());
        out.push('\n');
        label_line(&mut out, base, "_sum", labels, None);
        out.push_str(&h.sum.to_string());
        out.push('\n');
        label_line(&mut out, base, "_count", labels, None);
        out.push_str(&h.count.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = ObsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x_total").get(), 3);
        assert_eq!(reg.snapshot().counter("x_total"), Some(3));
    }

    #[test]
    fn gauge_set_add_sub() {
        let reg = ObsRegistry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        assert_eq!(reg.snapshot().gauge("depth"), Some(12));
    }

    #[test]
    fn histogram_bucket_edges() {
        let h = Histogram::default();
        h.observe(0); // below first bound → bucket 0
        h.observe(1); // == bound 1 → bucket 0 (le semantics)
        h.observe(2); // bucket 1
        h.observe(1_000_000_000); // last bucket
        h.observe(1_000_000_001); // overflow
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[NBUCKETS - 1], 1);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2_000_000_004);
    }

    #[test]
    fn snapshot_order_is_lexicographic() {
        let reg = ObsRegistry::new();
        reg.counter("zeta_total").inc();
        reg.counter("alpha_total").inc();
        reg.counter("mid_total").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha_total", "mid_total", "zeta_total"]);
    }

    #[test]
    fn event_log_bounded_overflow() {
        let log = EventLog::new(3);
        for i in 0..10 {
            log.push("k", format!("e{i}"));
        }
        let got = log.entries();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].detail, "e7");
        assert_eq!(got[2].detail, "e9");
        assert_eq!(got[2].seq, 9);
        assert_eq!(log.dropped(), 7);
    }

    #[test]
    fn event_log_zero_capacity_never_stores() {
        let log = EventLog::new(0);
        log.push("k", "x");
        log.push("k", "y");
        assert!(log.entries().is_empty());
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn recent_returns_tail() {
        let log = EventLog::new(8);
        for i in 0..5 {
            log.push("k", format!("e{i}"));
        }
        let tail = log.recent(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].detail, "e3");
        assert_eq!(tail[1].detail, "e4");
    }

    #[test]
    fn merge_is_elementwise() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.observe(5);
        a.observe(100);
        b.observe(5);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 110);
        let both = Histogram::default();
        both.observe(5);
        both.observe(100);
        both.observe(5);
        assert_eq!(m, both.snapshot());
    }

    #[test]
    fn prometheus_render_golden() {
        let reg = ObsRegistry::new();
        reg.counter("req_total{endpoint=\"a\"}").add(2);
        reg.counter("req_total{endpoint=\"b\"}").inc();
        reg.gauge("conns").set(4);
        reg.histogram("lat_micros").observe(3);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.starts_with("# TYPE req_total counter\n"));
        assert!(text.contains("req_total{endpoint=\"a\"} 2\n"));
        assert!(text.contains("req_total{endpoint=\"b\"} 1\n"));
        // TYPE header emitted once for the shared base name.
        assert_eq!(text.matches("# TYPE req_total").count(), 1);
        assert!(text.contains("# TYPE conns gauge\nconns 4\n"));
        assert!(text.contains("lat_micros_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_micros_sum 3\n"));
        assert!(text.contains("lat_micros_count 1\n"));
    }

    #[test]
    fn prometheus_render_histogram_labels_merge_with_le() {
        let reg = ObsRegistry::new();
        reg.histogram("lat_micros{endpoint=\"q\"}").observe(2);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("lat_micros_bucket{endpoint=\"q\",le=\"2\"} 1\n"));
        assert!(text.contains("lat_micros_sum{endpoint=\"q\"} 2\n"));
        assert!(text.contains("lat_micros_count{endpoint=\"q\"} 1\n"));
    }

    #[test]
    fn render_is_byte_deterministic() {
        let build = || {
            let reg = ObsRegistry::new();
            reg.counter("b_total").add(7);
            reg.counter("a_total").add(1);
            reg.histogram("h_micros").observe(42);
            reg.gauge("g").set(-3);
            render_prometheus(&reg.snapshot())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn concurrent_increments_all_land() {
        let reg = Arc::new(ObsRegistry::new());
        let mut joins = Vec::new();
        for _ in 0..8 {
            let c = reg.counter("c_total");
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for j in joins {
            let _ = j.join();
        }
        assert_eq!(reg.counter("c_total").get(), 8000);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global();
        a.counter("obs_selftest_total").inc();
        assert!(global().snapshot().counter("obs_selftest_total").is_some());
    }
}
