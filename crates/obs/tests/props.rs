//! Property tests for the telemetry core. The nightly CI job reruns
//! these with `PROPTEST_CASES=1024`.

use proptest::prelude::*;
use supremm_obs::{render_prometheus, EventLog, HistSnapshot, Histogram, ObsRegistry};

/// Build a histogram snapshot from raw observations.
fn hist_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

fn assert_hist_eq(a: &HistSnapshot, b: &HistSnapshot) {
    assert_eq!(a.buckets, b.buckets);
    assert_eq!(a.overflow, b.overflow);
    assert_eq!(a.count, b.count);
    assert_eq!(a.sum, b.sum);
}

proptest! {
    /// merge is commutative and associative, and the merge of the parts
    /// equals one histogram fed the concatenation.
    #[test]
    fn histogram_merge_is_commutative_associative(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
        zs in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        assert_hist_eq(&a.merge(&b), &b.merge(&a));
        assert_hist_eq(&a.merge(&b).merge(&c), &a.merge(&b.merge(&c)));
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        assert_hist_eq(&a.merge(&b).merge(&c), &hist_of(&all));
        // Identity: merging the empty histogram changes nothing.
        assert_hist_eq(&a.merge(&HistSnapshot::default()), &a);
    }

    /// Concurrent increments never make a counter regress, and the final
    /// value is exactly the sum of what every thread contributed.
    #[test]
    fn counters_never_regress_under_concurrency(
        per_thread in proptest::collection::vec(1u64..200, 1..6),
    ) {
        let reg = ObsRegistry::new();
        let c = reg.counter("race_total");
        std::thread::scope(|scope| {
            for &n in &per_thread {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..n {
                        c.inc();
                    }
                });
            }
            // Reader: the visible value only ever grows.
            let c = c.clone();
            scope.spawn(move || {
                let mut last = 0;
                for _ in 0..500 {
                    let now = c.get();
                    assert!(now >= last, "counter regressed {last} -> {now}");
                    last = now;
                }
            });
        });
        prop_assert_eq!(c.get(), per_thread.iter().sum::<u64>());
    }

    /// Snapshot rendering is byte-deterministic: the same metric state
    /// renders identically no matter the registration order.
    #[test]
    fn render_is_byte_deterministic(
        metrics in proptest::collection::vec(("[a-z_]{1,12}", 0u64..1000), 1..16),
        seed in any::<u64>(),
    ) {
        let forward = ObsRegistry::new();
        for (name, v) in &metrics {
            forward.counter(name).add(*v);
            forward.histogram(&format!("{name}_micros")).observe(*v);
        }
        // Same state, different insertion order (a seeded rotation).
        let rotated = ObsRegistry::new();
        let pivot = (seed as usize) % metrics.len();
        for (name, v) in metrics[pivot..].iter().chain(&metrics[..pivot]) {
            rotated.histogram(&format!("{name}_micros")).observe(*v);
            rotated.counter(name).add(*v);
        }
        let a = render_prometheus(&forward.snapshot());
        let b = render_prometheus(&rotated.snapshot());
        prop_assert_eq!(a.into_bytes(), b.into_bytes());
        // And re-rendering the same registry is stable.
        prop_assert_eq!(
            render_prometheus(&forward.snapshot()),
            render_prometheus(&forward.snapshot())
        );
    }

    /// The ring buffer never panics for any capacity and overflow
    /// pattern, keeps at most `capacity` events, and accounts for every
    /// push as either retained or dropped.
    #[test]
    fn ring_buffer_never_panics(
        capacity in 0usize..40,
        pushes in 0usize..200,
        drain_at in proptest::collection::vec(0usize..200, 0..4),
    ) {
        let log = EventLog::new(capacity);
        for i in 0..pushes {
            log.push("k", format!("event {i}"));
            if drain_at.contains(&i) {
                // Reading mid-stream must not disturb accounting.
                let _ = log.recent(capacity / 2);
                let _ = log.entries();
            }
        }
        let kept = log.entries();
        prop_assert!(kept.len() <= capacity);
        prop_assert_eq!(kept.len() as u64 + log.dropped(), pushes as u64);
        // Survivors are the newest pushes, oldest-first, seq contiguous.
        for pair in kept.windows(2) {
            prop_assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
        if let Some(last) = kept.last() {
            prop_assert_eq!(last.seq as usize, pushes - 1);
        }
    }
}
