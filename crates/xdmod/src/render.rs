//! Dataset renderers: aligned text tables, CSV, JSON chart series.

use crate::framework::Dataset;

/// Render rows as an aligned two-column text table with a title.
pub fn to_ascii_table(title: &str, ds: &Dataset, value_header: &str) -> String {
    let label_w = ds
        .rows
        .iter()
        .map(|(l, _)| l.len())
        .chain([8])
        .max()
        .unwrap_or(8)
        .max(title.len().min(40));
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<label_w$}  {:>14}\n", "group", value_header));
    out.push_str(&format!("{}  {}\n", "-".repeat(label_w), "-".repeat(14)));
    for (label, value) in &ds.rows {
        out.push_str(&format!("{label:<label_w$}  {value:>14.4}\n"));
    }
    out
}

/// Render rows as CSV with a header.
pub fn to_csv(ds: &Dataset, value_header: &str) -> String {
    let mut out = format!("group,{value_header}\n");
    for (label, value) in &ds.rows {
        // Quote labels containing separators.
        if label.contains(',') || label.contains('"') {
            let escaped = label.replace('"', "\"\"");
            out.push_str(&format!("\"{escaped}\",{value}\n"));
        } else {
            out.push_str(&format!("{label},{value}\n"));
        }
    }
    out
}

/// Render an `(x, y)` chart series as JSON (what the XDMoD web front end
/// consumes).
pub fn to_json_series(name: &str, points: &[(f64, f64)]) -> String {
    use supremm_metrics::json::{obj, Value};
    let series: Vec<Value> =
        points.iter().map(|&(x, y)| Value::Array(vec![x.into(), y.into()])).collect();
    obj([("name", name.into()), ("data", Value::Array(series))]).to_string()
}

/// Sparkline-ish text rendering of a series (for terminal reports):
/// scales values into eight block characters.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    if values.is_empty() || !max.is_finite() || !min.is_finite() {
        return String::new();
    }
    let span = (max - min).max(1e-30);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BLOCKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset {
            rows: vec![("NAMD".into(), 320.5), ("AMBER, v12".into(), 50.0)],
        }
    }

    #[test]
    fn ascii_table_contains_rows_and_alignment() {
        let t = to_ascii_table("Node hours by app", &ds(), "node_hours");
        assert!(t.contains("Node hours by app"));
        assert!(t.contains("NAMD"));
        assert!(t.contains("320.5000"));
        // Header separator present.
        assert!(t.contains("----"));
    }

    #[test]
    fn csv_quotes_labels_with_commas() {
        let c = to_csv(&ds(), "node_hours");
        assert!(c.starts_with("group,node_hours\n"));
        assert!(c.contains("\"AMBER, v12\",50\n"));
        assert!(c.contains("NAMD,320.5\n"));
    }

    #[test]
    fn json_series_is_valid_json() {
        let j = to_json_series("flops", &[(0.0, 1.0), (600.0, 2.5)]);
        let v = supremm_metrics::json::Value::parse(&j).unwrap();
        assert_eq!(v["name"], "flops");
        assert_eq!(v["data"][1][1], 2.5);
    }

    #[test]
    fn sparkline_spans_blocks() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_constant_series_is_flat() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s, "▁▁▁");
    }
}
