//! Preprogrammed stakeholder reports — the datasets behind each figure.
//!
//! §4.3 walks through six stakeholder classes; each function here
//! regenerates one of the analyses the paper illustrates, against a
//! warehouse built from any (real or simulated) machine:
//!
//! | paper artifact | function |
//! |---|---|
//! | Fig 2 (heavy-user profiles) | [`user_profiles`] |
//! | Fig 3 (MD application profiles) | [`app_profiles`] |
//! | Fig 4 (node-hours vs wasted) | [`wasted_hours`] |
//! | Fig 5 (circled anomalous user) | [`anomalous_user_profile`] |
//! | Table 1 + Fig 6 (persistence) | [`persistence_report`] |
//! | Fig 7a (memory/core by science) | [`mem_per_core_by_science`] |
//! | Fig 7b (CPU hours breakdown) | [`cpu_hours_breakdown`] |
//! | Fig 7c (Lustre throughput) | [`lustre_throughput`] |
//! | §4.2 (correlations / metric set) | [`metric_correlation_report`] |

use supremm_analytics::efficiency::{ScatterPoint, UserUsage, WastedHoursReport};
use supremm_analytics::persistence::{log_fit, persistence_ratios, PersistencePoint};
use supremm_analytics::profile::{normalize, Profile};
use supremm_analytics::regression::LinearFit;
use supremm_metrics::{ExtendedMetric, KeyMetric, UserId};
use supremm_warehouse::store::weighted_metric_mean;
use supremm_warehouse::{JobTable, SystemSeries};

use crate::framework::Dataset;

/// Figure 2: normalized 8-metric profiles of the `n` heaviest users by
/// node-hours.
pub fn user_profiles(table: &JobTable, n: usize) -> Vec<Profile> {
    let global = table.global_aggregate().means;
    table
        .top_by_node_hours(|j| j.user, n)
        .into_iter()
        .map(|(user, node_hours)| {
            let jobs: Vec<_> =
                table.jobs().iter().filter(|j| j.user == user).collect();
            let agg = JobTable::aggregate(jobs);
            Profile {
                label: user.to_string(),
                values: normalize(&agg.means, &global),
                node_hours,
            }
        })
        .collect()
}

/// Figure 3: normalized profiles of named applications (run once per
/// machine and compare).
pub fn app_profiles(table: &JobTable, apps: &[&str]) -> Vec<Profile> {
    let global = table.global_aggregate().means;
    apps.iter()
        .map(|&name| {
            let jobs: Vec<_> = table
                .jobs()
                .iter()
                .filter(|j| j.app.as_deref() == Some(name))
                .collect();
            let agg = JobTable::aggregate(jobs);
            Profile {
                label: name.to_string(),
                values: normalize(&agg.means, &global),
                node_hours: agg.node_hours,
            }
        })
        .collect()
}

/// Figure 4: per-user node-hours vs wasted node-hours, plus the machine
/// average-efficiency line.
pub fn wasted_hours(table: &JobTable) -> WastedHoursReport<UserId> {
    let mut per_user: std::collections::BTreeMap<UserId, UserUsage> = Default::default();
    for j in table.jobs() {
        per_user
            .entry(j.user)
            .or_default()
            .push_job(j.node_hours(), j.metrics.get(KeyMetric::CpuIdle));
    }
    WastedHoursReport::build(
        per_user.into_iter().map(|(key, usage)| ScatterPoint { key, usage }).collect(),
    )
}

/// Figure 5: the profile of the "circled" user — heaviest consumer among
/// those idling ≥ `idle_threshold` of their node-hours. Returns the user,
/// their idle fraction, and their normalized profile.
pub fn anomalous_user_profile(
    table: &JobTable,
    idle_threshold: f64,
) -> Option<(UserId, f64, Profile)> {
    let report = wasted_hours(table);
    let global = table.global_aggregate().means;
    let profile_for = |point: &ScatterPoint<UserId>| {
        let jobs: Vec<_> = table.jobs().iter().filter(|j| j.user == point.key).collect();
        let agg = JobTable::aggregate(jobs);
        Profile {
            label: point.key.to_string(),
            values: normalize(&agg.means, &global),
            node_hours: point.usage.node_hours,
        }
    };
    // The circled user is defined by shape — massive idle, everything
    // else unremarkable — not by consumption alone. Walk extreme-idle
    // candidates heaviest-first and take the first whose non-idle
    // ratios sit in the normal band; a simulated workload can hand the
    // single heaviest offender a busy IO band, which is a different
    // phenomenon than the paper circles. Fall back to the heaviest if
    // no candidate has the clean shape.
    let mut candidates: Vec<&ScatterPoint<UserId>> = report
        .points
        .iter()
        .filter(|p| p.usage.idle_frac() >= idle_threshold)
        .collect();
    candidates.sort_by(|a, b| {
        b.usage.node_hours.total_cmp(&a.usage.node_hours).then(a.key.cmp(&b.key))
    });
    let clean = |prof: &Profile| {
        KeyMetric::ALL
            .into_iter()
            .filter(|&m| m != KeyMetric::CpuIdle)
            .all(|m| prof.values.get(m) < 3.0)
    };
    let picked = candidates
        .iter()
        .map(|p| (*p, profile_for(p)))
        .find(|(_, prof)| clean(prof))
        .or_else(|| candidates.first().map(|p| (*p, profile_for(p))))?;
    Some((picked.0.key, picked.0.usage.idle_frac(), picked.1))
}

/// Table 1 + Figure 6 output for one machine.
#[derive(Debug, Clone)]
pub struct PersistenceReport {
    /// Per metric: its points at each offset and the log-model R².
    pub per_metric: Vec<(KeyMetric, Vec<PersistencePoint>, Option<LinearFit>)>,
    /// The combined fit over all metrics' normalized points (Figure 6).
    pub combined: Option<LinearFit>,
}

/// The system-level series a metric's persistence is computed over.
fn metric_series(series: &SystemSeries, m: KeyMetric) -> Vec<f64> {
    series.series(|b| match m {
        KeyMetric::CpuFlops => b.flops,
        KeyMetric::MemUsed => b.mem_per_node(),
        KeyMetric::MemUsedMax => b.mem_per_node(),
        KeyMetric::IoScratchWrite => b.scratch_write_bps,
        KeyMetric::IoWorkWrite => b.work_write_bps,
        KeyMetric::NetIbTx => b.ib_tx_bps,
        KeyMetric::NetLnetTx => b.lnet_tx_bps,
        KeyMetric::CpuIdle => b.cpu_shares().2,
    })
}

/// Compute the persistence analysis of §4.3.4 over the system series,
/// using the paper's five metrics and offsets (10/30/100/500/1000 min).
pub fn persistence_report(series: &SystemSeries) -> PersistenceReport {
    let dense = series.dense();
    let sample_minutes = dense.bin_secs as f64 / 60.0;
    let offsets: Vec<usize> = [10.0, 30.0, 100.0, 500.0, 1000.0]
        .iter()
        .map(|&m| (m / sample_minutes).round() as usize)
        .filter(|&k| k > 0)
        .collect();
    let mut per_metric = Vec::new();
    let mut all_points = Vec::new();
    for m in KeyMetric::PERSISTENCE_FIVE {
        let data = metric_series(&dense, m);
        let points = persistence_ratios(&data, sample_minutes, &offsets);
        let fit = log_fit(&points);
        all_points.extend(points.iter().copied());
        per_metric.push((m, points, fit));
    }
    let combined = log_fit(&all_points);
    PersistenceReport { per_metric, combined }
}

impl PersistenceReport {
    /// Render Table 1: offsets down, metrics across, plus the fit-R² row.
    pub fn to_table(&self) -> String {
        let mut out = String::from("offset(min)");
        for (m, _, _) in &self.per_metric {
            out.push_str(&format!(" {:>16}", m.name()));
        }
        out.push('\n');
        let offsets: Vec<f64> = self
            .per_metric
            .first()
            .map(|(_, pts, _)| pts.iter().map(|p| p.offset_minutes).collect())
            .unwrap_or_default();
        for (row, &off) in offsets.iter().enumerate() {
            out.push_str(&format!("{off:>11.0}"));
            for (_, pts, _) in &self.per_metric {
                match pts.get(row) {
                    Some(p) => out.push_str(&format!(" {:>16.3}", p.ratio)),
                    None => out.push_str(&format!(" {:>16}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>11}", "fit R^2"));
        for (_, _, fit) in &self.per_metric {
            match fit {
                Some(f) => out.push_str(&format!(" {:>16.3}", f.r_squared)),
                None => out.push_str(&format!(" {:>16}", "-")),
            }
        }
        out.push('\n');
        out
    }
}

/// Figure 7a: node·hour-weighted mean memory per *core* (GB), grouped by
/// parent science.
pub fn mem_per_core_by_science(table: &JobTable, cores_per_node: u32) -> Dataset {
    let groups = table.group_by(|j| j.science);
    let mut rows: Vec<(String, f64)> = groups
        .into_iter()
        .map(|(sci, jobs)| {
            let mean_node_bytes =
                weighted_metric_mean(jobs.iter().copied(), KeyMetric::MemUsed);
            let gb_per_core = mean_node_bytes / cores_per_node as f64 / 1.073_741_824e9;
            (sci.name().to_string(), gb_per_core)
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    Dataset { rows }
}

/// Figure 7b: total CPU node-hours split into user/system/idle over the
/// whole series.
pub fn cpu_hours_breakdown(series: &SystemSeries) -> Dataset {
    let hours_per_interval = series.bin_secs as f64 / 3600.0;
    let (mut user, mut system, mut idle) = (0.0, 0.0, 0.0);
    for bin in &series.bins {
        // Each host-interval contributes `hours_per_interval` node-hours,
        // split by the state fractions.
        user += bin.cpu_user_sum * hours_per_interval;
        system += bin.cpu_system_sum * hours_per_interval;
        idle += bin.cpu_idle_sum * hours_per_interval;
    }
    Dataset {
        rows: vec![
            ("user".to_string(), user),
            ("idle".to_string(), idle),
            ("system".to_string(), system),
        ],
    }
}

/// Figure 7c: mean Lustre filesystem throughput (MB/s, read+write) per
/// mount — scratch / share / work.
pub fn lustre_throughput(series: &SystemSeries) -> Dataset {
    let n = series.bins.len().max(1) as f64;
    const MB: f64 = 1024.0 * 1024.0;
    let mut scratch = 0.0;
    let mut share = 0.0;
    let mut work = 0.0;
    for bin in &series.bins {
        scratch += (bin.scratch_write_bps + bin.scratch_read_bps) / MB;
        share += (bin.share_write_bps + bin.share_read_bps) / MB;
        work += (bin.work_write_bps + bin.work_read_bps) / MB;
    }
    Dataset {
        rows: vec![
            ("scratch".to_string(), scratch / n),
            ("share".to_string(), share / n),
            ("work".to_string(), work / n),
        ],
    }
}

/// §4.2: the correlation analysis over the measured metric set and the
/// resulting minimal independent subset.
#[derive(Debug, Clone)]
pub struct CorrelationReport {
    pub metrics: Vec<ExtendedMetric>,
    pub matrix: Vec<Vec<f64>>,
    /// Indices (into `metrics`) of the selected independent set.
    pub selected: Vec<usize>,
}

impl CorrelationReport {
    pub fn correlation_of(&self, a: ExtendedMetric, b: ExtendedMetric) -> f64 {
        let ia = self.metrics.iter().position(|&m| m == a).expect("known metric");
        let ib = self.metrics.iter().position(|&m| m == b).expect("known metric");
        self.matrix[ia][ib]
    }

    pub fn selected_metrics(&self) -> Vec<ExtendedMetric> {
        self.selected.iter().map(|&i| self.metrics[i]).collect()
    }
}

/// Run the §4.2 correlation analysis over per-job extended metrics.
///
/// The priority order lists the paper's eight key metrics first, so the
/// greedy independent-set selection keeps exactly them when the data's
/// correlation structure matches the paper's.
pub fn metric_correlation_report(table: &JobTable, threshold: f64) -> CorrelationReport {
    let metrics: Vec<ExtendedMetric> = ExtendedMetric::ALL.to_vec();
    let vars: Vec<Vec<f64>> = metrics
        .iter()
        .map(|&m| table.jobs().iter().map(|j| j.extended_get(m)).collect())
        .collect();
    let matrix = supremm_analytics::correlation_matrix(&vars);
    // Key metrics first (paper's preference), then the rest.
    let mut priority: Vec<usize> = Vec::new();
    for km in KeyMetric::ALL {
        if let Some(i) = metrics.iter().position(|&m| m.as_key() == Some(km)) {
            priority.push(i);
        }
    }
    for (i, m) in metrics.iter().enumerate() {
        if m.as_key().is_none() {
            priority.push(i);
        }
    }
    // Skip constant metrics (NaN rows) during selection.
    let selected = supremm_analytics::select_independent(&matrix, &priority, threshold)
        .into_iter()
        .filter(|&i| vars[i].iter().any(|&v| v != vars[i][0]))
        .collect();
    CorrelationReport { metrics, matrix, selected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;
    use supremm_metrics::{JobId, ScienceField, Timestamp};
    use supremm_warehouse::record::{ExitKind, JobRecord};

    fn job(id: u64, user: u32, app: &str, hours: u64, nodes: u32, idle: f64, mem: f64) -> JobRecord {
        let mut metrics = KeyMetricVec::default();
        metrics.set(KeyMetric::CpuIdle, idle);
        metrics.set(KeyMetric::MemUsed, mem);
        metrics.set(KeyMetric::CpuFlops, 1e9 * (1.0 - idle));
        let mut extended = [0.0; ExtendedMetric::ALL.len()];
        extended[ExtendedMetric::CpuIdle.index()] = idle;
        extended[ExtendedMetric::CpuUser.index()] = 1.0 - idle;
        extended[ExtendedMetric::MemUsed.index()] = mem;
        // IB traffic varies with the job id, independent of idle.
        let ib = 1e6 * ((id * 37 % 11) as f64 + 1.0);
        extended[ExtendedMetric::NetIbTx.index()] = ib;
        extended[ExtendedMetric::NetIbRx.index()] = ib * 1.02;
        JobRecord {
            job: JobId(id),
            user: UserId(user),
            app: Some(app.to_string()),
            science: if user.is_multiple_of(2) {
                ScienceField::Physics
            } else {
                ScienceField::MolecularBiosciences
            },
            queue: "normal".into(),
            submit: Timestamp(0),
            start: Timestamp(0),
            end: Timestamp(hours * 3600),
            nodes,
            exit: ExitKind::Completed,
            metrics,
            extended,
            flops_valid: true,
            samples: 6,
            coverage_gaps: 0,
        }
    }

    fn table() -> JobTable {
        JobTable::new(vec![
            job(1, 1, "NAMD", 100, 8, 0.05, 6e9),
            job(2, 1, "NAMD", 50, 4, 0.06, 6e9),
            job(3, 2, "AMBER", 80, 8, 0.30, 4e9),
            job(4, 3, "WRF", 10, 2, 0.10, 11e9),
            job(5, 4, "GROMACS", 5, 1, 0.88, 5e9), // the anomaly
            job(6, 4, "GROMACS", 40, 16, 0.87, 5e9),
        ])
    }

    #[test]
    fn fig2_top_users_profiles() {
        let profiles = user_profiles(&table(), 3);
        assert_eq!(profiles.len(), 3);
        // Heaviest first: user 1 (1000 nh), user 4 (645 nh), user 2 (640).
        assert_eq!(profiles[0].label, "u00001");
        assert!(profiles[0].node_hours > profiles[1].node_hours);
        // The anomalous user's idle is far above average (profile >> 1);
        // the efficient NAMD user is far below.
        assert_eq!(profiles[1].label, "u00004");
        assert!(profiles[1].values.get(KeyMetric::CpuIdle) > 1.5);
        assert!(profiles[0].values.get(KeyMetric::CpuIdle) < 0.5);
    }

    #[test]
    fn fig3_app_profile_contrast() {
        let profiles = app_profiles(&table(), &["NAMD", "AMBER"]);
        let namd = &profiles[0].values;
        let amber = &profiles[1].values;
        assert!(amber.get(KeyMetric::CpuIdle) > namd.get(KeyMetric::CpuIdle));
    }

    #[test]
    fn fig4_wasted_hours_flags_the_heavy_idler() {
        let report = wasted_hours(&table());
        let worst = report.worst_heavy_offender(0.8).unwrap();
        assert_eq!(worst.key, UserId(4));
        assert!(worst.usage.idle_frac() > 0.85);
        assert!(report.average_efficiency < 0.9);
    }

    #[test]
    fn fig5_anomalous_profile_is_idle_heavy_otherwise_normal() {
        let (user, idle, profile) = anomalous_user_profile(&table(), 0.8).unwrap();
        assert_eq!(user, UserId(4));
        assert!(idle > 0.85);
        assert!(profile.values.get(KeyMetric::CpuIdle) > 1.5);
        // Memory usage is in the normal range (ratio near 1).
        let mem_ratio = profile.values.get(KeyMetric::MemUsed);
        assert!(mem_ratio > 0.5 && mem_ratio < 1.5, "{mem_ratio}");
    }

    #[test]
    fn fig7a_mem_per_core_grouping() {
        let ds = mem_per_core_by_science(&table(), 16);
        assert_eq!(ds.rows.len(), 2);
        for (_, gb) in &ds.rows {
            assert!(*gb > 0.0 && *gb < 2.0, "{gb}");
        }
    }

    #[test]
    fn corr_report_selects_independent_metrics() {
        let report = metric_correlation_report(&table(), 0.8);
        // cpu_user ~ -cpu_idle: only one survives, and priority keeps idle.
        let selected = report.selected_metrics();
        assert!(selected.contains(&ExtendedMetric::CpuIdle));
        assert!(!selected.contains(&ExtendedMetric::CpuUser));
        // ib_rx correlates with ib_tx: tx kept.
        assert!(selected.contains(&ExtendedMetric::NetIbTx));
        assert!(!selected.contains(&ExtendedMetric::NetIbRx));
        // The paper's published pairs:
        assert!(report.correlation_of(ExtendedMetric::CpuUser, ExtendedMetric::CpuIdle) < -0.9);
        assert!(report.correlation_of(ExtendedMetric::NetIbRx, ExtendedMetric::NetIbTx) > 0.9);
    }

    #[test]
    fn persistence_report_renders_table1_shape() {
        // Synthetic series: persistent AR-like bins.
        use supremm_warehouse::SystemBin;
        let bins: Vec<SystemBin> = (0..4000)
            .map(|i| {
                let slow = ((i as f64) / 120.0).sin();
                let mut b = SystemBin {
                    ts: Timestamp(i * 600),
                    intervals: 10,
                    flops: 1e12 * (1.0 + 0.3 * slow),
                    mem_used_bytes: 8e9 * 10.0 * (1.0 + 0.1 * slow),
                    ib_tx_bps: 1e9 * (1.0 + 0.4 * slow),
                    scratch_write_bps: 1e8 * (1.0 + if i % 7 == 0 { 3.0 } else { 0.0 }),
                    ..Default::default()
                };
                b.cpu_idle_sum = 1.0 + 0.2 * slow;
                b.cpu_user_sum = 8.0 - 0.2 * slow;
                b
            })
            .collect();
        let series = SystemSeries { bin_secs: 600, bins };
        let report = persistence_report(&series);
        assert_eq!(report.per_metric.len(), 5);
        let table = report.to_table();
        assert!(table.contains("cpu_flops"));
        assert!(table.contains("fit R^2"));
        assert!(table.lines().count() >= 7, "{table}");
        // Bursty scratch writes are less persistent at 10 min than flops.
        let flops_10 = report.per_metric[0].1[0].ratio;
        let write_10 = report.per_metric[2].1[0].ratio;
        assert!(write_10 > flops_10, "{write_10} vs {flops_10}");
    }

    #[test]
    fn cpu_hours_sum_to_total_node_hours() {
        use supremm_warehouse::SystemBin;
        let bins: Vec<SystemBin> = (0..10)
            .map(|i| {
                let mut b = SystemBin {
                    ts: Timestamp(i * 600),
                    intervals: 4,
                    ..Default::default()
                };
                b.cpu_user_sum = 3.0;
                b.cpu_idle_sum = 0.8;
                b.cpu_system_sum = 0.2;
                b
            })
            .collect();
        let series = SystemSeries { bin_secs: 600, bins };
        let ds = cpu_hours_breakdown(&series);
        let total: f64 = ds.rows.iter().map(|(_, v)| v).sum();
        // 10 bins × 4 host-intervals × (1/6 h) = 6.67 node-hours.
        assert!((total - 10.0 * 4.0 / 6.0).abs() < 1e-9, "{total}");
        assert_eq!(ds.rows[0].0, "user");
    }
}

/// §5's "bouquet of machines" analysis: "although it is hardly surprising
/// to learn that some applications run considerably better on certain
/// machine architectures, with the present tools we can easily identify
/// those applications and provide incentives for users to run on
/// architectures best suited for their application."
///
/// For each application, compare its CPU efficiency and its
/// relative-to-machine-average FLOP rate on every machine, and recommend
/// the machine where it does best.
#[derive(Debug, Clone)]
pub struct MachineScore {
    pub machine: String,
    /// 1 − node·hour-weighted cpu_idle of the app's jobs there.
    pub efficiency: f64,
    /// App FLOP rate relative to the machine's average job.
    pub flops_ratio: f64,
    /// Node-hours the app consumed there (the evidence weight).
    pub node_hours: f64,
}

#[derive(Debug, Clone)]
pub struct MachineRecommendation {
    pub app: String,
    pub scores: Vec<MachineScore>,
    /// Machine with the best combined score, `None` when the app ran on
    /// fewer than two machines.
    pub recommended: Option<String>,
}

/// Build the bouquet recommendation table for the named applications
/// across several machines' warehouses.
pub fn machine_bouquet(
    machines: &[(&str, &JobTable)],
    apps: &[&str],
) -> Vec<MachineRecommendation> {
    apps.iter()
        .map(|&app| {
            let mut scores = Vec::new();
            for &(machine, table) in machines {
                let jobs: Vec<_> = table
                    .jobs()
                    .iter()
                    .filter(|j| j.app.as_deref() == Some(app))
                    .collect();
                if jobs.is_empty() {
                    continue;
                }
                let idle =
                    weighted_metric_mean(jobs.iter().copied(), KeyMetric::CpuIdle);
                let flops =
                    weighted_metric_mean(jobs.iter().copied(), KeyMetric::CpuFlops);
                let machine_flops =
                    weighted_metric_mean(table.jobs().iter(), KeyMetric::CpuFlops);
                let node_hours: f64 = jobs.iter().map(|j| j.node_hours()).sum();
                scores.push(MachineScore {
                    machine: machine.to_string(),
                    efficiency: 1.0 - idle,
                    flops_ratio: if machine_flops > 0.0 { flops / machine_flops } else { 0.0 },
                    node_hours,
                });
            }
            // Combined score: run where the app is both efficient and
            // above the local average in floating-point delivery.
            let recommended = (scores.len() >= 2)
                .then(|| {
                    scores
                        .iter()
                        .max_by(|a, b| {
                            (a.efficiency * a.flops_ratio)
                                .total_cmp(&(b.efficiency * b.flops_ratio))
                        })
                        .map(|s| s.machine.clone())
                })
                .flatten();
            MachineRecommendation { app: app.to_string(), scores, recommended }
        })
        .collect()
}

#[cfg(test)]
mod bouquet_tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;
    use supremm_metrics::{ExtendedMetric, JobId, ScienceField, Timestamp};
    use supremm_warehouse::record::{ExitKind, JobRecord};

    fn job(id: u64, app: &str, idle: f64, flops: f64) -> JobRecord {
        let mut metrics = KeyMetricVec::default();
        metrics.set(KeyMetric::CpuIdle, idle);
        metrics.set(KeyMetric::CpuFlops, flops);
        JobRecord {
            job: JobId(id),
            user: UserId(1),
            app: Some(app.to_string()),
            science: ScienceField::Physics,
            queue: "normal".into(),
            submit: Timestamp(0),
            start: Timestamp(0),
            end: Timestamp(36_000),
            nodes: 4,
            exit: ExitKind::Completed,
            metrics,
            extended: [0.0; ExtendedMetric::ALL.len()],
            flops_valid: true,
            samples: 10,
            coverage_gaps: 0,
        }
    }

    #[test]
    fn bouquet_recommends_the_better_machine() {
        // AMBER: inefficient on machine A, efficient + flops-strong on B.
        let a = JobTable::new(vec![job(1, "AMBER", 0.4, 1e9), job(2, "NAMD", 0.05, 5e9)]);
        let b = JobTable::new(vec![job(3, "AMBER", 0.1, 6e9), job(4, "NAMD", 0.05, 5e9)]);
        let recs = machine_bouquet(&[("A", &a), ("B", &b)], &["AMBER"]);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].scores.len(), 2);
        assert_eq!(recs[0].recommended.as_deref(), Some("B"));
    }

    #[test]
    fn single_machine_apps_get_no_recommendation() {
        let a = JobTable::new(vec![job(1, "WRF", 0.1, 1e9)]);
        let b = JobTable::new(vec![job(2, "NAMD", 0.1, 1e9)]);
        let recs = machine_bouquet(&[("A", &a), ("B", &b)], &["WRF"]);
        assert_eq!(recs[0].scores.len(), 1);
        assert!(recs[0].recommended.is_none());
    }
}

/// §4.3.5's "resource use trends and predictions": decompose system
/// utilisation into diurnal season + growth trend, and forecast ahead.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// Mean busy-node share over the window.
    pub mean_busy_share: f64,
    /// Peak-to-trough diurnal swing of the busy share (absolute).
    pub diurnal_swing: f64,
    /// Fitted growth of the busy share per day.
    pub growth_per_day: f64,
    pub growth_significant: bool,
    /// (lo, point, hi) forecast of the busy share one day ahead.
    pub next_day_forecast: (f64, f64, f64),
}

/// Build the utilisation trend report from the system series.
/// `node_count` converts busy-node counts into shares.
pub fn utilization_trend(series: &SystemSeries, node_count: u32) -> Option<TrendReport> {
    let dense = series.dense();
    let busy: Vec<f64> =
        dense.series(|b| b.busy_nodes as f64 / node_count.max(1) as f64);
    let bins_per_day = (86_400 / dense.bin_secs.max(1)) as usize;
    let d = supremm_analytics::trend::decompose(&busy, bins_per_day)?;
    let season_hi = d.seasonal.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let season_lo = d.seasonal.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
    Some(TrendReport {
        mean_busy_share: mean,
        diurnal_swing: season_hi - season_lo,
        growth_per_day: d.growth_per_cycle(),
        growth_significant: d.trend_significant(0.01),
        next_day_forecast: d.forecast_band(bins_per_day),
    })
}

/// §4.3.1's consolidated USER report: everything the paper says a user
/// should be able to see about themselves — their normalized profile,
/// how their efficiency ranks against the whole machine, and their job
/// completion/failure history.
#[derive(Debug, Clone)]
pub struct UserReport {
    pub user: UserId,
    pub jobs: usize,
    pub node_hours: f64,
    /// Normalized 8-metric profile (1.0 = machine average).
    pub profile: Profile,
    /// This user's CPU efficiency and the machine average.
    pub efficiency: f64,
    pub machine_efficiency: f64,
    /// Rank by node-hours among all users (1 = heaviest).
    pub node_hours_rank: usize,
    pub total_users: usize,
    /// Jobs by exit status.
    pub completions: Vec<(&'static str, usize)>,
    /// Plain-language advice lines derived from the numbers.
    pub advice: Vec<String>,
}

/// Build the §4.3.1 user report. Returns `None` for a user with no jobs.
pub fn user_report(table: &JobTable, user: UserId) -> Option<UserReport> {
    let jobs: Vec<_> = table.jobs().iter().filter(|j| j.user == user).collect();
    if jobs.is_empty() {
        return None;
    }
    let agg = JobTable::aggregate(jobs.iter().copied());
    let global = table.global_aggregate();
    let profile = Profile {
        label: user.to_string(),
        values: normalize(&agg.means, &global.means),
        node_hours: agg.node_hours,
    };
    let wasted = wasted_hours(table);
    let mine = wasted.points.iter().find(|p| p.key == user)?;
    let ranks = table.top_by_node_hours(|j| j.user, usize::MAX);
    let node_hours_rank =
        ranks.iter().position(|&(u, _)| u == user).map(|i| i + 1).unwrap_or(ranks.len());

    use supremm_warehouse::record::ExitKind;
    let mut completions = Vec::new();
    for kind in [
        ExitKind::Completed,
        ExitKind::Failed,
        ExitKind::NodeFailure,
        ExitKind::Cancelled,
    ] {
        let n = jobs.iter().filter(|j| j.exit == kind).count();
        if n > 0 {
            completions.push((kind.name(), n));
        }
    }

    let mut advice = Vec::new();
    let efficiency = mine.usage.efficiency();
    if efficiency + 0.1 < wasted.average_efficiency {
        advice.push(format!(
            "your CPU efficiency ({:.0}%) is well below the machine average ({:.0}%): \
             check rank counts, binding, and whether the job actually uses all cores",
            efficiency * 100.0,
            wasted.average_efficiency * 100.0
        ));
    }
    let mem_ratio = profile.values.get(KeyMetric::MemUsed);
    if mem_ratio < 0.3 {
        advice.push(
            "memory use is far below average: consider more ranks per node or smaller allocations"
                .to_string(),
        );
    }
    let failed = jobs
        .iter()
        .filter(|j| j.exit == ExitKind::Failed)
        .count();
    if failed * 5 > jobs.len() {
        advice.push(format!(
            "{failed} of {} jobs failed: the failure-diagnosis report can attribute causes",
            jobs.len()
        ));
    }
    if advice.is_empty() {
        advice.push("resource use looks healthy".to_string());
    }

    Some(UserReport {
        user,
        jobs: jobs.len(),
        node_hours: agg.node_hours,
        profile,
        efficiency,
        machine_efficiency: wasted.average_efficiency,
        node_hours_rank,
        total_users: ranks.len(),
        completions,
        advice,
    })
}

impl UserReport {
    pub fn render(&self) -> String {
        let mut out = format!(
            "user {} — {} jobs, {:.0} node-hours (rank {}/{} by consumption)\n\
             efficiency: {:.1}% (machine average {:.1}%)\nprofile (1.0 = average):\n",
            self.user,
            self.jobs,
            self.node_hours,
            self.node_hours_rank,
            self.total_users,
            self.efficiency * 100.0,
            self.machine_efficiency * 100.0,
        );
        for (m, v) in self.profile.values.iter() {
            out.push_str(&format!("  {:<18} {v:>6.2}x\n", m.name()));
        }
        out.push_str("completions:");
        for (kind, n) in &self.completions {
            out.push_str(&format!(" {kind}={n}"));
        }
        out.push('\n');
        for a in &self.advice {
            out.push_str(&format!("advice: {a}\n"));
        }
        out
    }
}

#[cfg(test)]
mod user_report_tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;
    use supremm_metrics::{ExtendedMetric, JobId, ScienceField, Timestamp};
    use supremm_warehouse::record::{ExitKind, JobRecord};

    fn job(id: u64, user: u32, idle: f64, exit: ExitKind) -> JobRecord {
        let mut metrics = KeyMetricVec::default();
        metrics.set(KeyMetric::CpuIdle, idle);
        metrics.set(KeyMetric::MemUsed, 6e9);
        JobRecord {
            job: JobId(id),
            user: UserId(user),
            app: Some("NAMD".into()),
            science: ScienceField::Physics,
            queue: "normal".into(),
            submit: Timestamp(0),
            start: Timestamp(0),
            end: Timestamp(36_000),
            nodes: 4,
            exit,
            metrics,
            extended: [0.0; ExtendedMetric::ALL.len()],
            flops_valid: true,
            samples: 60,
            coverage_gaps: 0,
        }
    }

    fn table() -> JobTable {
        JobTable::new(vec![
            job(1, 1, 0.05, ExitKind::Completed),
            job(2, 1, 0.06, ExitKind::Completed),
            job(3, 2, 0.60, ExitKind::Completed),
            job(4, 2, 0.65, ExitKind::Failed),
            job(5, 2, 0.62, ExitKind::Failed),
            job(6, 3, 0.10, ExitKind::Completed),
        ])
    }

    #[test]
    fn efficient_user_gets_a_clean_bill() {
        let r = user_report(&table(), UserId(1)).unwrap();
        assert_eq!(r.jobs, 2);
        assert!(r.efficiency > 0.9);
        assert_eq!(r.advice, vec!["resource use looks healthy".to_string()]);
        assert_eq!(r.completions, vec![("completed", 2)]);
        let text = r.render();
        assert!(text.contains("u00001"));
        assert!(text.contains("cpu_idle"));
    }

    #[test]
    fn inefficient_failing_user_gets_both_warnings() {
        let r = user_report(&table(), UserId(2)).unwrap();
        assert!(r.efficiency < r.machine_efficiency);
        assert!(r.advice.iter().any(|a| a.contains("efficiency")), "{:?}", r.advice);
        assert!(r.advice.iter().any(|a| a.contains("failed")), "{:?}", r.advice);
        assert_eq!(r.node_hours_rank, 1, "heaviest user by node-hours");
        assert!(r.completions.contains(&("failed", 2)));
    }

    #[test]
    fn unknown_user_is_none() {
        assert!(user_report(&table(), UserId(99)).is_none());
    }
}

/// Data-quality report for one resource: what fraction of the machine's
/// node-time actually has valid samples behind it, and where the rest
/// went. §4.1 notes the ingested raw data is incomplete in practice
/// (collector crashes, lost files); this makes that incompleteness a
/// first-class, per-resource number instead of a silent bias in every
/// downstream figure.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    pub resource: String,
    /// Fraction of node·bins over the series span with a valid sample
    /// (1.0 = every node reported in every bin).
    pub series_coverage: f64,
    /// Fraction of job node-hours backed by gap-free raw data.
    pub clean_node_hours_fraction: f64,
    /// Jobs whose raw data contained at least one corrupt region.
    pub jobs_with_gaps: usize,
    pub total_jobs: usize,
    /// Contiguous corrupt regions across the whole archive.
    pub gaps: usize,
    /// Quarantine accounting carried over from ingest.
    pub records_seen: usize,
    pub samples_quarantined: usize,
    pub bytes_quarantined: u64,
    /// Files rejected outright (unreadable header, or any error under
    /// strict ingest).
    pub files_rejected: usize,
}

/// Build the per-resource coverage report from the three artifacts a
/// pipeline run already produces: the job table (per-job gap counts),
/// the system series (node·bin coverage), and the ingest stats
/// (quarantine totals). `node_count` sizes the fleet the series is
/// measured against.
pub fn coverage_report(
    resource: &str,
    table: &JobTable,
    series: &SystemSeries,
    stats: &supremm_warehouse::IngestStats,
    node_count: u32,
) -> CoverageReport {
    let mut clean_hours = 0.0;
    let mut total_hours = 0.0;
    let mut jobs_with_gaps = 0usize;
    for j in table.jobs() {
        let h = j.node_hours();
        total_hours += h;
        if j.coverage_gaps == 0 {
            clean_hours += h;
        } else {
            jobs_with_gaps += 1;
        }
    }
    CoverageReport {
        resource: resource.to_string(),
        series_coverage: series.coverage(node_count),
        clean_node_hours_fraction: if total_hours > 0.0 { clean_hours / total_hours } else { 1.0 },
        jobs_with_gaps,
        total_jobs: table.len(),
        gaps: stats.gaps,
        records_seen: stats.records_seen,
        samples_quarantined: stats.samples_quarantined,
        bytes_quarantined: stats.bytes_quarantined,
        files_rejected: stats.parse_errors,
    }
}

impl CoverageReport {
    /// True when the archive behind this resource was fully intact.
    pub fn is_complete(&self) -> bool {
        self.samples_quarantined == 0
            && self.gaps == 0
            && self.files_rejected == 0
            && self.jobs_with_gaps == 0
    }

    /// Plain-text rendering for operator consoles.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("coverage report: {}\n", self.resource));
        out.push_str(&format!(
            "  node-bin coverage        {:6.2}%\n",
            self.series_coverage * 100.0
        ));
        out.push_str(&format!(
            "  clean job node-hours     {:6.2}%\n",
            self.clean_node_hours_fraction * 100.0
        ));
        out.push_str(&format!(
            "  jobs with gaps           {:>6} / {}\n",
            self.jobs_with_gaps, self.total_jobs
        ));
        out.push_str(&format!("  corrupt regions          {:>6}\n", self.gaps));
        out.push_str(&format!(
            "  records quarantined      {:>6} / {}\n",
            self.samples_quarantined, self.records_seen
        ));
        out.push_str(&format!("  bytes quarantined        {:>6}\n", self.bytes_quarantined));
        out.push_str(&format!("  files rejected           {:>6}\n", self.files_rejected));
        out
    }
}

#[cfg(test)]
mod coverage_tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;
    use supremm_metrics::{JobId, ScienceField, Timestamp};
    use supremm_warehouse::record::{ExitKind, JobRecord};
    use supremm_warehouse::{IngestStats, SystemBin};

    fn job(id: u64, hours: u64, nodes: u32, gaps: u32) -> JobRecord {
        JobRecord {
            job: JobId(id),
            user: UserId(1),
            app: None,
            science: ScienceField::Physics,
            queue: "normal".into(),
            submit: Timestamp(0),
            start: Timestamp(0),
            end: Timestamp(hours * 3600),
            nodes,
            exit: ExitKind::Completed,
            metrics: KeyMetricVec::default(),
            extended: [0.0; ExtendedMetric::ALL.len()],
            flops_valid: true,
            samples: 4,
            coverage_gaps: gaps,
        }
    }

    fn series() -> SystemSeries {
        // Three bins over a 3-bin span; 2+1+2 = 5 of 6 node-bins seen.
        let mut bins = Vec::new();
        for (i, active) in [(0u64, 2u32), (1, 1), (2, 2)] {
            bins.push(SystemBin {
                ts: Timestamp(i * 600),
                active_nodes: active,
                ..SystemBin::default()
            });
        }
        SystemSeries { bin_secs: 600, bins }
    }

    #[test]
    fn clean_run_is_complete() {
        let table = JobTable::new(vec![job(1, 10, 2, 0), job(2, 5, 1, 0)]);
        let r = coverage_report("ranger", &table, &series(), &IngestStats::default(), 2);
        assert!(r.is_complete());
        assert!((r.clean_node_hours_fraction - 1.0).abs() < 1e-12);
        assert!((r.series_coverage - 5.0 / 6.0).abs() < 1e-12);
        assert!(r.to_table().contains("ranger"));
    }

    #[test]
    fn gaps_show_up_in_node_hour_fraction() {
        // 20 clean node-hours vs 5 gap-backed ones.
        let table = JobTable::new(vec![job(1, 10, 2, 0), job(2, 5, 1, 3)]);
        let stats = IngestStats {
            records_seen: 40,
            records: 37,
            samples_quarantined: 3,
            bytes_quarantined: 512,
            gaps: 3,
            parse_errors: 1,
            ..IngestStats::default()
        };
        let r = coverage_report("lonestar4", &table, &series(), &stats, 2);
        assert!(!r.is_complete());
        assert_eq!(r.jobs_with_gaps, 1);
        assert_eq!(r.total_jobs, 2);
        assert!((r.clean_node_hours_fraction - 20.0 / 25.0).abs() < 1e-12);
        assert_eq!(r.gaps, 3);
        assert_eq!(r.files_rejected, 1);
        assert!(stats.conservation_holds());
    }

    #[test]
    fn empty_table_reports_full_clean_fraction() {
        let r = coverage_report(
            "stampede",
            &JobTable::default(),
            &SystemSeries { bin_secs: 600, bins: Vec::new() },
            &IngestStats::default(),
            4,
        );
        assert!((r.clean_node_hours_fraction - 1.0).abs() < 1e-12);
        assert_eq!(r.series_coverage, 0.0);
    }
}
