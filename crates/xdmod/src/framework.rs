//! Realms, dimensions, statistics and the query engine.
//!
//! The XDMoD UI's core interaction is: pick a *statistic*, group it by a
//! *dimension*, optionally *filter*, get a dataset. That is exactly the
//! surface implemented here, over the warehouse's [`JobTable`].

use serde::Serialize;
use supremm_metrics::{KeyMetric, ScienceField, UserId};
use supremm_warehouse::record::ExitKind;
use supremm_warehouse::store::weighted_metric_mean;
use supremm_warehouse::{JobRecord, JobTable};

/// Grouping dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    /// One row for the whole table.
    None,
    User,
    Application,
    ScienceField,
    Queue,
    ExitStatus,
    /// Job size class (1, 2-4, 5-16, 17-64, 65+ nodes).
    JobSize,
}

/// What to compute per group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Statistic {
    JobCount,
    NodeHours,
    /// Node·hour-weighted mean of a key metric.
    WeightedMean(KeyMetric),
    /// Mean queue wait, hours.
    AvgWaitHours,
    /// Mean job length, minutes, node·hour-weighted.
    WeightedJobLengthMin,
    /// Fraction of jobs that did not complete normally.
    FailureRate,
}

/// Row filters.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    App(String),
    User(UserId),
    Science(ScienceField),
    Exit(ExitKind),
    MinNodes(u32),
    /// Keep jobs whose FLOPS reading is trustworthy.
    FlopsValid,
}

impl Filter {
    fn keep(&self, j: &JobRecord) -> bool {
        match self {
            Filter::App(name) => j.app.as_deref() == Some(name.as_str()),
            Filter::User(u) => j.user == *u,
            Filter::Science(s) => j.science == *s,
            Filter::Exit(e) => j.exit == *e,
            Filter::MinNodes(n) => j.nodes >= *n,
            Filter::FlopsValid => j.flops_valid,
        }
    }
}

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub dimension: Dimension,
    pub statistic: Statistic,
    pub filters: Vec<Filter>,
}

/// Query result: labelled rows, ordered by descending value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Dataset {
    pub rows: Vec<(String, f64)>,
}

impl Dataset {
    pub fn get(&self, label: &str) -> Option<f64> {
        self.rows.iter().find(|(l, _)| l == label).map(|&(_, v)| v)
    }

    /// Serialise as the `{"rows":[[label,value],...]}` JSON document the
    /// HTTP API returns.
    pub fn to_json(&self) -> String {
        use supremm_metrics::json::Value;
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|(label, value)| {
                Value::Array(vec![label.as_str().into(), (*value).into()])
            })
            .collect();
        supremm_metrics::json::obj([("rows", Value::Array(rows))]).to_string()
    }
}

fn size_class(nodes: u32) -> &'static str {
    match nodes {
        1 => "1",
        2..=4 => "2-4",
        5..=16 => "5-16",
        17..=64 => "17-64",
        _ => "65+",
    }
}

fn dimension_label(dim: Dimension, j: &JobRecord) -> String {
    match dim {
        Dimension::None => "all".to_string(),
        Dimension::User => j.user.to_string(),
        Dimension::Application => {
            j.app.clone().unwrap_or_else(|| "(unresolved)".to_string())
        }
        Dimension::ScienceField => j.science.name().to_string(),
        Dimension::Queue => j.queue.clone(),
        Dimension::ExitStatus => j.exit.name().to_string(),
        Dimension::JobSize => size_class(j.nodes).to_string(),
    }
}

fn statistic_of(stat: Statistic, jobs: &[&JobRecord]) -> f64 {
    match stat {
        Statistic::JobCount => jobs.len() as f64,
        Statistic::NodeHours => jobs.iter().map(|j| j.node_hours()).sum(),
        Statistic::WeightedMean(m) => weighted_metric_mean(jobs.iter().copied(), m),
        Statistic::AvgWaitHours => {
            if jobs.is_empty() {
                f64::NAN
            } else {
                jobs.iter().map(|j| j.wait_secs() as f64 / 3600.0).sum::<f64>()
                    / jobs.len() as f64
            }
        }
        Statistic::WeightedJobLengthMin => {
            let mut acc = supremm_analytics::stats::WeightedMoments::new();
            for j in jobs {
                acc.push(j.wall_secs() as f64 / 60.0, j.node_hours());
            }
            acc.mean()
        }
        Statistic::FailureRate => {
            if jobs.is_empty() {
                f64::NAN
            } else {
                jobs.iter().filter(|j| j.exit != ExitKind::Completed).count() as f64
                    / jobs.len() as f64
            }
        }
    }
}

/// Run a query.
pub fn run(table: &JobTable, query: &Query) -> Dataset {
    let mut groups: std::collections::BTreeMap<String, Vec<&JobRecord>> = Default::default();
    for j in table.jobs() {
        if query.filters.iter().all(|f| f.keep(j)) {
            groups.entry(dimension_label(query.dimension, j)).or_default().push(j);
        }
    }
    let mut rows: Vec<(String, f64)> = groups
        .into_iter()
        .map(|(label, jobs)| (label, statistic_of(query.statistic, &jobs)))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    Dataset { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;
    use supremm_metrics::{ExtendedMetric, JobId, Timestamp};

    #[allow(clippy::too_many_arguments)]
    fn job(id: u64, user: u32, app: &str, sci: ScienceField, hours: u64, nodes: u32, idle: f64, exit: ExitKind) -> JobRecord {
        let mut metrics = KeyMetricVec::default();
        metrics.set(KeyMetric::CpuIdle, idle);
        JobRecord {
            job: JobId(id),
            user: UserId(user),
            app: Some(app.to_string()),
            science: sci,
            queue: "normal".into(),
            submit: Timestamp(0),
            start: Timestamp(1800),
            end: Timestamp(1800 + hours * 3600),
            nodes,
            exit,
            metrics,
            extended: [0.0; ExtendedMetric::ALL.len()],
            flops_valid: true,
            samples: 4,
            coverage_gaps: 0,
        }
    }

    fn table() -> JobTable {
        JobTable::new(vec![
            job(1, 1, "NAMD", ScienceField::MolecularBiosciences, 10, 4, 0.05, ExitKind::Completed),
            job(2, 2, "AMBER", ScienceField::MolecularBiosciences, 10, 4, 0.30, ExitKind::Completed),
            job(3, 2, "AMBER", ScienceField::MolecularBiosciences, 5, 2, 0.35, ExitKind::Failed),
            job(4, 3, "WRF", ScienceField::AtmosphericSciences, 20, 16, 0.10, ExitKind::Completed),
        ])
    }

    #[test]
    fn node_hours_by_app_ordered_descending() {
        let ds = run(
            &table(),
            &Query {
                dimension: Dimension::Application,
                statistic: Statistic::NodeHours,
                filters: vec![],
            },
        );
        assert_eq!(ds.rows[0].0, "WRF");
        assert_eq!(ds.rows[0].1, 320.0);
        assert_eq!(ds.get("NAMD"), Some(40.0));
        assert_eq!(ds.get("AMBER"), Some(50.0));
    }

    #[test]
    fn filters_compose() {
        let ds = run(
            &table(),
            &Query {
                dimension: Dimension::User,
                statistic: Statistic::JobCount,
                filters: vec![
                    Filter::App("AMBER".into()),
                    Filter::Exit(ExitKind::Failed),
                ],
            },
        );
        assert_eq!(ds.rows.len(), 1);
        assert_eq!(ds.rows[0], ("u00002".to_string(), 1.0));
    }

    #[test]
    fn weighted_mean_statistic() {
        let ds = run(
            &table(),
            &Query {
                dimension: Dimension::Application,
                statistic: Statistic::WeightedMean(KeyMetric::CpuIdle),
                filters: vec![Filter::App("AMBER".into())],
            },
        );
        // (40·0.30 + 10·0.35)/50 = 0.31.
        assert!((ds.get("AMBER").unwrap() - 0.31).abs() < 1e-12);
    }

    #[test]
    fn failure_rate_by_science() {
        let ds = run(
            &table(),
            &Query {
                dimension: Dimension::ScienceField,
                statistic: Statistic::FailureRate,
                filters: vec![],
            },
        );
        assert!((ds.get("Molecular Biosciences").unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ds.get("Atmospheric Sciences"), Some(0.0));
    }

    #[test]
    fn job_size_classes() {
        let ds = run(
            &table(),
            &Query {
                dimension: Dimension::JobSize,
                statistic: Statistic::JobCount,
                filters: vec![],
            },
        );
        assert_eq!(ds.get("2-4"), Some(3.0));
        assert_eq!(ds.get("5-16"), Some(1.0));
    }

    #[test]
    fn wait_hours() {
        let ds = run(
            &table(),
            &Query {
                dimension: Dimension::None,
                statistic: Statistic::AvgWaitHours,
                filters: vec![],
            },
        );
        assert!((ds.get("all").unwrap() - 0.5).abs() < 1e-12);
    }
}
