//! SVG chart rendering — the paper's figures as actual images.
//!
//! XDMoD is a charting product; the paper's radar charts (Figures 2, 3,
//! 5), time series (Figures 8, 9, 11) and densities (Figures 10, 12) are
//! its bread and butter. This module renders those three chart families
//! as standalone SVG documents with no dependencies, so the examples and
//! the `supremm` CLI can write real figures next to the text reports.

use supremm_analytics::profile::Profile;
use supremm_metrics::KeyMetric;

const W: f64 = 640.0;
const H: f64 = 480.0;
const PALETTE: [&str; 6] = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#a463f2"];

fn svg_header(title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\">\n\
         <rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n\
         <text x=\"{}\" y=\"24\" text-anchor=\"middle\" font-size=\"16\">{}</text>\n",
        W / 2.0,
        escape(title)
    )
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// A radar (spider) chart of normalized 8-metric profiles — the paper's
/// Figure 2/3/5 presentation. The unit octagon (the "average" entity) is
/// drawn as a reference ring.
pub fn radar_chart(title: &str, profiles: &[Profile]) -> String {
    let cx = W / 2.0;
    let cy = H / 2.0 + 12.0;
    let r_max = 160.0;
    // Scale: the largest value (or 2.0, whichever is bigger) maps to r_max.
    let v_max = profiles
        .iter()
        .flat_map(|p| p.values.iter().map(|(_, v)| v))
        .fold(2.0f64, f64::max);
    let angle = |i: usize| {
        std::f64::consts::TAU * i as f64 / KeyMetric::ALL.len() as f64
            - std::f64::consts::FRAC_PI_2
    };
    let point = |i: usize, v: f64| {
        let r = (v / v_max).min(1.0) * r_max;
        (cx + r * angle(i).cos(), cy + r * angle(i).sin())
    };

    let mut out = svg_header(title);
    // Spokes + axis labels.
    for (i, m) in KeyMetric::ALL.iter().enumerate() {
        let (x, y) = point(i, v_max);
        out.push_str(&format!(
            "<line x1=\"{cx}\" y1=\"{cy}\" x2=\"{x:.1}\" y2=\"{y:.1}\" stroke=\"#ddd\"/>\n"
        ));
        let (lx, ly) = point(i, v_max * 1.13);
        out.push_str(&format!(
            "<text x=\"{lx:.1}\" y=\"{ly:.1}\" text-anchor=\"middle\" font-size=\"11\" fill=\"#555\">{}</text>\n",
            m.name()
        ));
    }
    // The unit ring (average = 1.0).
    let ring: Vec<String> = (0..KeyMetric::ALL.len())
        .map(|i| {
            let (x, y) = point(i, 1.0);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    out.push_str(&format!(
        "<polygon points=\"{}\" fill=\"none\" stroke=\"#999\" stroke-dasharray=\"4 3\"/>\n",
        ring.join(" ")
    ));
    // One polygon per profile.
    for (pi, p) in profiles.iter().enumerate() {
        let color = PALETTE[pi % PALETTE.len()];
        let pts: Vec<String> = p
            .values
            .iter()
            .enumerate()
            .map(|(i, (_, v))| {
                let (x, y) = point(i, v);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        out.push_str(&format!(
            "<polygon points=\"{}\" fill=\"{color}\" fill-opacity=\"0.12\" stroke=\"{color}\" stroke-width=\"1.8\"/>\n",
            pts.join(" ")
        ));
        // Legend.
        let ly = 44.0 + 16.0 * pi as f64;
        out.push_str(&format!(
            "<rect x=\"16\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\n\
             <text x=\"32\" y=\"{:.1}\" font-size=\"11\">{}</text>\n",
            ly - 9.0,
            ly,
            escape(&p.label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// A time-series line chart (Figures 8, 9, 11). `series` is a list of
/// `(label, points)`; x values are shared sample indices.
pub fn line_chart(title: &str, y_label: &str, series: &[(&str, Vec<f64>)]) -> String {
    let (x0, y0, x1, y1) = (70.0, 50.0, W - 20.0, H - 40.0);
    let n = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0).max(2);
    let v_max = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-12);
    let v_min = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let sx = |i: usize| x0 + (x1 - x0) * i as f64 / (n - 1) as f64;
    let sy = |v: f64| y1 - (y1 - y0) * (v - v_min) / (v_max - v_min);

    let mut out = svg_header(title);
    // Axes + gridlines with tick labels.
    out.push_str(&format!(
        "<line x1=\"{x0}\" y1=\"{y1}\" x2=\"{x1}\" y2=\"{y1}\" stroke=\"#333\"/>\n\
         <line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x0}\" y2=\"{y1}\" stroke=\"#333\"/>\n"
    ));
    for k in 0..=4 {
        let v = v_min + (v_max - v_min) * k as f64 / 4.0;
        let y = sy(v);
        out.push_str(&format!(
            "<line x1=\"{x0}\" y1=\"{y:.1}\" x2=\"{x1}\" y2=\"{y:.1}\" stroke=\"#eee\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" font-size=\"10\" fill=\"#555\">{v:.3}</text>\n",
            x0 - 6.0,
            y + 3.0
        ));
    }
    out.push_str(&format!(
        "<text x=\"16\" y=\"{:.1}\" font-size=\"11\" fill=\"#555\" transform=\"rotate(-90 16 {:.1})\">{}</text>\n",
        (y0 + y1) / 2.0,
        (y0 + y1) / 2.0,
        escape(y_label)
    ));
    for (si, (label, s)) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let pts: Vec<String> = s
            .iter()
            .enumerate()
            .map(|(i, &v)| format!("{:.1},{:.1}", sx(i), sy(v)))
            .collect();
        out.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.4\"/>\n",
            pts.join(" ")
        ));
        let ly = 44.0 + 16.0 * si as f64;
        out.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\n\
             <text x=\"{:.1}\" y=\"{ly:.1}\" font-size=\"11\">{}</text>\n",
            x1 - 150.0,
            ly - 9.0,
            x1 - 134.0,
            escape(label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// A density chart from `(x, density)` pairs (Figures 10, 12) — one curve
/// per labelled dataset.
pub fn density_chart(title: &str, x_label: &str, curves: &[(&str, Vec<(f64, f64)>)]) -> String {
    let series: Vec<(&str, Vec<f64>)> = curves
        .iter()
        .map(|(label, pts)| (*label, pts.iter().map(|&(_, d)| d).collect()))
        .collect();
    let mut out = line_chart(title, "density", &series);
    // Replace the closing tag to append the x-label.
    out.truncate(out.len() - "</svg>\n".len());
    out.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"11\" fill=\"#555\">{}</text>\n</svg>\n",
        W / 2.0,
        H - 12.0,
        escape(x_label)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;

    fn profile(label: &str, v: f64) -> Profile {
        Profile { label: label.into(), values: KeyMetricVec([v; 8]), node_hours: 10.0 }
    }

    fn assert_valid_svg(svg: &str) {
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced tags for the elements we emit.
        for tag in ["polygon", "polyline", "line", "text", "rect"] {
            let opens = svg.matches(&format!("<{tag} ")).count();
            let closes = svg.matches("/>").count() + svg.matches("</").count();
            assert!(opens <= closes, "{tag} unbalanced");
        }
    }

    #[test]
    fn radar_renders_profiles_and_reference_ring() {
        let svg = radar_chart("Figure 2", &[profile("u1", 0.5), profile("u2", 1.8)]);
        assert_valid_svg(&svg);
        // Two data polygons + one reference ring.
        assert_eq!(svg.matches("<polygon").count(), 3);
        assert!(svg.contains("cpu_idle"));
        assert!(svg.contains("u1") && svg.contains("u2"));
    }

    #[test]
    fn line_chart_scales_to_data() {
        let svg = line_chart(
            "Figure 9",
            "TF",
            &[("flops", vec![0.0, 5.0, 2.5, 10.0])],
        );
        assert_valid_svg(&svg);
        assert!(svg.contains("polyline"));
        assert!(svg.contains("10.000"), "max tick present: {svg}");
    }

    #[test]
    fn density_chart_has_two_curves_and_x_label() {
        let a: Vec<(f64, f64)> = (0..32).map(|i| (i as f64, (i as f64 / 10.0).sin().abs())).collect();
        let svg = density_chart("Figure 12", "GB", &[("mem_used", a.clone()), ("mem_used_max", a)]);
        assert_valid_svg(&svg);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">GB<"));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = radar_chart("a < b & c", &[profile("<script>", 1.0)]);
        assert!(!svg.contains("<script>"));
        assert!(svg.contains("&lt;script&gt;"));
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
