//! The custom report builder.
//!
//! §4.3: XDMoD "has many analyses reports preprogrammed and also the
//! option for stakeholders to define custom reports" — and the real
//! product ships a report builder that assembles selected panels into a
//! periodic document for center directors. This module is that feature:
//! a [`ReportSpec`] lists sections; [`build_report`] renders them into
//! one markdown document against a warehouse.

use supremm_metrics::KeyMetric;
use supremm_warehouse::{JobTable, SystemSeries};

use crate::framework::{run, Dimension, Query, Statistic};
use crate::reports;

/// One section of a custom report.
#[derive(Debug, Clone, PartialEq)]
pub enum Section {
    /// Free-text introduction.
    Preamble(String),
    /// Headline numbers: jobs, node-hours, users, efficiency.
    Summary,
    /// Any framework query, rendered as a markdown table.
    QueryTable { title: String, query: Query, value_header: String, top: Option<usize> },
    /// Normalized profiles of the top-N users (Figure 2 style).
    TopUserProfiles(usize),
    /// The wasted-node-hours summary (Figure 4 style).
    Efficiency,
    /// Per-mount Lustre + CPU-state + memory-per-core panels (Figure 7).
    SystemPanels,
    /// Utilisation trend + forecast (§4.3.5).
    Trend,
}

/// A custom report definition.
#[derive(Debug, Clone)]
pub struct ReportSpec {
    pub title: String,
    pub sections: Vec<Section>,
}

impl ReportSpec {
    /// The canned "center director monthly" report.
    pub fn center_monthly() -> ReportSpec {
        ReportSpec {
            title: "Center Operations Report".to_string(),
            sections: vec![
                Section::Summary,
                Section::QueryTable {
                    title: "Node-hours by application".into(),
                    query: Query {
                        dimension: Dimension::Application,
                        statistic: Statistic::NodeHours,
                        filters: vec![],
                    },
                    value_header: "node-hours".into(),
                    top: Some(10),
                },
                Section::QueryTable {
                    title: "Node-hours by parent science".into(),
                    query: Query {
                        dimension: Dimension::ScienceField,
                        statistic: Statistic::NodeHours,
                        filters: vec![],
                    },
                    value_header: "node-hours".into(),
                    top: None,
                },
                Section::Efficiency,
                Section::TopUserProfiles(5),
                Section::SystemPanels,
                Section::Trend,
            ],
        }
    }
}

/// Everything a report needs to render.
pub struct ReportInputs<'a> {
    pub table: &'a JobTable,
    pub series: &'a SystemSeries,
    pub node_count: u32,
    pub cores_per_node: u32,
    /// Label for the reporting window, e.g. "June 2011 – January 2013".
    pub window: String,
    pub machine: String,
}

fn md_table(title: &str, rows: &[(String, f64)], value_header: &str) -> String {
    let mut out = format!("### {title}\n\n| group | {value_header} |\n|---|---:|\n");
    for (label, value) in rows {
        out.push_str(&format!("| {label} | {value:.2} |\n"));
    }
    out.push('\n');
    out
}

/// Render a spec into one markdown document.
pub fn build_report(spec: &ReportSpec, inputs: &ReportInputs<'_>) -> String {
    let mut out = format!("# {} — {}\n\n*window: {}*\n\n", spec.title, inputs.machine, inputs.window);
    for section in &spec.sections {
        match section {
            Section::Preamble(text) => {
                out.push_str(text);
                out.push_str("\n\n");
            }
            Section::Summary => {
                let users = inputs.table.group_by(|j| j.user).len();
                out.push_str("## Summary\n\n");
                out.push_str(&format!(
                    "- jobs ingested: **{}**\n- node-hours delivered: **{:.0}**\n\
                     - distinct users: **{}**\n- node-hour-weighted mean job length: **{:.0} min**\n\n",
                    inputs.table.len(),
                    inputs.table.total_node_hours(),
                    users,
                    inputs.table.weighted_mean_job_len_min(),
                ));
            }
            Section::QueryTable { title, query, value_header, top } => {
                let mut ds = run(inputs.table, query);
                if let Some(n) = top {
                    ds.rows.truncate(*n);
                }
                out.push_str(&md_table(title, &ds.rows, value_header));
            }
            Section::TopUserProfiles(n) => {
                out.push_str(&format!("### Top-{n} user profiles (1.0 = machine average)\n\n"));
                out.push_str("| user | node-hrs |");
                for m in KeyMetric::ALL {
                    out.push_str(&format!(" {} |", m.name()));
                }
                out.push_str("\n|---|---:|");
                out.push_str(&"---:|".repeat(8));
                out.push('\n');
                for p in reports::user_profiles(inputs.table, *n) {
                    out.push_str(&format!("| {} | {:.0} |", p.label, p.node_hours));
                    for (_, v) in p.values.iter() {
                        out.push_str(&format!(" {v:.2} |"));
                    }
                    out.push('\n');
                }
                out.push('\n');
            }
            Section::Efficiency => {
                let w = reports::wasted_hours(inputs.table);
                out.push_str("### Efficiency\n\n");
                out.push_str(&format!(
                    "- machine average efficiency: **{:.1} %**\n- users above the efficiency line: **{}**\n",
                    w.average_efficiency * 100.0,
                    w.above_line().count()
                ));
                if let Some(worst) = w.worst_heavy_offender(0.5) {
                    out.push_str(&format!(
                        "- worst heavy offender: **{}** ({:.0} node-hrs at {:.0} % idle)\n",
                        worst.key,
                        worst.usage.node_hours,
                        worst.usage.idle_frac() * 100.0
                    ));
                }
                out.push('\n');
            }
            Section::SystemPanels => {
                let a = reports::mem_per_core_by_science(inputs.table, inputs.cores_per_node);
                out.push_str(&md_table("Memory per core by parent science [GB]", &a.rows, "GB/core"));
                let b = reports::cpu_hours_breakdown(inputs.series);
                out.push_str(&md_table("CPU node-hours by state", &b.rows, "node-hours"));
                let c = reports::lustre_throughput(inputs.series);
                out.push_str(&md_table("Lustre throughput by mount [MB/s]", &c.rows, "MB/s"));
            }
            Section::Trend => {
                out.push_str("### Utilisation trend\n\n");
                match reports::utilization_trend(inputs.series, inputs.node_count) {
                    Some(t) => out.push_str(&format!(
                        "- mean busy share: **{:.1} %**\n- diurnal swing: **{:.1} pp**\n\
                         - growth: **{:+.2} pp/day**{}\n- one-day-ahead forecast: \
                         **{:.1} %** [{:.1}, {:.1}]\n\n",
                        t.mean_busy_share * 100.0,
                        t.diurnal_swing * 100.0,
                        t.growth_per_day * 100.0,
                        if t.growth_significant { " (significant)" } else { "" },
                        t.next_day_forecast.1 * 100.0,
                        t.next_day_forecast.0 * 100.0,
                        t.next_day_forecast.2 * 100.0,
                    )),
                    None => out.push_str("window too short for a trend decomposition\n\n"),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;
    use supremm_metrics::{ExtendedMetric, JobId, ScienceField, Timestamp, UserId};
    use supremm_warehouse::record::{ExitKind, JobRecord};
    use supremm_warehouse::SystemBin;

    fn inputs_fixture() -> (JobTable, SystemSeries) {
        let job = |id: u64, user: u32| {
            let mut metrics = KeyMetricVec::default();
            metrics.set(KeyMetric::CpuIdle, 0.1);
            metrics.set(KeyMetric::MemUsed, 6e9);
            JobRecord {
                job: JobId(id),
                user: UserId(user),
                app: Some("NAMD".into()),
                science: ScienceField::Physics,
                queue: "normal".into(),
                submit: Timestamp(0),
                start: Timestamp(0),
                end: Timestamp(7200),
                nodes: 4,
                exit: ExitKind::Completed,
                metrics,
                extended: [0.0; ExtendedMetric::ALL.len()],
                flops_valid: true,
                samples: 12,
                coverage_gaps: 0,
            }
        };
        let table = JobTable::new((0..12).map(|i| job(i, (i % 5) as u32)).collect());
        let bins = (0..4320)
            .map(|i| {
                let mut b = SystemBin {
                    ts: Timestamp(i * 600),
                    active_nodes: 16,
                    busy_nodes: 13 + ((i / 72) % 3) as u32,
                    intervals: 16,
                    flops: 1e12,
                    mem_used_bytes: 16.0 * 6e9,
                    scratch_write_bps: 2e8,
                    ..Default::default()
                };
                b.cpu_user_sum = 13.0;
                b.cpu_idle_sum = 2.6;
                b.cpu_system_sum = 0.4;
                b
            })
            .collect();
        (table, SystemSeries { bin_secs: 600, bins })
    }

    #[test]
    fn monthly_report_renders_every_section() {
        let (table, series) = inputs_fixture();
        let spec = ReportSpec::center_monthly();
        let md = build_report(
            &spec,
            &ReportInputs {
                table: &table,
                series: &series,
                node_count: 16,
                cores_per_node: 16,
                window: "30 simulated days".into(),
                machine: "ranger".into(),
            },
        );
        for needle in [
            "# Center Operations Report — ranger",
            "## Summary",
            "Node-hours by application",
            "Node-hours by parent science",
            "### Efficiency",
            "Top-5 user profiles",
            "Lustre throughput by mount",
            "### Utilisation trend",
            "| NAMD |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn preamble_and_top_truncation_work() {
        let (table, series) = inputs_fixture();
        let spec = ReportSpec {
            title: "T".into(),
            sections: vec![
                Section::Preamble("hello world".into()),
                Section::QueryTable {
                    title: "users".into(),
                    query: Query {
                        dimension: Dimension::User,
                        statistic: Statistic::JobCount,
                        filters: vec![],
                    },
                    value_header: "jobs".into(),
                    top: Some(2),
                },
            ],
        };
        let md = build_report(
            &spec,
            &ReportInputs {
                table: &table,
                series: &series,
                node_count: 16,
                cores_per_node: 16,
                window: "w".into(),
                machine: "m".into(),
            },
        );
        assert!(md.contains("hello world"));
        // 5 users exist; only 2 rows rendered.
        let rows = md.lines().filter(|l| l.starts_with("| u0")).count();
        assert_eq!(rows, 2, "{md}");
    }

    #[test]
    fn markdown_tables_are_well_formed() {
        let md = md_table("t", &[("a".into(), 1.0), ("b".into(), 2.5)], "v");
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "### t");
        assert!(lines[2].starts_with("| group |"));
        assert!(lines[3].starts_with("|---|"));
        assert_eq!(lines[4], "| a | 1.00 |");
    }
}
