//! A minimal HTTP query API over the warehouse.
//!
//! XDMoD is a web application; its front end fetches report datasets from
//! a JSON endpoint. This module is that surface, dependency-free on
//! `std::net`: a small HTTP/1.1 responder exposing
//!
//! ```text
//! GET  /healthz
//! GET  /v1/summary
//! GET  /v1/query?dimension=<d>&statistic=<s>[&metric=<m>][&top=<n>]
//! GET  /v1/series?[host=<h>][&metric=<m>][&t0=<s>][&t1=<s>][&bin=<s>][&agg=<a>]
//! GET  /v1/metrics[?format=prometheus|json]
//! POST /v1/write                (relay wire frame in the body)
//! ```
//!
//! `POST /v1/write` is the live remote-write path: the body is one relay
//! wire frame ([`supremm_relay::wire`]) and the request is handed to the
//! attached [`IngestCore`] ([`ServeOptions::ingest`]). The response
//! ladder is 413 (body over [`ServeOptions::max_body_bytes`], refused
//! before the body is read) → 400 (undecodable frame) → 429 +
//! `Retry-After` (admission queue full or draining) → 200 (the batch is
//! durable — applied and WAL-synced — or a dedup-confirmed duplicate).
//! The write path never answers 5xx. Request bodies are read for every
//! method (a body left on the stream would desync keep-alive parsing);
//! over-limit bodies force a connection close because the stream cannot
//! be resynced past bytes the server refuses to read.
//!
//! `/v1/series` answers straight from the `tsdb` storage engine when one
//! is attached (time-range + host/metric predicates, optional
//! downsampling with `agg` ∈ mean|sum|min|max|last|count).
//!
//! The serve layer is a small thread pool: each worker owns a clone of
//! the listener and accepts connections independently, so one slow
//! client never blocks the rest. Connections are HTTP/1.1 persistent
//! (`Connection: keep-alive` semantics, bounded requests per connection,
//! short read timeout); HTTP/1.0 clients get the close-per-request
//! behaviour they expect. Successful `/v1/*` responses are cached in a
//! bounded LRU ([`ResponseCache`]) keyed by the canonical query string
//! and the store's mutation generation — any write to the store
//! invalidates every cached entry at the next lookup.
//!
//! The request handling is a pure function ([`handle_with_store`]) so the
//! protocol logic is unit-testable without sockets; [`serve`] /
//! [`serve_shared`] are the accept-loop wrappers.
//!
//! The serve loop reports into the `obs` self-observability registry
//! (`GET /v1/metrics` in Prometheus text or the in-house JSON):
//! per-endpoint request counters and latency histograms, an open
//! keep-alive connection gauge, cache hit/miss/eviction tallies,
//! response bytes and 4xx/5xx counts. Requests slower than
//! [`ServeOptions::slow_query_micros`] land in the registry's
//! ring-buffer event log (`kind == "slow_query"`), surfaced by
//! `supremm diagnose`. `/v1/metrics` itself is never cached — a stale
//! metrics snapshot would defeat the point.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use supremm_metrics::json::{obj, Value};
use supremm_obs::{Counter, Gauge, Histogram, ObsHandle, ObsRegistry, Timer};
use supremm_metrics::KeyMetric;
use supremm_relay::{IngestCore, WriteOutcome};
use supremm_warehouse::tsdb::{Agg, Selector, Tsdb};
use supremm_warehouse::JobTable;

use crate::framework::{run, Dimension, Query, Statistic};

/// An HTTP response, pre-serialisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
    /// Backpressure hint for 429/503 answers: emitted as `Retry-After`
    /// (whole seconds, rounded up) and `X-Retry-After-Ms` headers so
    /// clients that understand milliseconds don't over-wait.
    pub retry_after_ms: Option<u64>,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body, retry_after_ms: None }
    }

    fn error(status: u16, msg: &str) -> Response {
        Response::json(status, format!("{{\"error\":{:?}}}", msg))
    }

    fn with_retry_after(mut self, ms: u64) -> Response {
        self.retry_after_ms = Some(ms);
        self
    }

    /// Serialise as a close-delimited HTTP/1.1 message.
    pub fn to_http(&self) -> String {
        self.to_http_with(false)
    }

    /// Serialise as HTTP/1.1, advertising whether the connection stays
    /// open afterwards.
    pub fn to_http_with(&self, keep_alive: bool) -> String {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Error",
        };
        let retry = match self.retry_after_ms {
            Some(ms) => format!(
                "Retry-After: {}\r\nX-Retry-After-Ms: {ms}\r\n",
                ms.div_ceil(1000).max(1)
            ),
            None => String::new(),
        };
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n{}",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            retry,
            if keep_alive { "keep-alive" } else { "close" },
            self.body
        )
    }
}

fn parse_dimension(s: &str) -> Option<Dimension> {
    Some(match s {
        "none" => Dimension::None,
        "user" => Dimension::User,
        "application" => Dimension::Application,
        "science" => Dimension::ScienceField,
        "queue" => Dimension::Queue,
        "exit" => Dimension::ExitStatus,
        "job_size" => Dimension::JobSize,
        _ => return None,
    })
}

fn parse_statistic(s: &str, metric: Option<&str>) -> Option<Statistic> {
    Some(match s {
        "job_count" => Statistic::JobCount,
        "node_hours" => Statistic::NodeHours,
        "avg_wait_hours" => Statistic::AvgWaitHours,
        "weighted_job_length_min" => Statistic::WeightedJobLengthMin,
        "failure_rate" => Statistic::FailureRate,
        "weighted_mean" => Statistic::WeightedMean(KeyMetric::from_name(metric?)?),
        _ => return None,
    })
}

/// Split a target like `/v1/query?a=b&c=d` into path and query pairs.
/// A non-empty query segment without `=` is malformed, and so is a
/// repeated key (`?host=a&host=b` — which one did the client mean?):
/// the client gets a 400, not a silently dropped parameter.
fn split_target(target: &str) -> Result<(&str, Vec<(&str, &str)>), String> {
    let Some((path, qs)) = target.split_once('?') else {
        return Ok((target, Vec::new()));
    };
    let mut params: Vec<(&str, &str)> = Vec::new();
    for kv in qs.split('&') {
        if kv.is_empty() {
            continue;
        }
        match kv.split_once('=') {
            Some((k, v)) => {
                if params.iter().any(|&(seen, _)| seen == k) {
                    return Err(format!("duplicate query parameter {k:?}"));
                }
                params.push((k, v));
            }
            None => return Err(format!("malformed query parameter {kv:?}")),
        }
    }
    Ok((path, params))
}

/// First query key not in the endpoint's allowlist, as a 400 message.
/// A typo'd parameter silently ignored would return a confidently wrong
/// answer (e.g. `metrc=` falling back to the full result set).
fn unknown_param(params: &[(&str, &str)], allowed: &[&str]) -> Option<String> {
    params
        .iter()
        .find(|(k, _)| !allowed.contains(k))
        .map(|(k, _)| format!("unknown query parameter {k:?}"))
}

fn parse_agg(s: &str) -> Option<Agg> {
    Some(match s {
        "mean" => Agg::Mean,
        "sum" => Agg::Sum,
        "min" => Agg::Min,
        "max" => Agg::Max,
        "last" => Agg::Last,
        "count" => Agg::Count,
        _ => return None,
    })
}

/// Handle one request line (`GET <target> HTTP/1.x`) against the table.
pub fn handle(table: &JobTable, request_line: &str) -> Response {
    handle_with_store(table, None, request_line)
}

/// [`handle`], with an optional `tsdb` store behind `/v1/series`.
/// `/v1/metrics` answers from the process-wide [`supremm_obs::global`]
/// registry; use [`handle_with_obs`] to point it elsewhere.
pub fn handle_with_store(
    table: &JobTable,
    store: Option<&Tsdb>,
    request_line: &str,
) -> Response {
    handle_with_obs(table, store, &supremm_obs::global(), request_line)
}

/// Render the registry snapshot as the in-house JSON value type.
fn metrics_json(snap: &supremm_obs::Snapshot) -> Value {
    let counters: Vec<(String, Value)> =
        snap.counters.iter().map(|(k, v)| (k.clone(), (*v as f64).into())).collect();
    let gauges: Vec<(String, Value)> =
        snap.gauges.iter().map(|(k, v)| (k.clone(), (*v as f64).into())).collect();
    let histograms: Vec<(String, Value)> = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            let buckets: Vec<Value> = supremm_obs::BUCKET_BOUNDS
                .iter()
                .zip(h.buckets.iter())
                .filter(|&(_, n)| *n > 0)
                .map(|(le, n)| Value::Array(vec![(*le as f64).into(), (*n as f64).into()]))
                .collect();
            let fields = obj([
                ("count", (h.count as f64).into()),
                ("sum", (h.sum as f64).into()),
                ("overflow", (h.overflow as f64).into()),
                ("buckets", Value::Array(buckets)),
            ]);
            (k.clone(), fields)
        })
        .collect();
    let events: Vec<Value> = snap
        .events
        .iter()
        .map(|e| {
            obj([
                ("seq", (e.seq as f64).into()),
                ("kind", e.kind.as_str().into()),
                ("detail", e.detail.as_str().into()),
            ])
        })
        .collect();
    obj([
        ("counters", Value::Object(counters)),
        ("gauges", Value::Object(gauges)),
        ("histograms", Value::Object(histograms)),
        ("events", Value::Array(events)),
        ("events_dropped", (snap.events_dropped as f64).into()),
    ])
}

/// [`handle_with_store`], answering `/v1/metrics` from an explicit
/// registry instead of the process-wide one.
pub fn handle_with_obs(
    table: &JobTable,
    store: Option<&Tsdb>,
    obs: &ObsRegistry,
    request_line: &str,
) -> Response {
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return Response::error(400, "malformed request line"),
    };
    if method != "GET" {
        return Response::error(400, "only GET is supported");
    }
    let (path, params) = match split_target(target) {
        Ok(split) => split,
        Err(msg) => return Response::error(400, &msg),
    };
    let get = |key: &str| params.iter().find(|(k, _)| *k == key).map(|&(_, v)| v);
    match path {
        "/healthz" => Response::json(200, "{\"status\":\"ok\"}".into()),
        "/v1/summary" => {
            let users = table.group_by(|j| j.user).len();
            Response::json(
                200,
                format!(
                    "{{\"jobs\":{},\"node_hours\":{:.1},\"users\":{},\"weighted_job_length_min\":{:.1}}}",
                    table.len(),
                    table.total_node_hours(),
                    users,
                    table.weighted_mean_job_len_min()
                ),
            )
        }
        "/v1/query" => {
            if let Some(msg) = unknown_param(&params, &["dimension", "statistic", "metric", "top"])
            {
                return Response::error(400, &msg);
            }
            let Some(dimension) = get("dimension").and_then(parse_dimension) else {
                return Response::error(400, "missing/unknown dimension");
            };
            let Some(statistic) =
                get("statistic").and_then(|s| parse_statistic(s, get("metric")))
            else {
                return Response::error(400, "missing/unknown statistic (or metric)");
            };
            let top = match get("top") {
                None => None,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => return Response::error(400, "top must be an unsigned integer"),
                },
            };
            let mut ds = run(table, &Query { dimension, statistic, filters: vec![] });
            if let Some(n) = top {
                ds.rows.truncate(n);
            }
            Response::json(200, ds.to_json())
        }
        "/v1/series" => {
            if let Some(msg) =
                unknown_param(&params, &["host", "metric", "t0", "t1", "bin", "agg"])
            {
                return Response::error(400, &msg);
            }
            let Some(db) = store else {
                return Response::error(404, "no time-series store attached");
            };
            let sel = Selector {
                host: get("host").map(str::to_string),
                metric: get("metric").map(str::to_string),
            };
            let parse_ts = |key: &str, default: u64| match get(key) {
                None => Some(default),
                Some(v) => v.parse::<u64>().ok(),
            };
            let (Some(t0), Some(t1)) = (parse_ts("t0", 0), parse_ts("t1", u64::MAX))
            else {
                return Response::error(400, "t0/t1 must be unsigned seconds");
            };
            let result = match get("bin") {
                // Raw reads never consult rollups: whatever the query
                // returns came from the raw tier (the store clamps the
                // range at its raw watermark).
                None => db.query(&sel, t0, t1).map(|s| (s, vec!["raw".to_string()])),
                Some(bin) => {
                    let Ok(bin) = bin.parse::<u64>() else {
                        return Response::error(400, "bin must be unsigned seconds");
                    };
                    if bin == 0 {
                        return Response::error(400, "bin must be positive");
                    }
                    let Some(agg) = parse_agg(get("agg").unwrap_or("mean")) else {
                        return Response::error(400, "unknown agg");
                    };
                    db.downsample_tiered(&sel, t0, t1, bin, agg)
                }
            };
            let (series, tiers) = match result {
                Ok(answer) => answer,
                Err(e) => return Response::error(500, &format!("store: {e}")),
            };
            let body: Vec<Value> = series
                .into_iter()
                .map(|(key, points)| {
                    let pts: Vec<Value> = points
                        .into_iter()
                        .map(|(ts, v)| Value::Array(vec![(ts as f64).into(), v.into()]))
                        .collect();
                    obj([
                        ("host", key.host.as_str().into()),
                        ("metric", key.metric.as_str().into()),
                        ("points", Value::Array(pts)),
                    ])
                })
                .collect();
            let tiers: Vec<Value> = tiers.iter().map(|t| t.as_str().into()).collect();
            Response::json(
                200,
                obj([("series", Value::Array(body)), ("tiers", Value::Array(tiers))])
                    .to_string(),
            )
        }
        "/v1/metrics" => {
            if let Some(msg) = unknown_param(&params, &["format"]) {
                return Response::error(400, &msg);
            }
            let snap = obs.snapshot();
            match get("format").unwrap_or("prometheus") {
                "prometheus" => Response {
                    status: 200,
                    content_type: "text/plain; version=0.0.4",
                    body: supremm_obs::render_prometheus(&snap),
                    retry_after_ms: None,
                },
                "json" => Response::json(200, metrics_json(&snap).to_string()),
                other => {
                    Response::error(400, &format!("unknown format {other:?} (prometheus|json)"))
                }
            }
        }
        _ => Response::error(404, "unknown path"),
    }
}

// --- response cache -------------------------------------------------------

/// Tuning for the pooled serve loop.
#[derive(Clone)]
pub struct ServeOptions {
    /// Accept-loop worker threads.
    pub threads: usize,
    /// Max cached responses; 0 disables the cache.
    pub cache_entries: usize,
    /// Requests slower than this land in the obs event log as
    /// `slow_query` entries (`supremm serve --slow-query-ms`).
    pub slow_query_micros: u64,
    /// Registry the serve loop reports into.
    pub obs: ObsHandle,
    /// Ingest core behind `POST /v1/write`; without one the endpoint
    /// answers 503. The serve loop drains it on shutdown.
    pub ingest: Option<Arc<IngestCore>>,
    /// Largest acceptable request body. Beyond it the server answers
    /// 413 *without reading the body* and closes the connection (the
    /// stream cannot be resynced past bytes it refuses to read).
    pub max_body_bytes: usize,
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("threads", &self.threads)
            .field("cache_entries", &self.cache_entries)
            .field("slow_query_micros", &self.slow_query_micros)
            .field("ingest", &self.ingest.is_some())
            .field("max_body_bytes", &self.max_body_bytes)
            .finish()
    }
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 4,
            cache_entries: 256,
            slow_query_micros: 100_000,
            obs: supremm_obs::global(),
            ingest: None,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// The serve layer's canonical endpoint labels (everything else is
/// `other`). Fixed set, so per-endpoint handles are pre-registered and
/// the per-request path is lock-free.
const ENDPOINTS: [&str; 7] =
    ["healthz", "v1_summary", "v1_query", "v1_series", "v1_metrics", "v1_write", "other"];

fn endpoint_index(request_line: &str) -> usize {
    let path = request_line
        .split_whitespace()
        .nth(1)
        .map(|t| t.split_once('?').map_or(t, |(p, _)| p))
        .unwrap_or("");
    match path {
        "/healthz" => 0,
        "/v1/summary" => 1,
        "/v1/query" => 2,
        "/v1/series" => 3,
        "/v1/metrics" => 4,
        "/v1/write" => 5,
        _ => 6,
    }
}

struct EndpointMetrics {
    requests: Counter,
    latency: Histogram,
}

/// Obs handles cached once per serve loop; every per-request update is
/// a relaxed atomic op.
struct ServeMetrics {
    obs: ObsHandle,
    slow_query_micros: u64,
    endpoints: Vec<EndpointMetrics>,
    active_connections: Gauge,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    response_bytes: Counter,
    http_4xx: Counter,
    http_5xx: Counter,
    slow_queries: Counter,
}

impl ServeMetrics {
    fn new(opts: &ServeOptions) -> ServeMetrics {
        let obs = opts.obs.clone();
        // One entry per ENDPOINTS slot, in `endpoint_index` order. Names
        // are spelled out as literals so the lint can hold them to the
        // metric grammar and `grep` finds every registration.
        let endpoints = vec![
            EndpointMetrics {
                requests: obs.counter("serve_requests_total{endpoint=\"healthz\"}"),
                latency: obs.histogram("serve_request_micros{endpoint=\"healthz\"}"),
            },
            EndpointMetrics {
                requests: obs.counter("serve_requests_total{endpoint=\"v1_summary\"}"),
                latency: obs.histogram("serve_request_micros{endpoint=\"v1_summary\"}"),
            },
            EndpointMetrics {
                requests: obs.counter("serve_requests_total{endpoint=\"v1_query\"}"),
                latency: obs.histogram("serve_request_micros{endpoint=\"v1_query\"}"),
            },
            EndpointMetrics {
                requests: obs.counter("serve_requests_total{endpoint=\"v1_series\"}"),
                latency: obs.histogram("serve_request_micros{endpoint=\"v1_series\"}"),
            },
            EndpointMetrics {
                requests: obs.counter("serve_requests_total{endpoint=\"v1_metrics\"}"),
                latency: obs.histogram("serve_request_micros{endpoint=\"v1_metrics\"}"),
            },
            EndpointMetrics {
                requests: obs.counter("serve_requests_total{endpoint=\"v1_write\"}"),
                latency: obs.histogram("serve_request_micros{endpoint=\"v1_write\"}"),
            },
            EndpointMetrics {
                requests: obs.counter("serve_requests_total{endpoint=\"other\"}"),
                latency: obs.histogram("serve_request_micros{endpoint=\"other\"}"),
            },
        ];
        debug_assert_eq!(endpoints.len(), ENDPOINTS.len());
        ServeMetrics {
            slow_query_micros: opts.slow_query_micros,
            endpoints,
            active_connections: obs.gauge("serve_active_connections"),
            cache_hits: obs.counter("serve_cache_hits_total"),
            cache_misses: obs.counter("serve_cache_misses_total"),
            cache_evictions: obs.counter("serve_cache_evictions_total"),
            response_bytes: obs.counter("serve_response_bytes_total"),
            http_4xx: obs.counter("serve_http_4xx_total"),
            http_5xx: obs.counter("serve_http_5xx_total"),
            slow_queries: obs.counter("serve_slow_queries_total"),
            obs,
        }
    }

    /// Record one finished request (cached or computed).
    fn record(&self, request_line: &str, micros: u64, resp: &Response) {
        let ep = self.endpoints.get(endpoint_index(request_line));
        if let Some(ep) = ep {
            ep.requests.inc();
            ep.latency.observe(micros);
        }
        self.response_bytes.add(resp.body.len() as u64);
        if resp.status >= 500 {
            self.http_5xx.inc();
        } else if resp.status >= 400 {
            self.http_4xx.inc();
        }
        if micros >= self.slow_query_micros {
            self.slow_queries.inc();
            let target = request_line.split_whitespace().nth(1).unwrap_or(request_line);
            self.obs.event(
                "slow_query",
                format!("{target} took {micros}us (status {})", resp.status),
            );
        }
    }
}

/// RAII decrement for the open-connection gauge (connections exit
/// through several early returns).
struct ConnGuard<'a>(&'a Gauge);

impl<'a> ConnGuard<'a> {
    fn enter(gauge: &'a Gauge) -> ConnGuard<'a> {
        gauge.add(1);
        ConnGuard(gauge)
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

struct CacheEntry {
    generation: u64,
    last_used: u64,
    response: Response,
}

struct CacheInner {
    map: BTreeMap<String, CacheEntry>,
    tick: u64,
}

/// Bounded LRU cache of successful `/v1/*` responses, keyed by the
/// canonical query string (path + sorted parameters). Every entry
/// remembers the store generation it was computed at; a lookup with a
/// newer generation is a miss and drops the stale entry, so writers
/// invalidate the cache simply by mutating the store.
pub struct ResponseCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inner: Mutex<CacheInner>,
}

impl ResponseCache {
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inner: Mutex::new(CacheInner { map: BTreeMap::new(), tick: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A panic mid-insert can't corrupt a BTreeMap logically; recover.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get(&self, key: &str, generation: u64) -> Option<Response> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let stale = match inner.map.get_mut(key) {
            Some(entry) if entry.generation == generation => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry.response.clone());
            }
            Some(_) => true,
            None => false,
        };
        if stale {
            inner.map.remove(key);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert, evicting least-recently-used entries over capacity.
    /// Returns how many entries were evicted.
    pub fn put(&self, key: String, generation: u64, response: Response) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, CacheEntry { generation, last_used: tick, response });
        let mut evicted = 0;
        while inner.map.len() > self.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }

    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Canonical cache key for a request line, or `None` if the request is
/// not cacheable (non-GET, non-`/v1/` path, or malformed — those must
/// re-run so errors stay fresh). `/v1/metrics` is deliberately
/// uncacheable: its body is a live registry snapshot and the store
/// generation the cache keys on does not advance when metrics do.
fn cache_key(request_line: &str) -> Option<String> {
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next()?, parts.next()?);
    if method != "GET" {
        return None;
    }
    let (path, mut params) = split_target(target).ok()?;
    if !path.starts_with("/v1/") || path == "/v1/metrics" {
        return None;
    }
    params.sort_unstable();
    let mut key = String::with_capacity(target.len());
    key.push_str(path);
    for (i, (k, v)) in params.iter().enumerate() {
        key.push(if i == 0 { '?' } else { '&' });
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    Some(key)
}

/// How the serve loop reaches the (optional) store.
#[derive(Clone, Copy)]
enum StoreView<'a> {
    None,
    /// Exclusive reader: the store cannot change while serving.
    Direct(&'a Tsdb),
    /// Shared with writers; read-locked per request.
    Shared(&'a RwLock<Tsdb>),
}

/// Answer one request line, consulting the cache first. For the shared
/// view the read lock covers the generation probe *and* the compute, so
/// a cached entry can never be tagged with a generation it didn't see.
fn respond(
    table: &JobTable,
    view: StoreView<'_>,
    cache: Option<&ResponseCache>,
    met: &ServeMetrics,
    request_line: &str,
) -> Response {
    match view {
        StoreView::None => respond_with(table, None, cache, met, request_line),
        StoreView::Direct(db) => respond_with(table, Some(db), cache, met, request_line),
        StoreView::Shared(lock) => {
            let db = lock.read().unwrap_or_else(|e| e.into_inner());
            respond_with(table, Some(&db), cache, met, request_line)
        }
    }
}

fn respond_with(
    table: &JobTable,
    store: Option<&Tsdb>,
    cache: Option<&ResponseCache>,
    met: &ServeMetrics,
    request_line: &str,
) -> Response {
    let t = Timer::start();
    let resp = respond_inner(table, store, cache, met, request_line);
    met.record(request_line, t.elapsed_micros(), &resp);
    resp
}

fn respond_inner(
    table: &JobTable,
    store: Option<&Tsdb>,
    cache: Option<&ResponseCache>,
    met: &ServeMetrics,
    request_line: &str,
) -> Response {
    let Some(cache) = cache else {
        return handle_with_obs(table, store, &met.obs, request_line);
    };
    let Some(key) = cache_key(request_line) else {
        return handle_with_obs(table, store, &met.obs, request_line);
    };
    let generation = store.map(|db| db.generation()).unwrap_or(0);
    if let Some(hit) = cache.get(&key, generation) {
        met.cache_hits.inc();
        return hit;
    }
    met.cache_misses.inc();
    let resp = handle_with_obs(table, store, &met.obs, request_line);
    if resp.status == 200 {
        met.cache_evictions.add(cache.put(key, generation, resp.clone()) as u64);
    }
    resp
}

/// Answer one POST request. `None` means the ingest core's chaos plan
/// severed the connection: close the socket without writing anything.
fn respond_post(
    ingest: Option<&IngestCore>,
    met: &ServeMetrics,
    request_line: &str,
    body: &[u8],
) -> Option<Response> {
    let t = Timer::start();
    let path = request_line
        .split_whitespace()
        .nth(1)
        .map(|t| t.split_once('?').map_or(t, |(p, _)| p))
        .unwrap_or("");
    let resp = match (path, ingest) {
        ("/v1/write", Some(core)) => match core.submit(body) {
            WriteOutcome::Acked { seq, deduped } => {
                Response::json(200, format!("{{\"acked\":{seq},\"deduped\":{deduped}}}"))
            }
            WriteOutcome::Busy { retry_after_ms } => {
                Response::error(429, "admission queue full").with_retry_after(retry_after_ms)
            }
            WriteOutcome::Malformed(why) => Response::error(400, &why),
            WriteOutcome::TooLarge { limit } => {
                Response::error(413, &format!("body exceeds {limit} bytes"))
            }
            WriteOutcome::SeverConnection => return None,
        },
        ("/v1/write", None) => Response::error(503, "ingest not enabled"),
        _ => Response::error(404, "unknown path"),
    };
    met.record(request_line, t.elapsed_micros(), &resp);
    Some(resp)
}

// --- connection + accept loops --------------------------------------------

/// Hard ceiling on requests served per connection before forcing a
/// close (bounds how long one client can pin a worker).
const MAX_REQUESTS_PER_CONN: usize = 256;
/// Per-read timeout; an idle keep-alive connection is dropped after
/// this long with no bytes.
const READ_TIMEOUT: Duration = Duration::from_millis(500);
/// Oversized request headers are rejected outright.
const MAX_HEADER_BYTES: usize = 64 * 1024;

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serve one connection until the client closes, asks to close, idles
/// past the read timeout, or exhausts the per-connection budget.
fn serve_connection(
    mut stream: TcpStream,
    table: &JobTable,
    view: StoreView<'_>,
    cache: Option<&ResponseCache>,
    met: &ServeMetrics,
    ingest: Option<&IngestCore>,
    max_body_bytes: usize,
) {
    let _conn = ConnGuard::enter(&met.active_connections);
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(READ_TIMEOUT)).is_err()
    {
        return;
    }
    // Responses are latency-bound request/reply exchanges; leaving Nagle
    // on costs a delayed-ACK round (~40 ms) per keep-alive request.
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 4096];
    let mut served = 0usize;
    loop {
        let header_end = loop {
            if let Some(ix) = find_header_end(&buf) {
                break Some(ix);
            }
            if buf.len() > MAX_HEADER_BYTES {
                let resp = Response::error(400, "request header too large");
                let _ = stream.write_all(resp.to_http_with(false).as_bytes());
                return;
            }
            match stream.read(&mut scratch) {
                Ok(0) => break None,
                Ok(n) => buf.extend_from_slice(&scratch[..n]),
                Err(_) => break None, // timeout or reset
            }
        };
        let Some(end) = header_end else {
            // EOF/timeout before a blank line. Old-style clients send a
            // bare request line and wait; answer it once and close.
            if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&buf[..nl]);
                let resp = respond(table, view, cache, met, line.trim_end());
                let _ = stream.write_all(resp.to_http_with(false).as_bytes());
            }
            return;
        };
        let head = String::from_utf8_lossy(&buf[..end]).into_owned();
        buf.drain(..end + 4);
        let mut lines = head.lines();
        let request_line = lines.next().unwrap_or("").trim_end();
        // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an
        // explicit Connection header overrides either way.
        let mut keep = request_line.ends_with("HTTP/1.1");
        let mut content_length = 0usize;
        let mut bad_length = false;
        for header in lines {
            let Some((name, value)) = header.split_once(':') else { continue };
            let name = name.trim();
            if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep = true;
                }
            } else if name.eq_ignore_ascii_case("content-length") {
                match value.trim().parse::<usize>() {
                    Ok(n) => content_length = n,
                    Err(_) => bad_length = true,
                }
            }
        }
        if bad_length {
            let resp = Response::error(400, "unparseable content-length");
            let _ = stream.write_all(resp.to_http_with(false).as_bytes());
            return;
        }
        if content_length > max_body_bytes {
            let resp = Response::error(413, &format!("body exceeds {max_body_bytes} bytes"));
            met.record(request_line, 0, &resp);
            let _ = stream.write_all(resp.to_http_with(false).as_bytes());
            return;
        }
        // Read the declared body for every method — bytes left on the
        // stream would desync the next keep-alive request.
        let mut body: Vec<u8> = Vec::new();
        if content_length > 0 {
            while buf.len() < content_length {
                match stream.read(&mut scratch) {
                    Ok(0) => return,
                    Ok(n) => buf.extend_from_slice(&scratch[..n]),
                    Err(_) => return, // timeout mid-body
                }
            }
            body = buf.drain(..content_length).collect();
        }
        let resp = if request_line.starts_with("POST ") {
            match respond_post(ingest, met, request_line, &body) {
                Some(r) => r,
                None => return, // chaos plan: sever without answering
            }
        } else {
            respond(table, view, cache, met, request_line)
        };
        served += 1;
        let keep = keep && served < MAX_REQUESTS_PER_CONN;
        if stream.write_all(resp.to_http_with(keep).as_bytes()).is_err() || !keep {
            return;
        }
    }
}

/// The pooled accept loop: each worker owns a listener clone and
/// accepts independently until `shutdown` flips.
fn serve_pooled(
    table: &JobTable,
    view: StoreView<'_>,
    listener: TcpListener,
    shutdown: &AtomicBool,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let threads = opts.threads.max(1);
    let mut listeners = Vec::with_capacity(threads);
    for _ in 1..threads {
        listeners.push(listener.try_clone()?);
    }
    listeners.push(listener);
    let cache = ResponseCache::new(opts.cache_entries);
    let met = ServeMetrics::new(opts);
    let ingest = opts.ingest.as_deref();
    std::thread::scope(|scope| {
        for l in listeners {
            let cache = &cache;
            let met = &met;
            scope.spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match l.accept() {
                        Ok((stream, _)) => {
                            serve_connection(
                                stream,
                                table,
                                view,
                                Some(cache),
                                met,
                                ingest,
                                opts.max_body_bytes,
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => {
                            // Transient accept errors (e.g. aborted
                            // handshake) should not kill the worker.
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                }
            });
        }
    });
    // Workers have stopped accepting; flush every admitted batch into
    // the store before returning. A 200 already promised durability —
    // the drain keeps that promise across shutdown.
    if let Some(ingest) = &opts.ingest {
        ingest.drain();
    }
    Ok(())
}

/// Accept-loop: serve requests until `shutdown` flips. Binds are the
/// caller's job so tests can use an ephemeral port.
pub fn serve(table: &JobTable, listener: TcpListener, shutdown: &AtomicBool) -> std::io::Result<()> {
    serve_with_store(table, None, listener, shutdown)
}

/// [`serve`], with an optional read-only `tsdb` store behind
/// `/v1/series`.
pub fn serve_with_store(
    table: &JobTable,
    store: Option<&Tsdb>,
    listener: TcpListener,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let view = match store {
        Some(db) => StoreView::Direct(db),
        None => StoreView::None,
    };
    serve_pooled(table, view, listener, shutdown, &ServeOptions::default())
}

/// [`serve`], with a store that concurrent writers may mutate: each
/// request takes the read lock, and the response cache keys on the
/// store's mutation generation so writes invalidate it.
pub fn serve_shared(
    table: &JobTable,
    store: Option<&RwLock<Tsdb>>,
    listener: TcpListener,
    shutdown: &AtomicBool,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    let view = match store {
        Some(lock) => StoreView::Shared(lock),
        None => StoreView::None,
    };
    serve_pooled(table, view, listener, shutdown, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;
    use supremm_metrics::{ExtendedMetric, JobId, ScienceField, Timestamp, UserId};
    use supremm_warehouse::record::{ExitKind, JobRecord};

    fn table() -> JobTable {
        let job = |id: u64, app: &str, idle: f64| {
            let mut metrics = KeyMetricVec::default();
            metrics.set(KeyMetric::CpuIdle, idle);
            JobRecord {
                job: JobId(id),
                user: UserId(id as u32 % 3),
                app: Some(app.to_string()),
                science: ScienceField::Physics,
                queue: "normal".into(),
                submit: Timestamp(0),
                start: Timestamp(0),
                end: Timestamp(3600),
                nodes: 2,
                exit: ExitKind::Completed,
                metrics,
                extended: [0.0; ExtendedMetric::ALL.len()],
                flops_valid: true,
                samples: 5,
                coverage_gaps: 0,
            }
        };
        JobTable::new(vec![job(1, "NAMD", 0.1), job(2, "AMBER", 0.4), job(3, "NAMD", 0.2)])
    }

    #[test]
    fn healthz_and_summary() {
        let t = table();
        let r = handle(&t, "GET /healthz HTTP/1.0");
        assert_eq!(r.status, 200);
        let r = handle(&t, "GET /v1/summary HTTP/1.0");
        assert_eq!(r.status, 200);
        let v = supremm_metrics::json::Value::parse(&r.body).unwrap();
        assert_eq!(v["jobs"], 3u64);
        assert_eq!(v["users"], 3u64);
    }

    #[test]
    fn query_endpoint_runs_framework_queries() {
        let t = table();
        let r = handle(
            &t,
            "GET /v1/query?dimension=application&statistic=node_hours HTTP/1.0",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let v = supremm_metrics::json::Value::parse(&r.body).unwrap();
        assert_eq!(v["rows"][0][0], "NAMD");
        assert_eq!(v["rows"][0][1], 4.0);
    }

    #[test]
    fn weighted_mean_needs_metric_param() {
        let t = table();
        let bad = handle(&t, "GET /v1/query?dimension=none&statistic=weighted_mean HTTP/1.0");
        assert_eq!(bad.status, 400);
        let good = handle(
            &t,
            "GET /v1/query?dimension=none&statistic=weighted_mean&metric=cpu_idle HTTP/1.0",
        );
        assert_eq!(good.status, 200);
        let v = supremm_metrics::json::Value::parse(&good.body).unwrap();
        let idle = v["rows"][0][1].as_f64().unwrap();
        assert!((idle - (0.1 + 0.4 + 0.2) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn top_truncates_and_errors_are_clean() {
        let t = table();
        let r = handle(
            &t,
            "GET /v1/query?dimension=user&statistic=job_count&top=1 HTTP/1.0",
        );
        let v = supremm_metrics::json::Value::parse(&r.body).unwrap();
        assert_eq!(v["rows"].as_array().unwrap().len(), 1);
        assert_eq!(handle(&t, "GET /nope HTTP/1.0").status, 404);
        assert_eq!(handle(&t, "POST /healthz HTTP/1.0").status, 400);
        assert_eq!(handle(&t, "garbage").status, 400);
        assert_eq!(
            handle(&t, "GET /v1/query?dimension=bogus&statistic=job_count HTTP/1.0").status,
            400
        );
    }

    #[test]
    fn garbage_query_strings_get_a_4xx() {
        let t = table();
        for bad in [
            // Query segment with no `=` at all.
            "GET /v1/series?garbage HTTP/1.0",
            "GET /v1/query?dimension HTTP/1.0",
            // Keys no endpoint knows — a typo must not silently widen
            // the result set.
            "GET /v1/series?nosuchparam=1 HTTP/1.0",
            "GET /v1/query?dimension=user&statistic=job_count&metrc=cpu_idle HTTP/1.0",
            // Well-known key, junk value.
            "GET /v1/query?dimension=user&statistic=job_count&top=abc HTTP/1.0",
            "GET /v1/query?dimension=user&statistic=job_count&top=-1 HTTP/1.0",
        ] {
            let r = handle(&t, bad);
            assert_eq!(r.status, 400, "{bad} -> {}", r.body);
        }
        // Empty segments (trailing `&`) are tolerated, not errors.
        let ok = handle(&t, "GET /v1/query?dimension=user&statistic=job_count& HTTP/1.0");
        assert_eq!(ok.status, 200, "{}", ok.body);
    }

    #[test]
    fn duplicate_query_parameters_get_a_400() {
        let t = table();
        for bad in [
            "GET /v1/series?host=a&host=b HTTP/1.0",
            "GET /v1/series?host=a&metric=m&host=a HTTP/1.0",
            "GET /v1/query?dimension=user&statistic=job_count&dimension=queue HTTP/1.0",
            "GET /v1/query?top=1&top=2&dimension=user&statistic=job_count HTTP/1.0",
        ] {
            let r = handle(&t, bad);
            assert_eq!(r.status, 400, "{bad} -> {}", r.body);
            assert!(r.body.contains("duplicate"), "{bad} -> {}", r.body);
        }
    }

    #[test]
    fn series_endpoint_answers_from_the_store() {
        let dir = std::env::temp_dir().join(format!("serve-series-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut db = Tsdb::open(&dir).unwrap();
        db.append_batch("c0000", "cpu_user", &[(0, 0.25), (600, 0.75), (1200, 0.5)])
            .unwrap();
        db.flush().unwrap();
        let t = table();
        // Without a store attached the endpoint is a clean 404.
        assert_eq!(handle(&t, "GET /v1/series HTTP/1.0").status, 404);
        let r = handle_with_store(
            &t,
            Some(&db),
            "GET /v1/series?host=c0000&metric=cpu_user&t0=0&t1=600 HTTP/1.0",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["series"][0]["host"], "c0000");
        assert_eq!(v["series"][0]["metric"], "cpu_user");
        assert_eq!(v["series"][0]["points"].as_array().unwrap().len(), 2);
        assert_eq!(v["series"][0]["points"][1][1], 0.75);
        // Downsampling folds all three samples into one mean bin.
        let r = handle_with_store(&t, Some(&db), "GET /v1/series?bin=1800 HTTP/1.0");
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["series"][0]["points"][0][1], 0.5);
        // Bad parameters are clean 400s.
        for bad in [
            "GET /v1/series?t0=x HTTP/1.0",
            "GET /v1/series?bin=0 HTTP/1.0",
            "GET /v1/series?bin=600&agg=median HTTP/1.0",
        ] {
            assert_eq!(handle_with_store(&t, Some(&db), bad).status, 400, "{bad}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn response_cache_is_lru_and_generation_keyed() {
        let cache = ResponseCache::new(2);
        let resp = |s: &str| Response::json(200, s.to_string());
        cache.put("a".into(), 1, resp("A"));
        cache.put("b".into(), 1, resp("B"));
        assert_eq!(cache.get("a", 1).unwrap().body, "A");
        // Inserting a third entry evicts the least recently used: "b".
        cache.put("c".into(), 1, resp("C"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b", 1).is_none());
        assert!(cache.get("a", 1).is_some());
        // A newer generation misses and drops the stale entry.
        assert!(cache.get("a", 2).is_none());
        assert!(cache.get("a", 1).is_none(), "stale entry evicted on mismatch");
        assert!(cache.hits() >= 2);
        assert!(cache.misses() >= 2);
        // Capacity 0 disables caching entirely.
        let off = ResponseCache::new(0);
        off.put("x".into(), 1, resp("X"));
        assert!(off.get("x", 1).is_none());
        assert!(off.is_empty());
    }

    /// Fresh isolated metrics (and options) for pure-function tests.
    fn test_metrics() -> (ServeOptions, ServeMetrics) {
        let opts = ServeOptions {
            obs: std::sync::Arc::new(ObsRegistry::new()),
            ..ServeOptions::default()
        };
        let met = ServeMetrics::new(&opts);
        (opts, met)
    }

    #[test]
    fn cached_series_responses_invalidate_on_store_writes() {
        let dir = std::env::temp_dir().join(format!("serve-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut db = Tsdb::open(&dir).unwrap();
        db.append_batch("h", "m", &[(0, 1.0)]).unwrap();
        let t = table();
        let cache = ResponseCache::new(16);
        let (_opts, met) = test_metrics();
        let line = "GET /v1/series?host=h&metric=m HTTP/1.1";
        let first = respond_with(&t, Some(&db), Some(&cache), &met, line);
        assert_eq!(first.status, 200);
        // Same generation: served from cache, bit-identical.
        let again = respond_with(&t, Some(&db), Some(&cache), &met, line);
        assert_eq!(first, again);
        assert_eq!(cache.hits(), 1);
        // Equivalent query, different parameter order: same cache slot.
        let reordered = respond_with(
            &t,
            Some(&db),
            Some(&cache),
            &met,
            "GET /v1/series?metric=m&host=h HTTP/1.1",
        );
        assert_eq!(reordered, first);
        assert_eq!(cache.hits(), 2);
        // A write bumps the generation; the next read recomputes.
        db.append_batch("h", "m", &[(600, 2.0)]).unwrap();
        let after = respond_with(&t, Some(&db), Some(&cache), &met, line);
        assert_ne!(after, first, "stale response must not be served");
        assert!(after.body.contains("600"));
        // The obs mirror saw the same traffic.
        let snap = met.obs.snapshot();
        assert_eq!(snap.counter("serve_cache_hits_total"), Some(2));
        assert_eq!(snap.counter("serve_cache_misses_total"), Some(2));
        assert_eq!(
            snap.counter("serve_requests_total{endpoint=\"v1_series\"}"),
            Some(4)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_endpoint_renders_prometheus_and_json() {
        let t = table();
        let obs = ObsRegistry::new();
        obs.counter("pipeline_files_consumed_total").add(5);
        obs.histogram("tsdb_wal_append_micros").observe(7);
        obs.event("deprecation", "v1 segment read shim used for seg-000001.tsdb");
        let r = handle_with_obs(&t, None, &obs, "GET /v1/metrics HTTP/1.1");
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(r.content_type, "text/plain; version=0.0.4");
        assert!(r.body.contains("pipeline_files_consumed_total 5\n"), "{}", r.body);
        assert!(r.body.contains("tsdb_wal_append_micros_count 1\n"), "{}", r.body);

        let r = handle_with_obs(&t, None, &obs, "GET /v1/metrics?format=json HTTP/1.1");
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["counters"]["pipeline_files_consumed_total"], 5.0);
        assert_eq!(v["histograms"]["tsdb_wal_append_micros"]["count"], 1.0);
        assert_eq!(v["events"][0]["kind"], "deprecation");

        // Unknown formats and parameters are clean 400s.
        let bad = handle_with_obs(&t, None, &obs, "GET /v1/metrics?format=xml HTTP/1.1");
        assert_eq!(bad.status, 400);
        let bad = handle_with_obs(&t, None, &obs, "GET /v1/metrics?fmt=json HTTP/1.1");
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn metrics_endpoint_is_never_cached() {
        assert_eq!(cache_key("GET /v1/metrics HTTP/1.1"), None);
        assert_eq!(cache_key("GET /v1/metrics?format=json HTTP/1.1"), None);
        assert!(cache_key("GET /v1/series?host=h HTTP/1.1").is_some());
    }

    #[test]
    fn slow_requests_land_in_the_event_log() {
        let t = table();
        let (opts, _) = test_metrics();
        // Threshold 0: every request is "slow".
        let opts = ServeOptions { slow_query_micros: 0, ..opts };
        let met = ServeMetrics::new(&opts);
        let r = respond_with(&t, None, None, &met, "GET /v1/summary HTTP/1.1");
        assert_eq!(r.status, 200);
        let snap = met.obs.snapshot();
        assert_eq!(snap.counter("serve_slow_queries_total"), Some(1));
        let ev = snap.events.iter().find(|e| e.kind == "slow_query").expect("slow_query event");
        assert!(ev.detail.contains("/v1/summary"), "{}", ev.detail);
        assert!(ev.detail.contains("status 200"), "{}", ev.detail);
    }

    #[test]
    fn request_metrics_tally_status_classes_and_bytes() {
        let t = table();
        let (_opts, met) = test_metrics();
        let ok = respond_with(&t, None, None, &met, "GET /healthz HTTP/1.1");
        let notfound = respond_with(&t, None, None, &met, "GET /nope HTTP/1.1");
        let bad = respond_with(&t, None, None, &met, "POST /healthz HTTP/1.1");
        let snap = met.obs.snapshot();
        // Endpoint labels follow the path (the rejected POST still
        // counts against /healthz — it consumed that handler's time).
        assert_eq!(snap.counter("serve_requests_total{endpoint=\"healthz\"}"), Some(2));
        assert_eq!(snap.counter("serve_requests_total{endpoint=\"other\"}"), Some(1));
        assert_eq!(snap.counter("serve_http_4xx_total"), Some(2));
        assert_eq!(snap.counter("serve_http_5xx_total"), Some(0));
        assert_eq!(
            snap.counter("serve_response_bytes_total"),
            Some((ok.body.len() + notfound.body.len() + bad.body.len()) as u64)
        );
        assert!(snap
            .histogram("serve_request_micros{endpoint=\"healthz\"}")
            .is_some_and(|h| h.count == 2));
    }

    /// Read exactly one HTTP response (headers + Content-Length body).
    fn read_response(stream: &mut std::net::TcpStream) -> String {
        let mut buf = Vec::new();
        let mut scratch = [0u8; 1024];
        let header_end = loop {
            if let Some(ix) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break ix;
            }
            let n = stream.read(&mut scratch).unwrap();
            assert!(n > 0, "connection closed mid-headers");
            buf.extend_from_slice(&scratch[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("Content-Length header");
        while buf.len() < header_end + 4 + content_length {
            let n = stream.read(&mut scratch).unwrap();
            assert!(n > 0, "connection closed mid-body");
            buf.extend_from_slice(&scratch[..n]);
        }
        String::from_utf8_lossy(&buf[..header_end + 4 + content_length]).into_owned()
    }

    #[test]
    fn live_socket_round_trip() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let t = table();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle_thread = std::thread::spawn(move || {
            let _ = serve(&t, listener, &flag);
        });

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /v1/summary HTTP/1.0\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        assert!(response.contains("\"jobs\":3"), "{response}");

        shutdown.store(true, Ordering::Relaxed);
        handle_thread.join().unwrap();
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let t = table();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle_thread = std::thread::spawn(move || {
            let _ = serve(&t, listener, &flag);
        });

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        // HTTP/1.1 defaults to keep-alive: three requests, one socket.
        for _ in 0..3 {
            stream
                .write_all(b"GET /v1/summary HTTP/1.1\r\nHost: test\r\n\r\n")
                .unwrap();
            let response = read_response(&mut stream);
            assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
            assert!(response.contains("Connection: keep-alive"), "{response}");
            assert!(response.contains("\"jobs\":3"), "{response}");
        }
        // An explicit Connection: close is honoured and the socket ends.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let response = read_response(&mut stream);
        assert!(response.contains("Connection: close"), "{response}");
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "server should close after Connection: close");

        shutdown.store(true, Ordering::Relaxed);
        handle_thread.join().unwrap();
    }

    #[test]
    fn parallel_connections_are_served_concurrently() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let t = table();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let server = std::thread::spawn(move || {
            let _ = serve(&t, listener, &flag);
        });

        let clients: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = std::net::TcpStream::connect(addr).unwrap();
                    stream
                        .write_all(b"GET /v1/summary HTTP/1.1\r\nHost: t\r\n\r\n")
                        .unwrap();
                    let response = read_response(&mut stream);
                    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        shutdown.store(true, Ordering::Relaxed);
        server.join().unwrap();
    }

    #[test]
    fn shared_store_serves_and_sees_writes() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!("serve-shared-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut db = Tsdb::open(&dir).unwrap();
        db.append_batch("h", "m", &[(0, 1.0)]).unwrap();
        let store = Arc::new(RwLock::new(db));
        let t = table();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));

        let flag = shutdown.clone();
        let server_store = store.clone();
        let server = std::thread::spawn(move || {
            let _ = serve_shared(
                &t,
                Some(&server_store),
                listener,
                &flag,
                &ServeOptions { threads: 2, cache_entries: 32, ..ServeOptions::default() },
            );
        });

        let fetch = || {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"GET /v1/series?host=h&metric=m HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            read_response(&mut stream)
        };
        let before = fetch();
        assert!(before.contains("HTTP/1.1 200 OK"), "{before}");
        // Cached: an identical fetch is consistent.
        assert_eq!(fetch(), before);
        // A concurrent write invalidates the cache via the generation.
        store
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .append_batch("h", "m", &[(600, 2.0)])
            .unwrap();
        let after = fetch();
        assert_ne!(after, before);
        assert!(after.contains("600"), "{after}");

        shutdown.store(true, Ordering::Relaxed);
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_after_headers_are_emitted() {
        let r = Response::error(429, "busy").with_retry_after(1500);
        let http = r.to_http_with(true);
        assert!(http.starts_with("HTTP/1.1 429 Too Many Requests"), "{http}");
        assert!(http.contains("Retry-After: 2\r\n"), "{http}");
        assert!(http.contains("X-Retry-After-Ms: 1500\r\n"), "{http}");
        let plain = Response::error(400, "x").to_http();
        assert!(!plain.contains("Retry-After"), "{plain}");
    }

    #[test]
    fn write_outcomes_map_to_http_statuses() {
        let dir = std::env::temp_dir().join(format!("serve-post-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let obs: ObsHandle = Arc::new(ObsRegistry::new());
        let store = Arc::new(RwLock::new(Tsdb::open(&dir).unwrap()));
        let core = IngestCore::start(
            store,
            supremm_relay::IngestOptions { obs: obs.clone(), ..Default::default() },
        );
        let opts = ServeOptions { obs, ..ServeOptions::default() };
        let met = ServeMetrics::new(&opts);

        // No ingest core attached: 503.
        let r = respond_post(None, &met, "POST /v1/write HTTP/1.1", b"").unwrap();
        assert_eq!(r.status, 503);
        // POSTs to other paths are clean 404s.
        let r = respond_post(Some(&core), &met, "POST /healthz HTTP/1.1", b"").unwrap();
        assert_eq!(r.status, 404);
        // Garbage frame: 400.
        let r = respond_post(Some(&core), &met, "POST /v1/write HTTP/1.1", b"junk").unwrap();
        assert_eq!(r.status, 400);
        // A valid frame acks with its seq.
        let frame = supremm_relay::encode_batch(&supremm_relay::Batch {
            agent_id: "a1".into(),
            batch_seq: 7,
            records: vec![supremm_relay::BatchRecord {
                host: "h".into(),
                metric: "m".into(),
                samples: vec![(600, 1.5f64.to_bits())],
            }],
        })
        .unwrap();
        let r = respond_post(Some(&core), &met, "POST /v1/write HTTP/1.1", &frame).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"acked\":7"), "{}", r.body);
        assert!(r.body.contains("\"deduped\":false"), "{}", r.body);
        // Draining: 429 with a retry hint.
        core.begin_drain();
        let r = respond_post(Some(&core), &met, "POST /v1/write HTTP/1.1", &frame).unwrap();
        assert_eq!(r.status, 429);
        assert!(r.retry_after_ms.is_some());
        core.drain();
        let snap = met.obs.snapshot();
        // Four of the five POSTs hit /v1/write (one went to /healthz).
        assert_eq!(snap.counter("serve_requests_total{endpoint=\"v1_write\"}"), Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn post_write_ingests_and_oversized_bodies_get_413() {
        use std::sync::atomic::AtomicBool;

        let dir = std::env::temp_dir().join(format!("serve-write-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = Arc::new(RwLock::new(Tsdb::open(&dir).unwrap()));
        let obs: ObsHandle = Arc::new(ObsRegistry::new());
        let core = IngestCore::start(
            store.clone(),
            supremm_relay::IngestOptions { obs: obs.clone(), ..Default::default() },
        );
        let t = table();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let opts = ServeOptions {
            threads: 2,
            obs,
            ingest: Some(core),
            max_body_bytes: 4096,
            ..ServeOptions::default()
        };
        let server_store = store.clone();
        let server = std::thread::spawn(move || {
            let _ = serve_shared(&t, Some(&server_store), listener, &flag, &opts);
        });

        let frame = supremm_relay::encode_batch(&supremm_relay::Batch {
            agent_id: "a1".into(),
            batch_seq: 0,
            records: vec![supremm_relay::BatchRecord {
                host: "h".into(),
                metric: "m".into(),
                samples: vec![(600, 1.25f64.to_bits())],
            }],
        })
        .unwrap();
        let head = format!(
            "POST /v1/write HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            frame.len()
        );
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(&frame).unwrap();
        let resp = read_response(&mut stream);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("\"acked\":0"), "{resp}");
        // Retry of the same frame over the same keep-alive socket: the
        // ack repeats but the store is not double-written.
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(&frame).unwrap();
        let resp = read_response(&mut stream);
        assert!(resp.contains("\"deduped\":true"), "{resp}");
        // GETs interleave on the same connection after a POST body.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let resp = read_response(&mut stream);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        // Over-limit body: refused before it is read, connection closes.
        stream
            .write_all(b"POST /v1/write HTTP/1.1\r\nHost: t\r\nContent-Length: 5000\r\n\r\n")
            .unwrap();
        let resp = read_response(&mut stream);
        assert!(resp.starts_with("HTTP/1.1 413 Payload Too Large"), "{resp}");
        assert!(resp.contains("Connection: close"), "{resp}");

        shutdown.store(true, Ordering::Relaxed);
        server.join().unwrap();
        // The serve loop drained the core on exit: the acked batch is in
        // the store, exactly once.
        let db = store.read().unwrap_or_else(|e| e.into_inner());
        let series = db.query(&Selector::default(), 0, u64::MAX).unwrap();
        let total: usize = series.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, 1, "acked batch must land exactly once");
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
