//! A minimal HTTP query API over the warehouse.
//!
//! XDMoD is a web application; its front end fetches report datasets from
//! a JSON endpoint. This module is that surface, dependency-free on
//! `std::net`: a tiny HTTP/1.0 responder exposing
//!
//! ```text
//! GET /healthz
//! GET /v1/summary
//! GET /v1/query?dimension=<d>&statistic=<s>[&metric=<m>][&top=<n>]
//! GET /v1/series?[host=<h>][&metric=<m>][&t0=<s>][&t1=<s>][&bin=<s>][&agg=<a>]
//! ```
//!
//! `/v1/series` answers straight from the `tsdb` storage engine when one
//! is attached (time-range + host/metric predicates, optional
//! downsampling with `agg` ∈ mean|sum|min|max|last|count).
//!
//! The request handling is a pure function ([`handle_with_store`]) so the
//! protocol logic is unit-testable without sockets; [`serve`] is the thin
//! accept-loop wrapper.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};

use supremm_metrics::json::{obj, Value};
use supremm_metrics::KeyMetric;
use supremm_warehouse::tsdb::{Agg, Selector, Tsdb};
use supremm_warehouse::JobTable;

use crate::framework::{run, Dimension, Query, Statistic};

/// An HTTP response, pre-serialisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body }
    }

    fn error(status: u16, msg: &str) -> Response {
        Response::json(status, format!("{{\"error\":{:?}}}", msg))
    }

    /// Serialise as an HTTP/1.0 message.
    pub fn to_http(&self) -> String {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            _ => "Error",
        };
        format!(
            "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            self.body
        )
    }
}

fn parse_dimension(s: &str) -> Option<Dimension> {
    Some(match s {
        "none" => Dimension::None,
        "user" => Dimension::User,
        "application" => Dimension::Application,
        "science" => Dimension::ScienceField,
        "queue" => Dimension::Queue,
        "exit" => Dimension::ExitStatus,
        "job_size" => Dimension::JobSize,
        _ => return None,
    })
}

fn parse_statistic(s: &str, metric: Option<&str>) -> Option<Statistic> {
    Some(match s {
        "job_count" => Statistic::JobCount,
        "node_hours" => Statistic::NodeHours,
        "avg_wait_hours" => Statistic::AvgWaitHours,
        "weighted_job_length_min" => Statistic::WeightedJobLengthMin,
        "failure_rate" => Statistic::FailureRate,
        "weighted_mean" => Statistic::WeightedMean(KeyMetric::from_name(metric?)?),
        _ => return None,
    })
}

/// Split a target like `/v1/query?a=b&c=d` into path and query pairs.
/// A non-empty query segment without `=` is malformed: the client gets
/// a 400, not a silently dropped parameter.
fn split_target(target: &str) -> Result<(&str, Vec<(&str, &str)>), String> {
    let Some((path, qs)) = target.split_once('?') else {
        return Ok((target, Vec::new()));
    };
    let mut params = Vec::new();
    for kv in qs.split('&') {
        if kv.is_empty() {
            continue;
        }
        match kv.split_once('=') {
            Some((k, v)) => params.push((k, v)),
            None => return Err(format!("malformed query parameter {kv:?}")),
        }
    }
    Ok((path, params))
}

/// First query key not in the endpoint's allowlist, as a 400 message.
/// A typo'd parameter silently ignored would return a confidently wrong
/// answer (e.g. `metrc=` falling back to the full result set).
fn unknown_param(params: &[(&str, &str)], allowed: &[&str]) -> Option<String> {
    params
        .iter()
        .find(|(k, _)| !allowed.contains(k))
        .map(|(k, _)| format!("unknown query parameter {k:?}"))
}

fn parse_agg(s: &str) -> Option<Agg> {
    Some(match s {
        "mean" => Agg::Mean,
        "sum" => Agg::Sum,
        "min" => Agg::Min,
        "max" => Agg::Max,
        "last" => Agg::Last,
        "count" => Agg::Count,
        _ => return None,
    })
}

/// Handle one request line (`GET <target> HTTP/1.x`) against the table.
pub fn handle(table: &JobTable, request_line: &str) -> Response {
    handle_with_store(table, None, request_line)
}

/// [`handle`], with an optional `tsdb` store behind `/v1/series`.
pub fn handle_with_store(
    table: &JobTable,
    store: Option<&Tsdb>,
    request_line: &str,
) -> Response {
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return Response::error(400, "malformed request line"),
    };
    if method != "GET" {
        return Response::error(400, "only GET is supported");
    }
    let (path, params) = match split_target(target) {
        Ok(split) => split,
        Err(msg) => return Response::error(400, &msg),
    };
    let get = |key: &str| params.iter().find(|(k, _)| *k == key).map(|&(_, v)| v);
    match path {
        "/healthz" => Response::json(200, "{\"status\":\"ok\"}".into()),
        "/v1/summary" => {
            let users = table.group_by(|j| j.user).len();
            Response::json(
                200,
                format!(
                    "{{\"jobs\":{},\"node_hours\":{:.1},\"users\":{},\"weighted_job_length_min\":{:.1}}}",
                    table.len(),
                    table.total_node_hours(),
                    users,
                    table.weighted_mean_job_len_min()
                ),
            )
        }
        "/v1/query" => {
            if let Some(msg) = unknown_param(&params, &["dimension", "statistic", "metric", "top"])
            {
                return Response::error(400, &msg);
            }
            let Some(dimension) = get("dimension").and_then(parse_dimension) else {
                return Response::error(400, "missing/unknown dimension");
            };
            let Some(statistic) =
                get("statistic").and_then(|s| parse_statistic(s, get("metric")))
            else {
                return Response::error(400, "missing/unknown statistic (or metric)");
            };
            let top = match get("top") {
                None => None,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => return Response::error(400, "top must be an unsigned integer"),
                },
            };
            let mut ds = run(table, &Query { dimension, statistic, filters: vec![] });
            if let Some(n) = top {
                ds.rows.truncate(n);
            }
            Response::json(200, ds.to_json())
        }
        "/v1/series" => {
            if let Some(msg) =
                unknown_param(&params, &["host", "metric", "t0", "t1", "bin", "agg"])
            {
                return Response::error(400, &msg);
            }
            let Some(db) = store else {
                return Response::error(404, "no time-series store attached");
            };
            let sel = Selector {
                host: get("host").map(str::to_string),
                metric: get("metric").map(str::to_string),
            };
            let parse_ts = |key: &str, default: u64| match get(key) {
                None => Some(default),
                Some(v) => v.parse::<u64>().ok(),
            };
            let (Some(t0), Some(t1)) = (parse_ts("t0", 0), parse_ts("t1", u64::MAX))
            else {
                return Response::error(400, "t0/t1 must be unsigned seconds");
            };
            let result = match get("bin") {
                None => db.query(&sel, t0, t1),
                Some(bin) => {
                    let Ok(bin) = bin.parse::<u64>() else {
                        return Response::error(400, "bin must be unsigned seconds");
                    };
                    if bin == 0 {
                        return Response::error(400, "bin must be positive");
                    }
                    let Some(agg) = parse_agg(get("agg").unwrap_or("mean")) else {
                        return Response::error(400, "unknown agg");
                    };
                    db.downsample(&sel, t0, t1, bin, agg)
                }
            };
            let series = match result {
                Ok(series) => series,
                Err(e) => return Response::error(500, &format!("store: {e}")),
            };
            let body: Vec<Value> = series
                .into_iter()
                .map(|(key, points)| {
                    let pts: Vec<Value> = points
                        .into_iter()
                        .map(|(ts, v)| Value::Array(vec![(ts as f64).into(), v.into()]))
                        .collect();
                    obj([
                        ("host", key.host.as_str().into()),
                        ("metric", key.metric.as_str().into()),
                        ("points", Value::Array(pts)),
                    ])
                })
                .collect();
            Response::json(200, obj([("series", Value::Array(body))]).to_string())
        }
        _ => Response::error(404, "unknown path"),
    }
}

/// Accept-loop: serve requests until `shutdown` flips. Binds are the
/// caller's job so tests can use an ephemeral port.
pub fn serve(table: &JobTable, listener: TcpListener, shutdown: &AtomicBool) -> std::io::Result<()> {
    serve_with_store(table, None, listener, shutdown)
}

/// [`serve`], with an optional `tsdb` store behind `/v1/series`.
pub fn serve_with_store(
    table: &JobTable,
    store: Option<&Tsdb>,
    listener: TcpListener,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false)?;
                let mut buf = [0u8; 4096];
                let n = stream.read(&mut buf).unwrap_or(0);
                let request = String::from_utf8_lossy(&buf[..n]);
                let line = request.lines().next().unwrap_or("");
                let resp = handle_with_store(table, store, line);
                let _ = stream.write_all(resp.to_http().as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;
    use supremm_metrics::{ExtendedMetric, JobId, ScienceField, Timestamp, UserId};
    use supremm_warehouse::record::{ExitKind, JobRecord};

    fn table() -> JobTable {
        let job = |id: u64, app: &str, idle: f64| {
            let mut metrics = KeyMetricVec::default();
            metrics.set(KeyMetric::CpuIdle, idle);
            JobRecord {
                job: JobId(id),
                user: UserId(id as u32 % 3),
                app: Some(app.to_string()),
                science: ScienceField::Physics,
                queue: "normal".into(),
                submit: Timestamp(0),
                start: Timestamp(0),
                end: Timestamp(3600),
                nodes: 2,
                exit: ExitKind::Completed,
                metrics,
                extended: [0.0; ExtendedMetric::ALL.len()],
                flops_valid: true,
                samples: 5,
                coverage_gaps: 0,
            }
        };
        JobTable::new(vec![job(1, "NAMD", 0.1), job(2, "AMBER", 0.4), job(3, "NAMD", 0.2)])
    }

    #[test]
    fn healthz_and_summary() {
        let t = table();
        let r = handle(&t, "GET /healthz HTTP/1.0");
        assert_eq!(r.status, 200);
        let r = handle(&t, "GET /v1/summary HTTP/1.0");
        assert_eq!(r.status, 200);
        let v = supremm_metrics::json::Value::parse(&r.body).unwrap();
        assert_eq!(v["jobs"], 3u64);
        assert_eq!(v["users"], 3u64);
    }

    #[test]
    fn query_endpoint_runs_framework_queries() {
        let t = table();
        let r = handle(
            &t,
            "GET /v1/query?dimension=application&statistic=node_hours HTTP/1.0",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let v = supremm_metrics::json::Value::parse(&r.body).unwrap();
        assert_eq!(v["rows"][0][0], "NAMD");
        assert_eq!(v["rows"][0][1], 4.0);
    }

    #[test]
    fn weighted_mean_needs_metric_param() {
        let t = table();
        let bad = handle(&t, "GET /v1/query?dimension=none&statistic=weighted_mean HTTP/1.0");
        assert_eq!(bad.status, 400);
        let good = handle(
            &t,
            "GET /v1/query?dimension=none&statistic=weighted_mean&metric=cpu_idle HTTP/1.0",
        );
        assert_eq!(good.status, 200);
        let v = supremm_metrics::json::Value::parse(&good.body).unwrap();
        let idle = v["rows"][0][1].as_f64().unwrap();
        assert!((idle - (0.1 + 0.4 + 0.2) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn top_truncates_and_errors_are_clean() {
        let t = table();
        let r = handle(
            &t,
            "GET /v1/query?dimension=user&statistic=job_count&top=1 HTTP/1.0",
        );
        let v = supremm_metrics::json::Value::parse(&r.body).unwrap();
        assert_eq!(v["rows"].as_array().unwrap().len(), 1);
        assert_eq!(handle(&t, "GET /nope HTTP/1.0").status, 404);
        assert_eq!(handle(&t, "POST /healthz HTTP/1.0").status, 400);
        assert_eq!(handle(&t, "garbage").status, 400);
        assert_eq!(
            handle(&t, "GET /v1/query?dimension=bogus&statistic=job_count HTTP/1.0").status,
            400
        );
    }

    #[test]
    fn garbage_query_strings_get_a_4xx() {
        let t = table();
        for bad in [
            // Query segment with no `=` at all.
            "GET /v1/series?garbage HTTP/1.0",
            "GET /v1/query?dimension HTTP/1.0",
            // Keys no endpoint knows — a typo must not silently widen
            // the result set.
            "GET /v1/series?nosuchparam=1 HTTP/1.0",
            "GET /v1/query?dimension=user&statistic=job_count&metrc=cpu_idle HTTP/1.0",
            // Well-known key, junk value.
            "GET /v1/query?dimension=user&statistic=job_count&top=abc HTTP/1.0",
            "GET /v1/query?dimension=user&statistic=job_count&top=-1 HTTP/1.0",
        ] {
            let r = handle(&t, bad);
            assert_eq!(r.status, 400, "{bad} -> {}", r.body);
        }
        // Empty segments (trailing `&`) are tolerated, not errors.
        let ok = handle(&t, "GET /v1/query?dimension=user&statistic=job_count& HTTP/1.0");
        assert_eq!(ok.status, 200, "{}", ok.body);
    }

    #[test]
    fn series_endpoint_answers_from_the_store() {
        let dir = std::env::temp_dir().join(format!("serve-series-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut db = Tsdb::open(&dir).unwrap();
        db.append_batch("c0000", "cpu_user", &[(0, 0.25), (600, 0.75), (1200, 0.5)])
            .unwrap();
        db.flush().unwrap();
        let t = table();
        // Without a store attached the endpoint is a clean 404.
        assert_eq!(handle(&t, "GET /v1/series HTTP/1.0").status, 404);
        let r = handle_with_store(
            &t,
            Some(&db),
            "GET /v1/series?host=c0000&metric=cpu_user&t0=0&t1=600 HTTP/1.0",
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["series"][0]["host"], "c0000");
        assert_eq!(v["series"][0]["metric"], "cpu_user");
        assert_eq!(v["series"][0]["points"].as_array().unwrap().len(), 2);
        assert_eq!(v["series"][0]["points"][1][1], 0.75);
        // Downsampling folds all three samples into one mean bin.
        let r = handle_with_store(&t, Some(&db), "GET /v1/series?bin=1800 HTTP/1.0");
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Value::parse(&r.body).unwrap();
        assert_eq!(v["series"][0]["points"][0][1], 0.5);
        // Bad parameters are clean 400s.
        for bad in [
            "GET /v1/series?t0=x HTTP/1.0",
            "GET /v1/series?bin=0 HTTP/1.0",
            "GET /v1/series?bin=600&agg=median HTTP/1.0",
        ] {
            assert_eq!(handle_with_store(&t, Some(&db), bad).status, 400, "{bad}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_socket_round_trip() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let t = table();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle_thread = std::thread::spawn(move || {
            let _ = serve(&t, listener, &flag);
        });

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /v1/summary HTTP/1.0\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("\"jobs\":3"), "{response}");

        shutdown.store(true, Ordering::Relaxed);
        handle_thread.join().unwrap();
    }
}
