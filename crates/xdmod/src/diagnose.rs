//! ANCOR-style fault diagnosis: link resource-usage anomalies with
//! system failures from cluster log data.
//!
//! §4.3.4 of the paper points to the ANCOR tool \[26\] ("Linking Resource
//! Usage Anomalies with System Failures from Cluster Log Data"), which
//! "combines TACC_Stats data with rationalized logs to generate analyses
//! and reports which diagnose the possible causes of system faults and
//! failures". This module implements that linkage: for every abnormally
//! terminated job, the rationalized syslog records tagged with its job id
//! are combined with the job's own resource metrics to classify the
//! probable cause — and to corroborate or contradict the log evidence
//! (an OOM kill *with* near-capacity `mem_used_max` is a confident
//! memory-exhaustion diagnosis; one without is suspicious).

use std::collections::BTreeMap;

use supremm_metrics::{JobId, KeyMetric};
use supremm_ratlog::{EventCode, RatRecord};
use supremm_warehouse::record::ExitKind;
use supremm_warehouse::{JobRecord, JobTable};

/// Probable cause of an abnormal job termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cause {
    /// OOM-killer fired; corroborated when the job's memory maximum
    /// approached node capacity.
    MemoryExhaustion,
    /// Soft lockup — the §4.3.1 "node-level hangups" precursor.
    NodeHang,
    /// Lustre/filesystem errors around the failure.
    FilesystemFault,
    /// Machine-check (hardware) events.
    HardwareError,
    /// Scheduler killed the job at its wallclock limit.
    WallclockKill,
    /// The node(s) went down under the job (outage, power, fabric).
    NodeFailure,
    /// User-initiated cancellation.
    UserCancelled,
    /// Abnormal exit with no log evidence.
    Unexplained,
}

impl Cause {
    pub fn name(self) -> &'static str {
        match self {
            Cause::MemoryExhaustion => "memory_exhaustion",
            Cause::NodeHang => "node_hang",
            Cause::FilesystemFault => "filesystem_fault",
            Cause::HardwareError => "hardware_error",
            Cause::WallclockKill => "wallclock_kill",
            Cause::NodeFailure => "node_failure",
            Cause::UserCancelled => "user_cancelled",
            Cause::Unexplained => "unexplained",
        }
    }
}

/// One diagnosed job.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    pub job: JobId,
    pub exit: ExitKind,
    pub cause: Cause,
    /// Log events found for this job, by kind.
    pub evidence: Vec<(EventCode, usize)>,
    /// Whether the job's own metrics corroborate the log evidence
    /// (e.g. OOM + memory near capacity, lockup + high idle tail).
    pub metrics_corroborate: bool,
    /// Human-readable one-liner.
    pub note: String,
}

fn classify(job: &JobRecord, events: &BTreeMap<EventCode, usize>, mem_capacity: f64) -> (Cause, bool, String) {
    let mem_max_frac = job.metrics.get(KeyMetric::MemUsedMax) / mem_capacity;
    let idle = job.metrics.get(KeyMetric::CpuIdle);
    if events.contains_key(&EventCode::OomKill) {
        let corroborated = mem_max_frac > 0.85;
        return (
            Cause::MemoryExhaustion,
            corroborated,
            format!(
                "OOM kill in logs; job peaked at {:.0}% of node memory{}",
                mem_max_frac * 100.0,
                if corroborated { "" } else { " — log/metric mismatch, inspect the node" }
            ),
        );
    }
    if events.contains_key(&EventCode::SoftLockup) {
        return (
            Cause::NodeHang,
            idle > 0.3,
            format!("soft lockup in logs; job idle fraction {:.0}%", idle * 100.0),
        );
    }
    if events.contains_key(&EventCode::NodeDown) || job.exit == ExitKind::NodeFailure {
        let fs = events.contains_key(&EventCode::LustreError);
        return (
            Cause::NodeFailure,
            true,
            if fs {
                "node(s) went down with Lustre errors — fabric or storage-side fault".to_string()
            } else {
                "node(s) went down under the job".to_string()
            },
        );
    }
    if events.contains_key(&EventCode::WallclockExceeded) || job.exit == ExitKind::Cancelled {
        let kind = if events.contains_key(&EventCode::WallclockExceeded) {
            Cause::WallclockKill
        } else {
            Cause::UserCancelled
        };
        return (kind, true, "terminated by scheduler/user, not a fault".to_string());
    }
    if events.contains_key(&EventCode::LustreError) || events.contains_key(&EventCode::FsError) {
        return (Cause::FilesystemFault, true, "filesystem errors during the job".to_string());
    }
    if events.contains_key(&EventCode::MceError) {
        return (Cause::HardwareError, true, "machine-check events during the job".to_string());
    }
    (
        Cause::Unexplained,
        false,
        format!("no log evidence; job idle {:.0}%, mem peak {:.0}%", idle * 100.0, mem_max_frac * 100.0),
    )
}

/// Diagnose every abnormally terminated job in the table against the
/// rationalized syslog.
pub fn diagnose_failures(
    table: &JobTable,
    syslog: &[RatRecord],
    mem_capacity_bytes: f64,
) -> Vec<Diagnosis> {
    // Index log events by job.
    let mut by_job: BTreeMap<JobId, BTreeMap<EventCode, usize>> = BTreeMap::new();
    for rec in syslog {
        if let Some(job) = rec.job {
            *by_job.entry(job).or_default().entry(rec.event).or_default() += 1;
        }
    }
    let mut out = Vec::new();
    for job in table.jobs() {
        if job.exit == ExitKind::Completed {
            continue;
        }
        let empty = BTreeMap::new();
        let events = by_job.get(&job.job).unwrap_or(&empty);
        let (cause, corroborated, note) = classify(job, events, mem_capacity_bytes);
        out.push(Diagnosis {
            job: job.job,
            exit: job.exit,
            cause,
            evidence: events.iter().map(|(&e, &n)| (e, n)).collect(),
            metrics_corroborate: corroborated,
            note,
        });
    }
    out
}

/// Aggregate view: failure counts per cause (the §4.3.1 "job completion
/// failure profile").
pub fn failure_profile(diagnoses: &[Diagnosis]) -> Vec<(Cause, usize)> {
    let mut counts: BTreeMap<Cause, usize> = BTreeMap::new();
    for d in diagnoses {
        *counts.entry(d.cause).or_default() += 1;
    }
    let mut v: Vec<(Cause, usize)> = counts.into_iter().collect();
    v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    v
}

/// Render the self-observability side of a diagnosis: deprecation
/// warnings and slow queries recorded in the obs event log, plus the
/// counters that corroborate them. Empty string when there is nothing
/// to report, so callers can print it unconditionally.
pub fn obs_report(snap: &supremm_obs::Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let deprecations: Vec<_> =
        snap.events.iter().filter(|e| e.kind == "deprecation").collect();
    if !deprecations.is_empty() {
        let _ = writeln!(out, "{} deprecation warning(s):", deprecations.len());
        for e in &deprecations {
            let _ = writeln!(out, "  {}", e.detail);
        }
    }
    let slow: Vec<_> = snap.events.iter().filter(|e| e.kind == "slow_query").collect();
    if !slow.is_empty() {
        let _ = writeln!(out, "{} slow quer(y/ies):", slow.len());
        for e in &slow {
            let _ = writeln!(out, "  {}", e.detail);
        }
    }
    if snap.events_dropped > 0 {
        let _ = writeln!(
            out,
            "  ({} older event(s) evicted from the ring buffer)",
            snap.events_dropped
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::metric::KeyMetricVec;
    use supremm_metrics::{ExtendedMetric, HostId, ScienceField, Timestamp, UserId};
    use supremm_ratlog::Severity;

    const CAP: f64 = 32.0 * 1.073_741_824e9;

    fn job(id: u64, exit: ExitKind, mem_max_frac: f64, idle: f64) -> JobRecord {
        let mut metrics = KeyMetricVec::default();
        metrics.set(KeyMetric::MemUsedMax, mem_max_frac * CAP);
        metrics.set(KeyMetric::CpuIdle, idle);
        JobRecord {
            job: JobId(id),
            user: UserId(1),
            app: None,
            science: ScienceField::Physics,
            queue: "normal".into(),
            submit: Timestamp(0),
            start: Timestamp(0),
            end: Timestamp(3600),
            nodes: 2,
            exit,
            metrics,
            extended: [0.0; ExtendedMetric::ALL.len()],
            flops_valid: true,
            samples: 5,
            coverage_gaps: 0,
        }
    }

    fn log(job: u64, event: EventCode) -> RatRecord {
        RatRecord {
            ts: Timestamp(1800),
            host: HostId(0),
            job: Some(JobId(job)),
            severity: Severity::Critical,
            event,
            component: "kernel".into(),
            message: "x".into(),
        }
    }

    #[test]
    fn oom_with_full_memory_is_corroborated_exhaustion() {
        let table = JobTable::new(vec![job(1, ExitKind::Failed, 0.97, 0.1)]);
        let logs = vec![log(1, EventCode::OomKill)];
        let d = diagnose_failures(&table, &logs, CAP);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cause, Cause::MemoryExhaustion);
        assert!(d[0].metrics_corroborate);
    }

    #[test]
    fn oom_with_low_memory_is_flagged_as_mismatch() {
        let table = JobTable::new(vec![job(1, ExitKind::Failed, 0.2, 0.1)]);
        let logs = vec![log(1, EventCode::OomKill)];
        let d = diagnose_failures(&table, &logs, CAP);
        assert_eq!(d[0].cause, Cause::MemoryExhaustion);
        assert!(!d[0].metrics_corroborate);
        assert!(d[0].note.contains("mismatch"));
    }

    #[test]
    fn lockup_classifies_as_hang() {
        let table = JobTable::new(vec![job(2, ExitKind::Failed, 0.3, 0.6)]);
        let logs = vec![log(2, EventCode::SoftLockup)];
        let d = diagnose_failures(&table, &logs, CAP);
        assert_eq!(d[0].cause, Cause::NodeHang);
        assert!(d[0].metrics_corroborate);
    }

    #[test]
    fn node_failure_without_logs_still_classified() {
        let table = JobTable::new(vec![job(3, ExitKind::NodeFailure, 0.3, 0.1)]);
        let d = diagnose_failures(&table, &[], CAP);
        assert_eq!(d[0].cause, Cause::NodeFailure);
    }

    #[test]
    fn no_evidence_is_unexplained_and_completed_jobs_skipped() {
        let table = JobTable::new(vec![
            job(4, ExitKind::Failed, 0.3, 0.1),
            job(5, ExitKind::Completed, 0.3, 0.1),
        ]);
        let d = diagnose_failures(&table, &[], CAP);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cause, Cause::Unexplained);
        assert!(!d[0].metrics_corroborate);
    }

    #[test]
    fn cancelled_jobs_are_not_faults() {
        let table = JobTable::new(vec![job(6, ExitKind::Cancelled, 0.3, 0.1)]);
        let d = diagnose_failures(&table, &[], CAP);
        assert_eq!(d[0].cause, Cause::UserCancelled);
        let with_wallclock = diagnose_failures(
            &table,
            &[log(6, EventCode::WallclockExceeded)],
            CAP,
        );
        assert_eq!(with_wallclock[0].cause, Cause::WallclockKill);
    }

    #[test]
    fn profile_orders_causes_by_count() {
        let table = JobTable::new(vec![
            job(1, ExitKind::Failed, 0.95, 0.1),
            job(2, ExitKind::Failed, 0.95, 0.1),
            job(3, ExitKind::NodeFailure, 0.3, 0.1),
        ]);
        let logs = vec![log(1, EventCode::OomKill), log(2, EventCode::OomKill)];
        let d = diagnose_failures(&table, &logs, CAP);
        let profile = failure_profile(&d);
        assert_eq!(profile[0], (Cause::MemoryExhaustion, 2));
        assert_eq!(profile[1], (Cause::NodeFailure, 1));
    }

    #[test]
    fn obs_report_surfaces_deprecations_and_slow_queries() {
        let obs = supremm_obs::ObsRegistry::new();
        assert_eq!(obs_report(&obs.snapshot()), "");
        obs.event("deprecation", "v1 segment read shim used for seg-000001.tsdb");
        obs.event("slow_query", "/v1/series?name=cpu_user took 250000us (status 200)");
        obs.event("info", "not interesting");
        let report = obs_report(&obs.snapshot());
        assert!(report.contains("1 deprecation warning(s):"));
        assert!(report.contains("seg-000001.tsdb"));
        assert!(report.contains("250000us"));
        assert!(!report.contains("not interesting"));
    }
}
