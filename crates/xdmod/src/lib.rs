//! `supremm-xdmod`: the reporting & analytics framework (§4).
//!
//! XDMoD's role in the paper is to take the warehouse and answer the
//! information needs of six stakeholder classes: users, application
//! developers, support staff, systems administrators, resource managers
//! and funding agencies. This crate mirrors that structure:
//!
//! - [`framework`] — realms, dimensions, statistics and the query engine
//!   ("a powerful and flexible analysis interface that has many analyses
//!   reports preprogrammed and also the option ... to define custom
//!   reports", §4.3);
//! - [`render`] — dataset renderers: aligned ASCII tables, CSV, JSON
//!   chart series;
//! - [`reports`] — the preprogrammed per-stakeholder reports behind each
//!   figure of the paper.

pub mod diagnose;
pub mod framework;
pub mod render;
pub mod report_builder;
pub mod reports;
pub mod serve;
pub mod svg;

pub use framework::{Dataset, Dimension, Filter, Query, Statistic};
pub use render::{to_ascii_table, to_csv, to_json_series};
