//! Warehouse ⇄ tsdb bridge.
//!
//! Three things flow through the store:
//!
//! 1. **System series** ([`SystemSeries`]): each [`SystemBin`] field
//!    becomes one series under the pseudo-host `_sys` (counts are exact
//!    in f64; float sums travel as raw bits), so
//!    [`load_system_series`]`(`[`store_system_series`]`(s))` is
//!    bit-identical — the property the pipeline differential tests pin.
//! 2. **Per-host metric series**: [`store_archive_series`] reduces each
//!    raw file to its per-interval [`ExtendedMetric`] values and appends
//!    them under the real hostname — the store-side replacement for
//!    re-scanning raw archives, and the payload the compression
//!    benchmark measures.
//! 3. Store metadata (`_meta`/`bin_secs`) so a reopened store knows its
//!    own binning.

use std::collections::BTreeMap;
use std::io;

use supremm_metrics::Timestamp;
use supremm_taccstats::derive::file_extended_series;
use supremm_taccstats::RawArchive;
use supremm_tsdb::{Agg, RetentionReport, Selector, Tsdb, TsdbError};

use crate::timeseries::{SystemBin, SystemSeries};

/// Pseudo-host for cluster-wide series.
pub const SYSTEM_HOST: &str = "_sys";
/// Pseudo-host for store metadata.
pub const META_HOST: &str = "_meta";

/// One system-bin field: its series metric name bound to a getter and
/// setter, so lookups can fail softly instead of hitting a match-arm
/// `unreachable!` when the store holds a metric this build never wrote.
struct SystemField {
    name: &'static str,
    get: fn(&SystemBin) -> f64,
    set: fn(&mut SystemBin, f64),
}

const FIELDS: [SystemField; 16] = [
    SystemField {
        name: "active_nodes",
        get: |b| b.active_nodes as f64,
        set: |b, v| b.active_nodes = v as u32,
    },
    SystemField {
        name: "busy_nodes",
        get: |b| b.busy_nodes as f64,
        set: |b, v| b.busy_nodes = v as u32,
    },
    SystemField { name: "intervals", get: |b| b.intervals as f64, set: |b, v| b.intervals = v as u32 },
    SystemField { name: "flops", get: |b| b.flops, set: |b, v| b.flops = v },
    SystemField { name: "mem_used_bytes", get: |b| b.mem_used_bytes, set: |b, v| b.mem_used_bytes = v },
    SystemField { name: "cpu_user_sum", get: |b| b.cpu_user_sum, set: |b, v| b.cpu_user_sum = v },
    SystemField { name: "cpu_system_sum", get: |b| b.cpu_system_sum, set: |b, v| b.cpu_system_sum = v },
    SystemField { name: "cpu_idle_sum", get: |b| b.cpu_idle_sum, set: |b, v| b.cpu_idle_sum = v },
    SystemField {
        name: "scratch_write_bps",
        get: |b| b.scratch_write_bps,
        set: |b, v| b.scratch_write_bps = v,
    },
    SystemField {
        name: "scratch_read_bps",
        get: |b| b.scratch_read_bps,
        set: |b, v| b.scratch_read_bps = v,
    },
    SystemField { name: "work_write_bps", get: |b| b.work_write_bps, set: |b, v| b.work_write_bps = v },
    SystemField { name: "work_read_bps", get: |b| b.work_read_bps, set: |b, v| b.work_read_bps = v },
    SystemField {
        name: "share_write_bps",
        get: |b| b.share_write_bps,
        set: |b, v| b.share_write_bps = v,
    },
    SystemField { name: "share_read_bps", get: |b| b.share_read_bps, set: |b, v| b.share_read_bps = v },
    SystemField { name: "ib_tx_bps", get: |b| b.ib_tx_bps, set: |b, v| b.ib_tx_bps = v },
    SystemField { name: "lnet_tx_bps", get: |b| b.lnet_tx_bps, set: |b, v| b.lnet_tx_bps = v },
];

/// The 16 system-bin field names, in struct order (mirrors [`FIELDS`]).
pub const SYSTEM_FIELDS: [&str; 16] = [
    "active_nodes",
    "busy_nodes",
    "intervals",
    "flops",
    "mem_used_bytes",
    "cpu_user_sum",
    "cpu_system_sum",
    "cpu_idle_sum",
    "scratch_write_bps",
    "scratch_read_bps",
    "work_write_bps",
    "work_read_bps",
    "share_write_bps",
    "share_read_bps",
    "ib_tx_bps",
    "lnet_tx_bps",
];

/// Append a [`SystemSeries`] into the store (one series per bin field,
/// plus binning metadata). Call [`Tsdb::sync`] or [`Tsdb::flush`] after.
pub fn store_system_series(db: &mut Tsdb, series: &SystemSeries) -> io::Result<()> {
    db.append(META_HOST, "bin_secs", 0, series.bin_secs as f64)?;
    for field in &FIELDS {
        let samples: Vec<(u64, f64)> =
            series.bins.iter().map(|b| (b.ts.0, (field.get)(b))).collect();
        db.append_batch(SYSTEM_HOST, field.name, &samples)?;
    }
    Ok(())
}

/// Rebuild the [`SystemSeries`] from the store — the query-API path the
/// report/serving layer uses instead of recomputing from raw archives.
pub fn load_system_series(db: &Tsdb) -> Result<SystemSeries, TsdbError> {
    // The binning row lives at ts 0, which a retention pass expires
    // from raw; the tier-aware read serves it from the rollup (Last is
    // exact there), so a store never forgets its own binning.
    let meta_sel =
        Selector { host: Some(META_HOST.into()), metric: Some("bin_secs".into()) };
    let bin_secs = db
        .downsample(&meta_sel, 0, u64::MAX, u64::MAX, Agg::Last)?
        .first()
        .and_then(|(_, pts)| pts.first())
        .map(|&(_, v)| v as u64)
        .unwrap_or(0);
    let mut bins: BTreeMap<u64, SystemBin> = BTreeMap::new();
    for (key, samples) in db.query(&Selector::host(SYSTEM_HOST), 0, u64::MAX)? {
        // A metric this build does not know (written by a newer schema,
        // or a stray series under `_sys`) is skipped, not fatal.
        let Some(field) = FIELDS.iter().find(|f| f.name == key.metric) else { continue };
        for (ts, v) in samples {
            let bin = bins.entry(ts).or_default();
            bin.ts = Timestamp(ts);
            (field.set)(bin, v);
        }
    }
    Ok(SystemSeries { bin_secs, bins: into_sorted_bins(bins) })
}

fn into_sorted_bins(bins: BTreeMap<u64, SystemBin>) -> Vec<SystemBin> {
    bins.into_values().collect()
}

/// Run one retention pass against the store under its configured
/// policy, using the store's own newest sample as the data-time `now`.
///
/// Facility stores routinely lag wall clock (backfills, replays,
/// simulated histories), so expiring relative to data time instead of
/// `SystemTime::now()` keeps a replayed history intact: nothing ages
/// out until newer data actually lands.
pub fn enforce_store_retention(db: &mut Tsdb) -> Result<RetentionReport, TsdbError> {
    let now = db.max_timestamp().unwrap_or(0);
    db.enforce_retention(now)
}

/// Reduce every raw file to per-interval [`ExtendedMetric`] series and
/// append them under the real hostnames. Returns the number of samples
/// appended. Pairing matches the streaming ingest: consecutive records
/// with the same job tag form an interval, attributed to the later
/// record's timestamp; corrupt regions are quarantined by the lenient
/// scanner.
pub fn store_archive_series(db: &mut Tsdb, archive: &RawArchive) -> io::Result<u64> {
    let mut appended = 0u64;
    for (key, text) in archive.iter() {
        let host = key.host.hostname();
        for (metric, samples) in file_extended_series(text) {
            appended += samples.len() as u64;
            db.append_batch(&host, metric.name(), &samples)?;
        }
    }
    Ok(appended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use supremm_metrics::{ExtendedMetric, HostId, JobId};
    use supremm_procsim::{KernelState, NodeActivity, NodeSpec};
    use supremm_taccstats::Collector;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wh-tsdbio-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn archive() -> RawArchive {
        let mut archive = RawArchive::new();
        for host in 0..2u32 {
            let mut kernel = KernelState::new(NodeSpec::ranger());
            let mut c = Collector::new(HostId(host));
            let mut ts = Timestamp(600);
            c.begin_job(&mut kernel, JobId(5), ts);
            let act = NodeActivity { user_frac: 0.7, flops: 1e12, ..NodeActivity::idle() };
            for _ in 0..5 {
                kernel.advance(&act, 600.0);
                ts = ts + supremm_metrics::Duration(600);
                c.sample(&kernel, ts);
            }
            c.end_job(&mut kernel, JobId(5), ts);
            for (k, text) in c.into_files() {
                archive.insert(k, text);
            }
        }
        archive
    }

    #[test]
    fn system_fields_mirror_the_field_table() {
        for (i, field) in FIELDS.iter().enumerate() {
            assert_eq!(SYSTEM_FIELDS[i], field.name);
        }
    }

    #[test]
    fn unknown_system_metric_is_ignored_not_fatal() {
        let dir = tmpdir("unknownmetric");
        let series = SystemSeries::from_archive(&archive(), 600);
        let mut db = Tsdb::open(&dir).unwrap();
        store_system_series(&mut db, &series).unwrap();
        // A future schema writes a metric this build has no field for.
        db.append(SYSTEM_HOST, "gpu_util_sum", 600, 0.5).unwrap();
        db.flush().unwrap();
        let loaded = load_system_series(&db).unwrap();
        assert_eq!(loaded.bins, series.bins);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn system_series_round_trips_bit_identically() {
        let dir = tmpdir("sysround");
        let series = SystemSeries::from_archive(&archive(), 600);
        assert!(!series.bins.is_empty());
        let mut db = Tsdb::open(&dir).unwrap();
        store_system_series(&mut db, &series).unwrap();
        db.flush().unwrap();
        let back = load_system_series(&db).unwrap();
        assert_eq!(back.bin_secs, series.bin_secs);
        assert_eq!(back.bins, series.bins, "bit-identical bins through the store");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn system_series_survives_reopen_without_flush() {
        let dir = tmpdir("syswal");
        let series = SystemSeries::from_archive(&archive(), 600);
        {
            let mut db = Tsdb::open(&dir).unwrap();
            store_system_series(&mut db, &series).unwrap();
            db.sync().unwrap();
            // Crash: no flush.
        }
        let db = Tsdb::open(&dir).unwrap();
        let back = load_system_series(&db).unwrap();
        assert_eq!(back.bins, series.bins);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_retention_uses_data_time_and_keeps_recent_bins() {
        use supremm_tsdb::{DbOptions, RetentionPolicy};
        let dir = tmpdir("retention");
        let policy = RetentionPolicy::parse("raw=1200s,600=forever").unwrap();
        let mut db =
            Tsdb::open_with(&dir, DbOptions { retention: policy, ..Default::default() })
                .unwrap();
        let series = SystemSeries::from_archive(&archive(), 600);
        store_system_series(&mut db, &series).unwrap();
        db.flush().unwrap();
        let before = load_system_series(&db).unwrap();
        let report = enforce_store_retention(&mut db).unwrap();
        // Data spans 1200..3600; data-time now = 3600, cut = 2400.
        assert_eq!(report.raw_watermark, 2400);
        assert!(report.rollup_segments_written > 0);
        let after = load_system_series(&db).unwrap();
        assert_eq!(after.bin_secs, before.bin_secs, "metadata rolled up, still served");
        let survivors: Vec<_> =
            before.bins.iter().filter(|b| b.ts.0 >= 2400).cloned().collect();
        assert_eq!(after.bins, survivors, "surviving bins are bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn archive_series_land_under_hostnames() {
        let dir = tmpdir("hosts");
        let mut db = Tsdb::open(&dir).unwrap();
        let n = store_archive_series(&mut db, &archive()).unwrap();
        assert!(n > 0);
        db.flush().unwrap();
        let flops = db
            .query_series("c0000", ExtendedMetric::CpuFlops.name(), 0, u64::MAX)
            .unwrap();
        assert_eq!(flops.len(), 5, "five paired intervals");
        assert!(flops.iter().all(|&(_, v)| v > 0.0));
        let keys = db.series_keys().unwrap();
        assert!(keys
            .iter()
            .any(|k| k.host == "c0001" && k.metric == ExtendedMetric::MemUsed.name()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
