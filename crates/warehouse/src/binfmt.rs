//! Compact binary encoding of raw TACC_Stats files — the §5 future-work
//! item ("we are assessing various technologies ... to quickly process,
//! store, and query massive TACC_Stats data ... a key step to developing
//! a capability to rapidly import TACC_Stats data into XDMoD").
//!
//! The text format is self-describing and greppable; this sibling format
//! is for bulk storage and re-import. It exploits the data's structure:
//!
//! - cumulative counters move by *small deltas* between ten-minute
//!   samples → zigzag + LEB128 varints shrink them dramatically;
//! - device instance sets are nearly constant within a file → devices are
//!   interned once and deltas chain against the previous record's value
//!   for the same device (absolute when the device is new);
//! - the record/mark stream is preserved exactly, so
//!   `decode(encode(f)) == f` and every downstream consumer (ingest,
//!   time-series assembly) works unchanged.
//!
//! `cargo bench -p supremm-bench --bench ingest` compares text parse vs
//! binary decode; typical results: ~3.4× smaller, ~2× faster to decode.

use std::collections::BTreeMap;

use supremm_metrics::schema::DeviceClass;
use supremm_metrics::{JobId, Timestamp};
use supremm_procsim::DeviceReading;
use supremm_taccstats::format::{JobMark, ParsedFile, Record, Sample};

const MAGIC: &[u8; 4] = b"SUPB";
const VERSION: u16 = 1;

/// Encoding/decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    BadMagic,
    BadVersion(u16),
    Truncated,
    BadClassId(u8),
    BadTag(u8),
    BadString,
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "not a SUPB file"),
            BinError::BadVersion(v) => write!(f, "unsupported version {v}"),
            BinError::Truncated => write!(f, "truncated input"),
            BinError::BadClassId(c) => write!(f, "unknown class id {c}"),
            BinError::BadTag(t) => write!(f, "unknown sample tag {t}"),
            BinError::BadString => write!(f, "invalid utf-8 string"),
        }
    }
}

impl std::error::Error for BinError {}

// --- varint primitives ----------------------------------------------------

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, BinError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(BinError::Truncated)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(BinError::Truncated);
        }
    }
}

/// Zigzag over a *wrapped* (mod 2^64) difference: small forward or
/// backward steps encode as small varints regardless of the absolute
/// magnitudes. `delta_encode(p, v)` round-trips through
/// `delta_decode(p, ·)` for every `(p, v)` pair.
fn delta_encode(prev: u64, cur: u64) -> u64 {
    let d = cur.wrapping_sub(prev) as i64;
    (d as u64).wrapping_shl(1) ^ ((d >> 63) as u64)
}

fn delta_decode(prev: u64, z: u64) -> u64 {
    let d = ((z >> 1) as i64) ^ -((z & 1) as i64);
    prev.wrapping_add(d as u64)
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, BinError> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).ok_or(BinError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(BinError::Truncated)?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| BinError::BadString)
}

fn class_id(c: DeviceClass) -> u8 {
    // suplint: allow(R1) -- DeviceClass::ALL lists every variant; position cannot miss
    DeviceClass::ALL.iter().position(|&x| x == c).expect("member") as u8
}

fn class_from_id(id: u8) -> Result<DeviceClass, BinError> {
    DeviceClass::ALL.get(id as usize).copied().ok_or(BinError::BadClassId(id))
}

// --- encode ----------------------------------------------------------------

/// Encode a parsed file. Lossless: `decode(encode(f)) == f`.
pub fn encode(file: &ParsedFile) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    put_str(&mut buf, &file.hostname);
    put_str(&mut buf, &file.arch);
    put_varint(&mut buf, file.cores as u64);
    put_varint(&mut buf, file.start.0);
    put_varint(&mut buf, file.classes.len() as u64);
    for &c in &file.classes {
        buf.push(class_id(c));
    }
    put_varint(&mut buf, file.samples.len() as u64);

    // Per (class, device) previous values for delta chains; device names
    // interned per class in first-seen order.
    let mut interned: BTreeMap<DeviceClass, Vec<String>> = BTreeMap::new();
    let mut prev_vals: BTreeMap<(DeviceClass, usize), Vec<u64>> = BTreeMap::new();
    let mut prev_ts = 0u64;

    for sample in &file.samples {
        match sample {
            Sample::Mark(JobMark::Begin { job, at }) => {
                buf.push(1);
                put_varint(&mut buf, job.0);
                put_varint(&mut buf, at.0);
            }
            Sample::Mark(JobMark::End { job, at }) => {
                buf.push(2);
                put_varint(&mut buf, job.0);
                put_varint(&mut buf, at.0);
            }
            Sample::Record(rec) => {
                buf.push(0);
                put_varint(&mut buf, delta_encode(prev_ts, rec.ts.0));
                prev_ts = rec.ts.0;
                match rec.job {
                    Some(j) => put_varint(&mut buf, j.0 + 1),
                    None => put_varint(&mut buf, 0),
                }
                put_varint(&mut buf, rec.readings.len() as u64);
                for (&class, readings) in &rec.readings {
                    buf.push(class_id(class));
                    put_varint(&mut buf, readings.len() as u64);
                    for r in readings {
                        let names = interned.entry(class).or_default();
                        let idx = match names.iter().position(|n| n == &r.device) {
                            Some(i) => {
                                put_varint(&mut buf, i as u64 + 1);
                                i
                            }
                            None => {
                                // New device: 0 tag + inline name.
                                put_varint(&mut buf, 0);
                                put_str(&mut buf, &r.device);
                                names.push(r.device.clone());
                                names.len() - 1
                            }
                        };
                        let key = (class, idx);
                        match prev_vals.get(&key) {
                            Some(prev) if prev.len() == r.values.len() => {
                                for (&v, &p) in r.values.iter().zip(prev) {
                                    put_varint(&mut buf, delta_encode(p, v));
                                }
                            }
                            _ => {
                                for &v in &r.values {
                                    put_varint(&mut buf, delta_encode(0, v));
                                }
                            }
                        }
                        prev_vals.insert(key, r.values.clone());
                    }
                }
            }
        }
    }
    buf
}

// --- decode ----------------------------------------------------------------

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<ParsedFile, BinError> {
    let mut pos = 0usize;
    if buf.get(..4) != Some(MAGIC.as_slice()) {
        return Err(BinError::BadMagic);
    }
    pos += 4;
    let version = match buf.get(4..6) {
        Some(&[a, b]) => u16::from_le_bytes([a, b]),
        _ => return Err(BinError::Truncated),
    };
    if version != VERSION {
        return Err(BinError::BadVersion(version));
    }
    pos += 2;
    let hostname = get_str(buf, &mut pos)?;
    let arch = get_str(buf, &mut pos)?;
    let cores = get_varint(buf, &mut pos)? as u32;
    let start = Timestamp(get_varint(buf, &mut pos)?);
    let n_classes = get_varint(buf, &mut pos)? as usize;
    let mut classes = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        let &id = buf.get(pos).ok_or(BinError::Truncated)?;
        pos += 1;
        classes.push(class_from_id(id)?);
    }
    let n_samples = get_varint(buf, &mut pos)? as usize;

    let mut interned: BTreeMap<DeviceClass, Vec<String>> = BTreeMap::new();
    let mut prev_vals: BTreeMap<(DeviceClass, usize), Vec<u64>> = BTreeMap::new();
    let mut prev_ts = 0u64;
    let mut samples = Vec::with_capacity(n_samples);

    for _ in 0..n_samples {
        let &tag = buf.get(pos).ok_or(BinError::Truncated)?;
        pos += 1;
        match tag {
            1 | 2 => {
                let job = JobId(get_varint(buf, &mut pos)?);
                let at = Timestamp(get_varint(buf, &mut pos)?);
                samples.push(Sample::Mark(if tag == 1 {
                    JobMark::Begin { job, at }
                } else {
                    JobMark::End { job, at }
                }));
            }
            0 => {
                let ts = delta_decode(prev_ts, get_varint(buf, &mut pos)?);
                prev_ts = ts;
                let job_raw = get_varint(buf, &mut pos)?;
                let job = if job_raw == 0 { None } else { Some(JobId(job_raw - 1)) };
                let n_class = get_varint(buf, &mut pos)? as usize;
                let mut readings: BTreeMap<DeviceClass, Vec<DeviceReading>> = BTreeMap::new();
                for _ in 0..n_class {
                    let &cid = buf.get(pos).ok_or(BinError::Truncated)?;
                    pos += 1;
                    let class = class_from_id(cid)?;
                    let n_inst = get_varint(buf, &mut pos)? as usize;
                    let n_vals = class.schema().len();
                    let mut insts = Vec::with_capacity(n_inst);
                    for _ in 0..n_inst {
                        let name_tag = get_varint(buf, &mut pos)?;
                        let idx = if name_tag == 0 {
                            let name = get_str(buf, &mut pos)?;
                            let names = interned.entry(class).or_default();
                            names.push(name);
                            names.len() - 1
                        } else {
                            (name_tag - 1) as usize
                        };
                        let device = interned
                            .get(&class)
                            .and_then(|v| v.get(idx))
                            .ok_or(BinError::Truncated)?
                            .clone();
                        let key = (class, idx);
                        let prev = prev_vals.get(&key).filter(|p| p.len() == n_vals);
                        let mut values = Vec::with_capacity(n_vals);
                        for i in 0..n_vals {
                            let z = get_varint(buf, &mut pos)?;
                            let base = prev.map_or(0, |p| p[i]);
                            values.push(delta_decode(base, z));
                        }
                        prev_vals.insert(key, values.clone());
                        insts.push(DeviceReading { device, values });
                    }
                    readings.insert(class, insts);
                }
                samples.push(Sample::Record(Record { ts: Timestamp(ts), job, readings }));
            }
            t => return Err(BinError::BadTag(t)),
        }
    }
    Ok(ParsedFile { hostname, arch, cores, start, classes, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::{Duration, HostId};
    use supremm_procsim::{KernelState, NodeActivity, NodeSpec};
    use supremm_taccstats::format::parse;
    use supremm_taccstats::Collector;

    fn realistic_file() -> (String, ParsedFile) {
        let mut kernel = KernelState::new(NodeSpec::ranger());
        let mut c = Collector::new(HostId(7));
        let mut ts = Timestamp(600);
        c.begin_job(&mut kernel, JobId(42), ts);
        for i in 0..24 {
            let act = NodeActivity {
                user_frac: 0.8,
                flops: 3e12,
                mem_used_bytes: (6 + i % 3) << 30,
                scratch_write_bytes: 100 << 20,
                ib_tx_bytes: 4 << 30,
                ..NodeActivity::idle()
            };
            kernel.advance(&act, 600.0);
            ts = ts + Duration(600);
            c.sample(&kernel, ts);
        }
        c.end_job(&mut kernel, JobId(42), ts);
        let text = c.into_files().remove(0).1;
        let parsed = parse(&text).unwrap();
        (text, parsed)
    }

    #[test]
    fn round_trip_is_lossless() {
        let (_, parsed) = realistic_file();
        let bin = encode(&parsed);
        let back = decode(&bin).unwrap();
        assert_eq!(back, parsed);
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        let (text, parsed) = realistic_file();
        let bin = encode(&parsed);
        let ratio = text.len() as f64 / bin.len() as f64;
        assert!(ratio > 3.0, "only {ratio:.1}x smaller ({} vs {})", text.len(), bin.len());
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn delta_round_trips_extreme_pairs() {
        for &(p, v) in &[
            (0u64, 0u64),
            (0, u64::MAX),
            (u64::MAX, 0),
            (1, u64::MAX - 1),
            (u64::MAX / 2, u64::MAX / 2 + 1),
            (42, 41),
        ] {
            assert_eq!(delta_decode(p, delta_encode(p, v)), v, "({p}, {v})");
        }
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        let (_, parsed) = realistic_file();
        let bin = encode(&parsed);
        assert_eq!(decode(b"nope"), Err(BinError::BadMagic));
        assert_eq!(decode(&bin[..10]), Err(BinError::Truncated));
        let mut wrong_ver = bin.clone();
        wrong_ver[4] = 99;
        assert_eq!(decode(&wrong_ver), Err(BinError::BadVersion(99)));
        // Truncations anywhere must error, never panic.
        for cut in (8..bin.len()).step_by(97) {
            let _ = decode(&bin[..cut]);
        }
    }

    #[test]
    fn marks_and_idle_records_survive() {
        let (_, parsed) = realistic_file();
        let bin = encode(&parsed);
        let back = decode(&bin).unwrap();
        assert_eq!(back.marks().count(), parsed.marks().count());
        assert_eq!(
            back.records().filter(|r| r.job.is_none()).count(),
            parsed.records().filter(|r| r.job.is_none()).count()
        );
    }
}
