//! The queryable job table — the warehouse's analysis surface.
//!
//! Deliberately small: filter, group-by, and node·hour-weighted metric
//! aggregation are all the reporting layer needs, and each is a thin,
//! composable method rather than a query language.

use std::collections::BTreeMap;

use rayon::prelude::*;

use supremm_metrics::metric::KeyMetricVec;
use supremm_metrics::{ExtendedMetric, KeyMetric};

use crate::record::JobRecord;

/// An owned collection of job records with query helpers.
#[derive(Debug, Clone, Default)]
pub struct JobTable {
    jobs: Vec<JobRecord>,
}

/// Node·hour-weighted aggregate over a set of jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Weighted means of the key metrics (`MemUsedMax` is the weighted
    /// mean of the per-job maxima; take `max` separately if needed).
    pub means: KeyMetricVec,
    pub jobs: usize,
    pub node_hours: f64,
}

impl JobTable {
    pub fn new(jobs: Vec<JobRecord>) -> JobTable {
        JobTable { jobs }
    }

    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn total_node_hours(&self) -> f64 {
        self.jobs.iter().map(|j| j.node_hours()).sum()
    }

    /// Jobs matching a predicate, as a new table (cheap enough at this
    /// scale; keeps the API composable).
    pub fn filter(&self, pred: impl Fn(&JobRecord) -> bool + Sync) -> JobTable {
        JobTable { jobs: self.jobs.par_iter().filter(|j| pred(j)).cloned().collect() }
    }

    /// Group jobs by an arbitrary key.
    pub fn group_by<K: Ord>(&self, key: impl Fn(&JobRecord) -> K) -> BTreeMap<K, Vec<&JobRecord>> {
        let mut out: BTreeMap<K, Vec<&JobRecord>> = BTreeMap::new();
        for j in &self.jobs {
            out.entry(key(j)).or_default().push(j);
        }
        out
    }

    /// Node·hour-weighted aggregate of a job set.
    pub fn aggregate<'a>(jobs: impl IntoIterator<Item = &'a JobRecord>) -> Aggregate {
        let mut acc = supremm_analytics::profile::ProfileAccumulator::new();
        let mut n = 0usize;
        let mut node_hours = 0.0;
        for j in jobs {
            let w = j.node_hours();
            acc.push(&j.metrics, w);
            n += 1;
            node_hours += w;
        }
        Aggregate { means: acc.means(), jobs: n, node_hours }
    }

    /// Whole-table aggregate (the "average job" that profiles normalize
    /// against).
    pub fn global_aggregate(&self) -> Aggregate {
        Self::aggregate(self.jobs.iter())
    }

    /// Node·hour-weighted mean of one extended metric.
    pub fn weighted_extended_mean(&self, m: ExtendedMetric) -> f64 {
        let mut acc = supremm_analytics::stats::WeightedMoments::new();
        for j in &self.jobs {
            acc.push(j.extended_get(m), j.node_hours());
        }
        acc.mean()
    }

    /// Node·hour-weighted mean job length in minutes — the §4.3.4
    /// calibration statistic (549 min on Ranger, 446 on Lonestar4).
    pub fn weighted_mean_job_len_min(&self) -> f64 {
        let mut acc = supremm_analytics::stats::WeightedMoments::new();
        for j in &self.jobs {
            acc.push(j.wall_secs() as f64 / 60.0, j.node_hours());
        }
        acc.mean()
    }

    /// The top `n` consumers by node-hours of a grouping key.
    pub fn top_by_node_hours<K: Ord + Clone>(
        &self,
        key: impl Fn(&JobRecord) -> K,
        n: usize,
    ) -> Vec<(K, f64)> {
        let mut totals: BTreeMap<K, f64> = BTreeMap::new();
        for j in &self.jobs {
            *totals.entry(key(j)).or_default() += j.node_hours();
        }
        let mut v: Vec<(K, f64)> = totals.into_iter().collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.truncate(n);
        v
    }
}

impl FromIterator<JobRecord> for JobTable {
    fn from_iter<T: IntoIterator<Item = JobRecord>>(iter: T) -> JobTable {
        JobTable { jobs: iter.into_iter().collect() }
    }
}

/// Weighted-mean key metric across a slice of jobs, exposed for report
/// code that works on group-by results.
pub fn weighted_metric_mean<'a>(
    jobs: impl IntoIterator<Item = &'a JobRecord>,
    m: KeyMetric,
) -> f64 {
    let mut acc = supremm_analytics::stats::WeightedMoments::new();
    for j in jobs {
        acc.push(j.metrics.get(m), j.node_hours());
    }
    acc.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ExitKind;
    use supremm_metrics::{JobId, ScienceField, Timestamp, UserId};

    fn job(id: u64, user: u32, app: &str, hours: u64, nodes: u32, idle: f64) -> JobRecord {
        let mut metrics = KeyMetricVec::default();
        metrics.set(KeyMetric::CpuIdle, idle);
        metrics.set(KeyMetric::CpuFlops, 1e9 * (1.0 - idle));
        JobRecord {
            job: JobId(id),
            user: UserId(user),
            app: Some(app.to_string()),
            science: ScienceField::Physics,
            queue: "normal".into(),
            submit: Timestamp(0),
            start: Timestamp(0),
            end: Timestamp(hours * 3600),
            nodes,
            exit: ExitKind::Completed,
            metrics,
            extended: [0.5; ExtendedMetric::ALL.len()],
            flops_valid: true,
            samples: 6,
            coverage_gaps: 0,
        }
    }

    fn table() -> JobTable {
        JobTable::new(vec![
            job(1, 1, "NAMD", 10, 4, 0.05),
            job(2, 1, "NAMD", 5, 2, 0.10),
            job(3, 2, "AMBER", 20, 8, 0.40),
            job(4, 3, "WRF", 2, 1, 0.15),
        ])
    }

    #[test]
    fn filter_and_group() {
        let t = table();
        let namd = t.filter(|j| j.app.as_deref() == Some("NAMD"));
        assert_eq!(namd.len(), 2);
        let by_user = t.group_by(|j| j.user);
        assert_eq!(by_user.len(), 3);
        assert_eq!(by_user[&UserId(1)].len(), 2);
    }

    #[test]
    fn aggregate_is_node_hour_weighted() {
        let t = table();
        let agg = t.global_aggregate();
        // Weights: 40, 10, 160, 2 node-hours.
        let want =
            (40.0 * 0.05 + 10.0 * 0.10 + 160.0 * 0.40 + 2.0 * 0.15) / 212.0;
        assert!((agg.means.get(KeyMetric::CpuIdle) - want).abs() < 1e-12);
        assert_eq!(agg.jobs, 4);
        assert!((agg.node_hours - 212.0).abs() < 1e-9);
    }

    #[test]
    fn top_by_node_hours_orders_consumers() {
        let t = table();
        let top = t.top_by_node_hours(|j| j.user, 2);
        assert_eq!(top[0].0, UserId(2));
        assert!((top[0].1 - 160.0).abs() < 1e-9);
        assert_eq!(top[1].0, UserId(1));
    }

    #[test]
    fn weighted_job_length() {
        let t = JobTable::new(vec![job(1, 1, "NAMD", 1, 1, 0.0), job(2, 1, "NAMD", 10, 1, 0.0)]);
        // Weights 1 and 10 node-hours; lengths 60 and 600 min.
        let want = (60.0 * 1.0 + 600.0 * 10.0) / 11.0;
        assert!((t.weighted_mean_job_len_min() - want).abs() < 1e-9);
    }

    #[test]
    fn empty_table_is_safe() {
        let t = JobTable::default();
        assert!(t.is_empty());
        assert_eq!(t.total_node_hours(), 0.0);
        assert!(t.global_aggregate().means.get(KeyMetric::CpuIdle).is_nan());
    }

    #[test]
    fn weighted_metric_mean_over_groups() {
        let t = table();
        let groups = t.group_by(|j| j.app.clone());
        let namd = weighted_metric_mean(
            groups[&Some("NAMD".to_string())].iter().copied(),
            KeyMetric::CpuIdle,
        );
        let want = (40.0 * 0.05 + 10.0 * 0.10) / 50.0;
        assert!((namd - want).abs() < 1e-12);
    }
}

/// Disk persistence: the export/import format is a tsdb record segment
/// (kind 1) — one binary [`JobRecord`] per entry ([`crate::jobcodec`]),
/// CRC-checked blocks, atomic rename on write. [`JobTable::load`] also
/// accepts the pre-segment JSON-lines export for one release
/// (detected by magic; see [`crate::jobcodec::decode_legacy_json`]).
impl JobTable {
    /// Write the table to a file (atomic: tmp + fsync + rename).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let records: Vec<(u64, Vec<u8>)> =
            self.jobs.iter().map(|j| (j.end.0, crate::jobcodec::encode(j))).collect();
        supremm_tsdb::recordlog::write_records(path, &records)
            .map(|_| ())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Load a table previously written with [`JobTable::save`] — or, for
    /// one release, a legacy JSON-lines export. Returns the table and
    /// the number of records skipped as corrupt (legacy path only;
    /// segment corruption is an error, not a skip).
    ///
    /// Deprecation events are reported into the process-global obs
    /// registry; use [`JobTable::load_counting_with_obs`] to direct
    /// them elsewhere (e.g. for test isolation).
    pub fn load_counting(path: &std::path::Path) -> std::io::Result<(JobTable, usize)> {
        Self::load_counting_with_obs(path, &supremm_obs::global())
    }

    /// [`JobTable::load_counting`] with an explicit obs registry.
    pub fn load_counting_with_obs(
        path: &std::path::Path,
        obs: &supremm_obs::ObsRegistry,
    ) -> std::io::Result<(JobTable, usize)> {
        if supremm_tsdb::recordlog::is_segment_file(path) {
            let records = supremm_tsdb::recordlog::read_records(path).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            })?;
            let jobs = records
                .iter()
                .map(|bytes| crate::jobcodec::decode(bytes))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
            return Ok((JobTable::new(jobs), 0));
        }
        // Legacy JSON-lines: tolerate corrupt lines, count them.
        obs.counter("warehouse_deprecated_jobs_jsonl_load_total").inc();
        obs.event(
            "deprecation",
            format!(
                "legacy jobs.jsonl read shim used for {} — re-save via JobTable::save before the shim is removed",
                path.display()
            ),
        );
        let text = std::fs::read_to_string(path)?;
        let mut jobs = Vec::new();
        let mut bad = 0usize;
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            match crate::jobcodec::decode_legacy_json(line) {
                Some(j) => jobs.push(j),
                None => bad += 1,
            }
        }
        Ok((JobTable::new(jobs), bad))
    }

    /// [`JobTable::load_counting`] without the skip count.
    pub fn load(path: &std::path::Path) -> std::io::Result<JobTable> {
        Ok(Self::load_counting(path)?.0)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::record::ExitKind;
    use supremm_metrics::{JobId, ScienceField, Timestamp, UserId};

    fn sample_table() -> JobTable {
        let mut metrics = KeyMetricVec::default();
        metrics.set(KeyMetric::CpuFlops, 3.25e9);
        JobTable::new(vec![JobRecord {
            job: JobId(9),
            user: UserId(4),
            app: Some("WRF".into()),
            science: ScienceField::AtmosphericSciences,
            queue: "large".into(),
            submit: Timestamp(10),
            start: Timestamp(600),
            end: Timestamp(7200),
            nodes: 32,
            exit: ExitKind::Failed,
            metrics,
            extended: [0.125; ExtendedMetric::ALL.len()],
            flops_valid: false,
            samples: 11,
            coverage_gaps: 0,
        }])
    }

    /// The old serde-derive JSON-lines shape, reproduced for shim tests.
    fn legacy_line(j: &JobRecord) -> String {
        use supremm_metrics::json::{obj, Value};
        obj([
            ("job", j.job.0.into()),
            ("user", j.user.0.into()),
            ("app", j.app.as_deref().into()),
            ("science", format!("{:?}", j.science).into()),
            ("queue", j.queue.as_str().into()),
            ("submit", j.submit.0.into()),
            ("start", j.start.0.into()),
            ("end", j.end.0.into()),
            ("nodes", j.nodes.into()),
            ("exit", format!("{:?}", j.exit).into()),
            ("metrics", Value::Array(j.metrics.0.iter().map(|&v| v.into()).collect())),
            ("extended", Value::Array(j.extended.iter().map(|&v| v.into()).collect())),
            ("flops_valid", j.flops_valid.into()),
            ("samples", j.samples.into()),
            ("coverage_gaps", j.coverage_gaps.into()),
        ])
        .to_string()
    }

    #[test]
    fn segment_file_round_trip() {
        let path =
            std::env::temp_dir().join(format!("supremm-table-{}.tsdb", std::process::id()));
        let t = sample_table();
        t.save(&path).unwrap();
        assert!(supremm_tsdb::recordlog::is_segment_file(&path));
        let (back, bad) = JobTable::load_counting(&path).unwrap();
        assert_eq!(bad, 0);
        assert_eq!(back.jobs(), t.jobs());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_table_round_trips_through_file() {
        let path =
            std::env::temp_dir().join(format!("supremm-empty-{}.tsdb", std::process::id()));
        JobTable::default().save(&path).unwrap();
        assert!(JobTable::load(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_json_lines_still_load() {
        let path =
            std::env::temp_dir().join(format!("supremm-legacy-{}.jsonl", std::process::id()));
        let t = sample_table();
        let text: String = t.jobs().iter().map(|j| legacy_line(j) + "\n").collect();
        std::fs::write(&path, &text).unwrap();
        let (back, bad) = JobTable::load_counting(&path).unwrap();
        assert_eq!(bad, 0);
        assert_eq!(back.jobs(), t.jobs());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_load_emits_deprecation_event() {
        let path =
            std::env::temp_dir().join(format!("supremm-depr-{}.jsonl", std::process::id()));
        let t = sample_table();
        let text: String = t.jobs().iter().map(|j| legacy_line(j) + "\n").collect();
        std::fs::write(&path, &text).unwrap();
        let obs = supremm_obs::ObsRegistry::new();
        let (back, bad) = JobTable::load_counting_with_obs(&path, &obs).unwrap();
        assert_eq!(bad, 0);
        assert_eq!(back.jobs(), t.jobs());
        let snap = obs.snapshot();
        assert_eq!(snap.counter("warehouse_deprecated_jobs_jsonl_load_total"), Some(1));
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == "deprecation" && e.detail.contains("jobs.jsonl read shim")));
        // The segment-format fast path stays silent.
        let seg = std::env::temp_dir().join(format!("supremm-depr-{}.tsdb", std::process::id()));
        t.save(&seg).unwrap();
        let quiet = supremm_obs::ObsRegistry::new();
        JobTable::load_counting_with_obs(&seg, &quiet).unwrap();
        assert_eq!(quiet.snapshot().counter("warehouse_deprecated_jobs_jsonl_load_total"), None);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&seg).unwrap();
    }

    #[test]
    fn legacy_corrupt_lines_are_counted_not_fatal() {
        let path =
            std::env::temp_dir().join(format!("supremm-corrupt-{}.jsonl", std::process::id()));
        let good = legacy_line(&sample_table().jobs()[0]);
        std::fs::write(&path, format!("{good}garbage\n\n{good}\n{{broken\n")).unwrap();
        let (back, bad) = JobTable::load_counting(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(bad, 2);
        std::fs::remove_file(&path).unwrap();
    }
}
