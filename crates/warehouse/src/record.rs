//! The assembled per-job record.

use serde::{Deserialize, Serialize};
use supremm_metrics::metric::KeyMetricVec;
use supremm_metrics::{ExtendedMetric, JobId, ScienceField, Timestamp, UserId};

/// Job termination classification, decoded from the accounting `failed`
/// field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExitKind {
    Completed,
    Failed,
    NodeFailure,
    Cancelled,
}

impl ExitKind {
    /// Decode the SGE-style `failed` code used by the accounting log.
    pub fn from_failed_code(code: u32) -> ExitKind {
        match code {
            0 => ExitKind::Completed,
            19 => ExitKind::NodeFailure,
            100 => ExitKind::Cancelled,
            _ => ExitKind::Failed,
        }
    }

    pub fn to_failed_code(self) -> u32 {
        match self {
            ExitKind::Completed => 0,
            ExitKind::Failed => 1,
            ExitKind::NodeFailure => 19,
            ExitKind::Cancelled => 100,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ExitKind::Completed => "completed",
            ExitKind::Failed => "failed",
            ExitKind::NodeFailure => "node_failure",
            ExitKind::Cancelled => "cancelled",
        }
    }
}

/// One job with everything the reports need: identity and timing from
/// accounting, application from Lariat, resource metrics from TACC_Stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    pub job: JobId,
    pub user: UserId,
    /// Canonical application name from Lariat; `None` when Lariat saw an
    /// unrecognised executable.
    pub app: Option<String>,
    pub science: ScienceField,
    pub queue: String,
    pub submit: Timestamp,
    pub start: Timestamp,
    pub end: Timestamp,
    pub nodes: u32,
    pub exit: ExitKind,
    /// Mean values of the eight key metrics over the job's node-intervals
    /// (`MemUsedMax` holds the observed maximum instead).
    pub metrics: KeyMetricVec,
    /// Mean values of the full measured metric set.
    pub extended: [f64; ExtendedMetric::ALL.len()],
    /// False when any interval's FLOPS reading was invalidated by user
    /// counter reprogramming.
    pub flops_valid: bool,
    /// Node-interval observations behind the means.
    pub samples: u32,
    /// Corrupt-region coverage gaps in this job's raw data (lenient
    /// ingest only; always 0 on clean archives or strict scans).
    pub coverage_gaps: u32,
}

impl JobRecord {
    pub fn wall_secs(&self) -> u64 {
        self.end.since(self.start).seconds()
    }

    pub fn node_hours(&self) -> f64 {
        self.wall_secs() as f64 / 3600.0 * self.nodes as f64
    }

    pub fn extended_get(&self, m: ExtendedMetric) -> f64 {
        self.extended[m.index()]
    }

    /// Wait time in the queue.
    pub fn wait_secs(&self) -> u64 {
        self.start.since(self.submit).seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::KeyMetric;

    pub(crate) fn sample_record() -> JobRecord {
        let mut metrics = KeyMetricVec::default();
        metrics.set(KeyMetric::CpuIdle, 0.12);
        JobRecord {
            job: JobId(5),
            user: UserId(2),
            app: Some("NAMD".into()),
            science: ScienceField::MolecularBiosciences,
            queue: "normal".into(),
            submit: Timestamp(0),
            start: Timestamp(3600),
            end: Timestamp(3600 * 5),
            nodes: 8,
            exit: ExitKind::Completed,
            metrics,
            extended: [0.0; ExtendedMetric::ALL.len()],
            flops_valid: true,
            samples: 24,
            coverage_gaps: 0,
        }
    }

    #[test]
    fn derived_times() {
        let r = sample_record();
        assert_eq!(r.wall_secs(), 4 * 3600);
        assert_eq!(r.node_hours(), 32.0);
        assert_eq!(r.wait_secs(), 3600);
    }

    #[test]
    fn failed_code_round_trip() {
        for kind in [
            ExitKind::Completed,
            ExitKind::Failed,
            ExitKind::NodeFailure,
            ExitKind::Cancelled,
        ] {
            assert_eq!(ExitKind::from_failed_code(kind.to_failed_code()), kind);
        }
        // Unknown nonzero codes are generic failures.
        assert_eq!(ExitKind::from_failed_code(7), ExitKind::Failed);
    }
}
