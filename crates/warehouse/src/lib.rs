//! `supremm-warehouse`: ingestion and storage (the Netezza/MySQL role).
//!
//! §4.1: "We ingested both the raw TACC_Stats output files and job
//! accounting information into an IBM Netezza data warehouse appliance
//! and a MySQL database." This crate is that layer for the Rust tool
//! chain:
//!
//! - [`ingest`] parses raw per-host files (in parallel), pairs adjacent
//!   samples into per-interval metrics, groups them by the job-id tags,
//!   and joins against the accounting log (authoritative user/times/exit)
//!   and Lariat records (job → application) to assemble [`JobRecord`]s;
//! - [`record`] defines the assembled per-job record with its
//!   node·hour-weighted metric means and observed maxima;
//! - [`store`] is the queryable job table (filter / group-by /
//!   weighted-aggregate) the report layer runs on;
//! - [`timeseries`] assembles the system-level series (active nodes,
//!   total FLOPS, memory per node, per-mount Lustre throughput, CPU-state
//!   node-hours) behind Figures 7–11;
//! - [`streaming`] is the single-pass layer under both [`ingest`] and
//!   [`timeseries`]: one zero-copy scan per raw file produces a
//!   mergeable [`streaming::FilePartial`] feeding job fragments *and*
//!   system bins, so archives are parsed exactly once per run;
//! - [`binfmt`] is the compact binary import format of §5's future work
//!   (delta+varint over the text format's content, lossless);
//! - [`jobcodec`] is the per-job binary codec behind the segment-backed
//!   job table (bit-exact floats, legacy JSON-lines read shim);
//! - [`tsdbio`] bridges warehouse products into the `supremm-tsdb`
//!   storage engine (system series, per-host metric series).

pub mod binfmt;
pub mod ingest;
pub mod jobcodec;
pub mod record;
pub mod store;
pub mod streaming;
pub mod timeseries;
pub mod tsdbio;

pub use supremm_tsdb as tsdb;

pub use ingest::{ingest, ingest_with_series, IngestStats};
pub use record::{ExitKind, JobRecord};
pub use store::JobTable;
pub use streaming::{consume_archive, ConsumeOptions, FilePartial, StreamAccumulator, StreamOutput};
pub use timeseries::{SystemBin, SystemSeries};
