//! Per-job binary codec for the segment-backed job table, plus the
//! one-release read-compat decoder for the legacy JSON-lines export.
//!
//! Binary layout (version byte first, then fields in struct order):
//!
//! ```text
//! u8 version=1 · varint job · varint user · u8 has_app (+ str) ·
//! u8 science · str queue · varint submit · varint start · varint end ·
//! varint nodes · u8 exit_code · 8×f64le metrics · 20×f64le extended ·
//! u8 flops_valid · varint samples · varint coverage_gaps
//! ```
//!
//! Floats travel as raw little-endian bit patterns, so `decode(encode(r))
//! == r` bit-for-bit — the property the pipeline-through-store
//! differential tests rely on.

use supremm_metrics::json::Value;
use supremm_metrics::metric::KeyMetricVec;
use supremm_metrics::{ExtendedMetric, JobId, ScienceField, Timestamp, UserId};

use crate::binfmt::{get_str, get_varint, put_str, put_varint, BinError};
use crate::record::{ExitKind, JobRecord};

const VERSION: u8 = 1;

fn science_id(s: ScienceField) -> u8 {
    // suplint: allow(R1) -- ScienceField::ALL lists every variant; position cannot miss
    ScienceField::ALL.iter().position(|&x| x == s).expect("member") as u8
}

fn science_from_id(id: u8) -> Result<ScienceField, BinError> {
    ScienceField::ALL.get(id as usize).copied().ok_or(BinError::Truncated)
}

/// Encode one job record.
pub fn encode(r: &JobRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + 28 * 8);
    buf.push(VERSION);
    put_varint(&mut buf, r.job.0);
    put_varint(&mut buf, r.user.0 as u64);
    match &r.app {
        Some(app) => {
            buf.push(1);
            put_str(&mut buf, app);
        }
        None => buf.push(0),
    }
    buf.push(science_id(r.science));
    put_str(&mut buf, &r.queue);
    put_varint(&mut buf, r.submit.0);
    put_varint(&mut buf, r.start.0);
    put_varint(&mut buf, r.end.0);
    put_varint(&mut buf, r.nodes as u64);
    buf.push(r.exit.to_failed_code() as u8);
    for v in r.metrics.0 {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for v in r.extended {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    buf.push(r.flops_valid as u8);
    put_varint(&mut buf, r.samples as u64);
    put_varint(&mut buf, r.coverage_gaps as u64);
    buf
}

fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, BinError> {
    let end = pos.checked_add(8).ok_or(BinError::Truncated)?;
    let &[a, b, c, d, e, f, g, h] = buf.get(*pos..end).ok_or(BinError::Truncated)? else {
        return Err(BinError::Truncated);
    };
    *pos = end;
    Ok(f64::from_bits(u64::from_le_bytes([a, b, c, d, e, f, g, h])))
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, BinError> {
    let &b = buf.get(*pos).ok_or(BinError::Truncated)?;
    *pos += 1;
    Ok(b)
}

/// Decode one record; rejects trailing bytes and unknown versions.
pub fn decode(buf: &[u8]) -> Result<JobRecord, BinError> {
    let mut pos = 0usize;
    let version = get_u8(buf, &mut pos)?;
    if version != VERSION {
        return Err(BinError::Truncated);
    }
    let job = JobId(get_varint(buf, &mut pos)?);
    let user = UserId(get_varint(buf, &mut pos)? as u32);
    let app = match get_u8(buf, &mut pos)? {
        0 => None,
        _ => Some(get_str(buf, &mut pos)?),
    };
    let science = science_from_id(get_u8(buf, &mut pos)?)?;
    let queue = get_str(buf, &mut pos)?;
    let submit = Timestamp(get_varint(buf, &mut pos)?);
    let start = Timestamp(get_varint(buf, &mut pos)?);
    let end = Timestamp(get_varint(buf, &mut pos)?);
    let nodes = get_varint(buf, &mut pos)? as u32;
    let exit = ExitKind::from_failed_code(get_u8(buf, &mut pos)? as u32);
    let mut metrics = KeyMetricVec::default();
    for slot in metrics.0.iter_mut() {
        *slot = get_f64(buf, &mut pos)?;
    }
    let mut extended = [0.0f64; ExtendedMetric::ALL.len()];
    for slot in extended.iter_mut() {
        *slot = get_f64(buf, &mut pos)?;
    }
    let flops_valid = get_u8(buf, &mut pos)? != 0;
    let samples = get_varint(buf, &mut pos)? as u32;
    let coverage_gaps = get_varint(buf, &mut pos)? as u32;
    if pos != buf.len() {
        return Err(BinError::Truncated);
    }
    Ok(JobRecord {
        job,
        user,
        app,
        science,
        queue,
        submit,
        start,
        end,
        nodes,
        exit,
        metrics,
        extended,
        flops_valid,
        samples,
        coverage_gaps,
    })
}

// --- legacy JSON-lines read shim ------------------------------------------

fn science_from_variant(s: &str) -> Option<ScienceField> {
    ScienceField::ALL.iter().copied().find(|f| format!("{f:?}") == s)
}

fn exit_from_variant(s: &str) -> Option<ExitKind> {
    [ExitKind::Completed, ExitKind::Failed, ExitKind::NodeFailure, ExitKind::Cancelled]
        .into_iter()
        .find(|k| format!("{k:?}") == s)
}

/// Decode one line of the pre-segment JSON-lines export (shape produced
/// by the old serde derive). Read-only: new files are always segments.
pub fn decode_legacy_json(line: &str) -> Option<JobRecord> {
    let v = Value::parse(line)?;
    let floats = |field: &str, n: usize| -> Option<Vec<f64>> {
        let arr = v[field].as_array()?;
        if arr.len() != n {
            return None;
        }
        arr.iter().map(|x| x.as_f64()).collect()
    };
    let metric_vals = floats("metrics", 8)?;
    let mut metrics = KeyMetricVec::default();
    metrics.0.copy_from_slice(&metric_vals);
    let ext_vals = floats("extended", ExtendedMetric::ALL.len())?;
    let mut extended = [0.0f64; ExtendedMetric::ALL.len()];
    extended.copy_from_slice(&ext_vals);
    Some(JobRecord {
        job: JobId(v["job"].as_u64()?),
        user: UserId(v["user"].as_u64()? as u32),
        app: match &v["app"] {
            Value::Null => None,
            a => Some(a.as_str()?.to_string()),
        },
        science: science_from_variant(v["science"].as_str()?)?,
        queue: v["queue"].as_str()?.to_string(),
        submit: Timestamp(v["submit"].as_u64()?),
        start: Timestamp(v["start"].as_u64()?),
        end: Timestamp(v["end"].as_u64()?),
        nodes: v["nodes"].as_u64()? as u32,
        exit: exit_from_variant(v["exit"].as_str()?)?,
        metrics,
        extended,
        flops_valid: v["flops_valid"].as_bool()?,
        samples: v["samples"].as_u64()? as u32,
        coverage_gaps: v["coverage_gaps"].as_u64()? as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::KeyMetric;

    fn record() -> JobRecord {
        let mut metrics = KeyMetricVec::default();
        metrics.set(KeyMetric::CpuFlops, 3.25e9);
        metrics.set(KeyMetric::CpuIdle, 0.125);
        JobRecord {
            job: JobId(u64::MAX / 3),
            user: UserId(40_000),
            app: Some("WRF".into()),
            science: ScienceField::AtmosphericSciences,
            queue: "large".into(),
            submit: Timestamp(10),
            start: Timestamp(600),
            end: Timestamp(7200),
            nodes: 32,
            exit: ExitKind::NodeFailure,
            metrics,
            extended: [0.1234567890123; ExtendedMetric::ALL.len()],
            flops_valid: false,
            samples: 11,
            coverage_gaps: 3,
        }
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let r = record();
        assert_eq!(decode(&encode(&r)).unwrap(), r);
        let mut none_app = record();
        none_app.app = None;
        assert_eq!(decode(&encode(&none_app)).unwrap(), none_app);
    }

    #[test]
    fn nan_metrics_survive_binary_round_trip() {
        let mut r = record();
        r.metrics.0[3] = f64::NAN;
        r.extended[7] = f64::INFINITY;
        let back = decode(&encode(&r)).unwrap();
        assert!(back.metrics.0[3].is_nan());
        assert_eq!(back.extended[7], f64::INFINITY);
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let enc = encode(&record());
        for cut in 0..enc.len() {
            assert!(decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        let mut extra = enc.clone();
        extra.push(0);
        assert!(decode(&extra).is_err());
    }

    #[test]
    fn legacy_json_lines_decode() {
        let line = r#"{"job":9,"user":4,"app":"WRF","science":"AtmosphericSciences","queue":"large","submit":10,"start":600,"end":7200,"nodes":32,"exit":"Failed","metrics":[3.25,0,0,0,0,0,0,0],"extended":[0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125,0.125],"flops_valid":false,"samples":11,"coverage_gaps":0}"#;
        let r = decode_legacy_json(line).unwrap();
        assert_eq!(r.job, JobId(9));
        assert_eq!(r.app.as_deref(), Some("WRF"));
        assert_eq!(r.science, ScienceField::AtmosphericSciences);
        assert_eq!(r.exit, ExitKind::Failed);
        assert_eq!(r.metrics.0[0], 3.25);
        assert_eq!(r.samples, 11);
        // Null app.
        let line = line.replace("\"WRF\"", "null");
        assert_eq!(decode_legacy_json(&line).unwrap().app, None);
        // Corruption fails cleanly.
        assert!(decode_legacy_json("{broken").is_none());
        assert!(decode_legacy_json("{}").is_none());
    }
}
