//! The ingest pipeline: raw files + accounting + Lariat → job records.
//!
//! Parallelises over raw files (hosts × days are independent) through
//! the single-pass [`crate::streaming`] layer, then joins per-job
//! fragments across hosts and against the accounting/Lariat sources.
//! Design decision 3 of DESIGN.md: samples are matched to jobs by the
//! *job-id tags in the raw data* (TACC_Stats' batch-job awareness), not
//! by time-window joins against the accounting log — the ablation bench
//! measures what that buys.

use std::collections::BTreeMap;

use supremm_metrics::metric::KeyMetricVec;
use supremm_metrics::{ExtendedMetric, JobId, KeyMetric};
use supremm_ratlog::accounting::AccountingRecord;
use supremm_ratlog::lariat::LariatRecord;
use supremm_taccstats::IntervalMetrics;
use supremm_taccstats::RawArchive;

use crate::record::{ExitKind, JobRecord};
use crate::streaming::{consume_archive, ConsumeOptions};
use crate::timeseries::SystemSeries;

/// Per-job accumulation of interval metrics (one fragment per host file;
/// fragments merge associatively).
#[derive(Debug, Clone, Default)]
pub(crate) struct JobFragment {
    /// Sum of each extended metric over intervals.
    sums: [f64; ExtendedMetric::ALL.len()],
    /// Observed memory maximum (bytes).
    mem_max: f64,
    intervals: u32,
    flops_invalid: u32,
    /// Corrupt-region coverage gaps charged to this job (lenient scans).
    pub(crate) gaps: u32,
}

impl JobFragment {
    /// Fold one interval into the fragment.
    pub(crate) fn absorb(&mut self, m: &IntervalMetrics) {
        for em in ExtendedMetric::ALL {
            self.sums[em.index()] += m.get(em);
        }
        self.mem_max = self.mem_max.max(m.get(ExtendedMetric::MemUsed));
        self.intervals += 1;
        if !m.flops_valid {
            self.flops_invalid += 1;
        }
    }

    pub(crate) fn merge(&mut self, other: &JobFragment) {
        for (a, b) in self.sums.iter_mut().zip(other.sums) {
            *a += b;
        }
        self.mem_max = self.mem_max.max(other.mem_max);
        self.intervals += other.intervals;
        self.flops_invalid += other.flops_invalid;
        self.gaps += other.gaps;
    }

    pub(crate) fn add_gaps(&mut self, n: u32) {
        self.gaps += n;
    }
}

/// Pipeline accounting, reported alongside the records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    pub files: usize,
    pub parse_errors: usize,
    pub records: usize,
    pub intervals: usize,
    /// Jobs with both samples and an accounting record.
    pub jobs: usize,
    /// Jobs seen in raw data with no accounting record (lost log lines).
    pub jobs_missing_accounting: usize,
    /// Accounted jobs with no usable samples (mostly shorter than the
    /// sampling interval — the paper excludes these from analysis too).
    pub jobs_missing_samples: usize,
    /// Records whose `T` line parsed, whether or not they survived.
    /// Conservation: `records_seen == records + samples_quarantined`.
    pub records_seen: usize,
    /// Records torn by corruption and discarded by the lenient scanner.
    pub samples_quarantined: usize,
    /// Bytes attributed to corrupt lines/regions (includes every byte
    /// of files rejected outright).
    pub bytes_quarantined: u64,
    /// Contiguous corrupt regions across all files — the archive-wide
    /// coverage-gap count.
    pub gaps: usize,
    /// Ingest worker threads that panicked mid-file (the file is
    /// quarantined whole and the pool keeps running).
    pub worker_panics: usize,
    /// Files handed to the ingest pool that never produced a partial —
    /// a send that found every worker dead, or a worker that died with
    /// files still queued. Always 0 on a healthy run.
    pub files_lost: usize,
}

impl IngestStats {
    /// The quarantine conservation invariant: every record the scanner
    /// accepted a `T` line for was either ingested or quarantined.
    pub fn conservation_holds(&self) -> bool {
        self.records_seen == self.records + self.samples_quarantined
    }
}

/// Run the full ingest: parse every raw file in parallel (one pass per
/// file), merge job fragments, join with accounting + Lariat.
pub fn ingest(
    archive: &RawArchive,
    accounting: &[AccountingRecord],
    lariat: &[LariatRecord],
) -> (Vec<JobRecord>, IngestStats) {
    let opts = ConsumeOptions { bin_secs: None, job_fragments: true, strict: false };
    let out = consume_archive(archive, opts).finish(accounting, lariat);
    (out.records, out.stats)
}

/// Ingest *and* assemble the system series from the same single parse
/// pass over the archive — the unified-consumer entry point for callers
/// that need both products.
pub fn ingest_with_series(
    archive: &RawArchive,
    accounting: &[AccountingRecord],
    lariat: &[LariatRecord],
    bin_secs: u64,
) -> (Vec<JobRecord>, IngestStats, SystemSeries) {
    assert!(bin_secs > 0);
    let opts = ConsumeOptions { bin_secs: Some(bin_secs), job_fragments: true, strict: false };
    let out = consume_archive(archive, opts).finish(accounting, lariat);
    (out.records, out.stats, out.series.expect("binning requested"))
}

/// Join merged per-job fragments against the accounting and Lariat
/// logs. Shared tail of every ingest path; fills the job-level fields
/// of `stats`.
pub(crate) fn assemble_jobs(
    mut jobs: BTreeMap<JobId, JobFragment>,
    accounting: &[AccountingRecord],
    lariat: &[LariatRecord],
    stats: &mut IngestStats,
) -> Vec<JobRecord> {
    let lariat_by_job: BTreeMap<JobId, &LariatRecord> =
        lariat.iter().map(|l| (l.job, l)).collect();
    let mut seen_in_raw = jobs.len();

    let mut records = Vec::with_capacity(accounting.len());
    for acct in accounting {
        let Some(frag) = jobs.remove(&acct.job) else {
            stats.jobs_missing_samples += 1;
            continue;
        };
        seen_in_raw -= 1;
        let n = frag.intervals.max(1) as f64;
        let mut extended = [0.0; ExtendedMetric::ALL.len()];
        for (dst, sum) in extended.iter_mut().zip(frag.sums) {
            *dst = sum / n;
        }
        let mut metrics = KeyMetricVec::default();
        for km in KeyMetric::ALL {
            let em = ExtendedMetric::ALL
                .into_iter()
                .find(|e| e.as_key() == Some(km))
                .expect("every key metric has an extended twin");
            metrics.set(km, extended[em.index()]);
        }
        metrics.set(KeyMetric::MemUsedMax, frag.mem_max);

        let app = lariat_by_job
            .get(&acct.job)
            .and_then(|l| supremm_ratlog::lariat::app_for_exe(&l.exe))
            .map(str::to_string);

        records.push(JobRecord {
            job: acct.job,
            user: acct.owner,
            app,
            science: acct.account,
            queue: acct.queue.clone(),
            submit: acct.submit,
            start: acct.start,
            end: acct.end,
            nodes: acct.nodes,
            exit: ExitKind::from_failed_code(acct.failed),
            metrics,
            extended,
            flops_valid: frag.flops_invalid == 0,
            samples: frag.intervals,
            coverage_gaps: frag.gaps,
        });
    }
    stats.jobs = records.len();
    stats.jobs_missing_accounting = seen_in_raw;
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::{HostId, ScienceField, Timestamp, UserId};
    use supremm_procsim::{KernelState, NodeActivity, NodeSpec};
    use supremm_taccstats::archive::RawFileKey;
    use supremm_taccstats::Collector;

    /// Run one two-node job through real collectors and ingest it.
    fn collect_job(job: JobId, idle_act: bool) -> RawArchive {
        let mut archive = RawArchive::new();
        for host in 0..2u32 {
            let mut kernel = KernelState::new(NodeSpec::ranger());
            let mut c = Collector::new(HostId(host));
            let mut ts = Timestamp(600);
            c.begin_job(&mut kernel, job, ts);
            let act = if idle_act {
                NodeActivity::idle()
            } else {
                NodeActivity {
                    user_frac: 0.85,
                    flops: 4.0e9 * 600.0 * 16.0,
                    mem_used_bytes: 9 << 30,
                    scratch_write_bytes: 300 << 20,
                    ib_tx_bytes: 2 << 30,
                    ..NodeActivity::idle()
                }
            };
            for _ in 0..5 {
                kernel.advance(&act, 600.0);
                ts = ts + supremm_metrics::Duration(600);
                c.sample(&kernel, ts);
            }
            c.end_job(&mut kernel, job, ts);
            for (k, text) in c.into_files() {
                archive.insert(k, text);
            }
        }
        archive
    }

    fn acct(job: JobId) -> AccountingRecord {
        AccountingRecord {
            queue: "normal".into(),
            owner: UserId(7),
            job,
            account: ScienceField::Physics,
            submit: Timestamp(0),
            start: Timestamp(600),
            end: Timestamp(3600),
            failed: 0,
            exit_status: 0,
            nodes: 2,
            slots: 32,
            hosts: vec![HostId(0), HostId(1)],
        }
    }

    fn lariat(job: JobId) -> LariatRecord {
        LariatRecord {
            job,
            user: UserId(7),
            exe: "namd2".into(),
            app_name: "NAMD".into(),
            nodes: 2,
            threads_per_rank: 1,
            libraries: vec![],
        }
    }

    #[test]
    fn end_to_end_job_assembly() {
        let archive = collect_job(JobId(42), false);
        let (records, stats) = ingest(&archive, &[acct(JobId(42))], &[lariat(JobId(42))]);
        assert_eq!(records.len(), 1);
        assert_eq!(stats.jobs, 1);
        assert_eq!(stats.parse_errors, 0);
        let r = &records[0];
        assert_eq!(r.user, UserId(7));
        assert_eq!(r.app.as_deref(), Some("NAMD"));
        assert_eq!(r.nodes, 2);
        assert!(r.flops_valid);
        // 2 hosts × 5 intervals (begin sample + 5 periodic, paired).
        assert_eq!(r.samples, 10);
        // Derived means are sane.
        let idle = r.metrics.get(KeyMetric::CpuIdle);
        assert!(idle < 0.2, "{idle}");
        let flops = r.metrics.get(KeyMetric::CpuFlops);
        assert!((flops / (4.0e9 * 16.0) - 1.0).abs() < 0.05, "{flops}");
        let memmax = r.metrics.get(KeyMetric::MemUsedMax);
        assert!(memmax > 8.9e9, "{memmax}");
    }

    #[test]
    fn job_without_accounting_is_counted_not_invented() {
        let archive = collect_job(JobId(42), false);
        let (records, stats) = ingest(&archive, &[], &[]);
        assert!(records.is_empty());
        assert_eq!(stats.jobs_missing_accounting, 1);
    }

    #[test]
    fn accounting_without_samples_is_counted() {
        let archive = RawArchive::new();
        let (records, stats) = ingest(&archive, &[acct(JobId(1))], &[]);
        assert!(records.is_empty());
        assert_eq!(stats.jobs_missing_samples, 1);
    }

    #[test]
    fn missing_lariat_means_unknown_app() {
        let archive = collect_job(JobId(9), false);
        let (records, _) = ingest(&archive, &[acct(JobId(9))], &[]);
        assert_eq!(records[0].app, None);
    }

    #[test]
    fn corrupt_file_is_isolated() {
        let mut archive = collect_job(JobId(3), false);
        archive.insert(
            RawFileKey { host: HostId(99), day: 0 },
            "total garbage\nnot a file".to_string(),
        );
        let (records, stats) = ingest(&archive, &[acct(JobId(3))], &[]);
        assert_eq!(records.len(), 1);
        assert_eq!(stats.parse_errors, 1);
    }

    #[test]
    fn idle_job_has_high_cpu_idle() {
        let archive = collect_job(JobId(4), true);
        let (records, _) = ingest(&archive, &[acct(JobId(4))], &[]);
        assert!(records[0].metrics.get(KeyMetric::CpuIdle) > 0.95);
    }
}
