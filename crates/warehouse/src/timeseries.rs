//! System-level time series assembly (Figures 7–11).
//!
//! §1: "system level metrics are obtained through aggregation of the node
//! (job) level data" — exactly what happens here: every host's raw file
//! is reduced to per-interval metrics and summed into cluster-wide bins:
//! active nodes (Fig 8), total FLOP/s (Fig 9/10), memory per node
//! (Fig 11/12), CPU-state shares (Fig 7b), per-mount Lustre throughput
//! (Fig 7c).

use std::collections::BTreeMap;

use supremm_metrics::{ExtendedMetric, Timestamp};
use supremm_taccstats::RawArchive;

use crate::streaming::{consume_archive, ConsumeOptions};

/// One cluster-wide time bin.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SystemBin {
    /// Bin start.
    pub ts: Timestamp,
    /// Hosts that produced a sample in this bin (powered-on nodes).
    pub active_nodes: u32,
    /// Hosts whose sample carried a job tag.
    pub busy_nodes: u32,
    /// Host-intervals aggregated into this bin.
    pub intervals: u32,
    /// Total FLOP/s across the cluster.
    pub flops: f64,
    /// Sum of per-node memory used (bytes).
    pub mem_used_bytes: f64,
    /// Sums of CPU-state fractions over host-intervals (divide by
    /// `intervals` for the mean share).
    pub cpu_user_sum: f64,
    pub cpu_system_sum: f64,
    pub cpu_idle_sum: f64,
    /// Cluster totals, bytes/s.
    pub scratch_write_bps: f64,
    pub scratch_read_bps: f64,
    pub work_write_bps: f64,
    pub work_read_bps: f64,
    pub share_write_bps: f64,
    pub share_read_bps: f64,
    pub ib_tx_bps: f64,
    pub lnet_tx_bps: f64,
}

impl SystemBin {
    pub(crate) fn absorb(&mut self, m: &supremm_taccstats::IntervalMetrics) {
        self.intervals += 1;
        self.flops += m.get(ExtendedMetric::CpuFlops);
        self.mem_used_bytes += m.get(ExtendedMetric::MemUsed);
        self.cpu_user_sum += m.get(ExtendedMetric::CpuUser);
        self.cpu_system_sum += m.get(ExtendedMetric::CpuSystem);
        self.cpu_idle_sum += m.get(ExtendedMetric::CpuIdle);
        self.scratch_write_bps += m.get(ExtendedMetric::IoScratchWrite);
        self.scratch_read_bps += m.get(ExtendedMetric::IoScratchRead);
        self.work_write_bps += m.get(ExtendedMetric::IoWorkWrite);
        self.work_read_bps += m.get(ExtendedMetric::IoWorkRead);
        self.share_write_bps += m.get(ExtendedMetric::IoShareWrite);
        self.share_read_bps += m.get(ExtendedMetric::IoShareRead);
        self.ib_tx_bps += m.get(ExtendedMetric::NetIbTx);
        self.lnet_tx_bps += m.get(ExtendedMetric::NetLnetTx);
    }

    pub(crate) fn merge(&mut self, other: &SystemBin) {
        self.active_nodes += other.active_nodes;
        self.busy_nodes += other.busy_nodes;
        self.intervals += other.intervals;
        self.flops += other.flops;
        self.mem_used_bytes += other.mem_used_bytes;
        self.cpu_user_sum += other.cpu_user_sum;
        self.cpu_system_sum += other.cpu_system_sum;
        self.cpu_idle_sum += other.cpu_idle_sum;
        self.scratch_write_bps += other.scratch_write_bps;
        self.scratch_read_bps += other.scratch_read_bps;
        self.work_write_bps += other.work_write_bps;
        self.work_read_bps += other.work_read_bps;
        self.share_write_bps += other.share_write_bps;
        self.share_read_bps += other.share_read_bps;
        self.ib_tx_bps += other.ib_tx_bps;
        self.lnet_tx_bps += other.lnet_tx_bps;
    }

    /// Mean per-node memory used in this bin (bytes).
    pub fn mem_per_node(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.mem_used_bytes / self.intervals as f64
        }
    }

    /// Mean CPU-state shares `(user, system, idle)`.
    pub fn cpu_shares(&self) -> (f64, f64, f64) {
        if self.intervals == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = self.intervals as f64;
        (self.cpu_user_sum / n, self.cpu_system_sum / n, self.cpu_idle_sum / n)
    }
}

/// The assembled cluster time series.
#[derive(Debug, Clone)]
pub struct SystemSeries {
    pub bin_secs: u64,
    pub bins: Vec<SystemBin>,
}

impl SystemSeries {
    /// Build from a raw archive, binning at `bin_secs` (use the sampling
    /// interval for full resolution). One parallel streaming pass over
    /// the files via [`crate::streaming`].
    pub fn from_archive(archive: &RawArchive, bin_secs: u64) -> SystemSeries {
        assert!(bin_secs > 0);
        let opts = ConsumeOptions { bin_secs: Some(bin_secs), job_fragments: false, strict: false };
        let out = consume_archive(archive, opts).finish(&[], &[]);
        out.series.expect("binning requested")
    }

    /// Stamp merged bins with their start timestamps. The cross-file
    /// `SystemBin` merge order is fixed by the caller (file-key order),
    /// which keeps the floating-point sums bit-identical run to run.
    pub(crate) fn from_bins(merged: BTreeMap<u64, SystemBin>, bin_secs: u64) -> SystemSeries {
        let bins = merged
            .into_iter()
            .map(|(idx, mut bin)| {
                bin.ts = Timestamp(idx * bin_secs);
                bin
            })
            .collect();
        SystemSeries { bin_secs, bins }
    }

    /// Extract one scalar per bin.
    pub fn series(&self, f: impl Fn(&SystemBin) -> f64) -> Vec<f64> {
        self.bins.iter().map(f).collect()
    }

    /// Measurement coverage: the fraction of node-bins (node-hours, in
    /// bin units) for which a valid sample arrived, over a fleet of
    /// `node_count` nodes and the densified span of this series. 1.0
    /// means every node reported in every bin; collector crashes, lost
    /// files, and quarantined records all push it down. This is the
    /// paper's missing-data discussion made into a number.
    pub fn coverage(&self, node_count: u32) -> f64 {
        if node_count == 0 || self.bins.is_empty() {
            return 0.0;
        }
        let first = self.bins.first().expect("non-empty").ts.0;
        let last = self.bins.last().expect("non-empty").ts.0;
        let span_bins = (last - first) / self.bin_secs + 1;
        let possible = span_bins as f64 * node_count as f64;
        let observed: f64 = self.bins.iter().map(|b| b.active_nodes as f64).sum();
        (observed / possible).min(1.0)
    }

    /// Fill gaps so the series is equally spaced from the first to the
    /// last bin (outage windows produce missing bins; persistence offsets
    /// require regular spacing). Missing bins get zeroed values.
    pub fn dense(&self) -> SystemSeries {
        let Some(first) = self.bins.first() else {
            return SystemSeries { bin_secs: self.bin_secs, bins: Vec::new() };
        };
        let last = self.bins.last().expect("non-empty");
        let n = (last.ts.0 - first.ts.0) / self.bin_secs + 1;
        let mut dense = Vec::with_capacity(n as usize);
        let mut iter = self.bins.iter().peekable();
        for i in 0..n {
            let ts = Timestamp(first.ts.0 + i * self.bin_secs);
            if let Some(&bin) = iter.peek() {
                if bin.ts == ts {
                    dense.push(*bin);
                    iter.next();
                    continue;
                }
            }
            dense.push(SystemBin { ts, ..SystemBin::default() });
        }
        SystemSeries { bin_secs: self.bin_secs, bins: dense }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::{HostId, JobId};
    use supremm_procsim::{KernelState, NodeActivity, NodeSpec};
    use supremm_taccstats::Collector;

    /// Three hosts: two run a job for 5 intervals, one idles; host 2 goes
    /// dark after 2 samples.
    fn small_archive() -> RawArchive {
        let mut archive = RawArchive::new();
        for host in 0..3u32 {
            let mut kernel = KernelState::new(NodeSpec::ranger());
            let mut c = Collector::new(HostId(host));
            let busy = host < 2;
            let mut ts = Timestamp(600);
            if busy {
                c.begin_job(&mut kernel, JobId(1), ts);
            } else {
                c.sample(&kernel, ts);
            }
            let act = if busy {
                NodeActivity {
                    user_frac: 0.8,
                    flops: 2.0e9 * 600.0 * 16.0,
                    mem_used_bytes: 10 << 30,
                    scratch_write_bytes: 600 << 20,
                    ..NodeActivity::idle()
                }
            } else {
                NodeActivity::idle()
            };
            let samples = if host == 2 { 2 } else { 5 };
            for _ in 0..samples {
                kernel.advance(&act, 600.0);
                ts = ts + supremm_metrics::Duration(600);
                c.sample(&kernel, ts);
            }
            for (k, text) in c.into_files() {
                archive.insert(k, text);
            }
        }
        archive
    }

    #[test]
    fn active_and_busy_node_counts() {
        let series = SystemSeries::from_archive(&small_archive(), 600);
        // First bin (ts 600): all three hosts report; two busy.
        let first = &series.bins[0];
        assert_eq!(first.active_nodes, 3);
        assert_eq!(first.busy_nodes, 2);
        // After host 2 stops (ts > 1800): two hosts.
        let late = series.bins.iter().find(|b| b.ts.0 == 2400).unwrap();
        assert_eq!(late.active_nodes, 2);
    }

    #[test]
    fn flops_aggregate_across_hosts() {
        let series = SystemSeries::from_archive(&small_archive(), 600);
        let bin = series.bins.iter().find(|b| b.ts.0 == 1200).unwrap();
        // Two busy hosts at 2 GF/core·16 cores = 32 GF each.
        let want = 2.0 * 2.0e9 * 16.0;
        assert!((bin.flops / want - 1.0).abs() < 0.05, "{} vs {want}", bin.flops);
    }

    #[test]
    fn mem_per_node_is_a_mean_not_a_sum() {
        let series = SystemSeries::from_archive(&small_archive(), 600);
        let bin = series.bins.iter().find(|b| b.ts.0 == 1200).unwrap();
        // Hosts: 10 GiB, 10 GiB, ~0.6 GiB idle → mean ≈ 6.9 GiB.
        let mean_gb = bin.mem_per_node() / (1u64 << 30) as f64;
        assert!(mean_gb > 5.0 && mean_gb < 8.0, "{mean_gb}");
    }

    #[test]
    fn cpu_shares_sum_below_one() {
        let series = SystemSeries::from_archive(&small_archive(), 600);
        for bin in &series.bins {
            let (u, s, i) = bin.cpu_shares();
            assert!(u + s + i <= 1.01, "{u} {s} {i}");
        }
    }

    #[test]
    fn dense_fills_outage_gaps_with_zeroes() {
        let mut archive = RawArchive::new();
        let mut kernel = KernelState::new(NodeSpec::ranger());
        let mut c = Collector::new(HostId(0));
        // Samples at 600, 1200 then a gap, then 3600.
        c.sample(&kernel, Timestamp(600));
        kernel.advance(&NodeActivity::idle(), 600.0);
        c.sample(&kernel, Timestamp(1200));
        kernel.advance(&NodeActivity::idle(), 2400.0);
        c.sample(&kernel, Timestamp(3600));
        for (k, text) in c.into_files() {
            archive.insert(k, text);
        }
        let series = SystemSeries::from_archive(&archive, 600).dense();
        assert_eq!(series.bins.len(), 6);
        assert_eq!(series.bins[2].active_nodes, 0, "gap bin zeroed");
        assert_eq!(series.bins[5].active_nodes, 1);
        // Equal spacing.
        for w in series.bins.windows(2) {
            assert_eq!(w[1].ts.0 - w[0].ts.0, 600);
        }
    }

    #[test]
    fn scratch_writes_show_up_as_cluster_rate() {
        let series = SystemSeries::from_archive(&small_archive(), 600);
        let bin = series.bins.iter().find(|b| b.ts.0 == 1200).unwrap();
        // Two hosts writing 600 MiB / 600 s = 1 MiB/s each.
        let want = 2.0 * (600 << 20) as f64 / 600.0;
        assert!((bin.scratch_write_bps / want - 1.0).abs() < 0.05);
    }

    #[test]
    fn empty_archive_is_empty_series() {
        let s = SystemSeries::from_archive(&RawArchive::new(), 600);
        assert!(s.bins.is_empty());
        assert!(s.dense().bins.is_empty());
        assert_eq!(s.coverage(3), 0.0);
    }

    #[test]
    fn coverage_counts_node_bins() {
        // small_archive: hosts 0/1 report 6 bins each (600..3600), host 2
        // reports 3 (600..1800) → 15 node-bins of 18 possible.
        let series = SystemSeries::from_archive(&small_archive(), 600);
        let cov = series.coverage(3);
        assert!((cov - 15.0 / 18.0).abs() < 1e-12, "{cov}");
        // Full coverage of the reporting subset would be 1.0.
        assert!(series.coverage(0) == 0.0);
    }
}
