//! Single-pass streaming consumption of raw files.
//!
//! One scan of each raw file (via the zero-copy [`stream`] parser)
//! feeds *both* warehouse products at once: the per-job fragment map
//! behind [`crate::ingest::ingest`] and the system-series bins behind
//! [`crate::timeseries::SystemSeries`]. Per-file results are
//! [`FilePartial`]s keyed by [`RawFileKey`]; partials merge
//! associatively (each file key appears exactly once), so accumulation
//! can run under a rayon reduce or across ingest worker threads, and
//! the final cross-file merge happens sequentially in key order —
//! byte-identical output regardless of arrival order or thread count.

use std::collections::{BTreeMap, HashMap};

use rayon::prelude::*;

use supremm_metrics::JobId;
use supremm_ratlog::accounting::AccountingRecord;
use supremm_ratlog::lariat::LariatRecord;
use supremm_taccstats::derive::interval_metrics_ref;
use supremm_taccstats::format::{stream, RecordRef, SampleRef};
use supremm_taccstats::{RawArchive, RawFileKey};

use crate::ingest::{assemble_jobs, IngestStats, JobFragment};
use crate::record::JobRecord;
use crate::timeseries::{SystemBin, SystemSeries};

/// What one pass over the raw data should produce.
#[derive(Debug, Clone, Copy)]
pub struct ConsumeOptions {
    /// Bin width for system-series accumulation; `None` skips binning.
    pub bin_secs: Option<u64>,
    /// Accumulate per-job fragments (the job-ingest side).
    pub job_fragments: bool,
}

/// Everything one raw file contributes, before cross-file merging.
#[derive(Debug, Clone, Default)]
pub struct FilePartial {
    pub bytes: u64,
    /// False when the file was rejected by the parser (whole-file
    /// rejection: a corrupt file contributes nothing but its byte count).
    pub parsed: bool,
    pub records: usize,
    pub intervals: usize,
    pub(crate) frags: HashMap<JobId, JobFragment>,
    pub(crate) bins: BTreeMap<u64, SystemBin>,
}

/// Consume one raw file in a single streaming pass.
///
/// Matches the batch semantics exactly: a parse error anywhere voids
/// the whole file; job intervals require the same job tag on both
/// endpoints; series intervals pair any equal tags (including idle);
/// a host is counted active/busy once per bin even when two records
/// share a tick (job end + next begin).
pub fn consume_file(text: &str, opts: ConsumeOptions) -> FilePartial {
    let bytes = text.len() as u64;
    let rejected = FilePartial { bytes, ..FilePartial::default() };
    let Ok(samples) = stream(text) else { return rejected };

    let mut out = FilePartial { bytes, parsed: true, ..FilePartial::default() };
    let mut prev: Option<RecordRef<'_>> = None;
    let mut last_counted_bin = None;
    for item in samples {
        let Ok(sample) = item else { return rejected };
        let SampleRef::Record(rec) = sample else { continue };
        out.records += 1;
        if let Some(bin_secs) = opts.bin_secs {
            let idx = rec.ts.0 / bin_secs;
            let bin = out.bins.entry(idx).or_default();
            if last_counted_bin != Some(idx) {
                bin.active_nodes += 1;
                if rec.job.is_some() {
                    bin.busy_nodes += 1;
                }
                last_counted_bin = Some(idx);
            }
        }
        if let Some(p) = &prev {
            // Pair only within one job (or within an idle stretch):
            // across a job boundary the performance counters were
            // reprogrammed, and a cleared counter is indistinguishable
            // from a wrapped one.
            if p.job == rec.job {
                if let Some(m) = interval_metrics_ref(p, &rec) {
                    if let Some(bin_secs) = opts.bin_secs {
                        out.bins.entry(rec.ts.0 / bin_secs).or_default().absorb(&m);
                    }
                    if opts.job_fragments {
                        if let Some(job) = rec.job {
                            out.intervals += 1;
                            out.frags.entry(job).or_default().absorb(&m);
                        }
                    }
                }
            }
        }
        prev = Some(rec);
    }
    out
}

/// Order-insensitive accumulator of [`FilePartial`]s.
///
/// Accumulation is a map union (disjoint keys), so it commutes; the
/// order-sensitive floating-point merging is deferred to [`finish`],
/// which walks partials in key order — the same order the batch code
/// iterated the archive.
///
/// [`finish`]: StreamAccumulator::finish
#[derive(Debug)]
pub struct StreamAccumulator {
    opts: ConsumeOptions,
    partials: BTreeMap<RawFileKey, FilePartial>,
}

/// The merged products of one pass: job records + ingest accounting,
/// and the system series when binning was requested.
#[derive(Debug)]
pub struct StreamOutput {
    pub records: Vec<JobRecord>,
    pub stats: IngestStats,
    pub series: Option<SystemSeries>,
}

impl StreamAccumulator {
    pub fn new(opts: ConsumeOptions) -> StreamAccumulator {
        StreamAccumulator { opts, partials: BTreeMap::new() }
    }

    /// Parse and fold in one file. Replaces any previous partial for
    /// the key (collector-restart semantics, as `RawArchive::insert`).
    pub fn consume(&mut self, key: RawFileKey, text: &str) {
        self.partials.insert(key, consume_file(text, self.opts));
    }

    /// Union two accumulators (disjoint file keys). Associative and
    /// commutative, so it serves as the rayon reduce operator.
    pub fn absorb(self, other: StreamAccumulator) -> StreamAccumulator {
        let (mut into, from) =
            if self.partials.len() >= other.partials.len() { (self, other) } else { (other, self) };
        into.partials.extend(from.partials);
        into
    }

    pub fn files(&self) -> usize {
        self.partials.len()
    }

    pub fn total_bytes(&self) -> u64 {
        self.partials.values().map(|p| p.bytes).sum()
    }

    /// Mean bytes per (node, day) file — the paper's ~0.5 MB figure.
    pub fn mean_bytes_per_file(&self) -> f64 {
        if self.partials.is_empty() {
            return 0.0;
        }
        self.total_bytes() as f64 / self.partials.len() as f64
    }

    /// Merge all partials (in file-key order) and join against the
    /// accounting and Lariat logs.
    pub fn finish(self, accounting: &[AccountingRecord], lariat: &[LariatRecord]) -> StreamOutput {
        let mut stats = IngestStats::default();
        let mut jobs: HashMap<JobId, JobFragment> = HashMap::new();
        let mut merged: BTreeMap<u64, SystemBin> = BTreeMap::new();
        for partial in self.partials.into_values() {
            stats.files += 1;
            if !partial.parsed {
                stats.parse_errors += 1;
                continue;
            }
            stats.records += partial.records;
            stats.intervals += partial.intervals;
            for (id, frag) in partial.frags {
                jobs.entry(id).or_default().merge(&frag);
            }
            for (idx, bin) in partial.bins {
                merged.entry(idx).or_default().merge(&bin);
            }
        }
        let records = assemble_jobs(jobs, accounting, lariat, &mut stats);
        let series = self.opts.bin_secs.map(|bin_secs| SystemSeries::from_bins(merged, bin_secs));
        StreamOutput { records, stats, series }
    }
}

/// One parallel pass over a whole archive: map each file to an
/// accumulator, rayon-reduce by [`StreamAccumulator::absorb`].
pub fn consume_archive(archive: &RawArchive, opts: ConsumeOptions) -> StreamAccumulator {
    let files: Vec<(RawFileKey, &str)> = archive.iter().map(|(k, text)| (*k, text)).collect();
    files
        .par_iter()
        .map(|&(key, text)| {
            let mut acc = StreamAccumulator::new(opts);
            acc.consume(key, text);
            acc
        })
        .reduce(|| StreamAccumulator::new(opts), StreamAccumulator::absorb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::{HostId, Timestamp};
    use supremm_procsim::{KernelState, NodeActivity, NodeSpec};
    use supremm_taccstats::Collector;

    fn two_host_archive() -> RawArchive {
        let mut archive = RawArchive::new();
        for host in 0..2u32 {
            let mut kernel = KernelState::new(NodeSpec::ranger());
            let mut c = Collector::new(HostId(host));
            let mut ts = Timestamp(600);
            c.begin_job(&mut kernel, JobId(5), ts);
            let act = NodeActivity { user_frac: 0.7, flops: 1e12, ..NodeActivity::idle() };
            for _ in 0..4 {
                kernel.advance(&act, 600.0);
                ts = ts + supremm_metrics::Duration(600);
                c.sample(&kernel, ts);
            }
            c.end_job(&mut kernel, JobId(5), ts);
            for (k, text) in c.into_files() {
                archive.insert(k, text);
            }
        }
        archive
    }

    #[test]
    fn accumulator_is_order_insensitive() {
        let archive = two_host_archive();
        let opts = ConsumeOptions { bin_secs: Some(600), job_fragments: true };
        let forward = {
            let mut acc = StreamAccumulator::new(opts);
            for (k, text) in archive.iter() {
                acc.consume(*k, text);
            }
            acc.finish(&[], &[])
        };
        let backward = {
            let mut acc = StreamAccumulator::new(opts);
            for (k, text) in archive.iter().collect::<Vec<_>>().into_iter().rev() {
                acc.consume(*k, text);
            }
            acc.finish(&[], &[])
        };
        assert_eq!(forward.stats, backward.stats);
        let (f, b) = (forward.series.unwrap(), backward.series.unwrap());
        assert_eq!(f.bins, b.bins);
    }

    #[test]
    fn split_accumulators_absorb_to_the_same_result() {
        let archive = two_host_archive();
        let opts = ConsumeOptions { bin_secs: Some(600), job_fragments: true };
        let whole = {
            let mut acc = StreamAccumulator::new(opts);
            for (k, text) in archive.iter() {
                acc.consume(*k, text);
            }
            acc.finish(&[], &[])
        };
        let halves = {
            let mut left = StreamAccumulator::new(opts);
            let mut right = StreamAccumulator::new(opts);
            for (i, (k, text)) in archive.iter().enumerate() {
                if i % 2 == 0 {
                    left.consume(*k, text);
                } else {
                    right.consume(*k, text);
                }
            }
            right.absorb(left).finish(&[], &[])
        };
        assert_eq!(whole.stats, halves.stats);
        assert_eq!(whole.series.unwrap().bins, halves.series.unwrap().bins);
    }

    #[test]
    fn corrupt_file_contributes_only_bytes() {
        let partial = consume_file(
            "$hostname h\n$arch a\n$cores 1\n$timestamp 0\nT 0 -\njunk line\n",
            ConsumeOptions { bin_secs: Some(600), job_fragments: true },
        );
        assert!(!partial.parsed);
        assert_eq!(partial.records, 0);
        assert!(partial.bins.is_empty());
        assert!(partial.frags.is_empty());
        assert!(partial.bytes > 0);
    }

    #[test]
    fn binning_can_be_disabled() {
        let archive = two_host_archive();
        let acc =
            consume_archive(&archive, ConsumeOptions { bin_secs: None, job_fragments: true });
        assert_eq!(acc.files(), archive.len());
        assert_eq!(acc.total_bytes(), archive.total_bytes());
        let out = acc.finish(&[], &[]);
        assert!(out.series.is_none());
        assert_eq!(out.stats.jobs_missing_accounting, 1);
    }
}
