//! Single-pass streaming consumption of raw files.
//!
//! One scan of each raw file (via the zero-copy [`stream`] parser)
//! feeds *both* warehouse products at once: the per-job fragment map
//! behind [`crate::ingest::ingest`] and the system-series bins behind
//! [`crate::timeseries::SystemSeries`]. Per-file results are
//! [`FilePartial`]s keyed by [`RawFileKey`]; partials merge
//! associatively (each file key appears exactly once), so accumulation
//! can run under a rayon reduce or across ingest worker threads, and
//! the final cross-file merge happens sequentially in key order —
//! byte-identical output regardless of arrival order or thread count.

use std::collections::BTreeMap;

use rayon::prelude::*;

use supremm_metrics::JobId;
use supremm_ratlog::accounting::AccountingRecord;
use supremm_ratlog::lariat::LariatRecord;
use supremm_taccstats::derive::interval_metrics_ref;
use supremm_taccstats::format::{stream, stream_lenient, RecordRef, SampleRef};
use supremm_taccstats::{RawArchive, RawFileKey};

use crate::ingest::{assemble_jobs, IngestStats, JobFragment};
use crate::record::JobRecord;
use crate::timeseries::{SystemBin, SystemSeries};

/// What one pass over the raw data should produce.
#[derive(Debug, Clone, Copy)]
pub struct ConsumeOptions {
    /// Bin width for system-series accumulation; `None` skips binning.
    pub bin_secs: Option<u64>,
    /// Accumulate per-job fragments (the job-ingest side).
    pub job_fragments: bool,
    /// Whole-file rejection on the first malformed line (the PR 1
    /// behaviour). The default is lenient: corrupt regions are
    /// quarantined record-by-record and the rest of the file survives,
    /// which is what a production facility needs when collectors crash
    /// mid-write.
    pub strict: bool,
}

impl Default for ConsumeOptions {
    fn default() -> ConsumeOptions {
        ConsumeOptions { bin_secs: None, job_fragments: true, strict: false }
    }
}

/// Everything one raw file contributes, before cross-file merging.
#[derive(Debug, Clone, Default)]
pub struct FilePartial {
    pub bytes: u64,
    /// False when the file was rejected outright: a missing/corrupt
    /// header (no schema → nothing trustable), or any malformed line
    /// under `strict`. A rejected file contributes nothing but its byte
    /// count, all of it quarantined.
    pub parsed: bool,
    pub records: usize,
    pub intervals: usize,
    /// Records whose `T` line parsed, whether or not they survived.
    /// Conservation: `records_seen == records + records_quarantined`.
    pub records_seen: usize,
    /// Records torn by corruption and discarded.
    pub records_quarantined: usize,
    /// Bytes attributed to corrupt lines/regions. Conservation:
    /// `bytes == bytes_clean + bytes_quarantined`.
    pub bytes_quarantined: u64,
    pub bytes_clean: u64,
    /// Contiguous corrupt regions — the per-file coverage-gap count.
    pub gaps: usize,
    pub(crate) frags: BTreeMap<JobId, JobFragment>,
    pub(crate) bins: BTreeMap<u64, SystemBin>,
}

impl FilePartial {
    /// One fully rejected file: every byte quarantined, one gap.
    fn rejected(bytes: u64) -> FilePartial {
        FilePartial {
            bytes,
            bytes_quarantined: bytes,
            gaps: if bytes > 0 { 1 } else { 0 },
            ..FilePartial::default()
        }
    }
}

/// Consume one raw file in a single streaming pass.
///
/// Matches the batch semantics exactly: job intervals require the same
/// job tag on both endpoints; series intervals pair any equal tags
/// (including idle); a host is counted active/busy once per bin even
/// when two records share a tick (job end + next begin).
///
/// Under `strict`, a parse error anywhere voids the whole file (PR 1
/// semantics). Otherwise corrupt regions are quarantined by the lenient
/// scanner and accounted here; records on either side of a gap still
/// pair into an interval — the counters are cumulative, so the delta
/// across the gap is sound, just averaged over a longer `dt`. Each gap
/// is charged to the job running around it (the surrounding records'
/// tag) so job summaries can report degraded coverage.
pub fn consume_file(text: &str, opts: ConsumeOptions) -> FilePartial {
    let bytes = text.len() as u64;
    let scan = if opts.strict { stream(text) } else { stream_lenient(text) };
    let Ok(mut samples) = scan else { return FilePartial::rejected(bytes) };

    let mut out = FilePartial { bytes, parsed: true, ..FilePartial::default() };
    let mut prev: Option<RecordRef<'_>> = None;
    let mut last_counted_bin = None;
    let mut seen_regions = 0u64;
    while let Some(item) = samples.next() {
        let Ok(sample) = item else { return FilePartial::rejected(bytes) };
        let SampleRef::Record(rec) = sample else { continue };
        out.records += 1;
        // Corrupt regions since the previous record are gaps around
        // here; charge them to the job on either side of the gap.
        let regions = samples.quarantine().regions;
        if regions > seen_regions {
            let delta = (regions - seen_regions) as u32;
            seen_regions = regions;
            let job = rec.job.or_else(|| prev.as_ref().and_then(|p| p.job));
            if opts.job_fragments {
                if let Some(job) = job {
                    out.frags.entry(job).or_default().add_gaps(delta);
                }
            }
        }
        if let Some(bin_secs) = opts.bin_secs {
            let idx = rec.ts.0 / bin_secs;
            let bin = out.bins.entry(idx).or_default();
            if last_counted_bin != Some(idx) {
                bin.active_nodes += 1;
                if rec.job.is_some() {
                    bin.busy_nodes += 1;
                }
                last_counted_bin = Some(idx);
            }
        }
        if let Some(p) = &prev {
            // Pair only within one job (or within an idle stretch):
            // across a job boundary the performance counters were
            // reprogrammed, and a cleared counter is indistinguishable
            // from a wrapped one.
            if p.job == rec.job {
                if let Some(m) = interval_metrics_ref(p, &rec) {
                    if let Some(bin_secs) = opts.bin_secs {
                        out.bins.entry(rec.ts.0 / bin_secs).or_default().absorb(&m);
                    }
                    if opts.job_fragments {
                        if let Some(job) = rec.job {
                            out.intervals += 1;
                            out.frags.entry(job).or_default().absorb(&m);
                        }
                    }
                }
            }
        }
        prev = Some(rec);
    }
    // Trailing corruption (e.g. a crash-truncated tail) is a gap too,
    // charged to whatever job the file was last sampling.
    let quar = samples.quarantine();
    if quar.regions > seen_regions {
        let delta = (quar.regions - seen_regions) as u32;
        if opts.job_fragments {
            if let Some(job) = prev.as_ref().and_then(|p| p.job) {
                out.frags.entry(job).or_default().add_gaps(delta);
            }
        }
    }
    out.records_seen = samples.records_started() as usize;
    out.records_quarantined = quar.records as usize;
    out.bytes_quarantined = quar.bytes;
    out.bytes_clean = samples.clean_bytes();
    out.gaps = quar.regions as usize;
    out
}

/// Order-insensitive accumulator of [`FilePartial`]s.
///
/// Accumulation is a map union (disjoint keys), so it commutes; the
/// order-sensitive floating-point merging is deferred to [`finish`],
/// which walks partials in key order — the same order the batch code
/// iterated the archive.
///
/// [`finish`]: StreamAccumulator::finish
#[derive(Debug)]
pub struct StreamAccumulator {
    opts: ConsumeOptions,
    partials: BTreeMap<RawFileKey, FilePartial>,
}

/// The merged products of one pass: job records + ingest accounting,
/// and the system series when binning was requested.
#[derive(Debug)]
pub struct StreamOutput {
    pub records: Vec<JobRecord>,
    pub stats: IngestStats,
    pub series: Option<SystemSeries>,
}

impl StreamAccumulator {
    pub fn new(opts: ConsumeOptions) -> StreamAccumulator {
        StreamAccumulator { opts, partials: BTreeMap::new() }
    }

    /// Parse and fold in one file. Replaces any previous partial for
    /// the key (collector-restart semantics, as `RawArchive::insert`).
    pub fn consume(&mut self, key: RawFileKey, text: &str) {
        self.partials.insert(key, consume_file(text, self.opts));
    }

    /// Record a file that never got a clean parse — e.g. its ingest
    /// worker panicked mid-file — as rejected outright: every byte
    /// quarantined, nothing else trusted.
    pub fn quarantine(&mut self, key: RawFileKey, bytes: u64) {
        self.partials.insert(key, FilePartial::rejected(bytes));
    }

    /// Union two accumulators (disjoint file keys). Associative and
    /// commutative, so it serves as the rayon reduce operator.
    pub fn absorb(self, other: StreamAccumulator) -> StreamAccumulator {
        let (mut into, from) =
            if self.partials.len() >= other.partials.len() { (self, other) } else { (other, self) };
        into.partials.extend(from.partials);
        into
    }

    pub fn files(&self) -> usize {
        self.partials.len()
    }

    pub fn total_bytes(&self) -> u64 {
        self.partials.values().map(|p| p.bytes).sum()
    }

    /// Mean bytes per (node, day) file — the paper's ~0.5 MB figure.
    pub fn mean_bytes_per_file(&self) -> f64 {
        if self.partials.is_empty() {
            return 0.0;
        }
        self.total_bytes() as f64 / self.partials.len() as f64
    }

    /// Merge all partials (in file-key order) and join against the
    /// accounting and Lariat logs.
    pub fn finish(self, accounting: &[AccountingRecord], lariat: &[LariatRecord]) -> StreamOutput {
        let mut stats = IngestStats::default();
        let mut jobs: BTreeMap<JobId, JobFragment> = BTreeMap::new();
        let mut merged: BTreeMap<u64, SystemBin> = BTreeMap::new();
        for partial in self.partials.into_values() {
            stats.files += 1;
            stats.records_seen += partial.records_seen;
            stats.samples_quarantined += partial.records_quarantined;
            stats.bytes_quarantined += partial.bytes_quarantined;
            stats.gaps += partial.gaps;
            if !partial.parsed {
                stats.parse_errors += 1;
                continue;
            }
            stats.records += partial.records;
            stats.intervals += partial.intervals;
            for (id, frag) in partial.frags {
                jobs.entry(id).or_default().merge(&frag);
            }
            for (idx, bin) in partial.bins {
                merged.entry(idx).or_default().merge(&bin);
            }
        }
        let records = assemble_jobs(jobs, accounting, lariat, &mut stats);
        let series = self.opts.bin_secs.map(|bin_secs| SystemSeries::from_bins(merged, bin_secs));
        StreamOutput { records, stats, series }
    }
}

/// One parallel pass over a whole archive: map each file to an
/// accumulator, rayon-reduce by [`StreamAccumulator::absorb`].
pub fn consume_archive(archive: &RawArchive, opts: ConsumeOptions) -> StreamAccumulator {
    let files: Vec<(RawFileKey, &str)> = archive.iter().map(|(k, text)| (*k, text)).collect();
    files
        .par_iter()
        .map(|&(key, text)| {
            let mut acc = StreamAccumulator::new(opts);
            acc.consume(key, text);
            acc
        })
        .reduce(|| StreamAccumulator::new(opts), StreamAccumulator::absorb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::{HostId, Timestamp};
    use supremm_procsim::{KernelState, NodeActivity, NodeSpec};
    use supremm_taccstats::Collector;

    fn two_host_archive() -> RawArchive {
        let mut archive = RawArchive::new();
        for host in 0..2u32 {
            let mut kernel = KernelState::new(NodeSpec::ranger());
            let mut c = Collector::new(HostId(host));
            let mut ts = Timestamp(600);
            c.begin_job(&mut kernel, JobId(5), ts);
            let act = NodeActivity { user_frac: 0.7, flops: 1e12, ..NodeActivity::idle() };
            for _ in 0..4 {
                kernel.advance(&act, 600.0);
                ts = ts + supremm_metrics::Duration(600);
                c.sample(&kernel, ts);
            }
            c.end_job(&mut kernel, JobId(5), ts);
            for (k, text) in c.into_files() {
                archive.insert(k, text);
            }
        }
        archive
    }

    #[test]
    fn accumulator_is_order_insensitive() {
        let archive = two_host_archive();
        let opts = ConsumeOptions { bin_secs: Some(600), job_fragments: true, strict: false };
        let forward = {
            let mut acc = StreamAccumulator::new(opts);
            for (k, text) in archive.iter() {
                acc.consume(*k, text);
            }
            acc.finish(&[], &[])
        };
        let backward = {
            let mut acc = StreamAccumulator::new(opts);
            for (k, text) in archive.iter().collect::<Vec<_>>().into_iter().rev() {
                acc.consume(*k, text);
            }
            acc.finish(&[], &[])
        };
        assert_eq!(forward.stats, backward.stats);
        let (f, b) = (forward.series.unwrap(), backward.series.unwrap());
        assert_eq!(f.bins, b.bins);
    }

    #[test]
    fn split_accumulators_absorb_to_the_same_result() {
        let archive = two_host_archive();
        let opts = ConsumeOptions { bin_secs: Some(600), job_fragments: true, strict: false };
        let whole = {
            let mut acc = StreamAccumulator::new(opts);
            for (k, text) in archive.iter() {
                acc.consume(*k, text);
            }
            acc.finish(&[], &[])
        };
        let halves = {
            let mut left = StreamAccumulator::new(opts);
            let mut right = StreamAccumulator::new(opts);
            for (i, (k, text)) in archive.iter().enumerate() {
                if i % 2 == 0 {
                    left.consume(*k, text);
                } else {
                    right.consume(*k, text);
                }
            }
            right.absorb(left).finish(&[], &[])
        };
        assert_eq!(whole.stats, halves.stats);
        assert_eq!(whole.series.unwrap().bins, halves.series.unwrap().bins);
    }

    #[test]
    fn strict_mode_rejects_the_whole_file() {
        let text = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\nT 0 -\njunk line\n";
        let partial = consume_file(
            text,
            ConsumeOptions { bin_secs: Some(600), job_fragments: true, strict: true },
        );
        assert!(!partial.parsed);
        assert_eq!(partial.records, 0);
        assert!(partial.bins.is_empty());
        assert!(partial.frags.is_empty());
        assert_eq!(partial.bytes, text.len() as u64);
        assert_eq!(partial.bytes_quarantined, partial.bytes);
        assert_eq!(partial.gaps, 1);
    }

    #[test]
    fn lenient_mode_quarantines_the_corrupt_region_only() {
        let text = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\n!lnet x\n\
            T 0 7\nlnet lnet 1 2 3 4 5\n\
            T 600 7\nlnet lnet 2 3 zz 5 6\n\
            T 1200 7\nlnet lnet 3 4 5 6 7\n";
        let partial = consume_file(
            text,
            ConsumeOptions { bin_secs: Some(600), job_fragments: true, strict: false },
        );
        assert!(partial.parsed);
        assert_eq!(partial.records, 2, "records before and after the tear survive");
        assert_eq!(partial.records_quarantined, 1);
        assert_eq!(partial.records_seen, partial.records + partial.records_quarantined);
        assert_eq!(partial.bytes_clean + partial.bytes_quarantined, partial.bytes);
        assert_eq!(partial.gaps, 1);
        // The gap is charged to job 7, which also still gets the
        // interval spanning it (cumulative counters stay sound).
        let frag = &partial.frags[&JobId(7)];
        assert_eq!(frag.gaps, 1);
    }

    #[test]
    fn headerless_files_are_rejected_even_lenient() {
        let partial = consume_file(
            "total garbage\nnot a raw file\n",
            ConsumeOptions { bin_secs: None, job_fragments: true, strict: false },
        );
        assert!(!partial.parsed);
        assert_eq!(partial.bytes_quarantined, partial.bytes);
    }

    #[test]
    fn finish_surfaces_quarantine_accounting() {
        let clean = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\n!lnet x\n\
            T 0 -\nlnet lnet 1 2 3 4 5\nT 600 -\nlnet lnet 2 3 4 5 6\n";
        let torn = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\n!lnet x\n\
            T 0 -\nlnet lnet 1 2 3 4 5\nT 600 -\nlnet lnet broken\n";
        let mut acc = StreamAccumulator::new(ConsumeOptions::default());
        acc.consume(RawFileKey { host: HostId(0), day: 0 }, clean);
        acc.consume(RawFileKey { host: HostId(1), day: 0 }, torn);
        let out = acc.finish(&[], &[]);
        assert_eq!(out.stats.parse_errors, 0);
        assert_eq!(out.stats.records_seen, 4);
        assert_eq!(out.stats.records, 3);
        assert_eq!(out.stats.samples_quarantined, 1);
        assert_eq!(out.stats.records_seen, out.stats.records + out.stats.samples_quarantined);
        assert_eq!(out.stats.gaps, 1);
        assert!(out.stats.bytes_quarantined > 0);
    }

    #[test]
    fn binning_can_be_disabled() {
        let archive = two_host_archive();
        let acc =
            consume_archive(&archive, ConsumeOptions { bin_secs: None, job_fragments: true, strict: false });
        assert_eq!(acc.files(), archive.len());
        assert_eq!(acc.total_bytes(), archive.total_bytes());
        let out = acc.finish(&[], &[]);
        assert!(out.series.is_none());
        assert_eq!(out.stats.jobs_missing_accounting, 1);
    }
}
