//! `supremm-tsdb`: an embedded, append-only time-series storage engine.
//!
//! The paper's warehouse ingests 20 months of node-level counters from
//! two clusters and has to answer XDMoD's interactive queries over them;
//! §5 names "technologies ... to quickly process, store, and query
//! massive TACC_Stats data" as the missing piece. This crate is that
//! layer for the Rust tool chain: a single-directory storage engine the
//! warehouse flushes ingest output through and the report/serving layer
//! queries, instead of keeping everything in memory and re-scanning raw
//! archives.
//!
//! Shape (one directory per store):
//!
//! ```text
//! store/
//! ├── wal.log              append-only write-ahead log (torn-tail safe)
//! ├── seg-000001.tsdb      immutable sealed segment (CRC'd blocks + index)
//! ├── seg-000002.tsdb
//! ├── roll-3600-000001.tsdb  rollup tier segment (pre-aggregated bins)
//! └── retention.manifest   per-tier watermarks (rolled/dropped; CRC'd)
//! ```
//!
//! - [`codec`] — Gorilla-style per-series chunk compression:
//!   delta-of-delta timestamps and XOR / zigzag-varint values;
//! - [`segment`] — immutable segment files: versioned header, per-block
//!   CRC32, sparse time index + per-series chunk index in the footer;
//! - [`stats`] — chunk-level pre-aggregates ([`stats::ChunkStats`]) and
//!   the bin accumulator both downsampling paths share;
//! - [`wal`] — the write-ahead log: length+CRC framed records, torn-write
//!   detection, replay-and-truncate recovery;
//! - [`db`] — the engine: [`Tsdb`] (open → append → sync → flush →
//!   compact) with time-range + host/metric predicate scans and
//!   downsampling;
//! - [`recordlog`] — the same segment container for opaque records
//!   (the warehouse's job table rides on it);
//! - [`retention`] — time-partitioned retention + multi-resolution
//!   rollup tiers: [`retention::RetentionPolicy`], the durable
//!   watermark manifest, and the rollup segment payload format driven
//!   by [`Tsdb::enforce_retention`].
//!
//! Durability contract: a sample is *acked* once [`Tsdb::sync`] (or
//! [`Tsdb::flush`]) returns. Recovery after any crash — including a torn
//! write anywhere in the WAL tail — never panics and never loses an
//! acked sample; unacked tail samples may be dropped.

pub mod codec;
pub mod crc;
pub mod db;
pub mod recordlog;
pub mod retention;
pub mod segment;
pub mod stats;
pub mod wal;

pub use db::{Agg, DbOptions, DbStats, Selector, SeriesKey, Tsdb};
pub use retention::{RetentionManifest, RetentionPolicy, RetentionReport, RollupLevel};
pub use segment::TsdbError;
pub use stats::{BinAcc, ChunkStats};
