//! Time-partitioned retention and multi-resolution rollup tiers.
//!
//! The paper's warehouse has to hold years of facility telemetry while
//! answering both "last hour, raw" and "last year, weekly" queries.
//! Keeping every raw sample forever makes the second query pay for the
//! first; this module adds the Prometheus-style answer: a
//! [`RetentionPolicy`] names how long raw samples live and which
//! coarser *rollup levels* outlive them, and
//! [`Tsdb::enforce_retention`] compacts raw history into those levels
//! before dropping it.
//!
//! Three durable artifacts cooperate:
//!
//! - **rollup segments** (`roll-<bin>-<seq>.tsdb`, segment kind
//!   [`crate::segment::KIND_ROLLUP`]): per `(host, metric)` series, one
//!   [`ChunkStats`] row per time bin — the exact count / sequential sum
//!   / min / max / last a downsampling bin would have computed from the
//!   raw samples ([`crate::stats`] owns that arithmetic). Sealed with
//!   the same tmp → fsync → rename dance as every other segment.
//! - **the manifest** (`retention.manifest`): per-tier watermarks. The
//!   watermark *is* the deletion record: any raw segment wholly below
//!   `raw_dropped_before` (and any rollup segment wholly below its
//!   level's `dropped_before`) is a crashed drop that open completes,
//!   so reopen after a crash at any point is unambiguous. Drops are
//!   whole-segment only — never partial file edits.
//! - **`rolled_through` marks**: raw data below a level's mark has been
//!   rolled into that level. The raw watermark only advances to the
//!   minimum of all marks, so a crash between "rollup sealed" and
//!   "manifest updated" merely re-rolls the same window from the raw
//!   data that is still guaranteed present — and the last-write-wins
//!   bin merge makes the duplicate rollup segment a no-op.
//!
//! Alignment rule: level bins must form a divisibility chain (each
//! coarser bin a multiple of the finer) and every watermark is aligned
//! to the *coarsest* bin, so no rollup bin ever straddles a watermark
//! and tiers nest without overlap.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::codec::{get_varint, put_varint};
use crate::crc::crc32;
use crate::db::SeriesKey;
use crate::segment::TsdbError;
use crate::stats::ChunkStats;

/// On-disk name of the retention manifest inside a store directory.
pub const MANIFEST_FILE: &str = "retention.manifest";

/// First line of the manifest file (format magic).
pub const MANIFEST_MAGIC: &str = "SUPRET01";

/// One rollup resolution: samples are folded into `bin_secs`-wide bins
/// and those bins live for `ttl` seconds of data time (`None` = kept
/// forever).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupLevel {
    pub bin_secs: u64,
    pub ttl: Option<u64>,
}

/// How long each tier of a store lives.
///
/// `raw_ttl: None` (the default) disables retention entirely — the
/// store behaves exactly as before this module existed. With a raw TTL
/// set, raw samples older than `raw_ttl` (relative to the data-time
/// `now` handed to [`Tsdb::enforce_retention`]) are first rolled into
/// every level, then dropped whole-segment-at-a-time; each level's bins
/// are in turn dropped once older than that level's TTL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Seconds of raw history to keep; `None` keeps raw forever.
    pub raw_ttl: Option<u64>,
    /// Rollup resolutions, finest first (ascending `bin_secs`).
    pub levels: Vec<RollupLevel>,
}

impl RetentionPolicy {
    /// A policy that never rolls or drops anything (today's behavior).
    pub fn keep_forever() -> RetentionPolicy {
        RetentionPolicy::default()
    }

    /// True when [`Tsdb::enforce_retention`] would be a no-op.
    pub fn is_noop(&self) -> bool {
        self.raw_ttl.is_none()
    }

    /// Structural validation; called at [`Tsdb::open`] time so a bad
    /// policy fails loudly instead of corrupting tier selection.
    ///
    /// - rollup levels require a raw TTL (they roll what raw expires);
    /// - `bin_secs` strictly ascending, each a multiple of the previous
    ///   (the divisibility chain the alignment rule needs);
    /// - level TTLs must be `>= raw_ttl` and non-decreasing with
    ///   coarseness (a coarser tier never expires before a finer one),
    ///   and nothing may follow a keep-forever level.
    pub fn validate(&self) -> Result<(), String> {
        if self.raw_ttl.is_none() && !self.levels.is_empty() {
            return Err("rollup levels require raw_ttl (nothing expires to roll)".into());
        }
        let raw_ttl = self.raw_ttl.unwrap_or(0);
        let mut prev_bin = 0u64;
        let mut prev_ttl: Option<u64> = Some(0);
        for (i, level) in self.levels.iter().enumerate() {
            if level.bin_secs == 0 {
                return Err(format!("level {i}: bin_secs must be positive"));
            }
            if level.bin_secs <= prev_bin {
                return Err(format!("level {i}: bin_secs must be strictly ascending"));
            }
            if prev_bin > 0 && level.bin_secs % prev_bin != 0 {
                return Err(format!(
                    "level {i}: bin_secs {} must be a multiple of the previous level's {}",
                    level.bin_secs, prev_bin
                ));
            }
            match (prev_ttl, level.ttl) {
                (None, _) => {
                    return Err(format!("level {i}: follows a keep-forever level"));
                }
                (Some(_), Some(t)) if t < raw_ttl => {
                    return Err(format!("level {i}: ttl {t} is shorter than raw_ttl {raw_ttl}"));
                }
                (Some(p), Some(t)) if t < p => {
                    return Err(format!(
                        "level {i}: ttl {t} is shorter than the finer level's {p}"
                    ));
                }
                _ => {}
            }
            prev_bin = level.bin_secs;
            prev_ttl = level.ttl;
        }
        Ok(())
    }

    /// Parse the CLI / config syntax: comma-separated terms,
    /// `raw=<dur>` for the raw TTL and `<bin>=<dur|forever>` per level,
    /// where durations take an optional `s`/`m`/`h`/`d`/`w` suffix.
    ///
    /// ```text
    /// raw=7d,3600=90d,86400=forever
    /// ```
    pub fn parse(spec: &str) -> Result<RetentionPolicy, String> {
        let mut policy = RetentionPolicy::default();
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) = term
                .split_once('=')
                .ok_or_else(|| format!("{term:?}: expected <key>=<value>"))?;
            if key.trim() == "raw" {
                policy.raw_ttl = Some(parse_duration_secs(value.trim())?);
            } else {
                let bin_secs = parse_duration_secs(key.trim())?;
                let v = value.trim();
                let ttl = if v == "forever" || v == "inf" {
                    None
                } else {
                    Some(parse_duration_secs(v)?)
                };
                policy.levels.push(RollupLevel { bin_secs, ttl });
            }
        }
        policy.levels.sort_by_key(|l| l.bin_secs);
        policy.validate()?;
        Ok(policy)
    }

    /// The coarsest configured bin (1 when no levels exist) — the
    /// quantum every watermark aligns to.
    pub fn coarsest_bin(&self) -> u64 {
        self.levels.last().map(|l| l.bin_secs).unwrap_or(1).max(1)
    }
}

/// Parse `"90"`, `"90s"`, `"15m"`, `"12h"`, `"7d"`, `"2w"` to seconds.
fn parse_duration_secs(s: &str) -> Result<u64, String> {
    if s.is_empty() {
        return Err("empty duration".into());
    }
    let (digits, mult) = match s.as_bytes().last() {
        Some(b's') => (&s[..s.len() - 1], 1u64),
        Some(b'm') => (&s[..s.len() - 1], 60),
        Some(b'h') => (&s[..s.len() - 1], 3600),
        Some(b'd') => (&s[..s.len() - 1], 86_400),
        Some(b'w') => (&s[..s.len() - 1], 604_800),
        _ => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("{s:?}: expected <integer>[s|m|h|d|w]"))?;
    n.checked_mul(mult).ok_or_else(|| format!("{s:?}: duration overflows"))
}

/// Durable per-level watermarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelMark {
    /// Raw data with `ts < rolled_through` has been rolled into this
    /// level (always a multiple of the coarsest bin).
    pub rolled_through: u64,
    /// Bins with `bin_start < dropped_before` are logically gone from
    /// this level (also coarsest-aligned); segments wholly below it are
    /// deleted, spanning segments are clipped at read time.
    pub dropped_before: u64,
}

/// The durable retention state of one store: the raw watermark plus one
/// [`LevelMark`] per rollup level. Written atomically (tmp → fsync →
/// rename) on every transition, *before* the file deletions it
/// authorizes — so a reopen can always finish what a crash interrupted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionManifest {
    /// Raw samples with `ts < raw_dropped_before` are logically gone;
    /// segments wholly below it are deleted, spanning segments are
    /// clipped at read time.
    pub raw_dropped_before: u64,
    /// Watermarks keyed by level `bin_secs`.
    pub levels: BTreeMap<u64, LevelMark>,
}

impl RetentionManifest {
    /// The mark for one level (zeros when the level is new).
    pub fn level(&self, bin_secs: u64) -> LevelMark {
        self.levels.get(&bin_secs).copied().unwrap_or_default()
    }

    /// Serialize to the line-oriented on-disk form (CRC-trailed).
    fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(MANIFEST_MAGIC);
        body.push('\n');
        // suplint: allow(R7) -- manifest is a few lines, written once per transition
        body.push_str(&format!("raw {}\n", self.raw_dropped_before));
        for (bin, mark) in &self.levels {
            // suplint: allow(R7) -- as above: cold path, one line per level
            body.push_str(&format!(
                "level {bin} {} {}\n",
                mark.rolled_through, mark.dropped_before
            ));
        }
        let crc = crc32(body.as_bytes());
        let mut out = body.into_bytes();
        // suplint: allow(R7) -- trailing CRC line, once per write
        out.extend_from_slice(format!("crc {crc:08x}\n").as_bytes());
        out
    }

    /// Parse the on-disk form. Errors name what broke — the manifest is
    /// rename-atomic, so damage means external interference, not a torn
    /// write.
    pub fn from_bytes(bytes: &[u8], path: &Path) -> Result<RetentionManifest, TsdbError> {
        let bad = |what: &str| {
            TsdbError::Corrupt(format!("{}: retention manifest: {what}", path.display()))
        };
        let text = std::str::from_utf8(bytes).map_err(|_| bad("not utf-8"))?;
        let Some((body, crc_line)) = text.trim_end_matches('\n').rsplit_once('\n') else {
            return Err(bad("missing crc line"));
        };
        let body_with_nl_len = body.len() + 1;
        let claimed = crc_line
            .strip_prefix("crc ")
            .and_then(|h| u32::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| bad("malformed crc line"))?;
        let covered = bytes.get(..body_with_nl_len).ok_or_else(|| bad("truncated body"))?;
        if crc32(covered) != claimed {
            return Err(bad("crc mismatch"));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(bad("bad magic"));
        }
        let mut manifest = RetentionManifest::default();
        let mut saw_raw = false;
        for line in lines {
            let mut parts = line.split_ascii_whitespace();
            match parts.next() {
                Some("raw") => {
                    manifest.raw_dropped_before = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("malformed raw line"))?;
                    saw_raw = true;
                }
                Some("level") => {
                    let mut field = || parts.next().and_then(|v| v.parse::<u64>().ok());
                    let (Some(bin), Some(rolled), Some(dropped)) = (field(), field(), field())
                    else {
                        return Err(bad("malformed level line"));
                    };
                    manifest
                        .levels
                        .insert(bin, LevelMark { rolled_through: rolled, dropped_before: dropped });
                }
                _ => return Err(bad("unknown line")),
            }
        }
        if !saw_raw {
            return Err(bad("missing raw line"));
        }
        Ok(manifest)
    }

    /// Load the manifest from a store directory; `Ok(None)` when the
    /// store has never run retention.
    pub fn load(dir: &Path) -> Result<Option<RetentionManifest>, TsdbError> {
        let path = dir.join(MANIFEST_FILE);
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(RetentionManifest::from_bytes(&bytes, &path)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(TsdbError::Io(e)),
        }
    }

    /// Durably replace the store's manifest: write `<file>.tmp`, fsync,
    /// rename over the live file, best-effort fsync the directory.
    pub fn store(&self, dir: &Path) -> Result<(), TsdbError> {
        let path = dir.join(MANIFEST_FILE);
        let tmp = dir.join("retention.manifest.tmp");
        {
            let mut f =
                OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        if let Ok(d) = File::open(dir) {
            // Best-effort, same policy as segment sealing: the rename is
            // atomic even where directory fsync is unavailable.
            let _ = d.sync_all();
        }
        Ok(())
    }
}

/// What one [`Tsdb::enforce_retention`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Rollup segments sealed this pass.
    pub rollup_segments_written: usize,
    /// Total bins written into those segments.
    pub rollup_bins_written: u64,
    /// Raw segments deleted (whole files only).
    pub raw_segments_dropped: usize,
    /// Rollup segments deleted (whole files only).
    pub rollup_segments_dropped: usize,
    /// The raw watermark after the pass.
    pub raw_watermark: u64,
}

/// Fault-injection hook fired at every durability transition inside
/// [`Tsdb::enforce_retention`] (before each rollup seal, manifest
/// write, and file delete, and after each seal). Returning `true`
/// aborts the pass with an `Interrupted` error at that exact point —
/// the torture tests use it to simulate a crash everywhere a real one
/// could land. Production stores never set it.
pub type FaultHook = Box<dyn FnMut(&str) -> bool + Send + Sync>;

/// Decoded rollup rows: per series, `bin_start → stats`.
pub(crate) type RollupRows = BTreeMap<SeriesKey, BTreeMap<u64, ChunkStats>>;

/// Rollup segment file name for one level + sequence number.
pub(crate) fn roll_file_name(bin_secs: u64, seq: u64) -> String {
    // suplint: allow(R7) -- filename built once per rollup segment seal
    format!("roll-{bin_secs}-{seq:06}.tsdb")
}

/// Parse `roll-<bin>-<seq>.tsdb` back to `(bin_secs, seq)`.
pub(crate) fn roll_id(path: &Path) -> Option<(u64, u64)> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("roll-")?.strip_suffix(".tsdb")?;
    let (bin, seq) = rest.split_once('-')?;
    Some((bin.parse().ok()?, seq.parse().ok()?))
}

/// Encode one rollup block. Layout (all varints unless noted):
///
/// ```text
/// bin_secs
/// n_hosts   · (len · bytes)*            string tables
/// n_metrics · (len · bytes)*
/// n_series  · per series:
///   host_id · metric_id · n_bins · per bin:
///     bin_start · count · u64 sum/min/max/last bits (LE, fixed)
/// ```
///
/// Returns the payload plus the covered inclusive time range
/// `(min_ts, max_ts)` and bin count; `None` when `rows` holds no bins.
pub(crate) fn encode_rollup_block(
    bin_secs: u64,
    rows: &RollupRows,
) -> Option<(Vec<u8>, u64, u64, u32)> {
    let mut hosts: Vec<&str> = Vec::new();
    let mut metrics: Vec<&str> = Vec::new();
    fn intern<'a>(table: &mut Vec<&'a str>, s: &'a str) -> u64 {
        match table.iter().position(|t| *t == s) {
            Some(i) => i as u64,
            None => {
                table.push(s);
                (table.len() - 1) as u64
            }
        }
    }
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;
    let mut n_bins = 0u64;
    let mut series: Vec<(u64, u64, &BTreeMap<u64, ChunkStats>)> = Vec::new();
    for (key, bins) in rows {
        if bins.is_empty() {
            continue;
        }
        let host_id = intern(&mut hosts, key.host.as_str());
        let metric_id = intern(&mut metrics, key.metric.as_str());
        for &bin_start in bins.keys() {
            min_ts = min_ts.min(bin_start);
            max_ts = max_ts.max(bin_start.saturating_add(bin_secs.saturating_sub(1)));
        }
        n_bins += bins.len() as u64;
        series.push((host_id, metric_id, bins));
    }
    if series.is_empty() {
        return None;
    }
    let mut payload = Vec::new();
    put_varint(&mut payload, bin_secs);
    put_varint(&mut payload, hosts.len() as u64);
    for h in &hosts {
        put_varint(&mut payload, h.len() as u64);
        payload.extend_from_slice(h.as_bytes());
    }
    put_varint(&mut payload, metrics.len() as u64);
    for m in &metrics {
        put_varint(&mut payload, m.len() as u64);
        payload.extend_from_slice(m.as_bytes());
    }
    put_varint(&mut payload, series.len() as u64);
    for (host_id, metric_id, bins) in series {
        put_varint(&mut payload, host_id);
        put_varint(&mut payload, metric_id);
        put_varint(&mut payload, bins.len() as u64);
        for (&bin_start, stats) in bins {
            put_varint(&mut payload, bin_start);
            put_varint(&mut payload, stats.count);
            payload.extend_from_slice(&stats.sum.to_bits().to_le_bytes());
            payload.extend_from_slice(&stats.min.to_bits().to_le_bytes());
            payload.extend_from_slice(&stats.max.to_bits().to_le_bytes());
            payload.extend_from_slice(&stats.last.to_bits().to_le_bytes());
        }
    }
    Some((payload, min_ts, max_ts, u32::try_from(n_bins).unwrap_or(u32::MAX)))
}

/// Decode one rollup block back to `(bin_secs, rows)`. Every failure is
/// a named [`TsdbError::Corrupt`] — the CRC should have caught damage
/// first, so reaching one of these means a logic or format mismatch.
pub(crate) fn decode_rollup_block(
    payload: &[u8],
    path: &Path,
) -> Result<(u64, RollupRows), TsdbError> {
    let bad = |what: &str| {
        TsdbError::Corrupt(format!("{}: rollup block: {what}", path.display()))
    };
    let mut pos = 0usize;
    let bin_secs = get_varint(payload, &mut pos).ok_or_else(|| bad("bin_secs"))?;
    if bin_secs == 0 {
        return Err(bad("bin_secs must be positive"));
    }
    let read_table = |pos: &mut usize, what: &str| -> Result<Vec<String>, TsdbError> {
        let n = get_varint(payload, pos).ok_or_else(|| bad(what))? as usize;
        if n > payload.len() {
            return Err(bad("table count out of range"));
        }
        let mut table = Vec::with_capacity(n);
        for _ in 0..n {
            let len = get_varint(payload, pos).ok_or_else(|| bad("name length"))? as usize;
            let end = pos.checked_add(len).ok_or_else(|| bad("name overflow"))?;
            let bytes = payload.get(*pos..end).ok_or_else(|| bad("name bytes"))?;
            *pos = end;
            table.push(
                std::str::from_utf8(bytes).map_err(|_| bad("name not utf-8"))?.to_owned(),
            );
        }
        Ok(table)
    };
    let hosts = read_table(&mut pos, "host table")?;
    let metrics = read_table(&mut pos, "metric table")?;
    let n_series = get_varint(payload, &mut pos).ok_or_else(|| bad("series count"))? as usize;
    if n_series > payload.len() {
        return Err(bad("series count out of range"));
    }
    let mut rows: RollupRows = BTreeMap::new();
    for _ in 0..n_series {
        let host_id = get_varint(payload, &mut pos).ok_or_else(|| bad("host id"))? as usize;
        let metric_id =
            get_varint(payload, &mut pos).ok_or_else(|| bad("metric id"))? as usize;
        let n = get_varint(payload, &mut pos).ok_or_else(|| bad("bin count"))? as usize;
        if n > payload.len() {
            return Err(bad("bin count out of range"));
        }
        let host = hosts.get(host_id).ok_or_else(|| bad("host id out of range"))?;
        let metric = metrics.get(metric_id).ok_or_else(|| bad("metric id out of range"))?;
        let series = rows.entry(SeriesKey::new(host, metric)).or_default();
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let bin_start = get_varint(payload, &mut pos).ok_or_else(|| bad("bin start"))?;
            if prev.is_some_and(|p| bin_start <= p) {
                return Err(bad("bin starts not strictly ascending"));
            }
            prev = Some(bin_start);
            let count = get_varint(payload, &mut pos).ok_or_else(|| bad("bin count"))?;
            let mut bits = |what: &str| -> Result<f64, TsdbError> {
                let end = pos.checked_add(8).ok_or_else(|| bad(what))?;
                let raw = payload.get(pos..end).ok_or_else(|| bad(what))?;
                pos = end;
                let mut b = [0u8; 8];
                b.copy_from_slice(raw);
                Ok(f64::from_bits(u64::from_le_bytes(b)))
            };
            let sum = bits("sum bits")?;
            let min = bits("min bits")?;
            let max = bits("max bits")?;
            let last = bits("last bits")?;
            series.insert(bin_start, ChunkStats { count, sum, min, max, last });
        }
    }
    if pos != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok((bin_secs, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_round_trips_the_readme_example() {
        let p = RetentionPolicy::parse("raw=7d,3600=90d,86400=forever").unwrap();
        assert_eq!(p.raw_ttl, Some(7 * 86_400));
        assert_eq!(
            p.levels,
            vec![
                RollupLevel { bin_secs: 3600, ttl: Some(90 * 86_400) },
                RollupLevel { bin_secs: 86_400, ttl: None },
            ]
        );
        assert_eq!(p.coarsest_bin(), 86_400);
    }

    #[test]
    fn policy_validation_rejects_bad_shapes() {
        // Levels without a raw TTL.
        assert!(RetentionPolicy {
            raw_ttl: None,
            levels: vec![RollupLevel { bin_secs: 600, ttl: None }],
        }
        .validate()
        .is_err());
        // Non-divisible chain.
        assert!(RetentionPolicy::parse("raw=1d,600=30d,1000=60d").is_err());
        // Level TTL shorter than raw.
        assert!(RetentionPolicy::parse("raw=7d,3600=1d").is_err());
        // Coarser tier expiring before a finer one.
        assert!(RetentionPolicy::parse("raw=1d,600=30d,3600=10d").is_err());
        // Level after a keep-forever level.
        assert!(RetentionPolicy::parse("raw=1d,600=forever,3600=30d").is_err());
        // Zero bin.
        assert!(RetentionPolicy::parse("raw=1d,0=30d").is_err());
        // Garbage durations.
        assert!(RetentionPolicy::parse("raw=soon").is_err());
        assert!(RetentionPolicy::parse("raw").is_err());
        // The default is valid and a no-op.
        assert!(RetentionPolicy::default().validate().is_ok());
        assert!(RetentionPolicy::default().is_noop());
    }

    #[test]
    fn duration_suffixes() {
        assert_eq!(parse_duration_secs("90").unwrap(), 90);
        assert_eq!(parse_duration_secs("90s").unwrap(), 90);
        assert_eq!(parse_duration_secs("15m").unwrap(), 900);
        assert_eq!(parse_duration_secs("12h").unwrap(), 43_200);
        assert_eq!(parse_duration_secs("7d").unwrap(), 604_800);
        assert_eq!(parse_duration_secs("2w").unwrap(), 1_209_600);
        assert!(parse_duration_secs("").is_err());
        assert!(parse_duration_secs("d").is_err());
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let dir = std::env::temp_dir()
            .join(format!("tsdb-ret-manifest-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();

        assert_eq!(RetentionManifest::load(&dir).unwrap(), None);
        let mut m = RetentionManifest { raw_dropped_before: 86_400, ..Default::default() };
        m.levels.insert(600, LevelMark { rolled_through: 86_400, dropped_before: 1200 });
        m.levels.insert(3600, LevelMark { rolled_through: 86_400, dropped_before: 0 });
        m.store(&dir).unwrap();
        assert!(!dir.join("retention.manifest.tmp").exists());
        assert_eq!(RetentionManifest::load(&dir).unwrap(), Some(m.clone()));

        // Overwrite is atomic-replace, not append.
        m.raw_dropped_before = 172_800;
        m.store(&dir).unwrap();
        assert_eq!(RetentionManifest::load(&dir).unwrap(), Some(m.clone()));

        // Any single-byte corruption is detected.
        let good = fs::read(dir.join(MANIFEST_FILE)).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            fs::write(dir.join(MANIFEST_FILE), &bad).unwrap();
            assert!(
                RetentionManifest::load(&dir).is_err(),
                "corruption at byte {i} went undetected"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollup_block_round_trips_bitwise() {
        let mut rows: RollupRows = BTreeMap::new();
        let nan = f64::from_bits(0x7FF8_0000_0000_0001);
        rows.entry(SeriesKey::new("h1", "cpu"))
            .or_default()
            .extend([
                (0u64, ChunkStats { count: 3, sum: 6.5, min: 1.0, max: 4.0, last: 1.5 }),
                (600, ChunkStats { count: 1, sum: nan, min: f64::INFINITY, max: f64::NEG_INFINITY, last: nan }),
            ]);
        rows.entry(SeriesKey::new("h2", "mem"))
            .or_default()
            .insert(1200, ChunkStats { count: 2, sum: -0.0, min: -0.0, max: 0.0, last: 0.0 });
        let (payload, min_ts, max_ts, n) = encode_rollup_block(600, &rows).unwrap();
        assert_eq!((min_ts, max_ts, n), (0, 1799, 3));
        let (bin, decoded) = decode_rollup_block(&payload, Path::new("x")).unwrap();
        assert_eq!(bin, 600);
        assert_eq!(decoded.len(), 2);
        for (key, bins) in &rows {
            let got = &decoded[key];
            assert_eq!(got.len(), bins.len());
            for (bs, stats) in bins {
                let g = &got[bs];
                assert_eq!(g.count, stats.count);
                assert_eq!(g.sum.to_bits(), stats.sum.to_bits());
                assert_eq!(g.min.to_bits(), stats.min.to_bits());
                assert_eq!(g.max.to_bits(), stats.max.to_bits());
                assert_eq!(g.last.to_bits(), stats.last.to_bits());
            }
        }
        // Empty rows encode to nothing.
        assert!(encode_rollup_block(600, &BTreeMap::new()).is_none());
    }

    #[test]
    fn rollup_block_decode_never_panics_on_corruption() {
        let mut rows: RollupRows = BTreeMap::new();
        rows.entry(SeriesKey::new("h", "m"))
            .or_default()
            .insert(0, ChunkStats { count: 1, sum: 1.0, min: 1.0, max: 1.0, last: 1.0 });
        let (payload, ..) = encode_rollup_block(60, &rows).unwrap();
        for cut in 0..payload.len() {
            let _ = decode_rollup_block(&payload[..cut], Path::new("x"));
        }
        for i in 0..payload.len() {
            let mut bad = payload.clone();
            bad[i] ^= 0xFF;
            let _ = decode_rollup_block(&bad, Path::new("x"));
        }
    }

    #[test]
    fn roll_file_names_round_trip() {
        let name = roll_file_name(3600, 7);
        assert_eq!(name, "roll-3600-000007.tsdb");
        assert_eq!(roll_id(Path::new(&name)), Some((3600, 7)));
        assert_eq!(roll_id(Path::new("roll-3600-000007.tsdb.tmp")), None);
        assert_eq!(roll_id(Path::new("seg-000001.tsdb")), None);
        assert_eq!(roll_id(Path::new("roll-x-1.tsdb")), None);
    }
}
