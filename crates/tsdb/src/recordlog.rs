//! Opaque-record segments: the same CRC'd, indexed container as series
//! segments (kind 1), holding length-framed byte records instead of
//! compressed chunks.
//!
//! The warehouse's `JobTable::save/load` rides on this: each job record
//! is one opaque entry, the block index carries the jobs' `[min end_ts,
//! max end_ts]` so time-sliced loads can skip blocks, and the whole file
//! inherits the segment format's atomic-rename durability and per-block
//! corruption detection.
//!
//! Block payload: `varint n · (varint len · bytes)*`.

use std::path::Path;

use crate::codec::{get_varint, put_varint};
use crate::segment::{SegmentReader, SegmentWriter, TsdbError, KIND_RECORDS};

/// Records per block: small enough that one corrupt block loses little,
/// large enough to amortize framing.
const RECORDS_PER_BLOCK: usize = 1024;

/// Write `records` (with per-record `ts` used for the sparse index) to a
/// kind-1 segment at `path`, atomically. Returns bytes written.
pub fn write_records(path: &Path, records: &[(u64, Vec<u8>)]) -> Result<u64, TsdbError> {
    let mut writer = SegmentWriter::new(KIND_RECORDS);
    for block in records.chunks(RECORDS_PER_BLOCK) {
        let mut payload = Vec::new();
        put_varint(&mut payload, block.len() as u64);
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;
        for (ts, bytes) in block {
            min_ts = min_ts.min(*ts);
            max_ts = max_ts.max(*ts);
            put_varint(&mut payload, bytes.len() as u64);
            payload.extend_from_slice(bytes);
        }
        if min_ts == u64::MAX {
            min_ts = 0;
        }
        writer.push_raw_block(payload, min_ts, max_ts, block.len() as u32);
    }
    if writer.is_empty() {
        // An empty table still needs a valid file to load back.
        writer.push_raw_block(vec![0u8], 0, 0, 0);
    }
    writer.seal(path)
}

/// Read every record back, in write order.
pub fn read_records(path: &Path) -> Result<Vec<Vec<u8>>, TsdbError> {
    let reader = SegmentReader::open(path)?;
    if reader.kind != KIND_RECORDS {
        return Err(TsdbError::Corrupt(format!(
            "{}: expected a record segment (kind {KIND_RECORDS}), got kind {}",
            path.display(),
            reader.kind
        )));
    }
    let bad = |what: &str| TsdbError::Corrupt(format!("{}: record block: {what}", path.display()));
    let mut out = Vec::new();
    for entry in &reader.entries {
        let payload = reader.read_block(entry)?;
        let mut pos = 0usize;
        let n = get_varint(&payload, &mut pos).ok_or_else(|| bad("count"))? as usize;
        if n > payload.len() {
            return Err(bad("count out of range"));
        }
        for _ in 0..n {
            let len = get_varint(&payload, &mut pos).ok_or_else(|| bad("length"))? as usize;
            let end = pos.checked_add(len).ok_or_else(|| bad("overflow"))?;
            let bytes = payload.get(pos..end).ok_or_else(|| bad("bytes"))?;
            pos = end;
            out.push(bytes.to_vec());
        }
        if pos != payload.len() {
            return Err(bad("trailing bytes"));
        }
    }
    Ok(out)
}

/// Quick check: is the file at `path` a tsdb segment (vs. e.g. legacy
/// JSON lines)? Reads only the 8-byte magic.
pub fn is_segment_file(path: &Path) -> bool {
    use std::io::Read;
    let Ok(mut f) = std::fs::File::open(path) else { return false };
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).map(|_| &magic == crate::segment::MAGIC).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdb-rec-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("records.tsdb")
    }

    #[test]
    fn round_trips_records_in_order() {
        let path = tmp("roundtrip");
        let records: Vec<(u64, Vec<u8>)> =
            (0..3000u64).map(|i| (i * 60, format!("job-{i}").into_bytes())).collect();
        write_records(&path, &records).unwrap();
        let back = read_records(&path).unwrap();
        assert_eq!(back.len(), 3000);
        assert_eq!(back[0], b"job-0");
        assert_eq!(back[2999], b"job-2999");
        assert!(is_segment_file(&path));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn empty_table_round_trips() {
        let path = tmp("empty");
        write_records(&path, &[]).unwrap();
        assert_eq!(read_records(&path).unwrap(), Vec::<Vec<u8>>::new());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn zero_length_and_binary_records_survive() {
        let path = tmp("binary");
        let records = vec![
            (0u64, vec![]),
            (1, vec![0u8, 255, 128, 7]),
            (2, vec![0xDE, 0xAD]),
        ];
        write_records(&path, &records).unwrap();
        let back = read_records(&path).unwrap();
        assert_eq!(back, vec![vec![], vec![0u8, 255, 128, 7], vec![0xDE, 0xAD]]);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn non_segment_files_are_not_mistaken() {
        let path = tmp("legacy");
        fs::write(&path, b"{\"job\":1}\n{\"job\":2}\n").unwrap();
        assert!(!is_segment_file(&path));
        assert!(read_records(&path).is_err());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn series_segment_is_rejected_by_record_reader() {
        let path = tmp("kindmix");
        let mut w = SegmentWriter::new(crate::segment::KIND_SERIES);
        w.push_series_block(&[("h", "m", &[(0, 1u64)][..])]);
        w.seal(&path).unwrap();
        assert!(matches!(read_records(&path), Err(TsdbError::Corrupt(_))));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
