//! Immutable segment files.
//!
//! A segment is the sealed, on-disk form of a batch of series data (or,
//! via [`crate::recordlog`], opaque records). Layout:
//!
//! ```text
//! ┌──────────────────────────────────────────────┐
//! │ header: magic "SUPTSDB1" · u16 version · u8  │ 12 bytes
//! │         kind · u8 reserved                   │
//! ├──────────────────────────────────────────────┤
//! │ block 0: u32 len · u32 crc32 · payload       │
//! │ block 1: …                                   │
//! ├──────────────────────────────────────────────┤
//! │ index block: one entry per data block        │ (same framing)
//! ├──────────────────────────────────────────────┤
//! │ footer: u64 index_offset · u32 index_len ·   │ 20 bytes
//! │         u32 index_crc · magic "BDST"         │
//! └──────────────────────────────────────────────┘
//! ```
//!
//! The index is *sparse in time*: per block it records the covered
//! `[min_ts, max_ts]`, so a range query opens only blocks that can
//! intersect it. Segments are written to a temp file, fsync'd, then
//! renamed into place — a crash mid-write leaves no visible segment.
//!
//! Series-block payload (kind 0):
//!
//! ```text
//! varint n_hosts · (varint len · bytes)*        host string table
//! varint n_metrics · (varint len · bytes)*      metric string table
//! varint n_chunks · (varint host_id · varint metric_id ·
//!                    varint chunk_len · chunk bytes)*
//! ```

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{self, decode_chunk_at, get_varint, put_varint};
use crate::crc::crc32;

pub const MAGIC: &[u8; 8] = b"SUPTSDB1";
pub const FOOTER_MAGIC: &[u8; 4] = b"BDST";
pub const VERSION: u16 = 1;
/// Segment holds compressed time series (host/metric chunks).
pub const KIND_SERIES: u8 = 0;
/// Segment holds opaque length-framed records (job table, etc.).
pub const KIND_RECORDS: u8 = 1;

const HEADER_LEN: usize = 12;
const FOOTER_LEN: usize = 20;

/// Everything that can go wrong opening or scanning a store.
#[derive(Debug)]
pub enum TsdbError {
    Io(io::Error),
    /// Structural damage: bad magic, bad CRC, truncated frame — with a
    /// human-readable description of where.
    Corrupt(String),
    /// The file is a segment but from a future format version.
    BadVersion(u16),
}

impl fmt::Display for TsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsdbError::Io(e) => write!(f, "tsdb io error: {e}"),
            TsdbError::Corrupt(what) => write!(f, "tsdb corruption: {what}"),
            TsdbError::BadVersion(v) => write!(f, "tsdb segment version {v} is newer than {VERSION}"),
        }
    }
}

impl std::error::Error for TsdbError {}

impl From<io::Error> for TsdbError {
    fn from(e: io::Error) -> TsdbError {
        TsdbError::Io(e)
    }
}

fn corrupt(what: impl Into<String>) -> TsdbError {
    TsdbError::Corrupt(what.into())
}

/// One entry of the sparse time index: where a data block lives and the
/// time range its samples cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    pub offset: u64,
    pub len: u32,
    pub min_ts: u64,
    pub max_ts: u64,
    pub n_chunks: u32,
}

/// One compressed series chunk inside a block, addressed by string-table
/// ids that [`SegmentReader`] resolves back to names.
#[derive(Debug, Clone)]
pub struct SeriesChunk {
    pub host: String,
    pub metric: String,
    pub samples: Vec<(u64, u64)>,
}

// --- writing --------------------------------------------------------------

/// Builds a segment in memory, then seals it to disk atomically.
pub struct SegmentWriter {
    kind: u8,
    blocks: Vec<(Vec<u8>, u64, u64, u32)>, // payload, min_ts, max_ts, n_chunks
}

impl SegmentWriter {
    pub fn new(kind: u8) -> SegmentWriter {
        SegmentWriter { kind, blocks: Vec::new() }
    }

    /// Add a series block: chunks grouped under shared string tables.
    /// `chunks` items are `(host, metric, samples)`.
    pub fn push_series_block(&mut self, chunks: &[(String, String, Vec<(u64, u64)>)]) {
        if chunks.is_empty() {
            return;
        }
        fn intern<'a>(table: &mut Vec<&'a str>, s: &'a str) -> u64 {
            match table.iter().position(|t| *t == s) {
                Some(i) => i as u64,
                None => {
                    table.push(s);
                    (table.len() - 1) as u64
                }
            }
        }
        let mut hosts: Vec<&str> = Vec::new();
        let mut metrics: Vec<&str> = Vec::new();
        let mut host_ids = Vec::with_capacity(chunks.len());
        let mut metric_ids = Vec::with_capacity(chunks.len());
        for (host, metric, _) in chunks {
            host_ids.push(intern(&mut hosts, host));
            metric_ids.push(intern(&mut metrics, metric));
        }

        let mut payload = Vec::new();
        put_varint(&mut payload, hosts.len() as u64);
        for h in &hosts {
            put_varint(&mut payload, h.len() as u64);
            payload.extend_from_slice(h.as_bytes());
        }
        put_varint(&mut payload, metrics.len() as u64);
        for m in &metrics {
            put_varint(&mut payload, m.len() as u64);
            payload.extend_from_slice(m.as_bytes());
        }
        put_varint(&mut payload, chunks.len() as u64);
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;
        for (i, (_, _, samples)) in chunks.iter().enumerate() {
            for &(ts, _) in samples {
                min_ts = min_ts.min(ts);
                max_ts = max_ts.max(ts);
            }
            put_varint(&mut payload, host_ids[i]);
            put_varint(&mut payload, metric_ids[i]);
            let chunk = codec::encode_chunk(samples);
            put_varint(&mut payload, chunk.len() as u64);
            payload.extend_from_slice(&chunk);
        }
        if min_ts == u64::MAX {
            min_ts = 0;
        }
        self.blocks.push((payload, min_ts, max_ts, chunks.len() as u32));
    }

    /// Add an opaque block (kind-1 segments); time range is caller-set.
    pub fn push_raw_block(&mut self, payload: Vec<u8>, min_ts: u64, max_ts: u64, n_items: u32) {
        self.blocks.push((payload, min_ts, max_ts, n_items));
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Seal: write `<path>.tmp`, fsync, rename to `path`, fsync the
    /// parent directory so the rename itself is durable.
    pub fn seal(self, path: &Path) -> Result<u64, TsdbError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(self.kind);
        buf.push(0); // reserved

        let mut index = Vec::new();
        let mut entries: Vec<IndexEntry> = Vec::new();
        for (payload, min_ts, max_ts, n_chunks) in &self.blocks {
            let offset = buf.len() as u64;
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(payload).to_le_bytes());
            buf.extend_from_slice(payload);
            entries.push(IndexEntry {
                offset,
                len: payload.len() as u32,
                min_ts: *min_ts,
                max_ts: *max_ts,
                n_chunks: *n_chunks,
            });
        }
        put_varint(&mut index, entries.len() as u64);
        for e in &entries {
            put_varint(&mut index, e.offset);
            put_varint(&mut index, e.len as u64);
            put_varint(&mut index, e.min_ts);
            put_varint(&mut index, e.max_ts);
            put_varint(&mut index, e.n_chunks as u64);
        }
        let index_offset = buf.len() as u64;
        buf.extend_from_slice(&index);
        buf.extend_from_slice(&index_offset.to_le_bytes());
        buf.extend_from_slice(&(index.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&index).to_le_bytes());
        buf.extend_from_slice(FOOTER_MAGIC);

        let tmp = path.with_extension("tsdb.tmp");
        {
            let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            // Best-effort: directory fsync is not available on every
            // platform; the rename is still atomic without it.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(buf.len() as u64)
    }
}

// --- reading --------------------------------------------------------------

/// Read-side handle: validates header + footer + index on open, then
/// serves CRC-checked blocks on demand.
pub struct SegmentReader {
    path: PathBuf,
    pub kind: u8,
    pub entries: Vec<IndexEntry>,
    file_len: u64,
}

impl SegmentReader {
    pub fn open(path: &Path) -> Result<SegmentReader, TsdbError> {
        let mut f = File::open(path)?;
        let file_len = f.metadata()?.len();
        if file_len < (HEADER_LEN + FOOTER_LEN) as u64 {
            return Err(corrupt(format!("{}: too short ({file_len} bytes)", path.display())));
        }
        let mut header = [0u8; HEADER_LEN];
        f.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(corrupt(format!("{}: bad magic", path.display())));
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version > VERSION {
            return Err(TsdbError::BadVersion(version));
        }
        let kind = header[10];

        let mut footer = [0u8; FOOTER_LEN];
        f.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        f.read_exact(&mut footer)?;
        if &footer[16..] != FOOTER_MAGIC {
            return Err(corrupt(format!("{}: bad footer magic", path.display())));
        }
        let [o0, o1, o2, o3, o4, o5, o6, o7, l0, l1, l2, l3, c0, c1, c2, c3, ..] = footer;
        let index_offset = u64::from_le_bytes([o0, o1, o2, o3, o4, o5, o6, o7]);
        let index_len = u32::from_le_bytes([l0, l1, l2, l3]) as u64;
        let index_crc = u32::from_le_bytes([c0, c1, c2, c3]);
        if index_offset
            .checked_add(index_len)
            .map_or(true, |end| end != file_len - FOOTER_LEN as u64)
        {
            return Err(corrupt(format!("{}: index frame out of bounds", path.display())));
        }
        let mut index = vec![0u8; index_len as usize];
        f.seek(SeekFrom::Start(index_offset))?;
        f.read_exact(&mut index)?;
        if crc32(&index) != index_crc {
            return Err(corrupt(format!("{}: index crc mismatch", path.display())));
        }

        let mut pos = 0usize;
        let n = get_varint(&index, &mut pos)
            .ok_or_else(|| corrupt(format!("{}: index count", path.display())))? as usize;
        if n > (index_len as usize) {
            return Err(corrupt(format!("{}: index claims {n} entries", path.display())));
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let mut field = |name: &str| {
                get_varint(&index, &mut pos)
                    .ok_or_else(|| corrupt(format!("{}: index[{i}].{name}", path.display())))
            };
            let offset = field("offset")?;
            let len = field("len")? as u32;
            let min_ts = field("min_ts")?;
            let max_ts = field("max_ts")?;
            let n_chunks = field("n_chunks")? as u32;
            if offset < HEADER_LEN as u64
                || offset + 8 + len as u64 > index_offset
            {
                return Err(corrupt(format!("{}: index[{i}] out of bounds", path.display())));
            }
            entries.push(IndexEntry { offset, len, min_ts, max_ts, n_chunks });
        }
        if pos != index.len() {
            return Err(corrupt(format!("{}: trailing index bytes", path.display())));
        }
        Ok(SegmentReader { path: path.to_path_buf(), kind, entries, file_len })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Overall `[min_ts, max_ts]` across all blocks; `None` if empty.
    pub fn time_range(&self) -> Option<(u64, u64)> {
        let min = self.entries.iter().map(|e| e.min_ts).min()?;
        let max = self.entries.iter().map(|e| e.max_ts).max()?;
        Some((min, max))
    }

    /// Fetch + CRC-check one block's payload.
    pub fn read_block(&self, entry: &IndexEntry) -> Result<Vec<u8>, TsdbError> {
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(entry.offset))?;
        let mut frame = [0u8; 8];
        f.read_exact(&mut frame)?;
        let [l0, l1, l2, l3, c0, c1, c2, c3] = frame;
        let len = u32::from_le_bytes([l0, l1, l2, l3]);
        let crc = u32::from_le_bytes([c0, c1, c2, c3]);
        if len != entry.len {
            return Err(corrupt(format!(
                "{}: block at {} length mismatch (frame {len}, index {})",
                self.path.display(),
                entry.offset,
                entry.len
            )));
        }
        let mut payload = vec![0u8; len as usize];
        f.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(corrupt(format!(
                "{}: block at {} crc mismatch",
                self.path.display(),
                entry.offset
            )));
        }
        Ok(payload)
    }

    /// Decode a kind-0 block payload into named series chunks.
    pub fn decode_series_block(&self, payload: &[u8]) -> Result<Vec<SeriesChunk>, TsdbError> {
        let bad = |what: &str| corrupt(format!("{}: series block: {what}", self.path.display()));
        let mut pos = 0usize;
        let read_table = |pos: &mut usize| -> Result<Vec<String>, TsdbError> {
            let n = get_varint(payload, pos).ok_or_else(|| bad("table count"))? as usize;
            if n > payload.len() {
                return Err(bad("table count out of range"));
            }
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                let len = get_varint(payload, pos).ok_or_else(|| bad("name length"))? as usize;
                let end = pos.checked_add(len).ok_or_else(|| bad("name overflow"))?;
                let bytes = payload.get(*pos..end).ok_or_else(|| bad("name bytes"))?;
                *pos = end;
                table.push(
                    String::from_utf8(bytes.to_vec()).map_err(|_| bad("name not utf-8"))?,
                );
            }
            Ok(table)
        };
        let hosts = read_table(&mut pos)?;
        let metrics = read_table(&mut pos)?;
        let n_chunks = get_varint(payload, &mut pos).ok_or_else(|| bad("chunk count"))? as usize;
        if n_chunks > payload.len() {
            return Err(bad("chunk count out of range"));
        }
        let mut out = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let host_id = get_varint(payload, &mut pos).ok_or_else(|| bad("host id"))? as usize;
            let metric_id =
                get_varint(payload, &mut pos).ok_or_else(|| bad("metric id"))? as usize;
            let chunk_len =
                get_varint(payload, &mut pos).ok_or_else(|| bad("chunk length"))? as usize;
            let end = pos.checked_add(chunk_len).ok_or_else(|| bad("chunk overflow"))?;
            if end > payload.len() {
                return Err(bad("chunk out of bounds"));
            }
            let mut cpos = pos;
            let samples =
                decode_chunk_at(payload, &mut cpos).ok_or_else(|| bad("chunk decode"))?;
            if cpos != end {
                return Err(bad("chunk length mismatch"));
            }
            pos = end;
            let host = hosts.get(host_id).ok_or_else(|| bad("host id out of range"))?.clone();
            let metric =
                metrics.get(metric_id).ok_or_else(|| bad("metric id out of range"))?.clone();
            out.push(SeriesChunk { host, metric, samples });
        }
        if pos != payload.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdb-seg-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_chunks() -> Vec<(String, String, Vec<(u64, u64)>)> {
        vec![
            (
                "c301-101".into(),
                "cpu_user".into(),
                (0..100).map(|i| (i * 600, (i as f64 * 0.01).to_bits())).collect(),
            ),
            (
                "c301-101".into(),
                "mem_used".into(),
                (0..100).map(|i| (i * 600, ((i * 4096) as f64).to_bits())).collect(),
            ),
            (
                "c301-102".into(),
                "cpu_user".into(),
                (50..150).map(|i| (i * 600, 0.5f64.to_bits())).collect(),
            ),
        ]
    }

    #[test]
    fn seal_and_reopen_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("seg-000001.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        w.push_series_block(&sample_chunks());
        let bytes = w.seal(&path).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), bytes);
        assert!(!dir.join("seg-000001.tsdb.tmp").exists(), "tmp file cleaned up");

        let r = SegmentReader::open(&path).unwrap();
        assert_eq!(r.kind, KIND_SERIES);
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.time_range(), Some((0, 149 * 600)));
        let payload = r.read_block(&r.entries[0]).unwrap();
        let chunks = r.decode_series_block(&payload).unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].host, "c301-101");
        assert_eq!(chunks[2].metric, "cpu_user");
        assert_eq!(chunks[1].samples.len(), 100);
        assert_eq!(chunks[1].samples[3], (3 * 600, (3.0 * 4096.0f64).to_bits()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupting_any_byte_is_detected_or_harmless() {
        let dir = tmpdir("corrupt");
        let path = dir.join("seg-000001.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        w.push_series_block(&sample_chunks());
        w.seal(&path).unwrap();
        let good = fs::read(&path).unwrap();

        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            fs::write(&path, &bad).unwrap();
            // Must never panic. Either open fails, or a block read /
            // decode fails, or (for truly dont-care bytes) data matches.
            if let Ok(r) = SegmentReader::open(&path) {
                for e in &r.entries {
                    match r.read_block(e) {
                        Ok(p) => {
                            let _ = r.decode_series_block(&p);
                        }
                        Err(_) => {}
                    }
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_offset_never_panics() {
        let dir = tmpdir("trunc");
        let path = dir.join("seg-000001.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        w.push_series_block(&sample_chunks());
        w.seal(&path).unwrap();
        let good = fs::read(&path).unwrap();
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(
                SegmentReader::open(&path).is_err(),
                "truncated segment ({cut} bytes) must not open clean"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiple_blocks_index_time_ranges() {
        let dir = tmpdir("multi");
        let path = dir.join("seg-000002.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        w.push_series_block(&[(
            "h1".into(),
            "m".into(),
            vec![(100, 1u64), (200, 2)],
        )]);
        w.push_series_block(&[(
            "h2".into(),
            "m".into(),
            vec![(5000, 3u64), (9000, 4)],
        )]);
        w.seal(&path).unwrap();
        let r = SegmentReader::open(&path).unwrap();
        assert_eq!(r.entries.len(), 2);
        assert_eq!((r.entries[0].min_ts, r.entries[0].max_ts), (100, 200));
        assert_eq!((r.entries[1].min_ts, r.entries[1].max_ts), (5000, 9000));
        let _ = fs::remove_dir_all(&dir);
    }
}
