//! Immutable segment files.
//!
//! A segment is the sealed, on-disk form of a batch of series data (or,
//! via [`crate::recordlog`], opaque records). Layout:
//!
//! ```text
//! ┌──────────────────────────────────────────────┐
//! │ header: magic "SUPTSDB1" · u16 version · u8  │ 12 bytes
//! │         kind · u8 reserved                   │
//! ├──────────────────────────────────────────────┤
//! │ block 0: u32 len · u32 crc32 · payload       │
//! │ block 1: …                                   │
//! ├──────────────────────────────────────────────┤
//! │ index block: one entry per data block,       │ (same framing)
//! │ then (v2) the per-series chunk index         │
//! ├──────────────────────────────────────────────┤
//! │ footer: u64 index_offset · u32 index_len ·   │ 20 bytes
//! │         u32 index_crc · magic "BDST"         │
//! └──────────────────────────────────────────────┘
//! ```
//!
//! The block index is *sparse in time*: per block it records the covered
//! `[min_ts, max_ts]`, so a range query opens only blocks that can
//! intersect it. Version 2 appends a **per-series chunk index** to the
//! same CRC-protected index frame: for every `(host, metric)` in the
//! segment, the exact location of each of its compressed chunks
//! (`block · offset · len`), the chunk's time range, and its
//! pre-computed statistics ([`crate::stats::ChunkStats`]). A selective
//! query then reads only the blocks that hold the series it wants and
//! decodes only that series' chunks; a downsampling query can fold
//! whole chunks from the stats without decompressing them at all.
//!
//! Version-1 segments (block index only) still open; the reader
//! reports `series_index() == None` and callers fall back to decoding
//! blocks. Writers emit v2 only — the read shim is the one-release
//! compatibility policy.
//!
//! Segments are written to a temp file, fsync'd, then renamed into
//! place — a crash mid-write leaves no visible segment.
//!
//! Series-block payload (kind 0, unchanged since v1):
//!
//! ```text
//! varint n_hosts · (varint len · bytes)*        host string table
//! varint n_metrics · (varint len · bytes)*      metric string table
//! varint n_chunks · (varint host_id · varint metric_id ·
//!                    varint chunk_len · chunk bytes)*
//! ```
//!
//! v2 series-index tail (inside the index frame, after the block
//! entries):
//!
//! ```text
//! varint n_hosts · (varint len · bytes)*        segment-wide tables
//! varint n_metrics · (varint len · bytes)*
//! varint n_series ·
//!   (varint host_id · varint metric_id · varint n_chunks ·
//!     (varint block_ix · varint offset · varint len ·
//!      varint min_ts · varint max_ts · varint count ·
//!      u64 sum_bits · u64 min_bits · u64 max_bits · u64 last_bits)*)*
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{self, decode_chunk_at, get_varint, put_varint};
use crate::crc::crc32;
use crate::stats::ChunkStats;

pub const MAGIC: &[u8; 8] = b"SUPTSDB1";
pub const FOOTER_MAGIC: &[u8; 4] = b"BDST";
pub const VERSION: u16 = 2;
/// Segment holds compressed time series (host/metric chunks).
pub const KIND_SERIES: u8 = 0;
/// Segment holds opaque length-framed records (job table, etc.).
pub const KIND_RECORDS: u8 = 1;
/// Segment holds pre-aggregated rollup bins (see `tsdb::retention`).
pub const KIND_ROLLUP: u8 = 2;

const HEADER_LEN: usize = 12;
const FOOTER_LEN: usize = 20;

/// Everything that can go wrong opening or scanning a store.
#[derive(Debug)]
pub enum TsdbError {
    Io(io::Error),
    /// Structural damage: bad magic, bad CRC, truncated frame — with a
    /// human-readable description of where.
    Corrupt(String),
    /// The file is a segment but from a future format version.
    BadVersion(u16),
    /// A retention policy failed validation (see `tsdb::retention`).
    Policy(String),
}

impl fmt::Display for TsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsdbError::Io(e) => write!(f, "tsdb io error: {e}"),
            TsdbError::Corrupt(what) => write!(f, "tsdb corruption: {what}"),
            TsdbError::BadVersion(v) => write!(f, "tsdb segment version {v} is newer than {VERSION}"),
            TsdbError::Policy(what) => write!(f, "tsdb retention policy: {what}"),
        }
    }
}

impl std::error::Error for TsdbError {}

impl From<io::Error> for TsdbError {
    fn from(e: io::Error) -> TsdbError {
        TsdbError::Io(e)
    }
}

fn corrupt(what: impl Into<String>) -> TsdbError {
    TsdbError::Corrupt(what.into())
}

/// One entry of the sparse time index: where a data block lives and the
/// time range its samples cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    pub offset: u64,
    pub len: u32,
    pub min_ts: u64,
    pub max_ts: u64,
    pub n_chunks: u32,
}

/// One compressed series chunk inside a block, addressed by string-table
/// ids that [`SegmentReader`] resolves back to names.
#[derive(Debug, Clone)]
pub struct SeriesChunk {
    pub host: String,
    pub metric: String,
    pub samples: Vec<(u64, u64)>,
}

/// v2 series index: the exact location of one compressed chunk plus its
/// time range and pre-aggregates. `offset`/`len` are relative to the
/// owning block's payload and frame the chunk's encoded bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRef {
    pub block_ix: u32,
    pub offset: u32,
    pub len: u32,
    pub min_ts: u64,
    pub max_ts: u64,
    pub stats: ChunkStats,
}

/// v2 series index: every chunk of one `(host, metric)` series, in the
/// order the writer emitted them (ascending time for engine-produced
/// segments).
#[derive(Debug, Clone)]
pub struct SeriesEntry {
    pub host: String,
    pub metric: String,
    pub chunks: Vec<ChunkRef>,
}

// --- writing --------------------------------------------------------------

/// Builds a segment in memory, then seals it to disk atomically.
pub struct SegmentWriter {
    kind: u8,
    blocks: Vec<(Vec<u8>, u64, u64, u32)>, // payload, min_ts, max_ts, n_chunks
    /// Per-series chunk refs for the v2 index, keyed `(host, metric)`.
    series: BTreeMap<(String, String), Vec<ChunkRef>>,
}

impl SegmentWriter {
    pub fn new(kind: u8) -> SegmentWriter {
        SegmentWriter { kind, blocks: Vec::new(), series: BTreeMap::new() }
    }

    /// Add a series block: chunks grouped under shared string tables.
    /// `chunks` items are `(host, metric, samples)`; samples are
    /// borrowed — no copy is made on the way into the encoder.
    pub fn push_series_block(&mut self, chunks: &[(&str, &str, &[(u64, u64)])]) {
        if chunks.is_empty() {
            return;
        }
        fn intern<'a>(table: &mut Vec<&'a str>, s: &'a str) -> u64 {
            match table.iter().position(|t| *t == s) {
                Some(i) => i as u64,
                None => {
                    table.push(s);
                    (table.len() - 1) as u64
                }
            }
        }
        let mut hosts: Vec<&str> = Vec::new();
        let mut metrics: Vec<&str> = Vec::new();
        let mut host_ids = Vec::with_capacity(chunks.len());
        let mut metric_ids = Vec::with_capacity(chunks.len());
        for (host, metric, _) in chunks {
            host_ids.push(intern(&mut hosts, host));
            metric_ids.push(intern(&mut metrics, metric));
        }

        let block_ix = self.blocks.len() as u32;
        let mut payload = Vec::new();
        put_varint(&mut payload, hosts.len() as u64);
        for h in &hosts {
            put_varint(&mut payload, h.len() as u64);
            payload.extend_from_slice(h.as_bytes());
        }
        put_varint(&mut payload, metrics.len() as u64);
        for m in &metrics {
            put_varint(&mut payload, m.len() as u64);
            payload.extend_from_slice(m.as_bytes());
        }
        put_varint(&mut payload, chunks.len() as u64);
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;
        for (i, (host, metric, samples)) in chunks.iter().enumerate() {
            let mut chunk_min = u64::MAX;
            let mut chunk_max = 0u64;
            for &(ts, _) in *samples {
                chunk_min = chunk_min.min(ts);
                chunk_max = chunk_max.max(ts);
            }
            min_ts = min_ts.min(chunk_min);
            max_ts = max_ts.max(chunk_max);
            put_varint(&mut payload, host_ids[i]);
            put_varint(&mut payload, metric_ids[i]);
            let chunk = codec::encode_chunk(samples);
            put_varint(&mut payload, chunk.len() as u64);
            let offset = payload.len() as u32;
            payload.extend_from_slice(&chunk);
            self.series
                .entry((host.to_string(), metric.to_string()))
                .or_default()
                .push(ChunkRef {
                    block_ix,
                    offset,
                    len: chunk.len() as u32,
                    min_ts: if chunk_min == u64::MAX { 0 } else { chunk_min },
                    max_ts: chunk_max,
                    stats: ChunkStats::from_samples(samples),
                });
        }
        if min_ts == u64::MAX {
            min_ts = 0;
        }
        self.blocks.push((payload, min_ts, max_ts, chunks.len() as u32));
    }

    /// Add an opaque block (kind-1 segments); time range is caller-set.
    pub fn push_raw_block(&mut self, payload: Vec<u8>, min_ts: u64, max_ts: u64, n_items: u32) {
        self.blocks.push((payload, min_ts, max_ts, n_items));
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Seal at the current format version: write `<path>.tmp`, fsync,
    /// rename to `path`, fsync the parent directory so the rename itself
    /// is durable.
    pub fn seal(self, path: &Path) -> Result<u64, TsdbError> {
        self.seal_with_version(path, VERSION)
    }

    /// Seal at an explicit format version (`1` omits the per-series
    /// index). Exists so compatibility tests and migration tooling can
    /// produce old-format segments; everything else wants [`seal`].
    ///
    /// [`seal`]: SegmentWriter::seal
    pub fn seal_with_version(self, path: &Path, version: u16) -> Result<u64, TsdbError> {
        if version == 0 || version > VERSION {
            return Err(TsdbError::BadVersion(version));
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&version.to_le_bytes());
        buf.push(self.kind);
        buf.push(0); // reserved

        let mut index = Vec::new();
        let mut entries: Vec<IndexEntry> = Vec::new();
        for (payload, min_ts, max_ts, n_chunks) in &self.blocks {
            let offset = buf.len() as u64;
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(payload).to_le_bytes());
            buf.extend_from_slice(payload);
            entries.push(IndexEntry {
                offset,
                len: payload.len() as u32,
                min_ts: *min_ts,
                max_ts: *max_ts,
                n_chunks: *n_chunks,
            });
        }
        put_varint(&mut index, entries.len() as u64);
        for e in &entries {
            put_varint(&mut index, e.offset);
            put_varint(&mut index, e.len as u64);
            put_varint(&mut index, e.min_ts);
            put_varint(&mut index, e.max_ts);
            put_varint(&mut index, e.n_chunks as u64);
        }
        if version >= 2 {
            // Segment-wide string tables, then per-series chunk refs.
            let mut hosts: Vec<&str> = Vec::new();
            let mut metrics: Vec<&str> = Vec::new();
            for (host, metric) in self.series.keys() {
                if !hosts.iter().any(|h| *h == host.as_str()) {
                    hosts.push(host);
                }
                if !metrics.iter().any(|m| *m == metric.as_str()) {
                    metrics.push(metric);
                }
            }
            put_varint(&mut index, hosts.len() as u64);
            for h in &hosts {
                put_varint(&mut index, h.len() as u64);
                index.extend_from_slice(h.as_bytes());
            }
            put_varint(&mut index, metrics.len() as u64);
            for m in &metrics {
                put_varint(&mut index, m.len() as u64);
                index.extend_from_slice(m.as_bytes());
            }
            put_varint(&mut index, self.series.len() as u64);
            for ((host, metric), refs) in &self.series {
                let host_id = hosts.iter().position(|h| *h == host.as_str()).unwrap_or(0) as u64;
                let metric_id =
                    metrics.iter().position(|m| *m == metric.as_str()).unwrap_or(0) as u64;
                put_varint(&mut index, host_id);
                put_varint(&mut index, metric_id);
                put_varint(&mut index, refs.len() as u64);
                for r in refs {
                    put_varint(&mut index, r.block_ix as u64);
                    put_varint(&mut index, r.offset as u64);
                    put_varint(&mut index, r.len as u64);
                    put_varint(&mut index, r.min_ts);
                    put_varint(&mut index, r.max_ts);
                    put_varint(&mut index, r.stats.count);
                    index.extend_from_slice(&r.stats.sum.to_bits().to_le_bytes());
                    index.extend_from_slice(&r.stats.min.to_bits().to_le_bytes());
                    index.extend_from_slice(&r.stats.max.to_bits().to_le_bytes());
                    index.extend_from_slice(&r.stats.last.to_bits().to_le_bytes());
                }
            }
        }
        let index_offset = buf.len() as u64;
        buf.extend_from_slice(&index);
        buf.extend_from_slice(&index_offset.to_le_bytes());
        buf.extend_from_slice(&(index.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&index).to_le_bytes());
        buf.extend_from_slice(FOOTER_MAGIC);

        let tmp = path.with_extension("tsdb.tmp");
        {
            let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            // Best-effort: directory fsync is not available on every
            // platform; the rename is still atomic without it.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(buf.len() as u64)
    }
}

// --- reading --------------------------------------------------------------

/// Read-side handle: validates header + footer + index on open, then
/// serves CRC-checked blocks on demand.
pub struct SegmentReader {
    path: PathBuf,
    pub kind: u8,
    pub entries: Vec<IndexEntry>,
    version: u16,
    series: Vec<SeriesEntry>,
    file_len: u64,
}

/// Parse a varint-framed string table out of the index frame.
fn read_string_table(
    index: &[u8],
    pos: &mut usize,
    what: &str,
    path: &Path,
) -> Result<Vec<String>, TsdbError> {
    let bad = |w: &str| corrupt(format!("{}: series index {what}: {w}", path.display()));
    let n = get_varint(index, pos).ok_or_else(|| bad("count"))? as usize;
    if n > index.len() {
        return Err(bad("count out of range"));
    }
    let mut table = Vec::with_capacity(n);
    for _ in 0..n {
        let len = get_varint(index, pos).ok_or_else(|| bad("name length"))? as usize;
        let end = pos.checked_add(len).ok_or_else(|| bad("name overflow"))?;
        let bytes = index.get(*pos..end).ok_or_else(|| bad("name bytes"))?;
        *pos = end;
        // Validate before allocating: no copy is made for invalid input.
        table.push(std::str::from_utf8(bytes).map_err(|_| bad("name not utf-8"))?.to_owned());
    }
    Ok(table)
}

impl SegmentReader {
    pub fn open(path: &Path) -> Result<SegmentReader, TsdbError> {
        let mut f = File::open(path)?;
        let file_len = f.metadata()?.len();
        if file_len < (HEADER_LEN + FOOTER_LEN) as u64 {
            return Err(corrupt(format!("{}: too short ({file_len} bytes)", path.display())));
        }
        let mut header = [0u8; HEADER_LEN];
        f.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(corrupt(format!("{}: bad magic", path.display())));
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version > VERSION {
            return Err(TsdbError::BadVersion(version));
        }
        let kind = header[10];

        let mut footer = [0u8; FOOTER_LEN];
        f.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        f.read_exact(&mut footer)?;
        if &footer[16..] != FOOTER_MAGIC {
            return Err(corrupt(format!("{}: bad footer magic", path.display())));
        }
        let [o0, o1, o2, o3, o4, o5, o6, o7, l0, l1, l2, l3, c0, c1, c2, c3, ..] = footer;
        let index_offset = u64::from_le_bytes([o0, o1, o2, o3, o4, o5, o6, o7]);
        let index_len = u32::from_le_bytes([l0, l1, l2, l3]) as u64;
        let index_crc = u32::from_le_bytes([c0, c1, c2, c3]);
        if index_offset
            .checked_add(index_len)
            .map_or(true, |end| end != file_len - FOOTER_LEN as u64)
        {
            return Err(corrupt(format!("{}: index frame out of bounds", path.display())));
        }
        let mut index = vec![0u8; index_len as usize];
        f.seek(SeekFrom::Start(index_offset))?;
        f.read_exact(&mut index)?;
        if crc32(&index) != index_crc {
            return Err(corrupt(format!("{}: index crc mismatch", path.display())));
        }

        let mut pos = 0usize;
        let n = get_varint(&index, &mut pos)
            .ok_or_else(|| corrupt(format!("{}: index count", path.display())))? as usize;
        if n > (index_len as usize) {
            return Err(corrupt(format!("{}: index claims {n} entries", path.display())));
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let mut field = |name: &str| {
                get_varint(&index, &mut pos)
                    .ok_or_else(|| corrupt(format!("{}: index[{i}].{name}", path.display())))
            };
            let offset = field("offset")?;
            let len = field("len")? as u32;
            let min_ts = field("min_ts")?;
            let max_ts = field("max_ts")?;
            let n_chunks = field("n_chunks")? as u32;
            if offset < HEADER_LEN as u64
                || offset + 8 + len as u64 > index_offset
            {
                return Err(corrupt(format!("{}: index[{i}] out of bounds", path.display())));
            }
            entries.push(IndexEntry { offset, len, min_ts, max_ts, n_chunks });
        }

        let series = if version >= 2 {
            Self::parse_series_index(&index, &mut pos, &entries, path)?
        } else {
            Vec::new()
        };
        if pos != index.len() {
            return Err(corrupt(format!("{}: trailing index bytes", path.display())));
        }
        Ok(SegmentReader {
            path: path.to_path_buf(),
            kind,
            entries,
            version,
            series,
            file_len,
        })
    }

    fn parse_series_index(
        index: &[u8],
        pos: &mut usize,
        entries: &[IndexEntry],
        path: &Path,
    ) -> Result<Vec<SeriesEntry>, TsdbError> {
        let bad = |w: String| corrupt(format!("{}: series index: {w}", path.display()));
        let hosts = read_string_table(index, pos, "hosts", path)?;
        let metrics = read_string_table(index, pos, "metrics", path)?;
        let n_series =
            get_varint(index, pos).ok_or_else(|| bad("series count".into()))? as usize;
        if n_series > index.len() {
            return Err(bad("series count out of range".into()));
        }
        let mut out: Vec<SeriesEntry> = Vec::with_capacity(n_series);
        for s in 0..n_series {
            let mut field = |name: &str| {
                get_varint(index, pos).ok_or_else(|| bad(format!("series[{s}].{name}")))
            };
            let host_id = field("host_id")? as usize;
            let metric_id = field("metric_id")? as usize;
            let n_refs = field("n_chunks")? as usize;
            let host = hosts
                .get(host_id)
                .ok_or_else(|| bad(format!("series[{s}] host id out of range")))?
                .clone(); // suplint: allow(R7) -- one owned name per series at segment open
            let metric = metrics
                .get(metric_id)
                .ok_or_else(|| bad(format!("series[{s}] metric id out of range")))?
                .clone(); // suplint: allow(R7) -- one owned name per series at segment open
            if n_refs > index.len() {
                return Err(bad(format!("series[{s}] chunk count out of range")));
            }
            let mut chunks = Vec::with_capacity(n_refs);
            for c in 0..n_refs {
                let mut field = |name: &str| {
                    get_varint(index, pos)
                        .ok_or_else(|| bad(format!("series[{s}].chunk[{c}].{name}")))
                };
                let block_ix = field("block_ix")? as u32;
                let offset = field("offset")? as u32;
                let len = field("len")? as u32;
                let min_ts = field("min_ts")?;
                let max_ts = field("max_ts")?;
                let count = field("count")?;
                let mut bits = |name: &str| -> Result<f64, TsdbError> {
                    let end = pos.checked_add(8).ok_or_else(|| {
                        bad(format!("series[{s}].chunk[{c}].{name} overflow"))
                    })?;
                    let raw = index.get(*pos..end).ok_or_else(|| {
                        bad(format!("series[{s}].chunk[{c}].{name} truncated"))
                    })?;
                    *pos = end;
                    let mut b = [0u8; 8];
                    b.copy_from_slice(raw);
                    Ok(f64::from_bits(u64::from_le_bytes(b)))
                };
                let sum = bits("sum")?;
                let min = bits("min")?;
                let max = bits("max")?;
                let last = bits("last")?;
                let entry = entries.get(block_ix as usize).ok_or_else(|| {
                    bad(format!("series[{s}].chunk[{c}] block {block_ix} out of range"))
                })?;
                let end = (offset as u64).checked_add(len as u64);
                if end.map_or(true, |e| e > entry.len as u64) {
                    return Err(bad(format!(
                        "series[{s}].chunk[{c}] bytes {offset}+{len} exceed block {block_ix}"
                    )));
                }
                if min_ts > max_ts {
                    return Err(bad(format!("series[{s}].chunk[{c}] inverted time range")));
                }
                chunks.push(ChunkRef {
                    block_ix,
                    offset,
                    len,
                    min_ts,
                    max_ts,
                    stats: ChunkStats { count, sum, min, max, last },
                });
            }
            out.push(SeriesEntry { host, metric, chunks });
        }
        Ok(out)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Format version this segment was sealed at.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The per-series chunk index, sorted by `(host, metric)`.
    /// `None` for version-1 segments — callers must fall back to
    /// decoding blocks.
    pub fn series_index(&self) -> Option<&[SeriesEntry]> {
        (self.version >= 2).then_some(self.series.as_slice())
    }

    /// Overall `[min_ts, max_ts]` across all blocks; `None` if empty.
    pub fn time_range(&self) -> Option<(u64, u64)> {
        let min = self.entries.iter().map(|e| e.min_ts).min()?;
        let max = self.entries.iter().map(|e| e.max_ts).max()?;
        Some((min, max))
    }

    /// Fetch + CRC-check one block's payload.
    pub fn read_block(&self, entry: &IndexEntry) -> Result<Vec<u8>, TsdbError> {
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(entry.offset))?;
        let mut frame = [0u8; 8];
        f.read_exact(&mut frame)?;
        let [l0, l1, l2, l3, c0, c1, c2, c3] = frame;
        let len = u32::from_le_bytes([l0, l1, l2, l3]);
        let crc = u32::from_le_bytes([c0, c1, c2, c3]);
        if len != entry.len {
            return Err(corrupt(format!(
                "{}: block at {} length mismatch (frame {len}, index {})",
                self.path.display(),
                entry.offset,
                entry.len
            )));
        }
        let mut payload = vec![0u8; len as usize];
        f.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(corrupt(format!(
                "{}: block at {} crc mismatch",
                self.path.display(),
                entry.offset
            )));
        }
        Ok(payload)
    }

    /// Decode one chunk addressed by a v2 [`ChunkRef`] out of its
    /// block's already-read payload, without touching the rest of the
    /// block.
    pub fn decode_chunk_in_block(
        &self,
        payload: &[u8],
        r: &ChunkRef,
    ) -> Result<Vec<(u64, u64)>, TsdbError> {
        let bad = |what: &str| {
            corrupt(format!(
                "{}: chunk at block {} offset {}: {what}",
                self.path.display(),
                r.block_ix,
                r.offset
            ))
        };
        let end = (r.offset as usize)
            .checked_add(r.len as usize)
            .ok_or_else(|| bad("length overflow"))?;
        if end > payload.len() {
            return Err(bad("out of block bounds"));
        }
        let mut pos = r.offset as usize;
        let samples = decode_chunk_at(&payload[..end], &mut pos).ok_or_else(|| bad("decode"))?;
        if pos != end {
            return Err(bad("length mismatch"));
        }
        Ok(samples)
    }

    /// Decode a kind-0 block payload into named series chunks.
    pub fn decode_series_block(&self, payload: &[u8]) -> Result<Vec<SeriesChunk>, TsdbError> {
        let bad = |what: &str| corrupt(format!("{}: series block: {what}", self.path.display()));
        let mut pos = 0usize;
        let read_table = |pos: &mut usize| -> Result<Vec<String>, TsdbError> {
            let n = get_varint(payload, pos).ok_or_else(|| bad("table count"))? as usize;
            if n > payload.len() {
                return Err(bad("table count out of range"));
            }
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                let len = get_varint(payload, pos).ok_or_else(|| bad("name length"))? as usize;
                let end = pos.checked_add(len).ok_or_else(|| bad("name overflow"))?;
                let bytes = payload.get(*pos..end).ok_or_else(|| bad("name bytes"))?;
                *pos = end;
                table.push(
                    std::str::from_utf8(bytes).map_err(|_| bad("name not utf-8"))?.to_owned(),
                );
            }
            Ok(table)
        };
        let hosts = read_table(&mut pos)?;
        let metrics = read_table(&mut pos)?;
        let n_chunks = get_varint(payload, &mut pos).ok_or_else(|| bad("chunk count"))? as usize;
        if n_chunks > payload.len() {
            return Err(bad("chunk count out of range"));
        }
        let mut out = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let host_id = get_varint(payload, &mut pos).ok_or_else(|| bad("host id"))? as usize;
            let metric_id =
                get_varint(payload, &mut pos).ok_or_else(|| bad("metric id"))? as usize;
            let chunk_len =
                get_varint(payload, &mut pos).ok_or_else(|| bad("chunk length"))? as usize;
            let end = pos.checked_add(chunk_len).ok_or_else(|| bad("chunk overflow"))?;
            if end > payload.len() {
                return Err(bad("chunk out of bounds"));
            }
            let mut cpos = pos;
            let samples =
                decode_chunk_at(payload, &mut cpos).ok_or_else(|| bad("chunk decode"))?;
            if cpos != end {
                return Err(bad("chunk length mismatch"));
            }
            pos = end;
            // suplint: allow(R7) -- one owned name per series in the v1 read shim
            let host = hosts.get(host_id).ok_or_else(|| bad("host id out of range"))?.clone();
            let metric =
                // suplint: allow(R7) -- as above: once per series, open-time only
                metrics.get(metric_id).ok_or_else(|| bad("metric id out of range"))?.clone();
            out.push(SeriesChunk { host, metric, samples });
        }
        if pos != payload.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdb-seg-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_chunks() -> Vec<(String, String, Vec<(u64, u64)>)> {
        vec![
            (
                "c301-101".into(),
                "cpu_user".into(),
                (0..100).map(|i| (i * 600, (i as f64 * 0.01).to_bits())).collect(),
            ),
            (
                "c301-101".into(),
                "mem_used".into(),
                (0..100).map(|i| (i * 600, ((i * 4096) as f64).to_bits())).collect(),
            ),
            (
                "c301-102".into(),
                "cpu_user".into(),
                (50..150).map(|i| (i * 600, 0.5f64.to_bits())).collect(),
            ),
        ]
    }

    /// Borrow an owned chunk list into `push_series_block` form.
    fn as_refs(owned: &[(String, String, Vec<(u64, u64)>)]) -> Vec<(&str, &str, &[(u64, u64)])> {
        owned.iter().map(|(h, m, s)| (h.as_str(), m.as_str(), s.as_slice())).collect()
    }

    #[test]
    fn seal_and_reopen_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("seg-000001.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        let owned = sample_chunks();
        w.push_series_block(&as_refs(&owned));
        let bytes = w.seal(&path).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), bytes);
        assert!(!dir.join("seg-000001.tsdb.tmp").exists(), "tmp file cleaned up");

        let r = SegmentReader::open(&path).unwrap();
        assert_eq!(r.kind, KIND_SERIES);
        assert_eq!(r.version(), VERSION);
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.time_range(), Some((0, 149 * 600)));
        let payload = r.read_block(&r.entries[0]).unwrap();
        let chunks = r.decode_series_block(&payload).unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].host, "c301-101");
        assert_eq!(chunks[2].metric, "cpu_user");
        assert_eq!(chunks[1].samples.len(), 100);
        assert_eq!(chunks[1].samples[3], (3 * 600, (3.0 * 4096.0f64).to_bits()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_index_addresses_every_chunk_with_stats() {
        let dir = tmpdir("sindex");
        let path = dir.join("seg-000001.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        let owned = sample_chunks();
        w.push_series_block(&as_refs(&owned));
        w.seal(&path).unwrap();

        let r = SegmentReader::open(&path).unwrap();
        let idx = r.series_index().expect("v2 segment has a series index");
        assert_eq!(idx.len(), 3);
        // Sorted by (host, metric).
        let names: Vec<(&str, &str)> =
            idx.iter().map(|e| (e.host.as_str(), e.metric.as_str())).collect();
        assert_eq!(
            names,
            vec![
                ("c301-101", "cpu_user"),
                ("c301-101", "mem_used"),
                ("c301-102", "cpu_user")
            ]
        );
        // Each chunk decodes exactly, and its stats match a fresh scan.
        for entry in idx {
            for cref in &entry.chunks {
                let payload = r.read_block(&r.entries[cref.block_ix as usize]).unwrap();
                let samples = r.decode_chunk_in_block(&payload, cref).unwrap();
                assert!(!samples.is_empty());
                assert_eq!(cref.min_ts, samples.iter().map(|&(ts, _)| ts).min().unwrap());
                assert_eq!(cref.max_ts, samples.iter().map(|&(ts, _)| ts).max().unwrap());
                let expect = ChunkStats::from_samples(&samples);
                assert_eq!(cref.stats.count, expect.count);
                assert_eq!(cref.stats.sum.to_bits(), expect.sum.to_bits());
                assert_eq!(cref.stats.min.to_bits(), expect.min.to_bits());
                assert_eq!(cref.stats.max.to_bits(), expect.max.to_bits());
                assert_eq!(cref.stats.last.to_bits(), expect.last.to_bits());
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_segments_open_without_series_index() {
        let dir = tmpdir("v1compat");
        let path = dir.join("seg-000001.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        let owned = sample_chunks();
        w.push_series_block(&as_refs(&owned));
        w.seal_with_version(&path, 1).unwrap();

        let r = SegmentReader::open(&path).unwrap();
        assert_eq!(r.version(), 1);
        assert!(r.series_index().is_none());
        // Block decode path still works.
        let payload = r.read_block(&r.entries[0]).unwrap();
        assert_eq!(r.decode_series_block(&payload).unwrap().len(), 3);
        // Future versions are rejected by the writer.
        let w2 = SegmentWriter::new(KIND_SERIES);
        assert!(matches!(
            w2.seal_with_version(&dir.join("seg-000002.tsdb"), VERSION + 1),
            Err(TsdbError::BadVersion(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupting_any_byte_is_detected_or_harmless() {
        let dir = tmpdir("corrupt");
        let path = dir.join("seg-000001.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        let owned = sample_chunks();
        w.push_series_block(&as_refs(&owned));
        w.seal(&path).unwrap();
        let good = fs::read(&path).unwrap();

        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            fs::write(&path, &bad).unwrap();
            // Must never panic. Either open fails, or a block read /
            // decode fails, or (for truly dont-care bytes) data matches.
            if let Ok(r) = SegmentReader::open(&path) {
                for e in &r.entries {
                    match r.read_block(e) {
                        Ok(p) => {
                            let _ = r.decode_series_block(&p);
                        }
                        Err(_) => {}
                    }
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_offset_never_panics() {
        let dir = tmpdir("trunc");
        let path = dir.join("seg-000001.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        let owned = sample_chunks();
        w.push_series_block(&as_refs(&owned));
        w.seal(&path).unwrap();
        let good = fs::read(&path).unwrap();
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(
                SegmentReader::open(&path).is_err(),
                "truncated segment ({cut} bytes) must not open clean"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiple_blocks_index_time_ranges() {
        let dir = tmpdir("multi");
        let path = dir.join("seg-000002.tsdb");
        let mut w = SegmentWriter::new(KIND_SERIES);
        w.push_series_block(&[("h1", "m", &[(100, 1u64), (200, 2)][..])]);
        w.push_series_block(&[("h2", "m", &[(5000, 3u64), (9000, 4)][..])]);
        w.seal(&path).unwrap();
        let r = SegmentReader::open(&path).unwrap();
        assert_eq!(r.entries.len(), 2);
        assert_eq!((r.entries[0].min_ts, r.entries[0].max_ts), (100, 200));
        assert_eq!((r.entries[1].min_ts, r.entries[1].max_ts), (5000, 9000));
        // The series index spans both blocks.
        let idx = r.series_index().unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0].chunks[0].block_ix, 0);
        assert_eq!(idx[1].chunks[0].block_ix, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
