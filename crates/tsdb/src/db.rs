//! The storage engine: WAL-fronted memtable over immutable segments.
//!
//! Write path: `append*` buffers samples in the memtable **and** frames
//! them into the WAL; [`Tsdb::sync`] makes them durable (the ack point);
//! [`Tsdb::flush`] seals the memtable into a new immutable segment and
//! resets the WAL. [`Tsdb::compact`] merges all sealed segments into
//! one.
//!
//! Read path: a query merges segments oldest-first, then the memtable on
//! top — later writes win per `(series, timestamp)`. That makes
//! compaction and crash-leftover segments (a compacted segment sealed
//! but its inputs not yet deleted) both idempotent: re-merging identical
//! samples changes nothing.
//!
//! Crash recovery = [`Tsdb::open`]: scan `seg-*.tsdb` (ignoring
//! `*.tmp` leftovers), open the WAL (which truncates any torn tail), and
//! replay surviving WAL records into the memtable.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::segment::{
    SegmentReader, SegmentWriter, TsdbError, KIND_SERIES,
};
use crate::wal::{Wal, WalRecord};

/// Identity of one series: a (host, metric) pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    pub host: String,
    pub metric: String,
}

impl SeriesKey {
    pub fn new(host: impl Into<String>, metric: impl Into<String>) -> SeriesKey {
        SeriesKey { host: host.into(), metric: metric.into() }
    }
}

/// Predicate over series: `None` matches everything.
#[derive(Debug, Clone, Default)]
pub struct Selector {
    pub host: Option<String>,
    pub metric: Option<String>,
}

impl Selector {
    pub fn all() -> Selector {
        Selector::default()
    }

    pub fn host(host: impl Into<String>) -> Selector {
        Selector { host: Some(host.into()), metric: None }
    }

    pub fn metric(metric: impl Into<String>) -> Selector {
        Selector { host: None, metric: Some(metric.into()) }
    }

    pub fn matches(&self, key: &SeriesKey) -> bool {
        self.host.as_deref().map_or(true, |h| h == key.host)
            && self.metric.as_deref().map_or(true, |m| m == key.metric)
    }
}

/// Downsampling aggregate for [`Tsdb::downsample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    Mean,
    Sum,
    Min,
    Max,
    /// Last sample in the bin (by timestamp).
    Last,
    /// Number of samples in the bin.
    Count,
}

impl Agg {
    fn fold(self, samples: &[(u64, f64)]) -> f64 {
        match self {
            Agg::Mean => samples.iter().map(|&(_, v)| v).sum::<f64>() / samples.len() as f64,
            Agg::Sum => samples.iter().map(|&(_, v)| v).sum(),
            Agg::Min => samples.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min),
            Agg::Max => samples.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max),
            Agg::Last => samples.last().map(|&(_, v)| v).unwrap_or(f64::NAN),
            Agg::Count => samples.len() as f64,
        }
    }
}

/// Tuning knobs; the defaults suit the warehouse's ten-minute samples.
#[derive(Debug, Clone)]
pub struct DbOptions {
    /// Max samples per compressed chunk at flush time.
    pub chunk_samples: usize,
    /// Max chunks per segment block (one CRC + index entry per block).
    pub block_chunks: usize,
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions { chunk_samples: 2048, block_chunks: 64 }
    }
}

/// Point-in-time store statistics (what `repro` reports in the bench).
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    pub segments: usize,
    pub segment_bytes: u64,
    pub wal_bytes: u64,
    pub mem_series: usize,
    pub mem_samples: u64,
    /// Samples recovered from the WAL at open.
    pub recovered_samples: u64,
    /// Torn-tail bytes discarded at open.
    pub recovered_truncated_bytes: u64,
}

/// The embedded time-series store. One instance owns one directory.
pub struct Tsdb {
    dir: PathBuf,
    wal: Wal,
    mem: BTreeMap<SeriesKey, BTreeMap<u64, u64>>,
    mem_samples: u64,
    segments: Vec<(u64, SegmentReader)>, // (seq, reader), ascending seq
    next_seq: u64,
    opts: DbOptions,
    recovered_samples: u64,
    recovered_truncated_bytes: u64,
}

fn seg_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let num = name.strip_prefix("seg-")?.strip_suffix(".tsdb")?;
    num.parse().ok()
}

impl Tsdb {
    pub fn open(dir: &Path) -> Result<Tsdb, TsdbError> {
        Tsdb::open_with(dir, DbOptions::default())
    }

    pub fn open_with(dir: &Path, opts: DbOptions) -> Result<Tsdb, TsdbError> {
        fs::create_dir_all(dir)?;
        let mut segments = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(seq) = seg_seq(&path) else { continue };
            let reader = SegmentReader::open(&path)?;
            if reader.kind != KIND_SERIES {
                return Err(TsdbError::Corrupt(format!(
                    "{}: wrong segment kind {} in series store",
                    path.display(),
                    reader.kind
                )));
            }
            segments.push((seq, reader));
        }
        segments.sort_by_key(|&(seq, _)| seq);
        let next_seq = segments.last().map(|&(seq, _)| seq + 1).unwrap_or(1);

        let recovery = Wal::open(&dir.join("wal.log")).map_err(TsdbError::Io)?;
        let mut mem: BTreeMap<SeriesKey, BTreeMap<u64, u64>> = BTreeMap::new();
        let mut mem_samples = 0u64;
        let mut recovered_samples = 0u64;
        for rec in &recovery.records {
            let series = mem.entry(SeriesKey::new(&*rec.host, &*rec.metric)).or_default();
            for &(ts, bits) in &rec.samples {
                if series.insert(ts, bits).is_none() {
                    mem_samples += 1;
                }
                recovered_samples += 1;
            }
        }

        Ok(Tsdb {
            dir: dir.to_path_buf(),
            wal: recovery.wal,
            mem,
            mem_samples,
            segments,
            next_seq,
            opts,
            recovered_samples,
            recovered_truncated_bytes: recovery.truncated_bytes,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one sample. Buffered: call [`Tsdb::sync`] to make durable.
    pub fn append(&mut self, host: &str, metric: &str, ts: u64, value: f64) -> io::Result<()> {
        self.append_batch(host, metric, &[(ts, value)])
    }

    /// Append a batch for one series (one WAL record — cheaper than
    /// per-sample appends).
    pub fn append_batch(
        &mut self,
        host: &str,
        metric: &str,
        samples: &[(u64, f64)],
    ) -> io::Result<()> {
        if samples.is_empty() {
            return Ok(());
        }
        let bits: Vec<(u64, u64)> =
            samples.iter().map(|&(ts, v)| (ts, v.to_bits())).collect();
        self.wal.append(&WalRecord {
            host: host.to_string(),
            metric: metric.to_string(),
            samples: bits.clone(),
        })?;
        let series = self.mem.entry(SeriesKey::new(host, metric)).or_default();
        for (ts, b) in bits {
            if series.insert(ts, b).is_none() {
                self.mem_samples += 1;
            }
        }
        Ok(())
    }

    /// Durability ack: when this returns, every appended sample survives
    /// any crash.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Seal the memtable into a new immutable segment and reset the WAL.
    /// No-op on an empty memtable. Implies [`Tsdb::sync`] semantics — on
    /// return, all data is durable in segment form.
    pub fn flush(&mut self) -> Result<(), TsdbError> {
        if self.mem.is_empty() {
            // Still reset a non-empty WAL (e.g. deletes-only future use).
            if !self.wal.is_empty() {
                self.wal.reset()?;
            }
            return Ok(());
        }
        let mut writer = SegmentWriter::new(KIND_SERIES);
        let mut block: Vec<(String, String, Vec<(u64, u64)>)> = Vec::new();
        for (key, series) in &self.mem {
            let samples: Vec<(u64, u64)> = series.iter().map(|(&ts, &b)| (ts, b)).collect();
            for chunk in samples.chunks(self.opts.chunk_samples.max(1)) {
                block.push((key.host.clone(), key.metric.clone(), chunk.to_vec()));
                if block.len() >= self.opts.block_chunks.max(1) {
                    writer.push_series_block(&block);
                    block.clear();
                }
            }
        }
        if !block.is_empty() {
            writer.push_series_block(&block);
        }
        let seq = self.next_seq;
        let path = self.dir.join(format!("seg-{seq:06}.tsdb"));
        writer.seal(&path)?;
        let reader = SegmentReader::open(&path)?;
        self.segments.push((seq, reader));
        self.next_seq = seq + 1;
        // Segment is durable; only now is it safe to drop the WAL.
        self.wal.reset()?;
        self.mem.clear();
        self.mem_samples = 0;
        Ok(())
    }

    /// Merge all sealed segments into one. Queries are equivalent before
    /// and after. Crash-safe: the merged segment (higher seq) is sealed
    /// before the inputs are deleted, and last-wins merging makes any
    /// leftover inputs harmless.
    pub fn compact(&mut self) -> Result<(), TsdbError> {
        if self.segments.len() <= 1 {
            return Ok(());
        }
        let mut merged: BTreeMap<SeriesKey, BTreeMap<u64, u64>> = BTreeMap::new();
        for (_, reader) in &self.segments {
            for entry in &reader.entries {
                let payload = reader.read_block(entry)?;
                for chunk in reader.decode_series_block(&payload)? {
                    let series =
                        merged.entry(SeriesKey::new(chunk.host, chunk.metric)).or_default();
                    for (ts, bits) in chunk.samples {
                        series.insert(ts, bits);
                    }
                }
            }
        }
        let mut writer = SegmentWriter::new(KIND_SERIES);
        let mut block: Vec<(String, String, Vec<(u64, u64)>)> = Vec::new();
        for (key, series) in &merged {
            let samples: Vec<(u64, u64)> = series.iter().map(|(&ts, &b)| (ts, b)).collect();
            for chunk in samples.chunks(self.opts.chunk_samples.max(1)) {
                block.push((key.host.clone(), key.metric.clone(), chunk.to_vec()));
                if block.len() >= self.opts.block_chunks.max(1) {
                    writer.push_series_block(&block);
                    block.clear();
                }
            }
        }
        if !block.is_empty() {
            writer.push_series_block(&block);
        }
        let seq = self.next_seq;
        let path = self.dir.join(format!("seg-{seq:06}.tsdb"));
        writer.seal(&path)?;
        let reader = SegmentReader::open(&path)?;
        let old: Vec<PathBuf> =
            self.segments.iter().map(|(_, r)| r.path().to_path_buf()).collect();
        self.segments = vec![(seq, reader)];
        self.next_seq = seq + 1;
        for p in old {
            fs::remove_file(&p)?;
        }
        Ok(())
    }

    /// All series keys present (segments + memtable), sorted.
    pub fn series_keys(&self) -> Result<Vec<SeriesKey>, TsdbError> {
        let mut keys: std::collections::BTreeSet<SeriesKey> =
            self.mem.keys().cloned().collect();
        for (_, reader) in &self.segments {
            for entry in &reader.entries {
                let payload = reader.read_block(entry)?;
                for chunk in reader.decode_series_block(&payload)? {
                    keys.insert(SeriesKey::new(chunk.host, chunk.metric));
                }
            }
        }
        Ok(keys.into_iter().collect())
    }

    /// Range scan: all series matching `sel`, samples with
    /// `t0 <= ts <= t1`, merged last-write-wins, sorted by key then ts.
    pub fn query(
        &self,
        sel: &Selector,
        t0: u64,
        t1: u64,
    ) -> Result<Vec<(SeriesKey, Vec<(u64, f64)>)>, TsdbError> {
        let mut acc: BTreeMap<SeriesKey, BTreeMap<u64, u64>> = BTreeMap::new();
        for (_, reader) in &self.segments {
            for entry in &reader.entries {
                // Sparse time index: skip blocks outside the range.
                if entry.max_ts < t0 || entry.min_ts > t1 {
                    continue;
                }
                let payload = reader.read_block(entry)?;
                for chunk in reader.decode_series_block(&payload)? {
                    let key = SeriesKey::new(chunk.host, chunk.metric);
                    if !sel.matches(&key) {
                        continue;
                    }
                    let series = acc.entry(key).or_default();
                    for (ts, bits) in chunk.samples {
                        if ts >= t0 && ts <= t1 {
                            series.insert(ts, bits);
                        }
                    }
                }
            }
        }
        for (key, series) in &self.mem {
            if !sel.matches(key) {
                continue;
            }
            let out = acc.entry(key.clone()).or_default();
            for (&ts, &bits) in series.range(t0..=t1) {
                out.insert(ts, bits);
            }
        }
        Ok(acc
            .into_iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(key, series)| {
                let samples =
                    series.into_iter().map(|(ts, bits)| (ts, f64::from_bits(bits))).collect();
                (key, samples)
            })
            .collect())
    }

    /// Single-series range scan.
    pub fn query_series(
        &self,
        host: &str,
        metric: &str,
        t0: u64,
        t1: u64,
    ) -> Result<Vec<(u64, f64)>, TsdbError> {
        let sel = Selector { host: Some(host.to_string()), metric: Some(metric.to_string()) };
        Ok(self.query(&sel, t0, t1)?.into_iter().next().map(|(_, s)| s).unwrap_or_default())
    }

    /// Downsample matching series into `bin_secs` bins aligned at
    /// multiples of `bin_secs`; returns `(bin_start_ts, agg)` per
    /// non-empty bin.
    pub fn downsample(
        &self,
        sel: &Selector,
        t0: u64,
        t1: u64,
        bin_secs: u64,
        agg: Agg,
    ) -> Result<Vec<(SeriesKey, Vec<(u64, f64)>)>, TsdbError> {
        let bin_secs = bin_secs.max(1);
        let series = self.query(sel, t0, t1)?;
        Ok(series
            .into_iter()
            .map(|(key, samples)| {
                let mut bins: BTreeMap<u64, Vec<(u64, f64)>> = BTreeMap::new();
                for (ts, v) in samples {
                    bins.entry(ts / bin_secs * bin_secs).or_default().push((ts, v));
                }
                let binned =
                    bins.into_iter().map(|(start, s)| (start, agg.fold(&s))).collect();
                (key, binned)
            })
            .collect())
    }

    /// Total bytes of sealed segments on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.segments.iter().map(|(_, r)| r.file_len()).sum()
    }

    pub fn stats(&self) -> DbStats {
        DbStats {
            segments: self.segments.len(),
            segment_bytes: self.disk_bytes(),
            wal_bytes: self.wal.len(),
            mem_series: self.mem.len(),
            mem_samples: self.mem_samples,
            recovered_samples: self.recovered_samples,
            recovered_truncated_bytes: self.recovered_truncated_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdb-db-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fill(db: &mut Tsdb) {
        for host in ["c301-101", "c301-102"] {
            for (metric, base) in [("cpu_user", 0.25), ("mem_used", 1.0e9)] {
                let samples: Vec<(u64, f64)> =
                    (0..200).map(|i| (i * 600, base + i as f64)).collect();
                db.append_batch(host, metric, &samples).unwrap();
            }
        }
        db.sync().unwrap();
    }

    #[test]
    fn append_query_from_memtable() {
        let dir = tmpdir("mem");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        let out = db.query_series("c301-101", "cpu_user", 600, 1800).unwrap();
        assert_eq!(out, vec![(600, 1.25), (1200, 2.25), (1800, 3.25)]);
        assert_eq!(db.stats().mem_series, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_then_query_identical() {
        let dir = tmpdir("flush");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        let before = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        db.flush().unwrap();
        assert_eq!(db.stats().mem_samples, 0);
        assert_eq!(db.stats().segments, 1);
        assert!(db.wal.is_empty());
        let after = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        assert_eq!(before, after);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_after_flush_sees_segments() {
        let dir = tmpdir("reopen");
        let expect;
        {
            let mut db = Tsdb::open(&dir).unwrap();
            fill(&mut db);
            db.flush().unwrap();
            expect = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        }
        let db = Tsdb::open(&dir).unwrap();
        assert_eq!(db.query(&Selector::all(), 0, u64::MAX).unwrap(), expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_without_flush_recovers_from_wal() {
        let dir = tmpdir("crash");
        let expect;
        {
            let mut db = Tsdb::open(&dir).unwrap();
            fill(&mut db);
            expect = db.query(&Selector::all(), 0, u64::MAX).unwrap();
            // drop without flush = crash after sync
        }
        let db = Tsdb::open(&dir).unwrap();
        assert!(db.stats().recovered_samples > 0);
        assert_eq!(db.query(&Selector::all(), 0, u64::MAX).unwrap(), expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_query_results() {
        let dir = tmpdir("compact");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        db.flush().unwrap();
        // Second generation: overwrite some points, add new ones.
        db.append_batch("c301-101", "cpu_user", &[(600, 99.0), (200_000, 7.0)]).unwrap();
        db.sync().unwrap();
        db.flush().unwrap();
        assert_eq!(db.stats().segments, 2);
        let before = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        db.compact().unwrap();
        assert_eq!(db.stats().segments, 1);
        let after = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        assert_eq!(before, after);
        // Overwrite won: ts=600 is 99.0.
        let s = db.query_series("c301-101", "cpu_user", 600, 600).unwrap();
        assert_eq!(s, vec![(600, 99.0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn selectors_filter_host_and_metric() {
        let dir = tmpdir("sel");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        let by_host = db.query(&Selector::host("c301-101"), 0, u64::MAX).unwrap();
        assert_eq!(by_host.len(), 2);
        assert!(by_host.iter().all(|(k, _)| k.host == "c301-101"));
        let by_metric = db.query(&Selector::metric("mem_used"), 0, u64::MAX).unwrap();
        assert_eq!(by_metric.len(), 2);
        assert!(by_metric.iter().all(|(k, _)| k.metric == "mem_used"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn downsampling_bins_align_and_aggregate() {
        let dir = tmpdir("down");
        let mut db = Tsdb::open(&dir).unwrap();
        db.append_batch("h", "m", &[(0, 1.0), (600, 2.0), (3600, 10.0), (4200, 20.0)])
            .unwrap();
        db.sync().unwrap();
        let sel = Selector { host: Some("h".into()), metric: Some("m".into()) };
        let out = db.downsample(&sel, 0, u64::MAX, 3600, Agg::Mean).unwrap();
        assert_eq!(out[0].1, vec![(0, 1.5), (3600, 15.0)]);
        let out = db.downsample(&sel, 0, u64::MAX, 3600, Agg::Max).unwrap();
        assert_eq!(out[0].1, vec![(0, 2.0), (3600, 20.0)]);
        let out = db.downsample(&sel, 0, u64::MAX, 3600, Agg::Count).unwrap();
        assert_eq!(out[0].1, vec![(0, 2.0), (3600, 2.0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn time_range_queries_use_sparse_index() {
        let dir = tmpdir("range");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        db.flush().unwrap();
        let out = db.query_series("c301-102", "mem_used", 6000, 6600).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 6000);
        let empty = db.query_series("c301-102", "mem_used", 10_000_000, 20_000_000).unwrap();
        assert!(empty.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn special_floats_round_trip_through_disk() {
        let dir = tmpdir("specials");
        let nan_bits = 0x7FF8_0000_0000_0001u64;
        {
            let mut db = Tsdb::open(&dir).unwrap();
            db.append_batch(
                "h",
                "m",
                &[
                    (0, f64::from_bits(nan_bits)),
                    (600, f64::NEG_INFINITY),
                    (1200, -0.0),
                ],
            )
            .unwrap();
            db.sync().unwrap();
            db.flush().unwrap();
        }
        let db = Tsdb::open(&dir).unwrap();
        let out = db.query_series("h", "m", 0, u64::MAX).unwrap();
        assert_eq!(out[0].1.to_bits(), nan_bits);
        assert_eq!(out[1].1, f64::NEG_INFINITY);
        assert_eq!(out[2].1.to_bits(), (-0.0f64).to_bits());
        let _ = fs::remove_dir_all(&dir);
    }
}
