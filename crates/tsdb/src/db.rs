//! The storage engine: WAL-fronted memtable over immutable segments.
//!
//! Write path: `append*` buffers samples in the memtable **and** frames
//! them into the WAL; [`Tsdb::sync`] makes them durable (the ack point);
//! [`Tsdb::flush`] seals the memtable into a new immutable segment and
//! resets the WAL. [`Tsdb::compact`] merges all sealed segments into
//! one.
//!
//! Read path: every sealed segment contributes one sorted run per
//! matching series (v2 segments locate those runs through their
//! per-series chunk index and decode *only* the matching chunks; v1
//! segments fall back to decoding whole blocks), the memtable
//! contributes the highest-priority run, and a k-way last-write-wins
//! merge combines them — later runs win per `(series, timestamp)`.
//! That makes compaction and crash-leftover segments (a compacted
//! segment sealed but its inputs not yet deleted) both idempotent:
//! re-merging identical samples changes nothing.
//!
//! [`Tsdb::downsample`] goes one step further: when a bin fully covers
//! a chunk, it folds the chunk's pre-computed statistics
//! ([`crate::stats::ChunkStats`]) straight into the bin and never
//! decompresses the chunk. The result is bit-identical to the naive
//! decode-everything path ([`Tsdb::downsample_naive`]) — both paths run
//! the same [`BinAcc`] arithmetic, and the fold is only taken where the
//! sequential-sum prefix rule allows it.
//!
//! The slow reference implementations ([`Tsdb::query_naive`],
//! [`Tsdb::downsample_naive`]) are kept public as differential-test
//! oracles and benchmark baselines.
//!
//! Crash recovery = [`Tsdb::open`]: scan `seg-*.tsdb` (ignoring
//! `*.tmp` leftovers), open the WAL (which truncates any torn tail), and
//! replay surviving WAL records into the memtable.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use supremm_obs::{Counter, Gauge, Histogram, ObsHandle, Timer};

use crate::retention::{
    decode_rollup_block, encode_rollup_block, roll_file_name, roll_id, FaultHook,
    RetentionManifest, RetentionPolicy, RetentionReport, RollupRows,
};
use crate::segment::{
    ChunkRef, SegmentReader, SegmentWriter, SeriesEntry, TsdbError, KIND_ROLLUP, KIND_SERIES,
};
use crate::stats::{BinAcc, ChunkStats};
use crate::wal::Wal;

/// Identity of one series: a (host, metric) pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    pub host: String,
    pub metric: String,
}

impl SeriesKey {
    pub fn new(host: impl Into<String>, metric: impl Into<String>) -> SeriesKey {
        SeriesKey { host: host.into(), metric: metric.into() }
    }
}

/// Predicate over series: `None` matches everything.
#[derive(Debug, Clone, Default)]
pub struct Selector {
    pub host: Option<String>,
    pub metric: Option<String>,
}

impl Selector {
    pub fn all() -> Selector {
        Selector::default()
    }

    pub fn host(host: impl Into<String>) -> Selector {
        Selector { host: Some(host.into()), metric: None }
    }

    pub fn metric(metric: impl Into<String>) -> Selector {
        Selector { host: None, metric: Some(metric.into()) }
    }

    pub fn matches(&self, key: &SeriesKey) -> bool {
        self.host.as_deref().map_or(true, |h| h == key.host)
            && self.metric.as_deref().map_or(true, |m| m == key.metric)
    }
}

/// Downsampling aggregate for [`Tsdb::downsample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    Mean,
    Sum,
    Min,
    Max,
    /// Last sample in the bin (by timestamp).
    Last,
    /// Number of samples in the bin.
    Count,
}

impl Agg {
    /// Sum/Mean read the sequential f64 sum, which only decomposes at
    /// prefix boundaries — chunk folds for them require an empty bin.
    fn needs_sequential_sum(self) -> bool {
        matches!(self, Agg::Sum | Agg::Mean)
    }

    /// Extract this aggregate's value from a finished bin. Both the
    /// naive and the pre-aggregated path end here, which is what makes
    /// them bit-identical.
    fn finish(self, acc: &BinAcc) -> f64 {
        match self {
            Agg::Mean => acc.sum / acc.count as f64,
            Agg::Sum => acc.sum,
            Agg::Min => acc.min,
            Agg::Max => acc.max,
            Agg::Last => acc.last,
            Agg::Count => acc.count as f64,
        }
    }
}

/// Tuning knobs; the defaults suit the warehouse's ten-minute samples.
#[derive(Debug, Clone)]
pub struct DbOptions {
    /// Max samples per compressed chunk at flush time.
    pub chunk_samples: usize,
    /// Max chunks per segment block (one CRC + index entry per block).
    pub block_chunks: usize,
    /// Retention & rollup tiers (see [`crate::retention`]); the default
    /// keeps every raw sample forever, exactly the pre-retention
    /// behavior.
    pub retention: RetentionPolicy,
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions {
            chunk_samples: 2048,
            block_chunks: 64,
            retention: RetentionPolicy::default(),
        }
    }
}

/// Point-in-time store statistics (what `repro` reports in the bench).
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    pub segments: usize,
    /// Segments carrying a v2 per-series chunk index (the rest are
    /// read-shim v1 files that force the block-decode fallback).
    pub indexed_segments: usize,
    pub segment_bytes: u64,
    pub wal_bytes: u64,
    pub mem_series: usize,
    pub mem_samples: u64,
    /// Samples recovered from the WAL at open.
    pub recovered_samples: u64,
    /// Torn-tail bytes discarded at open.
    pub recovered_truncated_bytes: u64,
    /// Rollup-tier segments on disk, all levels combined.
    pub rollup_segments: usize,
    /// Raw samples below this data timestamp are logically dropped
    /// (the retention watermark; 0 when retention never ran).
    pub raw_watermark: u64,
}

/// The embedded time-series store. One instance owns one directory.
pub struct Tsdb {
    dir: PathBuf,
    wal: Wal,
    mem: BTreeMap<SeriesKey, BTreeMap<u64, u64>>,
    mem_samples: u64,
    segments: Vec<(u64, SegmentReader)>, // (seq, reader), ascending seq
    next_seq: u64,
    /// Rollup tiers: bin_secs → (seq, reader), ascending seq. Later
    /// seqs win per (series, bin), so crash-duplicated rollups are
    /// harmless — mirroring the raw segments' last-write-wins rule.
    rollups: BTreeMap<u64, Vec<(u64, SegmentReader)>>,
    next_roll_seq: BTreeMap<u64, u64>,
    /// Durable retention watermarks (see [`crate::retention`]).
    manifest: RetentionManifest,
    /// Crash-injection hook for `enforce_retention` (tests only).
    fault_hook: Option<FaultHook>,
    opts: DbOptions,
    /// Bumped on every mutation; serve-layer caches key on this.
    generation: u64,
    recovered_samples: u64,
    recovered_truncated_bytes: u64,
    met: TsdbMetrics,
}

/// Obs handles cached at open so the write/query hot paths never touch
/// the registry lock (see DESIGN.md § "Self-observability").
struct TsdbMetrics {
    obs: ObsHandle,
    wal_append_micros: Histogram,
    wal_fsync_micros: Histogram,
    mem_samples: Gauge,
    segments: Gauge,
    chunks: Gauge,
    flush_micros: Histogram,
    flush_bytes_total: Counter,
    compact_micros: Histogram,
    compact_bytes_total: Counter,
    query_index_segments_total: Counter,
    query_v1_fallback_total: Counter,
    v1_segments_open_total: Counter,
    retention_pass_micros: Histogram,
    rollup_segments_written_total: Counter,
    rollup_bins_written_total: Counter,
    retention_raw_dropped_total: Counter,
    retention_rollup_dropped_total: Counter,
    raw_watermark: Gauge,
    rollup_segments: Gauge,
    tier_hit_raw: Counter,
    /// One hit counter per rollup level, keyed by bin_secs — built at
    /// open from the policy plus the levels found on disk.
    tier_hit_rollup: BTreeMap<u64, Counter>,
}

impl TsdbMetrics {
    fn new(obs: ObsHandle, tier_bins: &[u64]) -> TsdbMetrics {
        TsdbMetrics {
            // suplint: allow(R7) -- one registry-handle clone per Tsdb open, not per query
            obs: obs.clone(),
            wal_append_micros: obs.histogram("tsdb_wal_append_micros"),
            wal_fsync_micros: obs.histogram("tsdb_wal_fsync_micros"),
            mem_samples: obs.gauge("tsdb_memtable_samples"),
            segments: obs.gauge("tsdb_segments"),
            chunks: obs.gauge("tsdb_indexed_chunks"),
            flush_micros: obs.histogram("tsdb_flush_micros"),
            flush_bytes_total: obs.counter("tsdb_flush_bytes_total"),
            compact_micros: obs.histogram("tsdb_compact_micros"),
            compact_bytes_total: obs.counter("tsdb_compact_bytes_total"),
            query_index_segments_total: obs.counter("tsdb_query_index_segments_total"),
            query_v1_fallback_total: obs.counter("tsdb_query_v1_fallback_total"),
            v1_segments_open_total: obs.counter("tsdb_deprecated_v1_segment_open_total"),
            retention_pass_micros: obs.histogram("tsdb_retention_pass_micros"),
            rollup_segments_written_total: obs.counter("tsdb_retention_rollup_segments_total"),
            rollup_bins_written_total: obs.counter("tsdb_retention_rollup_bins_total"),
            retention_raw_dropped_total: obs.counter("tsdb_retention_dropped_raw_segments_total"),
            retention_rollup_dropped_total: obs
                .counter("tsdb_retention_dropped_rollup_segments_total"),
            raw_watermark: obs.gauge("tsdb_retention_raw_watermark"),
            rollup_segments: obs.gauge("tsdb_rollup_segments"),
            tier_hit_raw: obs.counter("tsdb_query_tier_hits_total{tier=\"raw\"}"),
            tier_hit_rollup: tier_bins
                .iter()
                .map(|&b| {
                    // suplint: allow(R7, R8) -- tier labels are data-driven (one per configured rollup level); registered once at open, never per query
                    (b, obs.counter(&format!("tsdb_query_tier_hits_total{{tier=\"rollup_{b}\"}}")))
                })
                .collect(),
        }
    }
}

fn as_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

fn seg_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let num = name.strip_prefix("seg-")?.strip_suffix(".tsdb")?;
    num.parse().ok()
}

/// Ensure a decoded run is strictly ascending in time; if not (foreign
/// or hand-built segments), stable-sort and keep the **last** occurrence
/// per timestamp — the same answer inserting the run into a map in
/// order would give.
fn normalize_run(run: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let sorted = run.windows(2).all(|w| match w {
        [a, b] => a.0 < b.0,
        _ => true,
    });
    if sorted {
        return run;
    }
    let mut keyed: Vec<(usize, (u64, u64))> = run.into_iter().enumerate().collect();
    keyed.sort_by(|a, b| (a.1 .0, a.0).cmp(&(b.1 .0, b.0)));
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(keyed.len());
    for (_, (ts, bits)) in keyed {
        match out.last_mut() {
            Some(last) if last.0 == ts => last.1 = bits,
            _ => out.push((ts, bits)),
        }
    }
    out
}

/// k-way last-write-wins merge of strictly-ascending runs. On equal
/// timestamps the run with the **highest index** wins — callers order
/// runs oldest-segment-first with the memtable last.
fn merge_runs(mut runs: Vec<Vec<(u64, u64)>>) -> Vec<(u64, u64)> {
    runs.retain(|r| !r.is_empty());
    if runs.len() <= 1 {
        return runs.pop().unwrap_or_default();
    }
    let mut pos = vec![0usize; runs.len()];
    let total = runs.iter().map(|r| r.len()).sum();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(total);
    loop {
        let mut best_ts = u64::MAX;
        let mut exhausted = true;
        for (i, run) in runs.iter().enumerate() {
            if let Some(&(ts, _)) = run.get(pos[i]) {
                exhausted = false;
                if ts < best_ts {
                    best_ts = ts;
                }
            }
        }
        if exhausted {
            break;
        }
        let mut bits = 0u64;
        for (i, run) in runs.iter().enumerate() {
            if let Some(&(ts, b)) = run.get(pos[i]) {
                if ts == best_ts {
                    bits = b; // later runs overwrite: highest index wins
                    pos[i] += 1;
                }
            }
        }
        out.push((best_ts, bits));
    }
    out
}

/// Series entries matching `sel`, using the index's `(host, metric)`
/// sort order to binary-search the host range when one is given.
fn matching_entries<'a>(idx: &'a [SeriesEntry], sel: &Selector) -> Vec<&'a SeriesEntry> {
    let slice = match sel.host.as_deref() {
        Some(h) => {
            let lo = idx.partition_point(|e| e.host.as_str() < h);
            let hi = lo + idx[lo..].partition_point(|e| e.host.as_str() <= h);
            idx.get(lo..hi).unwrap_or(&[])
        }
        None => idx,
    };
    slice
        .iter()
        .filter(|e| sel.metric.as_deref().map_or(true, |m| m == e.metric))
        .collect()
}

/// Bin one merged sample stream; shared by every downsampling path.
fn bin_samples(samples: &[(u64, f64)], bin_secs: u64, agg: Agg) -> Vec<(u64, f64)> {
    let mut bins: BTreeMap<u64, BinAcc> = BTreeMap::new();
    for &(ts, v) in samples {
        bins.entry(ts / bin_secs * bin_secs).or_default().add(v);
    }
    bins.into_iter().map(|(start, acc)| (start, agg.finish(&acc))).collect()
}

fn bin_series(
    series: Vec<(SeriesKey, Vec<(u64, f64)>)>,
    bin_secs: u64,
    agg: Agg,
) -> Vec<(SeriesKey, Vec<(u64, f64)>)> {
    series
        .into_iter()
        .map(|(key, samples)| {
            let binned = bin_samples(&samples, bin_secs, agg);
            (key, binned)
        })
        .collect()
}

/// Seal one key→samples map into `seg-{seq:06}.tsdb`. Chunks are
/// borrowed straight out of the materialized per-series vectors — no
/// per-chunk copy is made on the way into the encoder.
fn write_segment(
    dir: &Path,
    seq: u64,
    data: &BTreeMap<SeriesKey, BTreeMap<u64, u64>>,
    opts: &DbOptions,
) -> Result<SegmentReader, TsdbError> {
    let mut writer = SegmentWriter::new(KIND_SERIES);
    let flat: Vec<(&SeriesKey, Vec<(u64, u64)>)> = data
        .iter()
        .map(|(key, series)| (key, series.iter().map(|(&ts, &b)| (ts, b)).collect()))
        .collect();
    let mut block: Vec<(&str, &str, &[(u64, u64)])> = Vec::new();
    for (key, samples) in &flat {
        for chunk in samples.chunks(opts.chunk_samples.max(1)) {
            block.push((key.host.as_str(), key.metric.as_str(), chunk));
            if block.len() >= opts.block_chunks.max(1) {
                writer.push_series_block(&block);
                block.clear();
            }
        }
    }
    if !block.is_empty() {
        writer.push_series_block(&block);
    }
    // suplint: allow(R7) -- filename built once per segment seal
    let path = dir.join(format!("seg-{seq:06}.tsdb"));
    writer.seal(&path)?;
    SegmentReader::open(&path)
}

impl Tsdb {
    pub fn open(dir: &Path) -> Result<Tsdb, TsdbError> {
        Tsdb::open_with(dir, DbOptions::default())
    }

    pub fn open_with(dir: &Path, opts: DbOptions) -> Result<Tsdb, TsdbError> {
        Tsdb::open_with_obs(dir, opts, supremm_obs::global())
    }

    /// Open reporting into an explicit registry instead of the
    /// process-wide [`supremm_obs::global`] one (test isolation, or one
    /// registry per serve instance).
    pub fn open_with_obs(dir: &Path, opts: DbOptions, obs: ObsHandle) -> Result<Tsdb, TsdbError> {
        opts.retention.validate().map_err(TsdbError::Policy)?;
        fs::create_dir_all(dir)?;
        let manifest = RetentionManifest::load(dir)?.unwrap_or_default();
        let mut segments = Vec::new();
        let mut rollups: BTreeMap<u64, Vec<(u64, SegmentReader)>> = BTreeMap::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if let Some(seq) = seg_seq(&path) {
                let reader = SegmentReader::open(&path)?;
                if reader.kind != KIND_SERIES {
                    return Err(TsdbError::Corrupt(format!(
                        "{}: wrong segment kind {} in series store",
                        path.display(),
                        reader.kind
                    )));
                }
                // Wholly below the raw watermark: the manifest committed
                // this drop but a crash landed before the delete —
                // finish it now, so reopen is unambiguous.
                if reader
                    .time_range()
                    .is_some_and(|(_, max)| max < manifest.raw_dropped_before)
                {
                    fs::remove_file(&path)?;
                    continue;
                }
                segments.push((seq, reader));
            } else if let Some((bin, seq)) = roll_id(&path) {
                let reader = SegmentReader::open(&path)?;
                if reader.kind != KIND_ROLLUP {
                    return Err(TsdbError::Corrupt(format!(
                        "{}: wrong segment kind {} for a rollup file",
                        path.display(),
                        reader.kind
                    )));
                }
                // Same crashed-drop completion, per level.
                if reader
                    .time_range()
                    .is_some_and(|(_, max)| max < manifest.level(bin).dropped_before)
                {
                    fs::remove_file(&path)?;
                    continue;
                }
                rollups.entry(bin).or_default().push((seq, reader));
            }
        }
        segments.sort_by_key(|&(seq, _)| seq);
        let next_seq = segments.last().map(|&(seq, _)| seq + 1).unwrap_or(1);
        let mut next_roll_seq: BTreeMap<u64, u64> = BTreeMap::new();
        for (&bin, readers) in rollups.iter_mut() {
            readers.sort_by_key(|&(seq, _)| seq);
            next_roll_seq.insert(bin, readers.last().map(|&(s, _)| s + 1).unwrap_or(1));
        }

        let recovery = Wal::open(&dir.join("wal.log")).map_err(TsdbError::Io)?;
        let mut mem: BTreeMap<SeriesKey, BTreeMap<u64, u64>> = BTreeMap::new();
        let mut mem_samples = 0u64;
        let mut recovered_samples = 0u64;
        for rec in &recovery.records {
            let series = mem.entry(SeriesKey::new(&*rec.host, &*rec.metric)).or_default();
            for &(ts, bits) in &rec.samples {
                if series.insert(ts, bits).is_none() {
                    mem_samples += 1;
                }
                recovered_samples += 1;
            }
        }

        let tier_bins: Vec<u64> = {
            let mut bins: BTreeSet<u64> =
                opts.retention.levels.iter().map(|l| l.bin_secs).collect();
            bins.extend(rollups.keys().copied());
            bins.into_iter().collect()
        };
        let met = TsdbMetrics::new(obs, &tier_bins);
        for (_, reader) in &segments {
            if reader.version() < 2 {
                met.v1_segments_open_total.inc();
                met.obs.event(
                    "deprecation",
                    // suplint: allow(R7) -- cold open-time path, once per legacy segment
                    format!(
                        "v1 segment read shim used for {} — reseal via compact before the shim is removed",
                        reader.path().display()
                    ),
                );
            }
        }
        let db = Tsdb {
            dir: dir.to_path_buf(),
            wal: recovery.wal,
            mem,
            mem_samples,
            segments,
            next_seq,
            rollups,
            next_roll_seq,
            manifest,
            fault_hook: None,
            opts,
            generation: 0,
            recovered_samples,
            recovered_truncated_bytes: recovery.truncated_bytes,
            met,
        };
        db.met.raw_watermark.set(as_i64(db.manifest.raw_dropped_before));
        db.update_storage_gauges();
        Ok(db)
    }

    /// Refresh the segment / chunk / memtable gauges after a structural
    /// change (open, flush, compact).
    fn update_storage_gauges(&self) {
        self.met.segments.set(as_i64(self.segments.len() as u64));
        let chunks: usize = self
            .segments
            .iter()
            .map(|(_, r)| {
                r.series_index().map(|idx| idx.iter().map(|e| e.chunks.len()).sum()).unwrap_or(0)
            })
            .sum();
        self.met.chunks.set(as_i64(chunks as u64));
        self.met.mem_samples.set(as_i64(self.mem_samples));
        let rolls: usize = self.rollups.values().map(Vec::len).sum();
        self.met.rollup_segments.set(as_i64(rolls as u64));
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Monotone mutation counter: bumped by every append, flush, and
    /// compaction. A cached response computed at generation `g` is valid
    /// exactly while `generation() == g`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Append one sample. Buffered: call [`Tsdb::sync`] to make durable.
    pub fn append(&mut self, host: &str, metric: &str, ts: u64, value: f64) -> io::Result<()> {
        self.append_batch(host, metric, &[(ts, value)])
    }

    /// Append a batch for one series (one WAL record — cheaper than
    /// per-sample appends).
    pub fn append_batch(
        &mut self,
        host: &str,
        metric: &str,
        samples: &[(u64, f64)],
    ) -> io::Result<()> {
        if samples.is_empty() {
            return Ok(());
        }
        let bits: Vec<(u64, u64)> =
            samples.iter().map(|&(ts, v)| (ts, v.to_bits())).collect();
        let t = Timer::start();
        self.wal.append_parts(host, metric, &bits)?;
        self.met.wal_append_micros.observe_timer(t);
        let series = self.mem.entry(SeriesKey::new(host, metric)).or_default();
        for (ts, b) in bits {
            if series.insert(ts, b).is_none() {
                self.mem_samples += 1;
            }
        }
        self.met.mem_samples.set(as_i64(self.mem_samples));
        self.generation += 1;
        Ok(())
    }

    /// Durability ack: when this returns, every appended sample survives
    /// any crash.
    pub fn sync(&mut self) -> io::Result<()> {
        let t = Timer::start();
        self.wal.sync()?;
        self.met.wal_fsync_micros.observe_timer(t);
        Ok(())
    }

    /// Seal the memtable into a new immutable segment and reset the WAL.
    /// No-op on an empty memtable. Implies [`Tsdb::sync`] semantics — on
    /// return, all data is durable in segment form.
    pub fn flush(&mut self) -> Result<(), TsdbError> {
        if self.mem.is_empty() {
            // Still reset a non-empty WAL (e.g. deletes-only future use).
            if !self.wal.is_empty() {
                self.wal.reset()?;
            }
            return Ok(());
        }
        let t = Timer::start();
        let seq = self.next_seq;
        let reader = write_segment(&self.dir, seq, &self.mem, &self.opts)?;
        self.met.flush_bytes_total.add(reader.file_len());
        self.segments.push((seq, reader));
        self.next_seq = seq + 1;
        // Segment is durable; only now is it safe to drop the WAL.
        self.wal.reset()?;
        self.mem.clear();
        self.mem_samples = 0;
        self.generation += 1;
        self.met.flush_micros.observe_timer(t);
        self.update_storage_gauges();
        Ok(())
    }

    /// Merge all sealed segments into one. Queries are equivalent before
    /// and after. Crash-safe: the merged segment (higher seq) is sealed
    /// before the inputs are deleted, and last-wins merging makes any
    /// leftover inputs harmless.
    pub fn compact(&mut self) -> Result<(), TsdbError> {
        if self.segments.len() <= 1 {
            return Ok(());
        }
        let t = Timer::start();
        // Physical GC: compaction is where logically-dropped samples
        // (below the retention watermark) actually leave the disk.
        let watermark = self.manifest.raw_dropped_before;
        let mut merged: BTreeMap<SeriesKey, BTreeMap<u64, u64>> = BTreeMap::new();
        for (_, reader) in &self.segments {
            for entry in &reader.entries {
                let payload = reader.read_block(entry)?;
                for chunk in reader.decode_series_block(&payload)? {
                    let series =
                        merged.entry(SeriesKey::new(chunk.host, chunk.metric)).or_default();
                    for (ts, bits) in chunk.samples {
                        if ts >= watermark {
                            series.insert(ts, bits);
                        }
                    }
                }
            }
        }
        merged.retain(|_, series| !series.is_empty());
        if merged.is_empty() {
            let old: Vec<PathBuf> =
                self.segments.iter().map(|(_, r)| r.path().to_path_buf()).collect();
            self.segments.clear();
            for p in old {
                fs::remove_file(&p)?;
            }
            self.generation += 1;
            self.met.compact_micros.observe_timer(t);
            self.update_storage_gauges();
            return Ok(());
        }
        let seq = self.next_seq;
        let reader = write_segment(&self.dir, seq, &merged, &self.opts)?;
        self.met.compact_bytes_total.add(reader.file_len());
        let old: Vec<PathBuf> =
            self.segments.iter().map(|(_, r)| r.path().to_path_buf()).collect();
        self.segments = vec![(seq, reader)];
        self.next_seq = seq + 1;
        for p in old {
            fs::remove_file(&p)?;
        }
        self.generation += 1;
        self.met.compact_micros.observe_timer(t);
        self.update_storage_gauges();
        Ok(())
    }

    /// All series keys present (segments + memtable), sorted. Answered
    /// from the per-series index without touching block data; only v1
    /// read-shim segments still pay for a decode.
    pub fn series_keys(&self) -> Result<Vec<SeriesKey>, TsdbError> {
        let mut keys: BTreeSet<SeriesKey> = self.mem.keys().cloned().collect();
        for (_, reader) in &self.segments {
            match reader.series_index() {
                Some(idx) => {
                    for entry in idx {
                        keys.insert(SeriesKey::new(&*entry.host, &*entry.metric));
                    }
                }
                None => {
                    for entry in &reader.entries {
                        let payload = reader.read_block(entry)?;
                        for chunk in reader.decode_series_block(&payload)? {
                            keys.insert(SeriesKey::new(chunk.host, chunk.metric));
                        }
                    }
                }
            }
        }
        // Series whose raw data has fully expired still exist in the
        // rollup tiers — keep them discoverable.
        for readers in self.rollups.values() {
            for (_, reader) in readers {
                for entry in &reader.entries {
                    let payload = reader.read_block(entry)?;
                    let (_, rows) = decode_rollup_block(&payload, reader.path())?;
                    keys.extend(rows.into_keys());
                }
            }
        }
        Ok(keys.into_iter().collect())
    }

    /// One sorted run per series for one v2 segment, decoding only the
    /// chunks the index says belong to matching series and overlap the
    /// range. Blocks are fetched at most once per query.
    fn segment_runs_indexed(
        &self,
        reader: &SegmentReader,
        idx: &[SeriesEntry],
        sel: &Selector,
        t0: u64,
        t1: u64,
        acc: &mut BTreeMap<SeriesKey, Vec<Vec<(u64, u64)>>>,
    ) -> Result<(), TsdbError> {
        let mut cache: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        for entry in matching_entries(idx, sel) {
            let mut run: Vec<(u64, u64)> = Vec::new();
            for r in entry.chunks.iter().filter(|r| r.max_ts >= t0 && r.min_ts <= t1) {
                let payload = match cache.get(&r.block_ix) {
                    Some(p) => p,
                    None => {
                        let block = reader.entries.get(r.block_ix as usize).ok_or_else(|| {
                            TsdbError::Corrupt(format!(
                                "{}: series index block {} out of range",
                                reader.path().display(),
                                r.block_ix
                            ))
                        })?;
                        let p = reader.read_block(block)?;
                        cache.entry(r.block_ix).or_insert(p)
                    }
                };
                let samples = reader.decode_chunk_in_block(payload, r)?;
                run.extend(samples.into_iter().filter(|&(ts, _)| ts >= t0 && ts <= t1));
            }
            if run.is_empty() {
                continue;
            }
            acc.entry(SeriesKey::new(&*entry.host, &*entry.metric))
                .or_default()
                .push(normalize_run(run));
        }
        Ok(())
    }

    /// v1 read shim: no per-series index, so decode every overlapping
    /// block and keep what matches.
    fn segment_runs_v1(
        &self,
        reader: &SegmentReader,
        sel: &Selector,
        t0: u64,
        t1: u64,
        acc: &mut BTreeMap<SeriesKey, Vec<Vec<(u64, u64)>>>,
    ) -> Result<(), TsdbError> {
        let mut per: BTreeMap<SeriesKey, Vec<(u64, u64)>> = BTreeMap::new();
        for entry in &reader.entries {
            if entry.max_ts < t0 || entry.min_ts > t1 {
                continue;
            }
            let payload = reader.read_block(entry)?;
            for chunk in reader.decode_series_block(&payload)? {
                let key = SeriesKey::new(chunk.host, chunk.metric);
                if !sel.matches(&key) {
                    continue;
                }
                per.entry(key)
                    .or_default()
                    .extend(chunk.samples.into_iter().filter(|&(ts, _)| ts >= t0 && ts <= t1));
            }
        }
        for (key, run) in per {
            if !run.is_empty() {
                acc.entry(key).or_default().push(normalize_run(run));
            }
        }
        Ok(())
    }

    /// Range scan: all series matching `sel`, samples with
    /// `t0 <= ts <= t1`, merged last-write-wins, sorted by key then ts.
    ///
    /// Index-driven: each segment contributes one sorted run per series
    /// (decoding only matching chunks when the segment carries a
    /// series index), and a k-way merge resolves overwrites.
    pub fn query(
        &self,
        sel: &Selector,
        t0: u64,
        t1: u64,
    ) -> Result<Vec<(SeriesKey, Vec<(u64, f64)>)>, TsdbError> {
        // Retention truncates the raw tier logically: samples below the
        // watermark are gone even while their segment still spans it
        // (files are only ever dropped whole; see `enforce_retention`).
        let t0 = t0.max(self.manifest.raw_dropped_before);
        if t0 > t1 {
            return Ok(Vec::new());
        }
        let mut acc: BTreeMap<SeriesKey, Vec<Vec<(u64, u64)>>> = BTreeMap::new();
        for (_, reader) in &self.segments {
            match reader.series_index() {
                Some(idx) => {
                    self.met.query_index_segments_total.inc();
                    self.segment_runs_indexed(reader, idx, sel, t0, t1, &mut acc)?
                }
                None => {
                    self.met.query_v1_fallback_total.inc();
                    self.segment_runs_v1(reader, sel, t0, t1, &mut acc)?
                }
            }
        }
        for (key, series) in &self.mem {
            if !sel.matches(key) {
                continue;
            }
            let run: Vec<(u64, u64)> = series.range(t0..=t1).map(|(&ts, &b)| (ts, b)).collect();
            if run.is_empty() {
                continue;
            }
            // suplint: allow(R7) -- entry() needs an owned key; once per matching series
            acc.entry(key.clone()).or_default().push(run);
        }
        Ok(acc
            .into_iter()
            .map(|(key, runs)| {
                let samples: Vec<(u64, f64)> = merge_runs(runs)
                    .into_iter()
                    .map(|(ts, bits)| (ts, f64::from_bits(bits)))
                    .collect();
                (key, samples)
            })
            .filter(|(_, s)| !s.is_empty())
            .collect())
    }

    /// Reference implementation of [`Tsdb::query`]: decode every
    /// overlapping block into a map, last insert wins. Kept as the
    /// differential-test oracle and benchmark baseline — do not
    /// "optimize" this; its value is being obviously correct.
    pub fn query_naive(
        &self,
        sel: &Selector,
        t0: u64,
        t1: u64,
    ) -> Result<Vec<(SeriesKey, Vec<(u64, f64)>)>, TsdbError> {
        // Same retention clamp as `query` — the oracle sees the same
        // logically-surviving raw data as the fast path.
        let t0 = t0.max(self.manifest.raw_dropped_before);
        if t0 > t1 {
            return Ok(Vec::new());
        }
        let mut acc: BTreeMap<SeriesKey, BTreeMap<u64, u64>> = BTreeMap::new();
        for (_, reader) in &self.segments {
            for entry in &reader.entries {
                // Sparse time index: skip blocks outside the range.
                if entry.max_ts < t0 || entry.min_ts > t1 {
                    continue;
                }
                let payload = reader.read_block(entry)?;
                for chunk in reader.decode_series_block(&payload)? {
                    let key = SeriesKey::new(chunk.host, chunk.metric);
                    if !sel.matches(&key) {
                        continue;
                    }
                    let series = acc.entry(key).or_default();
                    for (ts, bits) in chunk.samples {
                        if ts >= t0 && ts <= t1 {
                            series.insert(ts, bits);
                        }
                    }
                }
            }
        }
        for (key, series) in &self.mem {
            if !sel.matches(key) {
                continue;
            }
            // suplint: allow(R7) -- entry() needs an owned key; once per matching series
            let out = acc.entry(key.clone()).or_default();
            for (&ts, &bits) in series.range(t0..=t1) {
                out.insert(ts, bits);
            }
        }
        Ok(acc
            .into_iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(key, series)| {
                let samples =
                    series.into_iter().map(|(ts, bits)| (ts, f64::from_bits(bits))).collect();
                (key, samples)
            })
            .collect())
    }

    /// Single-series range scan.
    pub fn query_series(
        &self,
        host: &str,
        metric: &str,
        t0: u64,
        t1: u64,
    ) -> Result<Vec<(u64, f64)>, TsdbError> {
        let sel = Selector { host: Some(host.to_string()), metric: Some(metric.to_string()) };
        Ok(self.query(&sel, t0, t1)?.into_iter().next().map(|(_, s)| s).unwrap_or_default())
    }

    /// Downsample matching series into `bin_secs` bins aligned at
    /// multiples of `bin_secs`; returns `(bin_start_ts, agg)` per
    /// non-empty bin.
    ///
    /// Fast path: when every segment carries a series index and a
    /// series' sources are disjoint in time, bins that fully cover a
    /// chunk fold the chunk's stored statistics and the chunk is never
    /// decompressed; only boundary chunks are decoded. Falls back to
    /// binning the merged scan — the two produce bit-identical output
    /// (see [`crate::stats`] for why, and the differential proptests
    /// for proof).
    pub fn downsample(
        &self,
        sel: &Selector,
        t0: u64,
        t1: u64,
        bin_secs: u64,
        agg: Agg,
    ) -> Result<Vec<(SeriesKey, Vec<(u64, f64)>)>, TsdbError> {
        Ok(self.downsample_tiered(sel, t0, t1, bin_secs, agg)?.0)
    }

    /// [`Tsdb::downsample`] plus the list of tiers that served the
    /// answer: `"raw"` first, then `"rollup:<bin_secs>"` finest-first.
    ///
    /// Tier selection: the raw tier serves `[watermark, t1]`; below the
    /// watermark each sub-range is served by the *finest* rollup level
    /// still holding it (coarser levels cover only what finer levels
    /// have already expired, so tiers nest without overlap — the
    /// divisibility-chain alignment rule guarantees no rollup bin ever
    /// straddles a boundary). Results are bit-identical to the naive
    /// oracle wherever raw data survives; on rolled ranges min / max /
    /// count / last stay exact and sum / mean are the deterministic
    /// fold of exact per-bin sequential sums (exact too when the query
    /// bin equals the level bin).
    pub fn downsample_tiered(
        &self,
        sel: &Selector,
        t0: u64,
        t1: u64,
        bin_secs: u64,
        agg: Agg,
    ) -> Result<(Vec<(SeriesKey, Vec<(u64, f64)>)>, Vec<String>), TsdbError> {
        let bin_secs = bin_secs.max(1);
        let mut accs: BTreeMap<SeriesKey, BTreeMap<u64, BinAcc>> = BTreeMap::new();
        // Rollup tiers fold first: they cover strictly older time than
        // the raw tier, and accumulators must fill in ascending time
        // order (`last` and the sequential-sum seed depend on it).
        let rollup_tiers = self.fold_rollup_tiers(sel, t0, t1, bin_secs, &mut accs)?;
        let raw_t0 = t0.max(self.manifest.raw_dropped_before);
        let mut raw_hit = false;
        if raw_t0 <= t1 {
            if self.segments.iter().any(|(_, r)| r.series_index().is_none()) {
                // Read-shim store: no pre-aggregates to fold — bin the
                // merged scan into the (possibly seeded) accumulators.
                for (key, samples) in self.query(sel, raw_t0, t1)? {
                    let bins = accs.entry(key).or_default();
                    for (ts, v) in samples {
                        bins.entry(ts / bin_secs * bin_secs).or_default().add(v);
                        raw_hit = true;
                    }
                }
            } else {
                let mut keys: BTreeSet<SeriesKey> = BTreeSet::new();
                for key in self.mem.keys() {
                    if sel.matches(key) {
                        // suplint: allow(R7) -- owned copy per matching series key, not per sample
                        keys.insert(key.clone());
                    }
                }
                for (_, reader) in &self.segments {
                    for entry in matching_entries(reader.series_index().unwrap_or(&[]), sel) {
                        keys.insert(SeriesKey::new(&*entry.host, &*entry.metric));
                    }
                }
                for key in keys {
                    let mut bins = accs.remove(&key).unwrap_or_default();
                    raw_hit |=
                        self.downsample_one_into(&key, raw_t0, t1, bin_secs, agg, &mut bins)?;
                    if !bins.is_empty() {
                        accs.insert(key, bins);
                    }
                }
            }
        }
        let mut tiers: Vec<String> = Vec::new();
        if raw_hit {
            self.met.tier_hit_raw.inc();
            tiers.push("raw".to_string());
        }
        for bin in rollup_tiers {
            // suplint: allow(R7) -- tier label built once per query, not per sample
            tiers.push(format!("rollup:{bin}"));
        }
        let out = accs
            .into_iter()
            .filter(|(_, bins)| !bins.is_empty())
            .map(|(key, bins)| {
                let series: Vec<(u64, f64)> =
                    bins.into_iter().map(|(start, acc)| (start, agg.finish(&acc))).collect();
                (key, series)
            })
            .collect();
        Ok((out, tiers))
    }

    /// Fold rollup bins overlapping `[t0, t1]` below the raw watermark
    /// into per-series accumulators; returns the levels that
    /// contributed (ascending bin_secs). Levels are walked finest-first
    /// to assign each sub-range of the rolled region to the finest
    /// level still holding it, then folded coarsest-window-first so
    /// each accumulator fills in ascending time order. Within a level,
    /// later segments win per `(series, bin)` — crash-duplicated
    /// rollup segments are therefore invisible.
    fn fold_rollup_tiers(
        &self,
        sel: &Selector,
        t0: u64,
        t1: u64,
        q: u64,
        accs: &mut BTreeMap<SeriesKey, BTreeMap<u64, BinAcc>>,
    ) -> Result<Vec<u64>, TsdbError> {
        let w = self.manifest.raw_dropped_before;
        if w == 0 || t0 >= w || self.rollups.is_empty() {
            return Ok(Vec::new());
        }
        // Serve windows [lo, hi) per level, finest first; `hi` walks
        // down as finer levels claim the newer sub-ranges.
        let mut windows: Vec<(u64, u64, u64)> = Vec::new();
        let mut hi = w;
        for (&bin, readers) in &self.rollups {
            if readers.is_empty() || hi == 0 {
                continue;
            }
            let lo = self.manifest.level(bin).dropped_before.min(hi);
            if lo < hi {
                windows.push((bin, lo, hi));
                hi = lo;
            }
        }
        let mut used: Vec<u64> = Vec::new();
        for &(bin, lo, hi) in windows.iter().rev() {
            if hi.saturating_sub(1) < t0 || lo > t1 {
                continue; // window entirely outside the query range
            }
            let Some(readers) = self.rollups.get(&bin) else { continue };
            // Later seqs overwrite earlier per (series, bin_start).
            let mut level_rows: RollupRows = BTreeMap::new();
            for (_, reader) in readers {
                for entry in &reader.entries {
                    if entry.max_ts < t0.max(lo) || entry.min_ts > t1 {
                        continue;
                    }
                    let payload = reader.read_block(entry)?;
                    let (b, rows) = decode_rollup_block(&payload, reader.path())?;
                    if b != bin {
                        return Err(TsdbError::Corrupt(format!(
                            "{}: rollup block bin {b} does not match file level {bin}",
                            reader.path().display()
                        )));
                    }
                    for (key, bins_map) in rows {
                        if !sel.matches(&key) {
                            continue;
                        }
                        level_rows.entry(key).or_default().extend(bins_map);
                    }
                }
            }
            let mut hit = false;
            for (key, bins_map) in level_rows {
                let acc_bins = accs.entry(key).or_default();
                for (bs, stats) in bins_map {
                    if bs < lo
                        || bs >= hi
                        || bs > t1
                        || bs.saturating_add(bin.saturating_sub(1)) < t0
                        || stats.count == 0
                    {
                        continue;
                    }
                    acc_bins.entry(bs / q * q).or_default().fold_chunk(&stats);
                    hit = true;
                }
            }
            if hit {
                if let Some(c) = self.met.tier_hit_rollup.get(&bin) {
                    c.inc();
                }
                used.push(bin);
            }
        }
        used.sort_unstable();
        Ok(used)
    }

    /// One series through the pre-aggregated path, or the merged-scan
    /// fallback when sources overlap in time (overwrites in flight).
    /// Adds into `bins` — which may arrive pre-seeded with rollup-tier
    /// folds for older time (the raw walk is strictly newer, so adding
    /// on top preserves time order; a Sum/Mean bin seeded by a rollup
    /// fails `can_fold` and decodes its raw chunk, continuing the
    /// sequential sum sample-by-sample). Returns whether any raw data
    /// contributed.
    fn downsample_one_into(
        &self,
        key: &SeriesKey,
        t0: u64,
        t1: u64,
        bin_secs: u64,
        agg: Agg,
        bins: &mut BTreeMap<u64, BinAcc>,
    ) -> Result<bool, TsdbError> {
        let exact =
            // suplint: allow(R7) -- exact selector is built once per series read
            Selector { host: Some(key.host.clone()), metric: Some(key.metric.clone()) };

        // Gather this series' sources: per-segment chunk refs clipped to
        // the range, plus the memtable window.
        struct SegSource<'a> {
            reader: &'a SegmentReader,
            refs: Vec<&'a ChunkRef>,
            min_ts: u64,
            max_ts: u64,
        }
        let mut seg_sources: Vec<SegSource<'_>> = Vec::new();
        let mut orderly = true;
        for (_, reader) in &self.segments {
            let idx = reader.series_index().unwrap_or(&[]);
            for entry in matching_entries(idx, &exact) {
                let refs: Vec<&ChunkRef> = entry
                    .chunks
                    .iter()
                    .filter(|r| r.max_ts >= t0 && r.min_ts <= t1)
                    .collect();
                if refs.is_empty() {
                    continue;
                }
                // Refs must be ascending and non-overlapping for the
                // walk order (and the fold) to be meaningful.
                orderly &= refs.windows(2).all(|w| match w {
                    [a, b] => a.max_ts < b.min_ts,
                    _ => true,
                });
                let min_ts = refs.iter().map(|r| r.min_ts).min().unwrap_or(0).max(t0);
                let max_ts = refs.iter().map(|r| r.max_ts).max().unwrap_or(0).min(t1);
                seg_sources.push(SegSource { reader, refs, min_ts, max_ts });
            }
        }
        let mem_window = self.mem.get(key).and_then(|series| {
            let mut range = series.range(t0..=t1);
            let first = range.next().map(|(&ts, _)| ts)?;
            let last = range.next_back().map(|(&ts, _)| ts).unwrap_or(first);
            Some((first, last))
        });

        // Disjointness check: if any two sources could hold the same
        // timestamp, overwrites are possible and only a full merge is
        // correct.
        let mut spans: Vec<(u64, u64)> =
            seg_sources.iter().map(|s| (s.min_ts, s.max_ts)).collect();
        if let Some(w) = mem_window {
            spans.push(w);
        }
        spans.sort_unstable();
        let disjoint = spans.windows(2).all(|w| match w {
            [a, b] => a.1 < b.0,
            _ => true,
        });
        if spans.is_empty() {
            return Ok(false);
        }
        if !orderly || !disjoint {
            let series = self.query(&exact, t0, t1)?;
            let samples =
                series.into_iter().next().map(|(_, s)| s).unwrap_or_default();
            for &(ts, v) in &samples {
                bins.entry(ts / bin_secs * bin_secs).or_default().add(v);
            }
            return Ok(!samples.is_empty());
        }

        // Walk sources in ascending time order, folding chunk stats
        // where a single bin fully covers the chunk.
        enum Source<'a> {
            Seg(SegSource<'a>),
            Mem,
        }
        let mut sources: Vec<(u64, Source<'_>)> =
            seg_sources.into_iter().map(|s| (s.min_ts, Source::Seg(s))).collect();
        if let Some((first, _)) = mem_window {
            sources.push((first, Source::Mem));
        }
        sources.sort_by_key(|&(min_ts, _)| min_ts);

        let needs_sum = agg.needs_sequential_sum();
        let mut added = false;
        for (_, source) in sources {
            match source {
                Source::Mem => {
                    if let Some(series) = self.mem.get(key) {
                        for (&ts, &bits) in series.range(t0..=t1) {
                            bins.entry(ts / bin_secs * bin_secs)
                                .or_default()
                                .add(f64::from_bits(bits));
                            added = true;
                        }
                    }
                }
                Source::Seg(seg) => {
                    let mut cache: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
                    for r in seg.refs {
                        let fully_inside = r.min_ts >= t0 && r.max_ts <= t1;
                        let single_bin = r.min_ts / bin_secs == r.max_ts / bin_secs;
                        if fully_inside && single_bin && r.stats.count > 0 {
                            let acc =
                                bins.entry(r.min_ts / bin_secs * bin_secs).or_default();
                            if acc.can_fold(needs_sum) {
                                acc.fold_chunk(&r.stats);
                                added = true;
                                continue;
                            }
                        }
                        let payload = match cache.get(&r.block_ix) {
                            Some(p) => p,
                            None => {
                                let block = seg
                                    .reader
                                    .entries
                                    .get(r.block_ix as usize)
                                    .ok_or_else(|| {
                                        TsdbError::Corrupt(format!(
                                            "{}: series index block {} out of range",
                                            seg.reader.path().display(),
                                            r.block_ix
                                        ))
                                    })?;
                                let p = seg.reader.read_block(block)?;
                                cache.entry(r.block_ix).or_insert(p)
                            }
                        };
                        let samples = seg.reader.decode_chunk_in_block(payload, r)?;
                        for (ts, bits) in samples {
                            if ts >= t0 && ts <= t1 {
                                bins.entry(ts / bin_secs * bin_secs)
                                    .or_default()
                                    .add(f64::from_bits(bits));
                                added = true;
                            }
                        }
                    }
                }
            }
        }
        Ok(added)
    }

    /// Reference implementation of [`Tsdb::downsample`] over
    /// [`Tsdb::query_naive`]: decode everything, bin scalar-by-scalar.
    /// Differential-test oracle and benchmark baseline.
    pub fn downsample_naive(
        &self,
        sel: &Selector,
        t0: u64,
        t1: u64,
        bin_secs: u64,
        agg: Agg,
    ) -> Result<Vec<(SeriesKey, Vec<(u64, f64)>)>, TsdbError> {
        let bin_secs = bin_secs.max(1);
        Ok(bin_series(self.query_naive(sel, t0, t1)?, bin_secs, agg))
    }

    /// Newest data timestamp anywhere in the store (memtable, raw
    /// segments, rollup tiers). Retention callers pass this as `now` so
    /// a store ages by its own data clock, not the wall clock —
    /// simulated facilities run on simulated time (see
    /// `warehouse::tsdbio::enforce_store_retention`).
    pub fn max_timestamp(&self) -> Option<u64> {
        let mut max: Option<u64> = None;
        let mut push = |v: u64| max = Some(max.map_or(v, |m| m.max(v)));
        for series in self.mem.values() {
            if let Some((&ts, _)) = series.iter().next_back() {
                push(ts);
            }
        }
        for (_, r) in &self.segments {
            if let Some((_, hi)) = r.time_range() {
                push(hi);
            }
        }
        for readers in self.rollups.values() {
            for (_, r) in readers {
                if let Some((_, hi)) = r.time_range() {
                    push(hi);
                }
            }
        }
        max
    }

    /// The store's retention policy (from [`DbOptions`]).
    pub fn retention_policy(&self) -> &RetentionPolicy {
        &self.opts.retention
    }

    /// Raw samples below this data timestamp are logically dropped;
    /// 0 when retention never ran.
    pub fn raw_watermark(&self) -> u64 {
        self.manifest.raw_dropped_before
    }

    /// Install (or clear) the crash-injection hook that
    /// [`Tsdb::enforce_retention`] fires at every durability
    /// transition. Test-only instrumentation: production stores never
    /// set it.
    pub fn set_retention_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.fault_hook = hook;
    }

    /// Fire the crash-injection hook at a named site; a `true` from the
    /// hook aborts the pass right there with an `Interrupted` error —
    /// exactly what a kill at that instruction would leave behind.
    fn fault(&mut self, site: &str, n: u64) -> Result<(), TsdbError> {
        let Some(hook) = self.fault_hook.as_mut() else { return Ok(()) };
        // suplint: allow(R7) -- label built only when a test hook is installed
        let label = format!("{site}:{n}");
        if hook(&label) {
            return Err(TsdbError::Io(io::Error::new(
                io::ErrorKind::Interrupted,
                // suplint: allow(R7) -- injected-fault error construction, test-only path
                format!("injected fault at {label}"),
            )));
        }
        Ok(())
    }

    /// Exact per-bin statistics for all raw samples in `[from, to)` —
    /// precisely what [`Tsdb::downsample`]'s accumulators would compute,
    /// which is what makes rollup-served answers exact (see
    /// [`crate::stats`] for the sequential-sum argument).
    fn compute_rollup_rows(
        &self,
        bin_secs: u64,
        from: u64,
        to: u64,
    ) -> Result<RollupRows, TsdbError> {
        let mut rows: RollupRows = BTreeMap::new();
        if from >= to {
            return Ok(rows);
        }
        for (key, samples) in self.query(&Selector::all(), from, to - 1)? {
            let mut bins: BTreeMap<u64, BinAcc> = BTreeMap::new();
            for (ts, v) in samples {
                bins.entry(ts / bin_secs * bin_secs).or_default().add(v);
            }
            let stats: BTreeMap<u64, ChunkStats> = bins
                .into_iter()
                .map(|(bs, acc)| {
                    let s = ChunkStats {
                        count: acc.count,
                        sum: acc.sum,
                        min: acc.min,
                        max: acc.max,
                        last: acc.last,
                    };
                    (bs, s)
                })
                .collect();
            if !stats.is_empty() {
                rows.insert(key, stats);
            }
        }
        Ok(rows)
    }

    /// Apply the store's [`RetentionPolicy`] as of data time `now`.
    /// No-op (and `Ok`) when the policy keeps raw forever.
    ///
    /// Three phases, each durable before the next begins:
    ///
    /// 1. **Roll**: for each level, fold raw samples in
    ///    `[rolled_through, target)` into exact per-bin statistics,
    ///    seal them as a rollup segment (tmp → fsync → rename), then
    ///    advance the level's `rolled_through` in the manifest. The
    ///    roll target is aligned to the coarsest configured bin, so no
    ///    rollup bin ever straddles a watermark.
    /// 2. **Drop raw**: advance the raw watermark to the minimum
    ///    `rolled_through` (manifest first), then delete raw segments
    ///    wholly below it — never partial files; spanning segments are
    ///    clipped logically at read time and GC'd by [`Tsdb::compact`].
    /// 3. **Drop rollups**: per level with a TTL, advance
    ///    `dropped_before` (manifest first) and delete rollup segments
    ///    wholly below it.
    ///
    /// A crash — or an injected fault — anywhere leaves the store
    /// correct: reopen finishes manifest-committed drops, re-running
    /// the pass completes unfinished rolls, and duplicated rollup
    /// segments are invisible behind last-write-wins.
    pub fn enforce_retention(&mut self, now: u64) -> Result<RetentionReport, TsdbError> {
        let mut report =
            RetentionReport { raw_watermark: self.manifest.raw_dropped_before, ..Default::default() };
        // suplint: allow(R7) -- retention pass is cold; the clone frees &mut self for the roll loop
        let policy = self.opts.retention.clone();
        let Some(raw_ttl) = policy.raw_ttl else { return Ok(report) };
        let t = Timer::start();
        // Everything must be segment-resident before rolling so the
        // WAL and memtable never hold pre-watermark samples.
        self.flush()?;
        let coarse = policy.coarsest_bin();
        let target = now.saturating_sub(raw_ttl) / coarse * coarse;

        // Phase 1: roll [rolled_through, target) into every level.
        for level in &policy.levels {
            let bin = level.bin_secs;
            let from = self.manifest.level(bin).rolled_through;
            if from >= target {
                continue;
            }
            self.fault("rollup-seal", bin)?;
            let rows = self.compute_rollup_rows(bin, from, target)?;
            if let Some((payload, min_ts, max_ts, n_bins)) = encode_rollup_block(bin, &rows) {
                let seq = self.next_roll_seq.get(&bin).copied().unwrap_or(1);
                let mut w = SegmentWriter::new(KIND_ROLLUP);
                w.push_raw_block(payload, min_ts, max_ts, n_bins);
                let path = self.dir.join(roll_file_name(bin, seq));
                w.seal(&path)?;
                let reader = SegmentReader::open(&path)?;
                self.rollups.entry(bin).or_default().push((seq, reader));
                self.next_roll_seq.insert(bin, seq + 1);
                report.rollup_segments_written += 1;
                report.rollup_bins_written += u64::from(n_bins);
                self.met.rollup_segments_written_total.inc();
                self.met.rollup_bins_written_total.add(u64::from(n_bins));
            }
            self.fault("rollup-sealed", bin)?;
            // suplint: allow(R7) -- manifest is a few lines; cloned once per level per pass
            let mut m = self.manifest.clone();
            m.levels.entry(bin).or_default().rolled_through = target;
            self.fault("manifest-rolled", bin)?;
            m.store(&self.dir)?;
            self.manifest = m;
        }

        // Phase 2: advance the raw watermark, then drop raw segments
        // wholly below it. Manifest-first means a crash mid-drop is a
        // committed drop that reopen finishes.
        let new_w = policy
            .levels
            .iter()
            .map(|l| self.manifest.level(l.bin_secs).rolled_through)
            .min()
            .unwrap_or(target)
            .max(self.manifest.raw_dropped_before);
        if new_w > self.manifest.raw_dropped_before {
            self.fault("manifest-raw-watermark", new_w)?;
            // suplint: allow(R7) -- manifest clone, once per pass
            let mut m = self.manifest.clone();
            m.raw_dropped_before = new_w;
            m.store(&self.dir)?;
            self.manifest = m;
            self.met.raw_watermark.set(as_i64(new_w));
            self.generation += 1;
        }
        let droppable: Vec<(u64, PathBuf)> = self
            .segments
            .iter()
            .filter(|(_, r)| {
                r.time_range().is_some_and(|(_, max)| max < self.manifest.raw_dropped_before)
            })
            .map(|(seq, r)| (*seq, r.path().to_path_buf()))
            .collect();
        for (seq, path) in droppable {
            self.fault("drop-raw", seq)?;
            // Forget the reader before unlinking: if the delete faults,
            // the in-memory view stays consistent with a file reopen
            // will finish deleting anyway.
            self.segments.retain(|(s, _)| *s != seq);
            fs::remove_file(&path)?;
            report.raw_segments_dropped += 1;
            self.met.retention_raw_dropped_total.inc();
            self.generation += 1;
        }

        // Phase 3: expire rollup tiers per their own TTLs.
        for level in &policy.levels {
            let bin = level.bin_secs;
            let Some(ttl) = level.ttl else { continue };
            let mark = self.manifest.level(bin);
            let cut = now.saturating_sub(ttl) / coarse * coarse;
            let dropped_before = cut.min(mark.rolled_through);
            if dropped_before <= mark.dropped_before {
                continue;
            }
            self.fault("manifest-rollup-drop", bin)?;
            // suplint: allow(R7) -- manifest clone, once per level per pass
            let mut m = self.manifest.clone();
            m.levels.entry(bin).or_default().dropped_before = dropped_before;
            m.store(&self.dir)?;
            self.manifest = m;
            self.generation += 1;
            let droppable: Vec<(u64, PathBuf)> = self
                .rollups
                .get(&bin)
                .map(|v| {
                    v.iter()
                        .filter(|(_, r)| {
                            r.time_range().is_some_and(|(_, max)| max < dropped_before)
                        })
                        .map(|(seq, r)| (*seq, r.path().to_path_buf()))
                        .collect()
                })
                .unwrap_or_default();
            for (seq, path) in droppable {
                self.fault("drop-rollup", seq)?;
                if let Some(v) = self.rollups.get_mut(&bin) {
                    v.retain(|(s, _)| *s != seq);
                }
                fs::remove_file(&path)?;
                report.rollup_segments_dropped += 1;
                self.met.retention_rollup_dropped_total.inc();
            }
        }

        report.raw_watermark = self.manifest.raw_dropped_before;
        self.met.retention_pass_micros.observe_timer(t);
        self.update_storage_gauges();
        Ok(report)
    }

    /// Total bytes of sealed segments on disk (raw + rollup tiers).
    pub fn disk_bytes(&self) -> u64 {
        self.segments.iter().map(|(_, r)| r.file_len()).sum::<u64>()
            + self.rollups.values().flatten().map(|(_, r)| r.file_len()).sum::<u64>()
    }

    /// The registry this store reports into.
    pub fn obs(&self) -> &ObsHandle {
        &self.met.obs
    }

    pub fn stats(&self) -> DbStats {
        DbStats {
            segments: self.segments.len(),
            indexed_segments: self
                .segments
                .iter()
                .filter(|(_, r)| r.series_index().is_some())
                .count(),
            segment_bytes: self.disk_bytes(),
            wal_bytes: self.wal.len(),
            mem_series: self.mem.len(),
            mem_samples: self.mem_samples,
            recovered_samples: self.recovered_samples,
            recovered_truncated_bytes: self.recovered_truncated_bytes,
            rollup_segments: self.rollups.values().map(Vec::len).sum(),
            raw_watermark: self.manifest.raw_dropped_before,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdb-db-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fill(db: &mut Tsdb) {
        for host in ["c301-101", "c301-102"] {
            for (metric, base) in [("cpu_user", 0.25), ("mem_used", 1.0e9)] {
                let samples: Vec<(u64, f64)> =
                    (0..200).map(|i| (i * 600, base + i as f64)).collect();
                db.append_batch(host, metric, &samples).unwrap();
            }
        }
        db.sync().unwrap();
    }

    /// Compare query outputs bitwise (NaN-safe): same keys, same
    /// timestamps, same value bits.
    fn assert_bit_identical(
        a: &[(SeriesKey, Vec<(u64, f64)>)],
        b: &[(SeriesKey, Vec<(u64, f64)>)],
    ) {
        assert_eq!(a.len(), b.len(), "series count");
        for ((ka, sa), (kb, sb)) in a.iter().zip(b) {
            assert_eq!(ka, kb);
            assert_eq!(sa.len(), sb.len(), "sample count for {ka:?}");
            for (&(ta, va), &(tb, vb)) in sa.iter().zip(sb) {
                assert_eq!(ta, tb, "timestamp for {ka:?}");
                assert_eq!(va.to_bits(), vb.to_bits(), "value at ts {ta} for {ka:?}");
            }
        }
    }

    #[test]
    fn append_query_from_memtable() {
        let dir = tmpdir("mem");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        let out = db.query_series("c301-101", "cpu_user", 600, 1800).unwrap();
        assert_eq!(out, vec![(600, 1.25), (1200, 2.25), (1800, 3.25)]);
        assert_eq!(db.stats().mem_series, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_then_query_identical() {
        let dir = tmpdir("flush");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        let before = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        db.flush().unwrap();
        assert_eq!(db.stats().mem_samples, 0);
        assert_eq!(db.stats().segments, 1);
        assert_eq!(db.stats().indexed_segments, 1);
        assert!(db.wal.is_empty());
        let after = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        assert_eq!(before, after);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_after_flush_sees_segments() {
        let dir = tmpdir("reopen");
        let expect;
        {
            let mut db = Tsdb::open(&dir).unwrap();
            fill(&mut db);
            db.flush().unwrap();
            expect = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        }
        let db = Tsdb::open(&dir).unwrap();
        assert_eq!(db.query(&Selector::all(), 0, u64::MAX).unwrap(), expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_without_flush_recovers_from_wal() {
        let dir = tmpdir("crash");
        let expect;
        {
            let mut db = Tsdb::open(&dir).unwrap();
            fill(&mut db);
            expect = db.query(&Selector::all(), 0, u64::MAX).unwrap();
            // drop without flush = crash after sync
        }
        let db = Tsdb::open(&dir).unwrap();
        assert!(db.stats().recovered_samples > 0);
        assert_eq!(db.query(&Selector::all(), 0, u64::MAX).unwrap(), expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_query_results() {
        let dir = tmpdir("compact");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        db.flush().unwrap();
        // Second generation: overwrite some points, add new ones.
        db.append_batch("c301-101", "cpu_user", &[(600, 99.0), (200_000, 7.0)]).unwrap();
        db.sync().unwrap();
        db.flush().unwrap();
        assert_eq!(db.stats().segments, 2);
        let before = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        db.compact().unwrap();
        assert_eq!(db.stats().segments, 1);
        let after = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        assert_eq!(before, after);
        // Overwrite won: ts=600 is 99.0.
        let s = db.query_series("c301-101", "cpu_user", 600, 600).unwrap();
        assert_eq!(s, vec![(600, 99.0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn selectors_filter_host_and_metric() {
        let dir = tmpdir("sel");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        let by_host = db.query(&Selector::host("c301-101"), 0, u64::MAX).unwrap();
        assert_eq!(by_host.len(), 2);
        assert!(by_host.iter().all(|(k, _)| k.host == "c301-101"));
        let by_metric = db.query(&Selector::metric("mem_used"), 0, u64::MAX).unwrap();
        assert_eq!(by_metric.len(), 2);
        assert!(by_metric.iter().all(|(k, _)| k.metric == "mem_used"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn downsampling_bins_align_and_aggregate() {
        let dir = tmpdir("down");
        let mut db = Tsdb::open(&dir).unwrap();
        db.append_batch("h", "m", &[(0, 1.0), (600, 2.0), (3600, 10.0), (4200, 20.0)])
            .unwrap();
        db.sync().unwrap();
        let sel = Selector { host: Some("h".into()), metric: Some("m".into()) };
        let out = db.downsample(&sel, 0, u64::MAX, 3600, Agg::Mean).unwrap();
        assert_eq!(out[0].1, vec![(0, 1.5), (3600, 15.0)]);
        let out = db.downsample(&sel, 0, u64::MAX, 3600, Agg::Max).unwrap();
        assert_eq!(out[0].1, vec![(0, 2.0), (3600, 20.0)]);
        let out = db.downsample(&sel, 0, u64::MAX, 3600, Agg::Count).unwrap();
        assert_eq!(out[0].1, vec![(0, 2.0), (3600, 2.0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn time_range_queries_use_sparse_index() {
        let dir = tmpdir("range");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        db.flush().unwrap();
        let out = db.query_series("c301-102", "mem_used", 6000, 6600).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 6000);
        let empty = db.query_series("c301-102", "mem_used", 10_000_000, 20_000_000).unwrap();
        assert!(empty.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn special_floats_round_trip_through_disk() {
        let dir = tmpdir("specials");
        let nan_bits = 0x7FF8_0000_0000_0001u64;
        {
            let mut db = Tsdb::open(&dir).unwrap();
            db.append_batch(
                "h",
                "m",
                &[
                    (0, f64::from_bits(nan_bits)),
                    (600, f64::NEG_INFINITY),
                    (1200, -0.0),
                ],
            )
            .unwrap();
            db.sync().unwrap();
            db.flush().unwrap();
        }
        let db = Tsdb::open(&dir).unwrap();
        let out = db.query_series("h", "m", 0, u64::MAX).unwrap();
        assert_eq!(out[0].1.to_bits(), nan_bits);
        assert_eq!(out[1].1, f64::NEG_INFINITY);
        assert_eq!(out[2].1.to_bits(), (-0.0f64).to_bits());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn indexed_query_matches_naive_on_mixed_store() {
        let dir = tmpdir("diffq");
        let mut db = Tsdb::open_with(
            &dir,
            DbOptions { chunk_samples: 16, block_chunks: 4, ..Default::default() },
        )
        .unwrap();
        fill(&mut db);
        db.flush().unwrap();
        // Overwrites + fresh tail in a second segment, plus live
        // memtable data on top.
        db.append_batch("c301-101", "cpu_user", &[(600, 99.0), (130_000, 7.0)]).unwrap();
        db.sync().unwrap();
        db.flush().unwrap();
        db.append_batch("c301-102", "mem_used", &[(0, -1.0), (999_999, 4.5)]).unwrap();
        db.sync().unwrap();
        for (t0, t1) in [(0, u64::MAX), (600, 1800), (50_000, 200_000), (5, 5)] {
            for sel in [
                Selector::all(),
                Selector::host("c301-101"),
                Selector::metric("mem_used"),
                Selector { host: Some("c301-102".into()), metric: Some("cpu_user".into()) },
                Selector::host("no-such-host"),
            ] {
                let fast = db.query(&sel, t0, t1).unwrap();
                let slow = db.query_naive(&sel, t0, t1).unwrap();
                assert_bit_identical(&fast, &slow);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn preagg_downsample_matches_naive() {
        let dir = tmpdir("diffd");
        let mut db = Tsdb::open_with(
            &dir,
            DbOptions { chunk_samples: 8, block_chunks: 4, ..Default::default() },
        )
        .unwrap();
        fill(&mut db);
        db.flush().unwrap();
        for agg in [Agg::Mean, Agg::Sum, Agg::Min, Agg::Max, Agg::Last, Agg::Count] {
            for bin in [600, 3600, 86_400, 604_800] {
                for (t0, t1) in [(0, u64::MAX), (600, 100_000), (7000, 7000)] {
                    let fast = db.downsample(&Selector::all(), t0, t1, bin, agg).unwrap();
                    let slow =
                        db.downsample_naive(&Selector::all(), t0, t1, bin, agg).unwrap();
                    assert_bit_identical(&fast, &slow);
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_read_shim_segments_still_serve_queries() {
        use crate::segment::KIND_SERIES;
        let dir = tmpdir("v1shim");
        // Hand-seal a v1 (index-less) segment into the store directory.
        let samples: Vec<(u64, u64)> =
            (0..50u64).map(|i| (i * 600, (i as f64).to_bits())).collect();
        let mut w = SegmentWriter::new(KIND_SERIES);
        w.push_series_block(&[("legacy-host", "cpu_user", samples.as_slice())]);
        w.seal_with_version(&dir.join("seg-000001.tsdb"), 1).unwrap();

        let mut db = Tsdb::open(&dir).unwrap();
        assert_eq!(db.stats().segments, 1);
        assert_eq!(db.stats().indexed_segments, 0);
        // New data lands in a v2 segment alongside the old one.
        db.append_batch("legacy-host", "cpu_user", &[(600, 99.0)]).unwrap();
        db.sync().unwrap();
        db.flush().unwrap();
        assert_eq!(db.stats().indexed_segments, 1);
        let out = db.query_series("legacy-host", "cpu_user", 0, u64::MAX).unwrap();
        assert_eq!(out.len(), 50);
        assert_eq!(out[1], (600, 99.0), "v2 overwrite wins over v1 data");
        let fast = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        let slow = db.query_naive(&Selector::all(), 0, u64::MAX).unwrap();
        assert_bit_identical(&fast, &slow);
        let down = db.downsample(&Selector::all(), 0, u64::MAX, 3600, Agg::Mean).unwrap();
        let down_naive =
            db.downsample_naive(&Selector::all(), 0, u64::MAX, 3600, Agg::Mean).unwrap();
        assert_bit_identical(&down, &down_naive);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_bumps_on_mutation_only() {
        let dir = tmpdir("gen");
        let mut db = Tsdb::open(&dir).unwrap();
        let g0 = db.generation();
        assert_eq!(db.query(&Selector::all(), 0, u64::MAX).unwrap().len(), 0);
        assert_eq!(db.generation(), g0, "reads do not bump the generation");
        db.append("h", "m", 0, 1.0).unwrap();
        let g1 = db.generation();
        assert!(g1 > g0);
        db.flush().unwrap();
        assert!(db.generation() > g1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_counters_track_write_and_query_paths() {
        use std::sync::Arc;
        let dir = tmpdir("obs");
        let _ = fs::remove_dir_all(&dir);
        let obs = Arc::new(supremm_obs::ObsRegistry::new());
        let mut db = Tsdb::open_with_obs(&dir, DbOptions::default(), obs.clone()).unwrap();
        fill(&mut db);
        db.sync().unwrap();
        db.flush().unwrap();
        fill(&mut db);
        db.flush().unwrap();
        db.compact().unwrap();
        let _ = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        let snap = obs.snapshot();
        assert!(snap.histogram("tsdb_wal_append_micros").is_some_and(|h| h.count > 0));
        // `fill` syncs once per call, plus the explicit sync above.
        assert!(snap.histogram("tsdb_wal_fsync_micros").is_some_and(|h| h.count == 3));
        assert!(snap.histogram("tsdb_flush_micros").is_some_and(|h| h.count == 2));
        assert!(snap.histogram("tsdb_compact_micros").is_some_and(|h| h.count == 1));
        assert!(snap.counter("tsdb_flush_bytes_total").unwrap() > 0);
        assert!(snap.counter("tsdb_compact_bytes_total").unwrap() > 0);
        assert_eq!(snap.counter("tsdb_query_index_segments_total"), Some(1));
        assert_eq!(snap.counter("tsdb_query_v1_fallback_total"), Some(0));
        assert_eq!(snap.gauge("tsdb_segments"), Some(1));
        assert_eq!(snap.gauge("tsdb_memtable_samples"), Some(0));
        assert!(snap.gauge("tsdb_indexed_chunks").unwrap() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_segment_open_emits_deprecation_event() {
        use std::sync::Arc;
        let dir = tmpdir("obs-v1");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::new(KIND_SERIES);
        w.push_series_block(&[("h", "m", &[(0u64, 1.0f64.to_bits()), (10, 2.0f64.to_bits())][..])]);
        w.seal_with_version(&dir.join("seg-000001.tsdb"), 1).unwrap();
        let obs = Arc::new(supremm_obs::ObsRegistry::new());
        let db = Tsdb::open_with_obs(&dir, DbOptions::default(), obs.clone()).unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("tsdb_deprecated_v1_segment_open_total"), Some(1));
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == "deprecation" && e.detail.contains("v1 segment")));
        // The shim still serves reads — and tallies the fallback.
        let got = db.query(&Selector::all(), 0, u64::MAX).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(obs.snapshot().counter("tsdb_query_v1_fallback_total"), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_keys_answer_from_index_without_decoding() {
        let dir = tmpdir("keys");
        let mut db = Tsdb::open(&dir).unwrap();
        fill(&mut db);
        db.flush().unwrap();
        db.append("extra-host", "gpu_util", 0, 0.5).unwrap();
        let keys = db.series_keys().unwrap();
        assert_eq!(keys.len(), 5);
        assert!(keys.contains(&SeriesKey::new("extra-host", "gpu_util")));
        assert!(keys.contains(&SeriesKey::new("c301-102", "mem_used")));
        let _ = fs::remove_dir_all(&dir);
    }
}
