//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//!
//! Every block and WAL record carries one of these; a mismatch is how
//! torn writes and bit rot announce themselves.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"supremm-tsdb block payload");
        let mut flipped = b"supremm-tsdb block payload".to_vec();
        flipped[7] ^= 0x01;
        assert_ne!(crc32(&flipped), base);
    }
}
