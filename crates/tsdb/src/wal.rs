//! Write-ahead log with torn-write detection.
//!
//! Every append lands here first; the memtable is rebuilt from this file
//! after a crash. Format:
//!
//! ```text
//! header  "SUPWAL01"                               8 bytes
//! record  u32 len · u32 crc32(payload) · payload   repeated
//! ```
//!
//! Record payload:
//!
//! ```text
//! varint host_len  · host bytes
//! varint metric_len· metric bytes
//! varint n · (varint ts · varint value_bits)*
//! ```
//!
//! **Torn-write handling.** A crash can leave a partial record at the
//! tail (short frame, short payload, or payload that fails its CRC).
//! [`Wal::open`] replays records until the first bad frame, returns the
//! good prefix, and truncates the file back to the end of the last good
//! record — so the next append never interleaves with garbage. Anything
//! before the torn tail was acked and survives; the torn record itself
//! was never acked (sync() hadn't returned) so dropping it keeps the
//! durability contract.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{get_varint, put_varint};
use crate::crc::crc32;

pub const WAL_MAGIC: &[u8; 8] = b"SUPWAL01";

/// One replayed / to-be-appended WAL record: a batch of samples for a
/// single series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub host: String,
    pub metric: String,
    /// `(timestamp, f64 bit pattern)` pairs.
    pub samples: Vec<(u64, u64)>,
}

/// Encode one record from borrowed parts — the append path never has
/// to assemble an owned [`WalRecord`] just to serialize it.
fn encode_parts(host: &str, metric: &str, samples: &[(u64, u64)]) -> Vec<u8> {
    let mut p = Vec::with_capacity(host.len() + metric.len() + samples.len() * 6);
    put_varint(&mut p, host.len() as u64);
    p.extend_from_slice(host.as_bytes());
    put_varint(&mut p, metric.len() as u64);
    p.extend_from_slice(metric.as_bytes());
    put_varint(&mut p, samples.len() as u64);
    for &(ts, bits) in samples {
        put_varint(&mut p, ts);
        put_varint(&mut p, bits);
    }
    p
}

impl WalRecord {
    fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut pos = 0usize;
        let read_str = |pos: &mut usize| -> Option<String> {
            let len = get_varint(payload, pos)? as usize;
            let end = pos.checked_add(len)?;
            let bytes = payload.get(*pos..end)?;
            *pos = end;
            String::from_utf8(bytes.to_vec()).ok()
        };
        let host = read_str(&mut pos)?;
        let metric = read_str(&mut pos)?;
        let n = get_varint(payload, &mut pos)? as usize;
        if n > payload.len().saturating_sub(pos).saturating_mul(32) + 1 {
            return None;
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let ts = get_varint(payload, &mut pos)?;
            let bits = get_varint(payload, &mut pos)?;
            samples.push((ts, bits));
        }
        if pos != payload.len() {
            return None;
        }
        Some(WalRecord { host, metric, samples })
    }
}

/// What [`Wal::open`] found on disk.
pub struct WalRecovery {
    pub wal: Wal,
    /// Records that survived (in append order).
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail discarded (0 on a clean log).
    pub truncated_bytes: u64,
}

/// Append-side handle. Writes are buffered; [`Wal::sync`] flushes and
/// fsyncs — the durability ack point.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Length of the durable, valid prefix (grows on append).
    len: u64,
}

impl Wal {
    /// Open (creating if absent), replay valid records, truncate any
    /// torn tail, and position for appending.
    pub fn open(path: &Path) -> io::Result<WalRecovery> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).open(path)?;
        let file_len = file.metadata()?.len();

        let mut records = Vec::new();
        let mut good_end: u64;
        if file_len == 0 {
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            good_end = WAL_MAGIC.len() as u64;
        } else {
            let mut buf = Vec::with_capacity(file_len as usize);
            file.read_to_end(&mut buf)?;
            if buf.len() < WAL_MAGIC.len() {
                if WAL_MAGIC.starts_with(&buf) {
                    // Torn header write: nothing was ever acked in this
                    // log, so rewriting it fresh loses nothing.
                    file.set_len(0)?;
                    file.seek(SeekFrom::Start(0))?;
                    file.write_all(WAL_MAGIC)?;
                    file.sync_all()?;
                    buf = WAL_MAGIC.to_vec();
                } else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: not a SUPWAL01 write-ahead log", path.display()),
                    ));
                }
            } else if &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
                // Not our file — refuse rather than clobber.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: not a SUPWAL01 write-ahead log", path.display()),
                ));
            }
            good_end = WAL_MAGIC.len() as u64;
            let mut pos = WAL_MAGIC.len();
            loop {
                let Some(&[l0, l1, l2, l3, c0, c1, c2, c3]) = buf.get(pos..pos + 8) else {
                    break;
                };
                let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
                let crc = u32::from_le_bytes([c0, c1, c2, c3]);
                let Some(payload) = buf.get(pos + 8..pos + 8 + len) else { break };
                if crc32(payload) != crc {
                    break;
                }
                let Some(rec) = WalRecord::decode(payload) else { break };
                records.push(rec);
                pos += 8 + len;
                good_end = pos as u64;
            }
        }

        let truncated_bytes = file_len.saturating_sub(good_end);
        if truncated_bytes > 0 {
            file.set_len(good_end)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(good_end))?;
        let wal = Wal { path: path.to_path_buf(), writer: BufWriter::new(file), len: good_end };
        Ok(WalRecovery { wal, records, truncated_bytes })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Valid log length in bytes (header + acked records + buffered).
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Buffer one record. NOT durable until [`Wal::sync`] returns.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        self.append_parts(&rec.host, &rec.metric, &rec.samples)
    }

    /// Buffer one record from borrowed parts — the hot append path,
    /// copy-free until serialization.
    pub fn append_parts(
        &mut self,
        host: &str,
        metric: &str,
        samples: &[(u64, u64)],
    ) -> io::Result<()> {
        let payload = encode_parts(host, metric, samples);
        self.writer.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.len += 8 + payload.len() as u64;
        Ok(())
    }

    /// Flush buffers and fsync. When this returns, every record appended
    /// so far is durable — the ack point of the store.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()
    }

    /// Discard all records (after their data has been sealed into a
    /// segment): truncate back to the header and fsync.
    pub fn reset(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        let f = self.writer.get_mut();
        f.set_len(WAL_MAGIC.len() as u64)?;
        f.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        f.sync_all()?;
        self.len = WAL_MAGIC.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdb-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn recs() -> Vec<WalRecord> {
        vec![
            WalRecord {
                host: "c301-101".into(),
                metric: "cpu_user".into(),
                samples: vec![(600, 1.5f64.to_bits()), (1200, 2.5f64.to_bits())],
            },
            WalRecord {
                host: "c301-102".into(),
                metric: "mem_used".into(),
                samples: vec![(600, 4096u64)],
            },
            WalRecord { host: "h".into(), metric: "m".into(), samples: vec![] },
        ]
    }

    #[test]
    fn append_sync_reopen_replays_everything() {
        let path = tmp("replay");
        {
            let mut rec = Wal::open(&path).unwrap();
            assert!(rec.records.is_empty());
            for r in recs() {
                rec.wal.append(&r).unwrap();
            }
            rec.wal.sync().unwrap();
        }
        let rec = Wal::open(&path).unwrap();
        assert_eq!(rec.records, recs());
        assert_eq!(rec.truncated_bytes, 0);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_at_every_offset_recovers_prefix() {
        let path = tmp("torn");
        {
            let mut rec = Wal::open(&path).unwrap();
            for r in recs() {
                rec.wal.append(&r).unwrap();
            }
            rec.wal.sync().unwrap();
        }
        let good = fs::read(&path).unwrap();
        // Record boundaries: header, then each framed record.
        let mut boundaries = vec![WAL_MAGIC.len()];
        let mut pos = WAL_MAGIC.len();
        while pos + 8 <= good.len() {
            let len = u32::from_le_bytes(good[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
            boundaries.push(pos);
        }

        for cut in 0..=good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            let rec = Wal::open(&path).unwrap();
            // Expected record count = boundaries fully before the cut
            // (a cut inside the header recovers as an empty log).
            let expect = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            assert_eq!(rec.records.len(), expect, "cut at {cut}");
            assert_eq!(rec.records, recs()[..expect].to_vec(), "cut at {cut}");
            // Post-recovery file ends exactly at a record boundary.
            drop(rec);
            let after = fs::metadata(&path).unwrap().len() as usize;
            assert!(boundaries.contains(&after) || after == WAL_MAGIC.len(), "cut at {cut}");
        }
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn corrupt_middle_record_stops_replay_before_it() {
        let path = tmp("midcorrupt");
        {
            let mut rec = Wal::open(&path).unwrap();
            for r in recs() {
                rec.wal.append(&r).unwrap();
            }
            rec.wal.sync().unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of record 1 (skip header + record 0 frame).
        let r0_len =
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let r1_payload = 8 + 8 + r0_len + 8;
        bytes[r1_payload] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let rec = Wal::open(&path).unwrap();
        assert_eq!(rec.records, recs()[..1].to_vec());
        assert!(rec.truncated_bytes > 0);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn append_after_recovery_continues_cleanly() {
        let path = tmp("continue");
        {
            let mut rec = Wal::open(&path).unwrap();
            rec.wal.append(&recs()[0]).unwrap();
            rec.wal.sync().unwrap();
            // Simulate a torn append: write half a frame directly.
            rec.wal.writer.write_all(&[0x55, 0x00, 0x00]).unwrap();
            rec.wal.sync().unwrap();
        }
        {
            let mut rec = Wal::open(&path).unwrap();
            assert_eq!(rec.records.len(), 1);
            assert!(rec.truncated_bytes > 0);
            rec.wal.append(&recs()[1]).unwrap();
            rec.wal.sync().unwrap();
        }
        let rec = Wal::open(&path).unwrap();
        assert_eq!(rec.records, recs()[..2].to_vec());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        let mut rec = Wal::open(&path).unwrap();
        for r in recs() {
            rec.wal.append(&r).unwrap();
        }
        rec.wal.sync().unwrap();
        rec.wal.reset().unwrap();
        assert!(rec.wal.is_empty());
        drop(rec);
        let rec = Wal::open(&path).unwrap();
        assert!(rec.records.is_empty());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = tmp("foreign");
        fs::write(&path, b"definitely not a wal but long enough").unwrap();
        assert!(Wal::open(&path).is_err());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
