//! Per-series chunk compression — the Gorilla paper's tricks adapted to
//! facility counters.
//!
//! A chunk holds one series' samples `(ts, value)` for one time window:
//!
//! - **timestamps** are near-regular (the collector ticks every ten
//!   minutes), so delta-of-delta + zigzag varints make most of them one
//!   byte (`0`);
//! - **values** take one of two encodings, chosen per chunk:
//!   - *int-delta* (tag 1) when every value is an exact integer (node
//!     counts, interval counts, byte totals): zigzag varints of
//!     consecutive differences;
//!   - *XOR* (tag 0) otherwise: each f64's bits are XORed with the
//!     previous value's; identical values cost one bit, and values with
//!     a shared exponent/mantissa-window cost only their changed bits.
//!
//! Both encodings are bit-lossless: `decode(encode(s)) == s` including
//! NaN payloads, signed zeros and infinities, because values travel as
//! raw `u64` bit patterns end to end.

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing `pos`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift; // suplint: allow(R3) -- shift < 64 enforced by the bound check below
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Zigzag-map a signed delta into an unsigned varint-friendly value.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

// --- bit stream -----------------------------------------------------------

struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the last byte (0..8; 8 means full).
    used: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter { buf: Vec::new(), used: 8 }
    }

    fn push_bit(&mut self, bit: bool) {
        if self.used == 8 {
            self.buf.push(0);
            self.used = 0;
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << (7 - self.used);
        }
        self.used += 1;
    }

    /// Push the low `n` bits of `v`, most significant first.
    fn push_bits(&mut self, v: u64, n: u32) {
        for i in (0..n).rev() {
            self.push_bit((v >> i) & 1 == 1);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    used: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> BitReader<'a> {
        BitReader { buf, pos: 0, used: 0 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.buf.get(self.pos)?;
        let bit = (byte >> (7 - self.used)) & 1 == 1;
        self.used += 1;
        if self.used == 8 {
            self.used = 0;
            self.pos += 1;
        }
        Some(bit)
    }

    fn read_bits(&mut self, n: u32) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }
}

// --- value encodings ------------------------------------------------------

const MODE_XOR: u8 = 0;
const MODE_INT: u8 = 1;

/// True when the f64 behind `bits` is an exact integer that survives a
/// round trip through i64 (so int-delta encoding is lossless for it).
fn integral(bits: u64) -> Option<i64> {
    let v = f64::from_bits(bits);
    if !v.is_finite() || v.fract() != 0.0 || v.abs() >= 9.0e15 {
        return None;
    }
    let i = v as i64;
    // Reject -0.0 and anything whose bits don't round-trip exactly.
    if (i as f64).to_bits() == bits {
        Some(i)
    } else {
        None
    }
}

fn encode_values_int(out: &mut Vec<u8>, ints: &[i64]) {
    let mut prev = 0i64;
    for &v in ints {
        put_varint(out, zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
}

fn decode_values_int(buf: &[u8], pos: &mut usize, n: usize) -> Option<Vec<u64>> {
    let mut out = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        let v = prev.wrapping_add(unzigzag(get_varint(buf, pos)?));
        prev = v;
        out.push((v as f64).to_bits());
    }
    Some(out)
}

/// Gorilla XOR stream. Control codes per value (after the first, which
/// is 64 raw bits): `0` = identical to previous; `10` = changed bits fit
/// the previous leading/length window; `11` = new window (6 bits leading
/// zeros, 6 bits length-1, then the meaningful bits).
fn encode_values_xor(out: &mut Vec<u8>, values: &[u64]) {
    let mut w = BitWriter::new();
    let mut prev = 0u64;
    let mut prev_lead = u32::MAX; // "no window yet"
    let mut prev_len = 0u32;
    for (i, &bits) in values.iter().enumerate() {
        if i == 0 {
            w.push_bits(bits, 64);
        } else {
            let xor = prev ^ bits;
            if xor == 0 {
                w.push_bit(false);
            } else {
                w.push_bit(true);
                let lead = xor.leading_zeros().min(63);
                let trail = xor.trailing_zeros();
                // xor != 0 guarantees lead + trail <= 63, so these cannot wrap.
                let len = 64u32.wrapping_sub(lead).wrapping_sub(trail);
                let prev_end = prev_lead.wrapping_add(prev_len);
                if prev_lead != u32::MAX && lead >= prev_lead && lead.wrapping_add(len) <= prev_end
                {
                    w.push_bit(false);
                    w.push_bits(xor >> (64 - prev_end), prev_len);
                } else {
                    w.push_bit(true);
                    w.push_bits(lead as u64, 6);
                    w.push_bits((len - 1) as u64, 6);
                    w.push_bits(xor >> trail, len);
                    prev_lead = lead;
                    prev_len = len;
                }
            }
        }
        prev = bits;
    }
    let bytes = w.into_bytes();
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(&bytes);
}

fn decode_values_xor(buf: &[u8], pos: &mut usize, n: usize) -> Option<Vec<u64>> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos.checked_add(len)?;
    let bytes = buf.get(*pos..end)?;
    *pos = end;
    let mut r = BitReader::new(bytes);
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    let mut prev_lead = 0u32;
    let mut prev_len = 0u32;
    for i in 0..n {
        let bits = if i == 0 {
            r.read_bits(64)?
        } else if !r.read_bit()? {
            prev
        } else {
            if r.read_bit()? {
                prev_lead = r.read_bits(6)? as u32;
                prev_len = r.read_bits(6)? as u32 + 1;
            }
            let window_end = prev_lead.checked_add(prev_len)?;
            if prev_len == 0 || window_end > 64 {
                return None;
            }
            let meaningful = r.read_bits(prev_len)?;
            prev ^ (meaningful << (64 - window_end))
        };
        out.push(bits);
        prev = bits;
    }
    Some(out)
}

// --- chunk ----------------------------------------------------------------

/// Encode one series chunk: samples as `(timestamp, f64 bits)`.
///
/// Layout: `varint n · u8 mode · ts stream · value stream`. The
/// timestamp stream is `varint t0 · zigzag varint d0 · zigzag varints of
/// delta-of-deltas`. Empty input encodes as a single `0`.
pub fn encode_chunk(samples: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 2 + 16);
    put_varint(&mut out, samples.len() as u64);
    if samples.is_empty() {
        return out;
    }

    let ints: Option<Vec<i64>> = samples.iter().map(|&(_, bits)| integral(bits)).collect();
    out.push(if ints.is_some() { MODE_INT } else { MODE_XOR });

    // Timestamps: delta-of-delta.
    put_varint(&mut out, samples[0].0);
    if samples.len() >= 2 {
        let d0 = samples[1].0.wrapping_sub(samples[0].0) as i64;
        put_varint(&mut out, zigzag(d0));
        let mut prev_delta = d0;
        for w in samples.windows(2).skip(1) {
            let d = w[1].0.wrapping_sub(w[0].0) as i64;
            put_varint(&mut out, zigzag(d.wrapping_sub(prev_delta)));
            prev_delta = d;
        }
    }

    match ints {
        Some(ints) => encode_values_int(&mut out, &ints),
        None => {
            let values: Vec<u64> = samples.iter().map(|&(_, bits)| bits).collect();
            encode_values_xor(&mut out, &values);
        }
    }
    out
}

/// Decode a chunk produced by [`encode_chunk`]; `None` on any corruption.
pub fn decode_chunk(buf: &[u8]) -> Option<Vec<(u64, u64)>> {
    let mut pos = 0usize;
    let samples = decode_chunk_at(buf, &mut pos)?;
    if pos == buf.len() {
        Some(samples)
    } else {
        None
    }
}

/// Decode a chunk starting at `pos` (for streams of concatenated
/// chunks); advances `pos` past it.
pub fn decode_chunk_at(buf: &[u8], pos: &mut usize) -> Option<Vec<(u64, u64)>> {
    let n = get_varint(buf, pos)? as usize;
    if n == 0 {
        return Some(Vec::new());
    }
    // Each sample costs ≥ 1 byte of timestamp stream; cap pathological
    // claimed lengths before allocating.
    if n > buf.len().saturating_sub(*pos).saturating_mul(64) {
        return None;
    }
    let &mode = buf.get(*pos)?;
    *pos += 1;

    let mut ts = Vec::with_capacity(n);
    ts.push(get_varint(buf, pos)?);
    if n >= 2 {
        let mut delta = unzigzag(get_varint(buf, pos)?);
        ts.push(ts[0].wrapping_add(delta as u64));
        for i in 2..n {
            delta = delta.wrapping_add(unzigzag(get_varint(buf, pos)?));
            ts.push(ts[i - 1].wrapping_add(delta as u64));
        }
    }

    let values = match mode {
        MODE_INT => decode_values_int(buf, pos, n)?,
        MODE_XOR => decode_values_xor(buf, pos, n)?,
        _ => return None,
    };
    Some(ts.into_iter().zip(values).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(samples: &[(u64, u64)]) {
        let enc = encode_chunk(samples);
        let dec = decode_chunk(&enc).expect("decodes");
        assert_eq!(dec, samples, "chunk round trip");
    }

    #[test]
    fn empty_and_single() {
        round_trip(&[]);
        round_trip(&[(0, 0)]);
        round_trip(&[(600, 3.25f64.to_bits())]);
    }

    #[test]
    fn regular_timestamps_compress_to_about_a_byte_each() {
        let samples: Vec<(u64, u64)> =
            (0..1000).map(|i| (600 + i * 600, 42.5f64.to_bits())).collect();
        let enc = encode_chunk(&samples);
        // 1000 samples: ~2 bytes of DoD stream + ~1 bit of XOR each.
        assert!(enc.len() < 1300, "{} bytes for 1000 samples", enc.len());
        round_trip(&samples);
    }

    #[test]
    fn integer_series_use_delta_mode() {
        let counts: Vec<(u64, u64)> =
            (0..500).map(|i| (i * 600, ((i % 48) as f64).to_bits())).collect();
        let enc = encode_chunk(&counts);
        assert_eq!(enc[1 + varint_len(500)], super::MODE_INT);
        assert!(enc.len() < 1600, "{} bytes", enc.len());
        round_trip(&counts);
    }

    fn varint_len(v: u64) -> usize {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        buf.len() - 1
    }

    #[test]
    fn special_float_values_survive() {
        let specials = [
            0.0f64.to_bits(),
            (-0.0f64).to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            f64::NAN.to_bits(),
            0x7FF8_0000_DEAD_BEEF, // NaN with payload
            f64::MIN_POSITIVE.to_bits(),
            f64::MAX.to_bits(),
        ];
        let samples: Vec<(u64, u64)> =
            specials.iter().enumerate().map(|(i, &b)| (i as u64 * 7, b)).collect();
        round_trip(&samples);
    }

    #[test]
    fn out_of_order_and_duplicate_timestamps_still_round_trip() {
        round_trip(&[(100, 1u64), (50, 2), (50, 3), (u64::MAX, 4), (0, 5)]);
    }

    #[test]
    fn truncated_chunks_decode_to_none_never_panic() {
        let samples: Vec<(u64, u64)> =
            (0..64).map(|i| (i * 600, (i as f64 * 0.37).to_bits())).collect();
        let enc = encode_chunk(&samples);
        for cut in 0..enc.len() {
            assert!(decode_chunk(&enc[..cut]).is_none(), "cut at {cut} must not decode");
        }
        // Flipping any byte must never panic (may or may not decode).
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x55;
            let _ = decode_chunk(&bad);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut enc = encode_chunk(&[(600, 1.0f64.to_bits())]);
        enc.push(0x00);
        assert!(decode_chunk(&enc).is_none());
    }

    #[test]
    fn xor_identical_values_cost_one_bit() {
        let samples: Vec<(u64, u64)> =
            (0..800).map(|i| (i * 600, 0.123456789f64.to_bits())).collect();
        let enc = encode_chunk(&samples);
        // ~800 DoD bytes? No: regular spacing → 1 byte each after the
        // first two; values → 8 bytes + ~100 bytes of zero bits.
        assert!(enc.len() < 1100, "{} bytes", enc.len());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
