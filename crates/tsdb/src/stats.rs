//! Chunk-level pre-aggregates shared by the segment index and the query
//! engine.
//!
//! A sealed segment's series index stores, per chunk, the statistics a
//! downsampling query needs — count, sequential sum, min, max, last —
//! so a bin that fully covers a chunk can fold the stats instead of
//! decompressing the chunk. Bit-identity with the decode-everything
//! path is the contract, so BOTH paths must run the exact same
//! arithmetic. That arithmetic lives here, and nowhere else:
//!
//! - **sum** is the sequential (timestamp-order) f64 sum starting from
//!   `0.0`. Sequential summation decomposes exactly at *prefix*
//!   boundaries: after folding a chunk's samples the accumulator is
//!   bit-for-bit the chunk's stored sum, so a chunk stat may seed a bin
//!   only while the bin is still empty ([`BinAcc::can_fold`]).
//! - **min/max** use a strict `<` / `>` scan from ±∞. NaN compares
//!   false either way, so NaN samples are skipped; ties (including
//!   `-0.0` vs `0.0`) keep the earlier value. This scan is associative
//!   under grouping, so chunk minima can fold in at any position.
//! - **count/last** are exact under grouping by construction.

/// Pre-computed statistics for one compressed chunk, stored in the
/// segment's per-series index (all f64 fields travel as raw bits).
///
/// `count == 0` marks stats that must not be folded — either the chunk
/// was empty or its samples were not strictly ascending in time (an
/// out-of-order chunk has no well-defined "sequential" sum or "last").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStats {
    /// Number of samples; 0 means "do not fold, decode instead".
    pub count: u64,
    /// Sequential f64 sum in timestamp order.
    pub sum: f64,
    /// Strict-`<` minimum (NaN-skipping, keep-first on ties); `+∞` if
    /// every sample was NaN.
    pub min: f64,
    /// Strict-`>` maximum; `-∞` if every sample was NaN.
    pub max: f64,
    /// Value of the last (highest-timestamp) sample.
    pub last: f64,
}

impl ChunkStats {
    /// Stats that can never be folded (forces the decode path).
    pub fn invalid() -> ChunkStats {
        ChunkStats { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, last: 0.0 }
    }

    /// Compute stats over `(ts, value_bits)` samples. Returns
    /// [`ChunkStats::invalid`] unless timestamps are strictly
    /// ascending — the only order under which "sequential sum" and
    /// "last" are meaningful.
    pub fn from_samples(samples: &[(u64, u64)]) -> ChunkStats {
        if samples.is_empty() {
            return ChunkStats::invalid();
        }
        let sorted = samples.windows(2).all(|w| match w {
            [a, b] => a.0 < b.0,
            _ => true,
        });
        if !sorted {
            return ChunkStats::invalid();
        }
        let mut acc = BinAcc::new();
        for &(_, bits) in samples {
            acc.add(f64::from_bits(bits));
        }
        ChunkStats {
            count: acc.count,
            sum: acc.sum,
            min: acc.min,
            max: acc.max,
            last: acc.last,
        }
    }
}

/// One downsampling bin's running state. Feeding samples one by one
/// ([`BinAcc::add`]) reproduces the naive fold bit-for-bit; folding a
/// whole chunk ([`BinAcc::fold_chunk`]) is the fast path and is only
/// legal when [`BinAcc::can_fold`] says so for the aggregate in use.
#[derive(Debug, Clone, Copy)]
pub struct BinAcc {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub last: f64,
}

impl BinAcc {
    pub fn new() -> BinAcc {
        BinAcc { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, last: f64::NAN }
    }

    /// Fold one sample, in timestamp order.
    pub fn add(&mut self, v: f64) {
        self.count = self.count.saturating_add(1);
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.last = v;
    }

    /// May `stats` be folded in wholesale without breaking bit-identity
    /// for `needs_sequential_sum` aggregates (Sum/Mean)? The sum only
    /// decomposes at prefix boundaries, so the bin must still be empty.
    pub fn can_fold(&self, needs_sequential_sum: bool) -> bool {
        !needs_sequential_sum || self.count == 0
    }

    /// Fold a whole chunk's stats. Caller must have checked
    /// [`BinAcc::can_fold`] for the active aggregate and that
    /// `stats.count > 0`.
    pub fn fold_chunk(&mut self, stats: &ChunkStats) {
        if self.count == 0 {
            self.sum = stats.sum;
        } else {
            // Only reachable for aggregates that never read `sum`
            // (can_fold gates Sum/Mean); keep it monotone anyway.
            self.sum += stats.sum;
        }
        self.count = self.count.saturating_add(stats.count);
        if stats.min < self.min {
            self.min = stats.min;
        }
        if stats.max > self.max {
            self.max = stats.max;
        }
        self.last = stats.last;
    }
}

impl Default for BinAcc {
    fn default() -> BinAcc {
        BinAcc::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(vals: &[f64]) -> ChunkStats {
        let samples: Vec<(u64, u64)> =
            vals.iter().enumerate().map(|(i, v)| (i as u64, v.to_bits())).collect();
        ChunkStats::from_samples(&samples)
    }

    #[test]
    fn stats_match_scalar_fold() {
        let st = stats_of(&[3.0, 1.0, 2.0]);
        assert_eq!(st.count, 3);
        assert_eq!(st.sum, 6.0);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 3.0);
        assert_eq!(st.last, 2.0);
    }

    #[test]
    fn nan_samples_are_skipped_by_min_max_but_poison_sum() {
        let st = stats_of(&[f64::NAN, 2.0]);
        assert!(st.sum.is_nan());
        assert_eq!(st.min, 2.0);
        assert_eq!(st.max, 2.0);
        let all_nan = stats_of(&[f64::NAN, f64::NAN]);
        assert_eq!(all_nan.min, f64::INFINITY);
        assert_eq!(all_nan.max, f64::NEG_INFINITY);
    }

    #[test]
    fn ties_keep_the_first_value_bitwise() {
        let st = stats_of(&[0.0, -0.0]);
        assert_eq!(st.min.to_bits(), 0.0f64.to_bits(), "strict < keeps the first zero");
        let st = stats_of(&[-0.0, 0.0]);
        assert_eq!(st.min.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn unsorted_or_duplicate_timestamps_invalidate() {
        assert_eq!(ChunkStats::from_samples(&[(5, 0), (3, 0)]).count, 0);
        assert_eq!(ChunkStats::from_samples(&[(5, 0), (5, 0)]).count, 0);
        assert_eq!(ChunkStats::from_samples(&[]).count, 0);
    }

    #[test]
    fn grouped_min_max_equals_flat_scan() {
        // Associativity witness: folding chunk minima equals one flat scan.
        let vals = [2.0, -0.0, 0.0, f64::NAN, -3.5, -3.5, 7.0];
        let mut flat = BinAcc::new();
        for v in vals {
            flat.add(v);
        }
        for split in 1..vals.len() {
            let (a, b) = vals.split_at(split);
            let (sa, sb) = (stats_of(a), stats_of(b));
            let mut grouped = BinAcc::new();
            if sa.count > 0 {
                grouped.fold_chunk(&sa);
            }
            if sb.count > 0 {
                grouped.fold_chunk(&sb);
            }
            assert_eq!(grouped.min.to_bits(), flat.min.to_bits(), "split {split}");
            assert_eq!(grouped.max.to_bits(), flat.max.to_bits(), "split {split}");
            assert_eq!(grouped.count, flat.count);
            assert_eq!(grouped.last.to_bits(), flat.last.to_bits());
        }
    }

    #[test]
    fn sum_decomposes_at_prefix_boundary() {
        let vals = [0.1, 0.2, 0.30000000000000004, 1e17, -1e17];
        for split in 1..vals.len() {
            let (a, b) = vals.split_at(split);
            let mut seq = BinAcc::new();
            for &v in a.iter().chain(b) {
                seq.add(v);
            }
            // Seed with the prefix chunk's sum, then continue scalar.
            let mut seeded = BinAcc::new();
            seeded.fold_chunk(&stats_of(a));
            for &v in b {
                seeded.add(v);
            }
            assert_eq!(seeded.sum.to_bits(), seq.sum.to_bits(), "split {split}");
        }
    }
}
