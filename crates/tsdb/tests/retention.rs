//! Retention & rollup tier battery: integration semantics plus the
//! crash-point torture matrix.
//!
//! The torture test is the WAL truncate-at-every-offset idea lifted to
//! the retention pass: `enforce_retention` fires an injection hook at
//! every durability transition (rollup seal, manifest write, segment
//! delete), and we kill the pass at each such point in turn, reopen,
//! and assert the two invariants the ISSUE names: acked raw newer than
//! the TTL is never lost, and a rollup is never double-applied.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use supremm_tsdb::{
    Agg, DbOptions, RetentionPolicy, RollupLevel, Selector, SeriesKey, Tsdb, TsdbError,
};

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tsdb-retention-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// raw_ttl=1000s, 100s bins kept 3000s, 500s bins kept forever.
/// Coarsest bin 500 ⇒ every watermark lands on a multiple of 500.
fn policy() -> RetentionPolicy {
    RetentionPolicy {
        raw_ttl: Some(1000),
        levels: vec![
            RollupLevel { bin_secs: 100, ttl: Some(3000) },
            RollupLevel { bin_secs: 500, ttl: None },
        ],
    }
}

fn opts(retention: RetentionPolicy) -> DbOptions {
    // Small chunks/blocks so stores of a few thousand samples still
    // exercise multi-chunk, multi-block segment layouts.
    DbOptions { chunk_samples: 16, block_chunks: 4, retention }
}

/// Deterministic multi-series data in `[t_lo, t_hi]`, one flush per
/// 1000 s of data so raw segments have tight, droppable time ranges.
fn fill(db: &mut Tsdb, t_lo: u64, t_hi: u64) {
    let mut block_lo = t_lo;
    while block_lo <= t_hi {
        let block_hi = (block_lo + 999).min(t_hi);
        for host in ["c301-101", "c301-102"] {
            for (metric, base) in [("cpu_user", 0.25f64), ("mem_used", 1.0e9)] {
                let samples: Vec<(u64, f64)> = (block_lo..=block_hi)
                    .step_by(10)
                    .map(|ts| (ts, base + (ts % 337) as f64 * 0.5))
                    .collect();
                db.append_batch(host, metric, &samples).unwrap();
            }
        }
        db.sync().unwrap();
        db.flush().unwrap();
        block_lo = block_hi + 1;
    }
}

fn assert_bit_identical(
    a: &[(SeriesKey, Vec<(u64, f64)>)],
    b: &[(SeriesKey, Vec<(u64, f64)>)],
    what: &str,
) {
    assert_eq!(a.len(), b.len(), "{what}: series count");
    for ((ka, sa), (kb, sb)) in a.iter().zip(b) {
        assert_eq!(ka, kb, "{what}");
        assert_eq!(sa.len(), sb.len(), "{what}: sample count for {ka:?}");
        for (&(ta, va), &(tb, vb)) in sa.iter().zip(sb) {
            assert_eq!(ta, tb, "{what}: timestamp for {ka:?}");
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{what}: value at ts {ta} for {ka:?} ({va} vs {vb})"
            );
        }
    }
}

const AGGS: [Agg; 6] = [Agg::Mean, Agg::Sum, Agg::Min, Agg::Max, Agg::Last, Agg::Count];

#[test]
fn retention_rolls_drops_and_serves_exact_tiers() {
    let dir = tmpdir("basic");
    let mut db = Tsdb::open_with(&dir, opts(policy())).unwrap();
    fill(&mut db, 0, 10_000);

    // Pre-retention oracles, captured while all raw data still exists.
    let pre_raw = db.query_naive(&Selector::all(), 0, u64::MAX).unwrap();
    let mut pre_down = Vec::new();
    for agg in AGGS {
        // Tier layout after the pass: level 100 serves [5000, 9000),
        // level 500 serves [0, 5000), raw serves [9000, ..]. Capture
        // the oracle on each window at that tier's own bin width —
        // where rollup-served answers are exact for every aggregate.
        pre_down.push((agg, 100u64, 5000u64, 8999u64,
            db.downsample_naive(&Selector::all(), 5000, 8999, 100, agg).unwrap()));
        pre_down.push((agg, 500, 0, 4999,
            db.downsample_naive(&Selector::all(), 0, 4999, 500, agg).unwrap()));
        pre_down.push((agg, 600, 9000, u64::MAX,
            db.downsample_naive(&Selector::all(), 9000, u64::MAX, 600, agg).unwrap()));
    }

    // Data time 10_000: raw cut at 9000 (aligned to the coarsest bin),
    // level-100 expiry at (10000-3000) → 7000 → aligned 7000 ... but
    // clamped by nothing; 5000? No: 10_000 - 3000 = 7000, aligned to
    // 500 is 7000. See assertions below for the real numbers.
    let report = db.enforce_retention(10_000).unwrap();
    assert_eq!(report.raw_watermark, 9000);
    assert_eq!(report.rollup_segments_written, 2, "one segment per level");
    assert!(report.rollup_bins_written > 0);
    assert!(report.raw_segments_dropped >= 8, "raw below 9000 is whole-segment dropped");
    let stats = db.stats();
    assert_eq!(stats.raw_watermark, 9000);
    assert_eq!(stats.rollup_segments, 2);

    // Level-100 expiry: 10_000 - 3000 = 7000. Level 100 serves
    // [7000, 9000), level 500 serves [0, 7000).
    let (_, tiers) =
        db.downsample_tiered(&Selector::all(), 0, u64::MAX, 600, Agg::Mean).unwrap();
    assert_eq!(tiers, vec!["raw", "rollup:100", "rollup:500"]);

    // Surviving raw is bit-identical to the pre-retention oracle.
    let post_raw = db.query_naive(&Selector::all(), 9000, u64::MAX).unwrap();
    let pre_window: Vec<(SeriesKey, Vec<(u64, f64)>)> = pre_raw
        .iter()
        .map(|(k, s)| {
            (k.clone(), s.iter().copied().filter(|&(ts, _)| ts >= 9000).collect())
        })
        .collect();
    assert_bit_identical(&post_raw, &pre_window, "surviving raw");
    let post_fast = db.query(&Selector::all(), 9000, u64::MAX).unwrap();
    assert_bit_identical(&post_fast, &post_raw, "fast vs naive post-retention");

    // Rollup-served windows are bit-identical to the pre-retention
    // oracle at the tier's own bin width — but only where that tier
    // still holds the data: [7000, 8999] on level 100 and [0, 6999]
    // on level 500. (The capture above used the pre-pass layout guess;
    // recompute the comparison windows from the real watermarks.)
    for agg in AGGS {
        let served = db.downsample(&Selector::all(), 7000, 8999, 100, agg).unwrap();
        let mut oracle = Vec::new();
        for (k, s) in &pre_down.iter().find(|(a, b, lo, hi, _)| {
            *a == agg && *b == 100 && *lo == 5000 && *hi == 8999
        }).unwrap().4 {
            let w: Vec<(u64, f64)> =
                s.iter().copied().filter(|&(bs, _)| bs >= 7000).collect();
            if !w.is_empty() {
                oracle.push((k.clone(), w));
            }
        }
        assert_bit_identical(&served, &oracle, "level-100 window");

        // The [0,4999] capture covers bins 0..4500; compare those.
        let served = db.downsample(&Selector::all(), 0, 6999, 500, agg).unwrap();
        let pre = &pre_down.iter().find(|(a, b, lo, hi, _)| {
            *a == agg && *b == 500 && *lo == 0 && *hi == 4999
        }).unwrap().4;
        let served_sub: Vec<(SeriesKey, Vec<(u64, f64)>)> = served
            .iter()
            .map(|(k, s)| {
                (k.clone(), s.iter().copied().filter(|&(bs, _)| bs < 5000).collect())
            })
            .filter(|(_, s): &(SeriesKey, Vec<(u64, f64)>)| !s.is_empty())
            .collect();
        assert_bit_identical(&served_sub, pre, "level-500 window");

        // Raw window at an unrelated bin width stays oracle-exact too.
        let served = db.downsample(&Selector::all(), 9000, u64::MAX, 600, agg).unwrap();
        let pre = &pre_down.iter().find(|(a, b, lo, hi, _)| {
            *a == agg && *b == 600 && *lo == 9000 && *hi == u64::MAX
        }).unwrap().4;
        assert_bit_identical(&served, pre, "raw window");
    }

    // Series stay discoverable even where only rollups hold them.
    assert_eq!(db.series_keys().unwrap().len(), 4);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn reopen_preserves_watermarks_and_tier_answers() {
    let dir = tmpdir("reopen");
    let before;
    {
        let mut db = Tsdb::open_with(&dir, opts(policy())).unwrap();
        fill(&mut db, 0, 6_000);
        db.enforce_retention(6_000).unwrap();
        before = db.downsample_tiered(&Selector::all(), 0, u64::MAX, 250, Agg::Sum).unwrap();
        assert!(db.stats().raw_watermark > 0);
    }
    let db = Tsdb::open_with(&dir, opts(policy())).unwrap();
    assert_eq!(db.stats().raw_watermark, 5000);
    let after = db.downsample_tiered(&Selector::all(), 0, u64::MAX, 250, Agg::Sum).unwrap();
    assert_bit_identical(&after.0, &before.0, "reopen");
    assert_eq!(after.1, before.1, "tier labels survive reopen");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn late_writes_below_the_watermark_stay_invisible() {
    let dir = tmpdir("late");
    let mut db = Tsdb::open_with(&dir, opts(policy())).unwrap();
    fill(&mut db, 0, 4_000);
    db.enforce_retention(4_000).unwrap();
    let w = db.stats().raw_watermark;
    assert_eq!(w, 3000);
    let baseline = db.query(&Selector::all(), 0, u64::MAX).unwrap();

    // A straggler writes below the watermark: accepted, never served.
    db.append("c301-101", "cpu_user", w - 500, 123.456).unwrap();
    db.sync().unwrap();
    assert_bit_identical(
        &db.query(&Selector::all(), 0, u64::MAX).unwrap(),
        &baseline,
        "after late append",
    );
    db.flush().unwrap();
    db.compact().unwrap();
    assert_bit_identical(
        &db.query(&Selector::all(), 0, u64::MAX).unwrap(),
        &baseline,
        "after flush+compact",
    );
    // Compaction physically GC'd it: the store reopens identically.
    drop(db);
    let db = Tsdb::open_with(&dir, opts(policy())).unwrap();
    assert_bit_identical(
        &db.query(&Selector::all(), 0, u64::MAX).unwrap(),
        &baseline,
        "after reopen",
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn invalid_policies_fail_open_loudly() {
    let dir = tmpdir("badpolicy");
    let bad = RetentionPolicy {
        raw_ttl: Some(1000),
        levels: vec![
            RollupLevel { bin_secs: 100, ttl: Some(3000) },
            RollupLevel { bin_secs: 250, ttl: None }, // 250 % 100 != 0
        ],
    };
    match Tsdb::open_with(&dir, opts(bad)) {
        Err(TsdbError::Policy(msg)) => assert!(msg.contains("multiple")),
        Err(other) => panic!("expected Policy error, got {other:?}"),
        Ok(_) => panic!("expected Policy error, store opened"),
    }
    // The default policy is a no-op pass.
    let mut db = Tsdb::open_with(&dir, opts(RetentionPolicy::default())).unwrap();
    fill(&mut db, 0, 2_000);
    let report = db.enforce_retention(2_000).unwrap();
    assert_eq!(report, supremm_tsdb::RetentionReport::default());
    assert_eq!(db.stats().raw_watermark, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rollup_tiers_expire_on_their_own_ttls() {
    let dir = tmpdir("tier-ttl");
    let mut db = Tsdb::open_with(&dir, opts(policy())).unwrap();
    fill(&mut db, 0, 4_000);
    db.enforce_retention(4_000).unwrap();
    // Age the store: new data far in the future, then a second pass.
    fill(&mut db, 10_000, 12_000);
    let report = db.enforce_retention(12_000).unwrap();
    assert_eq!(report.raw_watermark, 11_000);
    // Level-100 expiry: 12_000 - 3000 = 9000 ⇒ the first pass's
    // level-100 segment (covering [0, 3000)) is wholly expired.
    assert!(report.rollup_segments_dropped >= 1, "{report:?}");
    // The expired window now comes from the 500s tier only.
    let (_, tiers) =
        db.downsample_tiered(&Selector::all(), 0, 2999, 500, Agg::Count).unwrap();
    assert_eq!(tiers, vec!["rollup:500"]);
    // Fully-expired fine tier + surviving coarse tier still answer
    // with exact per-bin counts: 100 samples per 1000 s per series.
    let (rows, _) =
        db.downsample_tiered(&Selector::all(), 0, 2999, 1000, Agg::Count).unwrap();
    assert_eq!(rows.len(), 4);
    for (_, bins) in &rows {
        assert_eq!(bins.iter().map(|&(_, c)| c).sum::<f64>(), 300.0);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The crash-point torture matrix (ISSUE satellite #1).
///
/// Scenario: pass 1 runs clean (builds both tiers), more data arrives,
/// then pass 2 — which exercises every durability-transition type:
/// rollup seal, per-level manifest advance, raw-watermark manifest
/// write, raw segment deletes, rollup-expiry manifest write, rollup
/// segment deletes. We kill pass 2 at its k-th hook firing for every
/// k, reopen (completing any manifest-committed drops), re-run the
/// pass, and require the result to be indistinguishable from a store
/// that never crashed.
#[test]
fn crash_point_torture_matrix() {
    let build = |name: &str| -> (PathBuf, Tsdb) {
        let dir = tmpdir(name);
        let mut db = Tsdb::open_with(&dir, opts(policy())).unwrap();
        fill(&mut db, 0, 4_000);
        db.enforce_retention(4_000).unwrap();
        fill(&mut db, 4_010, 8_000);
        (dir, db)
    };

    // Control: the same scenario with no faults.
    let (control_dir, mut control) = build("torture-control");
    control.enforce_retention(8_000).unwrap();
    assert_eq!(control.stats().raw_watermark, 7000);

    // Count the injection sites (hook that never fires), and record
    // the site labels so we know every transition type is covered.
    let labels = Arc::new(Mutex::new(Vec::<String>::new()));
    let sites = {
        let (dir, mut db) = build("torture-count");
        let hook_labels = labels.clone();
        db.set_retention_fault_hook(Some(Box::new(move |site: &str| {
            hook_labels.lock().unwrap().push(site.to_string());
            false
        })));
        db.enforce_retention(8_000).unwrap();
        drop(db);
        let _ = fs::remove_dir_all(&dir);
        let n = labels.lock().unwrap().len();
        n
    };
    assert!(sites >= 10, "expected a dense site matrix, got {sites}");
    let seen = labels.lock().unwrap().clone();
    for kind in [
        "rollup-seal:",
        "rollup-sealed:",
        "manifest-rolled:",
        "manifest-raw-watermark:",
        "drop-raw:",
        "manifest-rollup-drop:",
        "drop-rollup:",
    ] {
        assert!(
            seen.iter().any(|s| s.starts_with(kind)),
            "site kind {kind} never fired (saw {seen:?})"
        );
    }

    for k in 0..sites {
        let (dir, mut db) = build("torture-k");
        // Pre-crash capture: raw data newer than the pass-2 cut.
        let acked_new = db.query_naive(&Selector::all(), 7000, u64::MAX).unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        db.set_retention_fault_hook(Some(Box::new(move |_site: &str| {
            fired2.fetch_add(1, Ordering::SeqCst) == k
        })));
        let err = db.enforce_retention(8_000);
        assert!(err.is_err(), "site {k} should have aborted the pass");
        drop(db); // crash

        // Reopen after the crash: no hook, finish the pass.
        let mut db = Tsdb::open_with(&dir, opts(policy())).unwrap();

        // Invariant 1: acked raw newer than the TTL cut is never lost —
        // even before the pass is re-run.
        let survivors = db.query_naive(&Selector::all(), 7000, u64::MAX).unwrap();
        assert_bit_identical(
            &survivors,
            &acked_new,
            &format!("site {k}: acked raw after crash"),
        );

        db.enforce_retention(8_000).unwrap();
        assert_eq!(db.stats().raw_watermark, 7000, "site {k}");

        // Invariant 2: no rollup is double-applied and no tier serves
        // stale data — the recovered store answers bit-identically to
        // the never-crashed control, across tiers and aggregates.
        // (A double-applied rollup would double Sum/Count; a lost one
        // would drop bins.)
        for agg in AGGS {
            for (t0, t1, q) in [
                (0u64, u64::MAX, 500u64), // all tiers
                (0, 4999, 1000),          // coarse tier only
                (5000, 6999, 100),        // fine tier at its own bin
                (7000, u64::MAX, 250),    // raw only
            ] {
                let got = db.downsample_tiered(&Selector::all(), t0, t1, q, agg).unwrap();
                let want =
                    control.downsample_tiered(&Selector::all(), t0, t1, q, agg).unwrap();
                assert_bit_identical(
                    &got.0,
                    &want.0,
                    &format!("site {k}: agg {agg:?} range {t0}..{t1} bin {q}"),
                );
                assert_eq!(got.1, want.1, "site {k}: tier labels");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&control_dir);
}
