//! Property tests for the storage engine: arbitrary data through the
//! chunk codec, the WAL (including truncation at arbitrary offsets), and
//! the full engine with interleaved flushes and compaction.
//!
//! CI's nightly job reruns this suite with `PROPTEST_CASES=1024`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use supremm_tsdb::codec::{decode_chunk, encode_chunk};
use supremm_tsdb::wal::{Wal, WalRecord};
use supremm_tsdb::{Selector, Tsdb};

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tsdb-prop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Sample streams that exercise both the timestamp DoD path (regular and
/// irregular spacing, including wrap-around deltas) and both value modes
/// (integral deltas and XOR floats, with NaN/∞ bit patterns).
fn samples_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((any::<u64>(), any::<u64>()), 0..200)
}

proptest! {
    #[test]
    fn chunk_codec_round_trips_arbitrary_samples(samples in samples_strategy()) {
        let enc = encode_chunk(&samples);
        prop_assert_eq!(decode_chunk(&enc), Some(samples));
    }

    #[test]
    fn chunk_decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Any outcome is fine; crashing is not.
        let _ = decode_chunk(&bytes);
    }

    #[test]
    fn wal_replays_exactly_what_was_synced(
        records in prop::collection::vec(
            (prop::collection::vec((any::<u64>(), any::<u64>()), 0..20), 0u8..3),
            0..20,
        )
    ) {
        let dir = tmpdir("replay");
        let path = dir.join("wal");
        let written: Vec<WalRecord> = records
            .iter()
            .map(|(samples, host)| WalRecord {
                host: format!("h{host}"),
                metric: "m".into(),
                samples: samples.clone(),
            })
            .collect();
        {
            let mut wal = Wal::open(&path).unwrap().wal;
            for r in &written {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let rec = Wal::open(&path).unwrap();
        prop_assert_eq!(rec.truncated_bytes, 0);
        prop_assert_eq!(rec.records, written);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_truncation_recovers_a_prefix(
        samples in prop::collection::vec((any::<u64>(), any::<u64>()), 1..10),
        n_records in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tmpdir("torn");
        let path = dir.join("wal");
        let record = WalRecord { host: "h".into(), metric: "m".into(), samples };
        {
            let mut wal = Wal::open(&path).unwrap().wal;
            for _ in 0..n_records {
                wal.append(&record).unwrap();
            }
            wal.sync().unwrap();
        }
        // Tear the file at an arbitrary byte offset.
        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let rec = Wal::open(&path).unwrap();
        prop_assert!(rec.records.len() <= n_records);
        for r in &rec.records {
            prop_assert_eq!(r, &record);
        }
        // Recovery leaves an appendable log.
        let mut wal = rec.wal;
        wal.append(&record).unwrap();
        wal.sync().unwrap();
        let rec2 = Wal::open(&path).unwrap();
        prop_assert_eq!(rec2.records.len(), rec.records.len() + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_with_flushes_and_compaction_equals_last_wins_map(
        ops in prop::collection::vec(
            (0u8..3, 0u8..2, 0u64..500, any::<u64>(), any::<bool>()),
            1..120,
        )
    ) {
        let dir = tmpdir("engine");
        let mut db = Tsdb::open(&dir).unwrap();
        let mut model: std::collections::BTreeMap<(String, String, u64), u64> =
            std::collections::BTreeMap::new();
        for (host, metric, ts, bits, flush) in &ops {
            let (host, metric) = (format!("h{host}"), format!("m{metric}"));
            db.append(&host, &metric, *ts, f64::from_bits(*bits)).unwrap();
            model.insert((host, metric, *ts), *bits);
            if *flush {
                db.flush().unwrap();
            }
        }
        db.flush().unwrap();
        db.compact().unwrap();
        // Reopen from disk: everything must still be there, last-wins.
        let db = Tsdb::open(&dir).unwrap();
        let mut got: std::collections::BTreeMap<(String, String, u64), u64> =
            std::collections::BTreeMap::new();
        for (key, pts) in db.query(&Selector::all(), 0, u64::MAX).unwrap() {
            for (ts, v) in pts {
                let old = got.insert((key.host.clone(), key.metric.clone(), ts), v.to_bits());
                prop_assert!(old.is_none(), "duplicate sample in query output");
            }
        }
        prop_assert_eq!(got, model);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
