//! Property tests for the storage engine: arbitrary data through the
//! chunk codec, the WAL (including truncation at arbitrary offsets), and
//! the full engine with interleaved flushes and compaction.
//!
//! CI's nightly job reruns this suite with `PROPTEST_CASES=1024`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use supremm_tsdb::codec::{decode_chunk, encode_chunk};
use supremm_tsdb::segment::{SegmentWriter, KIND_SERIES};
use supremm_tsdb::wal::{Wal, WalRecord};
use supremm_tsdb::{Agg, DbOptions, RetentionPolicy, RollupLevel, Selector, Tsdb};

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tsdb-prop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Sample streams that exercise both the timestamp DoD path (regular and
/// irregular spacing, including wrap-around deltas) and both value modes
/// (integral deltas and XOR floats, with NaN/∞ bit patterns).
fn samples_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((any::<u64>(), any::<u64>()), 0..200)
}

/// Tiny chunks/blocks so even small random stores span many chunks,
/// blocks, and segments — the shapes the series index has to get right.
fn small_opts() -> DbOptions {
    DbOptions { chunk_samples: 8, block_chunks: 2, ..Default::default() }
}

/// Store-building ops: (host, metric, ts, value bits, action) where
/// action 2 flushes and action 3 flushes+compacts after the append.
fn store_ops() -> impl Strategy<Value = Vec<(u8, u8, u64, u64, u8)>> {
    prop::collection::vec((0u8..3, 0u8..2, 0u64..500, any::<u64>(), 0u8..4), 1..120)
}

fn build_store(dir: &std::path::Path, ops: &[(u8, u8, u64, u64, u8)]) -> Tsdb {
    build_store_with(dir, small_opts(), ops)
}

fn build_store_with(
    dir: &std::path::Path,
    opts: DbOptions,
    ops: &[(u8, u8, u64, u64, u8)],
) -> Tsdb {
    let mut db = Tsdb::open_with(dir, opts).unwrap();
    for (host, metric, ts, bits, action) in ops {
        db.append(&format!("h{host}"), &format!("m{metric}"), *ts, f64::from_bits(*bits))
            .unwrap();
        match action {
            2 => db.flush().unwrap(),
            3 => {
                db.flush().unwrap();
                db.compact().unwrap();
            }
            _ => {}
        }
    }
    db.sync().unwrap();
    db
}

/// Query output with values as raw bit patterns, so NaN payloads and
/// signed zeros must match exactly — "close enough" is a bug here.
fn bits_view(
    result: Vec<(supremm_tsdb::SeriesKey, Vec<(u64, f64)>)>,
) -> Vec<(String, String, Vec<(u64, u64)>)> {
    result
        .into_iter()
        .map(|(k, pts)| {
            (
                k.host.to_string(),
                k.metric.to_string(),
                pts.into_iter().map(|(ts, v)| (ts, v.to_bits())).collect(),
            )
        })
        .collect()
}

fn agg_from(ix: u8) -> Agg {
    match ix % 6 {
        0 => Agg::Mean,
        1 => Agg::Sum,
        2 => Agg::Min,
        3 => Agg::Max,
        4 => Agg::Last,
        _ => Agg::Count,
    }
}

fn selector_from(host: u8, metric: u8) -> Selector {
    // 3 / 2 name the hosts/metrics `store_ops` never writes, so the
    // no-match path is exercised too; 4 / 3 mean "any".
    Selector {
        host: (host < 4).then(|| format!("h{host}")),
        metric: (metric < 3).then(|| format!("m{metric}")),
    }
}

proptest! {
    #[test]
    fn indexed_query_is_bit_identical_to_naive(
        ops in store_ops(),
        queries in prop::collection::vec((0u8..5, 0u8..4, 0u64..600, 0u64..600), 1..8),
    ) {
        let dir = tmpdir("diff-query");
        let db = build_store(&dir, &ops);
        // Reopen so every flushed segment is read back through its
        // footer index, not remembered from the write path.
        drop(db);
        let db = Tsdb::open_with(&dir, small_opts()).unwrap();
        for (host, metric, t0, len) in &queries {
            let sel = selector_from(*host, *metric);
            let (t0, t1) = (*t0, t0.saturating_add(*len));
            let fast = bits_view(db.query(&sel, t0, t1).unwrap());
            let naive = bits_view(db.query_naive(&sel, t0, t1).unwrap());
            prop_assert_eq!(fast, naive, "selector {:?} range [{}, {}]", sel, t0, t1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preagg_downsample_is_bit_identical_to_naive(
        ops in store_ops(),
        queries in prop::collection::vec(
            (0u8..5, 0u8..4, 0u64..600, 0u64..600, 1u64..80, 0u8..6),
            1..8,
        ),
    ) {
        let dir = tmpdir("diff-downsample");
        let db = build_store(&dir, &ops);
        drop(db);
        let db = Tsdb::open_with(&dir, small_opts()).unwrap();
        for (host, metric, t0, len, bin, agg_ix) in &queries {
            let sel = selector_from(*host, *metric);
            let (t0, t1) = (*t0, t0.saturating_add(*len));
            let agg = agg_from(*agg_ix);
            let fast = bits_view(db.downsample(&sel, t0, t1, *bin, agg).unwrap());
            let naive = bits_view(db.downsample_naive(&sel, t0, t1, *bin, agg).unwrap());
            prop_assert_eq!(
                fast, naive,
                "selector {:?} range [{}, {}] bin {} agg {:?}", sel, t0, t1, bin, agg
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_segments_without_series_index_still_answer_queries(
        v1_samples in prop::collection::vec((0u8..2, 0u8..2, 0u64..300, any::<u64>()), 1..60),
        ops in store_ops(),
        bin in 1u64..50,
        agg_ix in 0u8..6,
    ) {
        let dir = tmpdir("diff-v1");
        // Hand-seal an index-less v1 segment the way the previous
        // release's writer laid it out (one-release read shim).
        let mut by_series: std::collections::BTreeMap<(String, String),
            std::collections::BTreeMap<u64, u64>> = std::collections::BTreeMap::new();
        for (host, metric, ts, bits) in &v1_samples {
            by_series
                .entry((format!("h{host}"), format!("m{metric}")))
                .or_default()
                .insert(*ts, *bits);
        }
        let owned: Vec<(String, String, Vec<(u64, u64)>)> = by_series
            .into_iter()
            .map(|((h, m), pts)| (h, m, pts.into_iter().collect()))
            .collect();
        let chunks: Vec<(&str, &str, &[(u64, u64)])> = owned
            .iter()
            .map(|(h, m, pts)| (h.as_str(), m.as_str(), pts.as_slice()))
            .collect();
        let mut w = SegmentWriter::new(KIND_SERIES);
        w.push_series_block(&chunks);
        w.seal_with_version(&dir.join("seg-000001.tsdb"), 1).unwrap();

        // Layer v2 writes (and their index) on top, then reopen.
        let db = build_store(&dir, &ops);
        drop(db);
        let db = Tsdb::open_with(&dir, small_opts()).unwrap();
        let all = Selector::all();
        let fast = bits_view(db.query(&all, 0, u64::MAX).unwrap());
        let naive = bits_view(db.query_naive(&all, 0, u64::MAX).unwrap());
        prop_assert_eq!(fast, naive);
        let agg = agg_from(agg_ix);
        let fast = bits_view(db.downsample(&all, 0, u64::MAX, bin, agg).unwrap());
        let naive = bits_view(db.downsample_naive(&all, 0, u64::MAX, bin, agg).unwrap());
        prop_assert_eq!(fast, naive, "bin {} agg {:?}", bin, agg);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunk_codec_round_trips_arbitrary_samples(samples in samples_strategy()) {
        let enc = encode_chunk(&samples);
        prop_assert_eq!(decode_chunk(&enc), Some(samples));
    }

    #[test]
    fn chunk_decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Any outcome is fine; crashing is not.
        let _ = decode_chunk(&bytes);
    }

    #[test]
    fn wal_replays_exactly_what_was_synced(
        records in prop::collection::vec(
            (prop::collection::vec((any::<u64>(), any::<u64>()), 0..20), 0u8..3),
            0..20,
        )
    ) {
        let dir = tmpdir("replay");
        let path = dir.join("wal");
        let written: Vec<WalRecord> = records
            .iter()
            .map(|(samples, host)| WalRecord {
                host: format!("h{host}"),
                metric: "m".into(),
                samples: samples.clone(),
            })
            .collect();
        {
            let mut wal = Wal::open(&path).unwrap().wal;
            for r in &written {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let rec = Wal::open(&path).unwrap();
        prop_assert_eq!(rec.truncated_bytes, 0);
        prop_assert_eq!(rec.records, written);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_truncation_recovers_a_prefix(
        samples in prop::collection::vec((any::<u64>(), any::<u64>()), 1..10),
        n_records in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tmpdir("torn");
        let path = dir.join("wal");
        let record = WalRecord { host: "h".into(), metric: "m".into(), samples };
        {
            let mut wal = Wal::open(&path).unwrap().wal;
            for _ in 0..n_records {
                wal.append(&record).unwrap();
            }
            wal.sync().unwrap();
        }
        // Tear the file at an arbitrary byte offset.
        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let rec = Wal::open(&path).unwrap();
        prop_assert!(rec.records.len() <= n_records);
        for r in &rec.records {
            prop_assert_eq!(r, &record);
        }
        // Recovery leaves an appendable log.
        let mut wal = rec.wal;
        wal.append(&record).unwrap();
        wal.sync().unwrap();
        let rec2 = Wal::open(&path).unwrap();
        prop_assert_eq!(rec2.records.len(), rec.records.len() + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_with_flushes_and_compaction_equals_last_wins_map(
        ops in prop::collection::vec(
            (0u8..3, 0u8..2, 0u64..500, any::<u64>(), any::<bool>()),
            1..120,
        )
    ) {
        let dir = tmpdir("engine");
        let mut db = Tsdb::open(&dir).unwrap();
        let mut model: std::collections::BTreeMap<(String, String, u64), u64> =
            std::collections::BTreeMap::new();
        for (host, metric, ts, bits, flush) in &ops {
            let (host, metric) = (format!("h{host}"), format!("m{metric}"));
            db.append(&host, &metric, *ts, f64::from_bits(*bits)).unwrap();
            model.insert((host, metric, *ts), *bits);
            if *flush {
                db.flush().unwrap();
            }
        }
        db.flush().unwrap();
        db.compact().unwrap();
        // Reopen from disk: everything must still be there, last-wins.
        let db = Tsdb::open(&dir).unwrap();
        let mut got: std::collections::BTreeMap<(String, String, u64), u64> =
            std::collections::BTreeMap::new();
        for (key, pts) in db.query(&Selector::all(), 0, u64::MAX).unwrap() {
            for (ts, v) in pts {
                let old = got.insert((key.host.clone(), key.metric.clone(), ts), v.to_bits());
                prop_assert!(old.is_none(), "duplicate sample in query output");
            }
        }
        prop_assert_eq!(got, model);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Retention differential #1: whatever raw survives the pass must
    /// answer queries bit-identically to the pre-retention store on the
    /// surviving window — through the fast path, the naive path, and a
    /// reopen from disk.
    #[test]
    fn retention_never_loses_raw_newer_than_the_ttl(
        ops in store_ops(),
        (raw_ttl, b1, m2) in (1u64..300, 1u64..6, 2u64..5),
        queries in prop::collection::vec((0u8..5, 0u8..4, 0u64..600, 0u64..600), 1..6),
    ) {
        let dir = tmpdir("retention-raw");
        // Non-last levels get a TTL far beyond the data range so only
        // the raw cut moves; tier expiry has its own integration tests.
        let retention = RetentionPolicy {
            raw_ttl: Some(raw_ttl),
            levels: vec![
                RollupLevel { bin_secs: b1, ttl: Some(1_000_000) },
                RollupLevel { bin_secs: b1 * m2, ttl: None },
            ],
        };
        let small = small_opts();
        let opts = DbOptions { retention, ..small };
        let mut db = build_store_with(&dir, opts.clone(), &ops);
        let now = db.max_timestamp().unwrap_or(0);
        let coarse = b1 * m2;
        let target = now.saturating_sub(raw_ttl) / coarse * coarse;
        // Pre-retention oracle on each query's surviving window.
        let pre: Vec<_> = queries
            .iter()
            .map(|(host, metric, t0, len)| {
                let sel = selector_from(*host, *metric);
                let (t0, t1) = (*t0.max(&target), t0.saturating_add(*len));
                bits_view(db.query_naive(&sel, t0, t1).unwrap())
            })
            .collect();

        let report = db.enforce_retention(now).unwrap();
        prop_assert_eq!(report.raw_watermark, target);
        drop(db);
        let db = Tsdb::open_with(&dir, opts).unwrap();
        prop_assert_eq!(db.stats().raw_watermark, target);
        for ((host, metric, t0, len), want) in queries.iter().zip(&pre) {
            let sel = selector_from(*host, *metric);
            let (t0, t1) = (*t0.max(&target), t0.saturating_add(*len));
            let fast = bits_view(db.query(&sel, t0, t1).unwrap());
            let naive = bits_view(db.query_naive(&sel, t0, t1).unwrap());
            prop_assert_eq!(&fast, want, "fast, selector {:?} [{}, {}]", sel, t0, t1);
            prop_assert_eq!(&naive, want, "naive, selector {:?} [{}, {}]", sel, t0, t1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Retention differential #2: after the pass, tier-fold downsample
    /// over the *whole* range — rolled history plus surviving raw — is
    /// bit-identical to the pre-retention naive oracle. At the finest
    /// tier's own bin width that holds for every aggregate (rollup sums
    /// are the exact per-bin sequential sums); at coarser multiples it
    /// holds for the order-insensitive aggregates.
    #[test]
    fn tier_fold_downsample_matches_the_pre_retention_oracle(
        ops in store_ops(),
        (raw_ttl, b1, m2) in (1u64..300, 1u64..6, 2u64..5),
        k in 1u64..4,
    ) {
        let dir = tmpdir("retention-fold");
        let retention = RetentionPolicy {
            raw_ttl: Some(raw_ttl),
            levels: vec![
                RollupLevel { bin_secs: b1, ttl: Some(1_000_000) },
                RollupLevel { bin_secs: b1 * m2, ttl: None },
            ],
        };
        let small = small_opts();
        let mut db = build_store_with(&dir, DbOptions { retention, ..small }, &ops);
        let all = Selector::all();
        const ALL_AGGS: [Agg; 6] =
            [Agg::Mean, Agg::Sum, Agg::Min, Agg::Max, Agg::Last, Agg::Count];
        const FOLD_SAFE: [Agg; 4] = [Agg::Min, Agg::Max, Agg::Last, Agg::Count];
        let pre_fine: Vec<_> = ALL_AGGS
            .iter()
            .map(|&agg| bits_view(db.downsample_naive(&all, 0, u64::MAX, b1, agg).unwrap()))
            .collect();
        let coarse_bin = b1 * k;
        let pre_coarse: Vec<_> = FOLD_SAFE
            .iter()
            .map(|&agg| {
                bits_view(db.downsample_naive(&all, 0, u64::MAX, coarse_bin, agg).unwrap())
            })
            .collect();

        db.enforce_retention(db.max_timestamp().unwrap_or(0)).unwrap();
        for (&agg, want) in ALL_AGGS.iter().zip(&pre_fine) {
            let got = bits_view(db.downsample(&all, 0, u64::MAX, b1, agg).unwrap());
            prop_assert_eq!(&got, want, "fine bin {} agg {:?}", b1, agg);
        }
        for (&agg, want) in FOLD_SAFE.iter().zip(&pre_coarse) {
            let got = bits_view(db.downsample(&all, 0, u64::MAX, coarse_bin, agg).unwrap());
            prop_assert_eq!(&got, want, "coarse bin {} agg {:?}", coarse_bin, agg);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
