//! Raw-file archive: where the per-host per-day files end up.
//!
//! The paper (§4.1): on Ranger TACC_Stats generates a raw file of ~0.5 MB
//! per node per day, ~60 GB/month uncompressed for the whole cluster. The
//! archive tracks exactly those volume numbers for the data-volume
//! experiment, and can also dump the files to a real directory.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use supremm_metrics::HostId;

/// Identifies one raw file: host + day index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RawFileKey {
    pub host: HostId,
    pub day: u64,
}

impl RawFileKey {
    /// Conventional on-disk name: `<day>/<hostname>`.
    pub fn file_name(&self) -> String {
        format!("{}/{}", self.day, self.host.hostname())
    }
}

/// In-memory store of raw collector output.
///
/// Keeps a running byte total so the volume accounting queries are O(1)
/// instead of re-walking every file.
#[derive(Debug, Default, Clone)]
pub struct RawArchive {
    files: BTreeMap<RawFileKey, String>,
    total_bytes: u64,
}

impl RawArchive {
    pub fn new() -> RawArchive {
        RawArchive::default()
    }

    /// Insert a finished file. Replaces any previous content for the key
    /// (a collector restart rewrites the day's file).
    pub fn insert(&mut self, key: RawFileKey, content: String) {
        self.total_bytes += content.len() as u64;
        if let Some(old) = self.files.insert(key, content) {
            self.total_bytes -= old.len() as u64;
        }
    }

    pub fn get(&self, key: &RawFileKey) -> Option<&str> {
        self.files.get(key).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&RawFileKey, &str)> {
        self.files.iter().map(|(k, v)| (k, v.as_str()))
    }

    /// Total stored bytes (the "uncompressed" volume figure). O(1): the
    /// total is maintained on insert.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Mean bytes per (node, day) file — the paper's ~0.5 MB figure.
    pub fn mean_bytes_per_node_day(&self) -> f64 {
        if self.files.is_empty() {
            return 0.0;
        }
        self.total_bytes() as f64 / self.files.len() as f64
    }

    /// Distinct hosts present. Keys are ordered host-major, so one
    /// adjacent-dedup scan suffices — no clone, no sort.
    pub fn host_count(&self) -> usize {
        let mut count = 0;
        let mut last: Option<HostId> = None;
        for key in self.files.keys() {
            if last != Some(key.host) {
                count += 1;
                last = Some(key.host);
            }
        }
        count
    }

    /// Dump all files under `dir` using the conventional layout.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        for (key, content) in &self.files {
            let path = dir.join(key.file_name());
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            let mut f = std::fs::File::create(path)?;
            f.write_all(content.as_bytes())?;
        }
        Ok(())
    }

    /// Load an archive previously dumped with [`RawArchive::write_to_dir`].
    pub fn read_from_dir(dir: &Path) -> std::io::Result<RawArchive> {
        let mut archive = RawArchive::new();
        for day_entry in std::fs::read_dir(dir)? {
            let day_entry = day_entry?;
            let Ok(day) = day_entry.file_name().to_string_lossy().parse::<u64>() else {
                continue;
            };
            for host_entry in std::fs::read_dir(day_entry.path())? {
                let host_entry = host_entry?;
                let name = host_entry.file_name().to_string_lossy().into_owned();
                let Some(host) = HostId::parse_hostname(&name) else { continue };
                let content = std::fs::read_to_string(host_entry.path())?;
                archive.insert(RawFileKey { host, day }, content);
            }
        }
        Ok(archive)
    }
}

impl FromIterator<(RawFileKey, String)> for RawArchive {
    fn from_iter<T: IntoIterator<Item = (RawFileKey, String)>>(iter: T) -> RawArchive {
        let mut archive = RawArchive::new();
        for (key, content) in iter {
            archive.insert(key, content);
        }
        archive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(host: u32, day: u64) -> RawFileKey {
        RawFileKey { host: HostId(host), day }
    }

    #[test]
    fn volume_accounting() {
        let mut a = RawArchive::new();
        a.insert(key(0, 0), "x".repeat(100));
        a.insert(key(1, 0), "y".repeat(300));
        assert_eq!(a.total_bytes(), 400);
        assert_eq!(a.mean_bytes_per_node_day(), 200.0);
        assert_eq!(a.host_count(), 2);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut a = RawArchive::new();
        a.insert(key(0, 0), "old".into());
        a.insert(key(0, 0), "newer".into());
        assert_eq!(a.get(&key(0, 0)), Some("newer"));
        assert_eq!(a.len(), 1);
        // The cached byte total must reflect the replacement, not the sum.
        assert_eq!(a.total_bytes(), 5);
    }

    #[test]
    fn cached_total_matches_recount_through_from_iter() {
        let a: RawArchive = (0..10u32)
            .map(|i| (key(i % 3, u64::from(i)), "z".repeat(i as usize)))
            .collect();
        let recount: u64 = a.iter().map(|(_, c)| c.len() as u64).sum();
        assert_eq!(a.total_bytes(), recount);
        assert_eq!(a.host_count(), 3);
    }

    #[test]
    fn empty_archive_mean_is_zero() {
        assert_eq!(RawArchive::new().mean_bytes_per_node_day(), 0.0);
    }

    #[test]
    fn dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("supremm-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut a = RawArchive::new();
        a.insert(key(3, 1), "contents-a".into());
        a.insert(key(4, 2), "contents-b".into());
        a.write_to_dir(&dir).unwrap();
        let b = RawArchive::read_from_dir(&dir).unwrap();
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
