//! Cluster-wide collection: one collector per node, driven in parallel.
//!
//! On the real machines every node runs its own TACC_Stats process; here a
//! Rayon pool plays the role of "all nodes at once". Work is embarrassingly
//! parallel (node state and collector state pair 1:1), which is exactly
//! the property the real deployment relies on to keep overhead ~0.1 %.

use rayon::prelude::*;

use supremm_metrics::{HostId, JobId, Timestamp};
use supremm_procsim::KernelState;

use crate::archive::{RawArchive, RawFileKey};
use crate::collector::Collector;

/// All collectors of a cluster, indexed by node.
#[derive(Debug)]
pub struct FleetCollector {
    collectors: Vec<Collector>,
}

impl FleetCollector {
    pub fn new(node_count: u32) -> FleetCollector {
        FleetCollector {
            collectors: (0..node_count).map(|i| Collector::new(HostId(i))).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.collectors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.collectors.is_empty()
    }

    pub fn collector_mut(&mut self, host: HostId) -> &mut Collector {
        &mut self.collectors[host.0 as usize]
    }

    /// Job begin on a set of nodes.
    pub fn begin_job(&mut self, kernels: &mut [KernelState], hosts: &[HostId], job: JobId, ts: Timestamp) {
        for &h in hosts {
            self.collectors[h.0 as usize].begin_job(&mut kernels[h.0 as usize], job, ts);
        }
    }

    /// Job end on a set of nodes.
    pub fn end_job(&mut self, kernels: &mut [KernelState], hosts: &[HostId], job: JobId, ts: Timestamp) {
        for &h in hosts {
            self.collectors[h.0 as usize].end_job(&mut kernels[h.0 as usize], job, ts);
        }
    }

    /// Periodic sample of every *running* node, in parallel.
    ///
    /// `active` marks nodes that are powered on; nodes that are down
    /// (outage injection) produce no records, which is how Figure 8's
    /// active-node dips become visible downstream.
    pub fn sample_all(&mut self, kernels: &[KernelState], active: &[bool], ts: Timestamp) {
        self.collectors
            .par_iter_mut()
            .zip(kernels.par_iter())
            .zip(active.par_iter())
            .for_each(|((collector, kernel), &up)| {
                if up {
                    collector.sample(kernel, ts);
                }
            });
    }

    /// Periodic sample of every running node except those in `skip`
    /// (nodes that already got a begin/end sample at this tick).
    pub fn sample_all_except(
        &mut self,
        kernels: &[KernelState],
        active: &[bool],
        ts: Timestamp,
        skip: &std::collections::HashSet<HostId>,
    ) {
        self.collectors
            .par_iter_mut()
            .zip(kernels.par_iter())
            .zip(active.par_iter())
            .for_each(|((collector, kernel), &up)| {
                if up && !skip.contains(&collector.host()) {
                    collector.sample(kernel, ts);
                }
            });
    }

    /// Drain every file the collectors have rotated out so far (days
    /// already closed). Feeds the overlapped pipeline: rotated files can
    /// be ingested while the fleet keeps collecting the current day.
    pub fn drain_finished(&mut self) -> Vec<(RawFileKey, String)> {
        let mut out = Vec::new();
        for c in &mut self.collectors {
            out.append(&mut c.take_finished());
        }
        out
    }

    /// Flush everything into a flat file list (node order).
    pub fn into_files(self) -> Vec<(RawFileKey, String)> {
        self.collectors
            .into_par_iter()
            .flat_map_iter(|c| c.into_files())
            .collect()
    }

    /// Flush everything into an archive.
    pub fn into_archive(self) -> RawArchive {
        self.into_files().into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_procsim::{NodeActivity, NodeSpec};

    #[test]
    fn fleet_samples_only_active_nodes() {
        let n = 8;
        let mut kernels: Vec<KernelState> =
            (0..n).map(|_| KernelState::new(NodeSpec::ranger())).collect();
        let mut fleet = FleetCollector::new(n);
        let mut active = vec![true; n as usize];
        active[3] = false;
        for k in &mut kernels {
            k.advance(&NodeActivity::idle(), 600.0);
        }
        fleet.sample_all(&kernels, &active, Timestamp(600));
        let archive = fleet.into_archive();
        assert_eq!(archive.host_count(), 7);
        assert!(archive.get(&crate::archive::RawFileKey { host: HostId(3), day: 0 }).is_none());
    }

    #[test]
    fn job_marks_land_on_job_nodes_only() {
        let n = 4;
        let mut kernels: Vec<KernelState> =
            (0..n).map(|_| KernelState::new(NodeSpec::ranger())).collect();
        let mut fleet = FleetCollector::new(n);
        let hosts = [HostId(1), HostId(2)];
        fleet.begin_job(&mut kernels, &hosts, JobId(5), Timestamp(600));
        for k in &mut kernels {
            k.advance(&NodeActivity::idle(), 600.0);
        }
        fleet.sample_all(&kernels, &vec![true; n as usize], Timestamp(1200));
        fleet.end_job(&mut kernels, &hosts, JobId(5), Timestamp(1800));
        let archive = fleet.into_archive();
        for host in 0..n {
            let content = archive
                .get(&crate::archive::RawFileKey { host: HostId(host), day: 0 })
                .unwrap();
            let has_marks = content.contains("% begin 5");
            assert_eq!(has_marks, hosts.contains(&HostId(host)), "host {host}");
        }
    }

    #[test]
    fn parallel_and_serial_sampling_agree() {
        let n = 6u32;
        let build = || -> Vec<KernelState> {
            let mut ks: Vec<KernelState> =
                (0..n).map(|_| KernelState::new(NodeSpec::ranger())).collect();
            for (i, k) in ks.iter_mut().enumerate() {
                let act = NodeActivity {
                    user_frac: 0.1 * i as f64 / n as f64,
                    ..NodeActivity::idle()
                };
                k.advance(&act, 600.0);
            }
            ks
        };
        // Parallel fleet.
        let kernels = build();
        let mut fleet = FleetCollector::new(n);
        fleet.sample_all(&kernels, &vec![true; n as usize], Timestamp(600));
        let par = fleet.into_archive();
        // Serial reference.
        let kernels = build();
        let mut serial = RawArchive::new();
        for (i, k) in kernels.iter().enumerate() {
            let mut c = Collector::new(HostId(i as u32));
            c.sample(k, Timestamp(600));
            for (key, content) in c.into_files() {
                serial.insert(key, content);
            }
        }
        assert_eq!(par.iter().collect::<Vec<_>>(), serial.iter().collect::<Vec<_>>());
    }
}
