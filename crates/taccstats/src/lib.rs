//! `supremm-taccstats`: the TACC_Stats collector (§3 of the paper).
//!
//! TACC_Stats replaces sysstat/SAR for HPC clusters: a single collector
//! that covers every performance-measurement function, writes one unified,
//! consistent, **self-describing plain-text format**, and is **batch-job
//! aware** — records are tagged with the job id so offline job-by-job
//! profile analysis is possible.
//!
//! The pieces, mirroring the real tool's structure:
//!
//! - [`format`] — the on-disk format: `$`-header, `!`-schema lines, job
//!   `%begin`/`%end` marks, timestamped records; writer *and* parser.
//! - [`collector`] — the per-node collection loop: program performance
//!   counters at job begin (never at periodic reads, so user-initiated
//!   measurements survive), sample every device class on the cadence,
//!   rotate raw files per host per day.
//! - [`delta`] — turning cumulative counter samples into per-interval
//!   deltas with register-wrap correction and reboot detection.
//! - [`derive`] — deriving the paper's measured metrics (cpu_idle,
//!   mem_used, cpu_flops, io/net rates...) from adjacent samples.
//! - [`fleet`] — collecting a whole cluster of nodes in parallel.
//! - [`archive`] — the raw-file store with data-volume accounting (the
//!   paper reports ~0.5 MB/node/day).

pub mod archive;
pub mod collector;
pub mod delta;
pub mod derive;
pub mod fleet;
pub mod format;

pub use archive::{RawArchive, RawFileKey};
pub use collector::Collector;
pub use derive::IntervalMetrics;
pub use format::{FileStream, JobMark, ParsedFile, Record, RecordRef, Sample, SampleRef};
