//! The unified, self-describing plain-text format (§3).
//!
//! One raw file per host per day. Layout:
//!
//! ```text
//! $tacc_stats 2.0
//! $hostname c0412
//! $arch amd64_core
//! $cores 16
//! $timestamp 86400
//! !cpu user,E,U=J nice,E,U=J system,E,U=J idle,E,U=J ...
//! !mem MemTotal,U=KB MemFree,U=KB ...
//! ... (one ! line per collected device class)
//! % begin 4321 86400
//! T 86400 4321
//! cpu 0 120 0 13 467 0 0 0
//! cpu 1 118 0 14 468 0 0 0
//! mem 0 8388608 6291456 51200 204800 2097152 2048 1843200 40960
//! ...
//! T 87000 4321
//! ...
//! % end 4321 129600
//! T 129600 -
//! ...
//! ```
//!
//! `$` lines are file metadata, `!` lines carry the schema (making every
//! file parseable with no out-of-band knowledge — the paper's answer to
//! the "many different formats" problem of stock Linux tools), `%` lines
//! are job-boundary marks, `T` lines start a timestamped record, and the
//! remaining lines are `class device value...` in schema order.
//!
//! Two parsing entry points share one implementation:
//!
//! * [`stream`] — the zero-copy scanner. Yields [`SampleRef`]s whose
//!   device names are `&str` slices into the file text and whose values
//!   live in one flat `Vec<u64>` arena per record. This is the ingest
//!   hot path: no per-row allocation, no `BTreeMap` per record.
//! * [`parse`] — the batch API. Runs the same scanner and materialises
//!   owned [`Record`]s, so its error behaviour and output are those of
//!   the streaming layer by construction.
//!
//! Both of those are *strict*: the first malformed line rejects the
//! whole file. Production raw files are routinely truncated or torn by
//! node crashes and collector restarts, so there is a third entry
//! point, [`stream_lenient`], which quarantines corrupt regions instead
//! of failing: bad lines and the records they tear are skipped and
//! accounted in a [`ScanQuarantine`], and every consumed byte is
//! attributed to exactly one of clean/quarantined so downstream layers
//! can verify conservation (`total == clean + quarantined`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use supremm_metrics::schema::DeviceClass;
use supremm_metrics::{JobId, Timestamp};
use supremm_procsim::DeviceReading;

/// Format version emitted by this writer.
pub const FORMAT_VERSION: &str = "2.0";

/// A job-boundary mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobMark {
    Begin { job: JobId, at: Timestamp },
    End { job: JobId, at: Timestamp },
}

/// One timestamped record: every device class instance read at `ts`.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    pub ts: Timestamp,
    /// The job running on the node at sample time; `None` when idle.
    pub job: Option<JobId>,
    pub readings: BTreeMap<DeviceClass, Vec<DeviceReading>>,
}

/// Either a record or a mark, in file order.
#[derive(Debug, Clone, PartialEq)]
pub enum Sample {
    Record(Record),
    Mark(JobMark),
}

/// A fully parsed raw file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFile {
    pub hostname: String,
    pub arch: String,
    pub cores: u32,
    /// First timestamp covered by the file (rotation boundary).
    pub start: Timestamp,
    /// Device classes declared in the schema header, in declaration order.
    pub classes: Vec<DeviceClass>,
    pub samples: Vec<Sample>,
}

impl ParsedFile {
    /// Iterate only the records.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.samples.iter().filter_map(|s| match s {
            Sample::Record(r) => Some(r),
            Sample::Mark(_) => None,
        })
    }

    /// Iterate only the marks.
    pub fn marks(&self) -> impl Iterator<Item = &JobMark> {
        self.samples.iter().filter_map(|s| match s {
            Sample::Mark(m) => Some(m),
            Sample::Record(_) => None,
        })
    }
}

/// Incremental writer for one raw file.
#[derive(Debug, Clone)]
pub struct FileWriter {
    buf: String,
    classes: Vec<DeviceClass>,
}

impl FileWriter {
    /// Start a file: emit `$` metadata and the `!` schema block.
    pub fn new(
        hostname: &str,
        arch: &str,
        cores: u32,
        start: Timestamp,
        classes: &[DeviceClass],
    ) -> FileWriter {
        let mut buf = String::with_capacity(4096);
        let _ = writeln!(buf, "$tacc_stats {FORMAT_VERSION}");
        let _ = writeln!(buf, "$hostname {hostname}");
        let _ = writeln!(buf, "$arch {arch}");
        let _ = writeln!(buf, "$cores {cores}");
        let _ = writeln!(buf, "$timestamp {}", start.0);
        for class in classes {
            let _ = writeln!(buf, "!{} {}", class.name(), class.schema().header());
        }
        FileWriter { buf, classes: classes.to_vec() }
    }

    pub fn write_mark(&mut self, mark: JobMark) {
        match mark {
            JobMark::Begin { job, at } => {
                let _ = writeln!(self.buf, "% begin {} {}", job.0, at.0);
            }
            JobMark::End { job, at } => {
                let _ = writeln!(self.buf, "% end {} {}", job.0, at.0);
            }
        }
    }

    pub fn write_record(&mut self, rec: &Record) {
        match rec.job {
            Some(j) => {
                let _ = writeln!(self.buf, "T {} {}", rec.ts.0, j.0);
            }
            None => {
                let _ = writeln!(self.buf, "T {} -", rec.ts.0);
            }
        }
        // Emit classes in the declared order for deterministic files.
        for class in &self.classes {
            let Some(readings) = rec.readings.get(class) else { continue };
            for r in readings {
                let _ = write!(self.buf, "{} {}", class.name(), r.device);
                for v in &r.values {
                    let _ = write!(self.buf, " {v}");
                }
                self.buf.push('\n');
            }
        }
    }

    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    pub fn finish(self) -> String {
        self.buf
    }

    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

/// Errors the parser can report. Every variant carries the 1-based line
/// number for operator-grade diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    MissingHeader(&'static str),
    BadLine { line: usize, reason: String },
    UnknownClass { line: usize, class: String },
    ArityMismatch { line: usize, class: DeviceClass, got: usize, want: usize },
    RecordBeforeTimestamp { line: usize },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader(h) => write!(f, "missing ${h} header"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::UnknownClass { line, class } => {
                write!(f, "line {line}: unknown device class {class:?}")
            }
            ParseError::ArityMismatch { line, class, got, want } => {
                write!(f, "line {line}: {class} record has {got} values, schema wants {want}")
            }
            ParseError::RecordBeforeTimestamp { line } => {
                write!(f, "line {line}: device record before any T line")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Decimal `u64` parse over raw bytes: digits only, overflow-checked.
/// Roughly 2-3x cheaper than `str::parse` on the short fields this
/// format carries because there is no sign/radix handling and no
/// `ParseIntError` construction on the happy path.
#[inline]
fn parse_u64(s: &str) -> Option<u64> {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &b in bytes {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(d))?;
    }
    Some(v)
}

/// File metadata interned once per file by [`stream`]. String fields
/// borrow the file text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileHeader<'a> {
    pub hostname: &'a str,
    pub arch: &'a str,
    pub cores: u32,
    /// First timestamp covered by the file (rotation boundary).
    pub start: Timestamp,
    /// Device classes declared in the schema header, in declaration order.
    pub classes: Vec<DeviceClass>,
}

/// One device row inside a [`RecordRef`]: a slice of the shared value
/// arena plus the borrowed device name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowMeta<'a> {
    class: DeviceClass,
    device: &'a str,
    start: u32,
    len: u32,
}

/// A borrowed view of one timestamped record. Device names are slices
/// of the file text; all values live in one flat arena, so building a
/// record costs two `Vec` pushes per row and zero string allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordRef<'a> {
    pub ts: Timestamp,
    /// The job running on the node at sample time; `None` when idle.
    pub job: Option<JobId>,
    rows: Vec<RowMeta<'a>>,
    values: Vec<u64>,
}

impl<'a> RecordRef<'a> {
    fn new(ts: Timestamp, job: Option<JobId>, rows_hint: usize, vals_hint: usize) -> RecordRef<'a> {
        RecordRef {
            ts,
            job,
            rows: Vec::with_capacity(rows_hint),
            values: Vec::with_capacity(vals_hint),
        }
    }

    /// Borrow an owned [`Record`] as a `RecordRef`. Rows appear in
    /// class order (then insertion order within a class), which is the
    /// order the writer emits, so derived metrics are unaffected.
    pub fn from_record(rec: &'a Record) -> RecordRef<'a> {
        let mut out = RecordRef::new(rec.ts, rec.job, 0, 0);
        for (&class, readings) in &rec.readings {
            for r in readings {
                let start = out.values.len() as u32;
                out.values.extend_from_slice(&r.values);
                out.rows.push(RowMeta {
                    class,
                    device: r.device.as_str(),
                    start,
                    len: r.values.len() as u32,
                });
            }
        }
        out
    }

    /// All rows in file order: `(class, device, values)`.
    pub fn rows(&self) -> impl Iterator<Item = (DeviceClass, &'a str, &[u64])> + '_ {
        self.rows.iter().map(move |m| {
            (m.class, m.device, &self.values[m.start as usize..(m.start + m.len) as usize])
        })
    }

    /// Rows of one class, in file order.
    pub fn class_rows(&self, class: DeviceClass) -> impl Iterator<Item = (&'a str, &[u64])> + '_ {
        self.rows.iter().filter(move |m| m.class == class).map(move |m| {
            (m.device, &self.values[m.start as usize..(m.start + m.len) as usize])
        })
    }

    /// Values of the row for `device` in `class`, if present.
    pub fn row(&self, class: DeviceClass, device: &str) -> Option<&[u64]> {
        self.rows.iter().find(|m| m.class == class && m.device == device).map(|m| {
            &self.values[m.start as usize..(m.start + m.len) as usize]
        })
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Materialise an owned [`Record`] (the batch [`parse`] path).
    pub fn to_record(&self) -> Record {
        let mut readings: BTreeMap<DeviceClass, Vec<DeviceReading>> = BTreeMap::new();
        for (class, device, values) in self.rows() {
            readings
                .entry(class)
                .or_default()
                .push(DeviceReading { device: device.to_string(), values: values.to_vec() });
        }
        Record { ts: self.ts, job: self.job, readings }
    }
}

/// Either a borrowed record or a mark, in file order.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleRef<'a> {
    Record(RecordRef<'a>),
    Mark(JobMark),
}

/// What a lenient scan skipped: corrupt lines, the records they tore,
/// and how many contiguous corrupt regions the file contained. Byte
/// counts cover everything not attributed to [`FileStream::clean_bytes`],
/// so after a lenient stream is exhausted
/// `clean_bytes + quarantine.bytes == total_bytes` exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanQuarantine {
    /// Lines skipped (corrupt lines plus every line of a torn record).
    pub lines: u64,
    /// Bytes those lines occupied, including their newlines.
    pub bytes: u64,
    /// Records that were started (valid `T` line) but discarded because
    /// a later line of the block was corrupt.
    pub records: u64,
    /// Contiguous corrupt regions. Two bad lines separated by good data
    /// are two regions; a torn block plus its resync tail is one. This
    /// is the scanner-level notion of a coverage gap.
    pub regions: u64,
}

impl ScanQuarantine {
    pub fn is_empty(&self) -> bool {
        *self == ScanQuarantine::default()
    }

    pub fn merge(&mut self, other: &ScanQuarantine) {
        self.lines += other.lines;
        self.bytes += other.bytes;
        self.records += other.records;
        self.regions += other.regions;
    }
}

/// Streaming zero-copy scanner over one raw file. Created by
/// [`stream`] (strict) or [`stream_lenient`]; iterating yields
/// `Result<SampleRef, ParseError>`.
///
/// Strict iteration is fused on error: once a line fails to parse the
/// rest of the file is not scanned, mirroring the batch parser's
/// whole-file rejection. Lenient iteration never yields `Err`: corrupt
/// lines are quarantined (with the record they tear), the scanner
/// resynchronises at the next valid `T` or `%` line, and the damage is
/// accounted in [`FileStream::quarantine`].
#[derive(Debug, Clone)]
pub struct FileStream<'a> {
    header: FileHeader<'a>,
    rest: &'a str,
    line_no: usize,
    current: Option<RecordRef<'a>>,
    stashed_mark: Option<JobMark>,
    failed: bool,
    rows_hint: usize,
    vals_hint: usize,
    strict: bool,
    /// Resync mode: after corruption, skip until the next `T`/`%` line.
    skipping: bool,
    quar: ScanQuarantine,
    /// Bytes/lines consumed by the in-flight record — attributed to
    /// clean on flush or to the quarantine on discard.
    current_bytes: u64,
    current_lines: u64,
    clean_bytes: u64,
    total_bytes: u64,
    records_started: u64,
    records_emitted: u64,
}

/// Scan the `$` metadata and `!` schema block and return a
/// [`FileStream`] positioned at the first data line. The header is
/// interned exactly once per file; everything after this call is
/// zero-copy. Files whose data starts before the required `$` keys are
/// rejected with [`ParseError::MissingHeader`].
pub fn stream(text: &str) -> Result<FileStream<'_>, ParseError> {
    stream_with(text, true)
}

/// Like [`stream`], but the returned scanner quarantines corrupt lines
/// and records instead of failing (see [`FileStream::quarantine`]).
/// Header failures still reject the whole file: without the `$`/`!`
/// block the schema is unknowable and nothing downstream can be
/// trusted, so a file that loses its header loses everything — which is
/// exactly how a crash-truncated first write behaves in production.
pub fn stream_lenient(text: &str) -> Result<FileStream<'_>, ParseError> {
    stream_with(text, false)
}

fn stream_with(text: &str, strict: bool) -> Result<FileStream<'_>, ParseError> {
    let mut hostname = None;
    let mut arch = None;
    let mut cores = None;
    let mut start = None;
    let mut classes: Vec<DeviceClass> = Vec::new();

    let mut rest = text;
    let mut line_no = 1usize;
    loop {
        let Some((line, no, after)) = split_line(rest, line_no) else { break };
        match line.as_bytes().first() {
            Some(b'$') => {
                let mut parts = line[1..].splitn(2, ' ');
                let key = parts.next().unwrap_or("");
                let val = parts.next().unwrap_or("").trim();
                match key {
                    "hostname" => hostname = Some(val),
                    "arch" => arch = Some(val),
                    "cores" => {
                        let n = parse_u64(val)
                            .and_then(|v| u32::try_from(v).ok())
                            .ok_or_else(|| ParseError::BadLine {
                                line: no,
                                reason: format!("bad core count {val:?}"),
                            })?;
                        cores = Some(n);
                    }
                    "timestamp" => {
                        let ts = parse_u64(val).ok_or_else(|| ParseError::BadLine {
                            line: no,
                            reason: format!("bad timestamp {val:?}"),
                        })?;
                        start = Some(Timestamp(ts));
                    }
                    // Version and unknown $-keys are tolerated for
                    // forward compatibility.
                    _ => {}
                }
            }
            Some(b'!') => {
                let name = line[1..].split_ascii_whitespace().next().unwrap_or("");
                let class = DeviceClass::from_name(name).ok_or(ParseError::UnknownClass {
                    line: no,
                    class: name.to_string(),
                })?;
                classes.push(class);
            }
            // First data line: the header block is over.
            _ => break,
        }
        rest = after;
        line_no = no + 1;
    }

    let header = FileHeader {
        hostname: hostname.ok_or(ParseError::MissingHeader("hostname"))?,
        arch: arch.ok_or(ParseError::MissingHeader("arch"))?,
        cores: cores.ok_or(ParseError::MissingHeader("cores"))?,
        start: start.ok_or(ParseError::MissingHeader("timestamp"))?,
        classes,
    };
    Ok(FileStream {
        header,
        rest,
        line_no,
        current: None,
        stashed_mark: None,
        failed: false,
        rows_hint: 0,
        vals_hint: 0,
        strict,
        skipping: false,
        quar: ScanQuarantine::default(),
        current_bytes: 0,
        current_lines: 0,
        // The header block parsed; its bytes are clean by construction.
        clean_bytes: (text.len() - rest.len()) as u64,
        total_bytes: text.len() as u64,
        records_started: 0,
        records_emitted: 0,
    })
}

/// Split the next non-empty line off `rest`. Returns the trimmed line,
/// its 1-based number, and the remaining text.
#[inline]
fn split_line(rest: &str, mut line_no: usize) -> Option<(&str, usize, &str)> {
    let mut rest = rest;
    while !rest.is_empty() {
        let (raw, after) = match rest.as_bytes().iter().position(|&b| b == b'\n') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, ""),
        };
        let line = raw.trim_end();
        if !line.is_empty() {
            return Some((line, line_no, after));
        }
        rest = after;
        line_no += 1;
    }
    None
}

impl<'a> FileStream<'a> {
    pub fn header(&self) -> &FileHeader<'a> {
        &self.header
    }

    /// What a lenient scan has skipped so far. Final only once the
    /// iterator is exhausted. Always empty in strict mode.
    pub fn quarantine(&self) -> ScanQuarantine {
        self.quar
    }

    /// Bytes attributed to cleanly parsed content (header, marks,
    /// emitted records, blank/metadata lines). After a lenient stream
    /// is exhausted, `clean_bytes() + quarantine().bytes` equals
    /// [`FileStream::total_bytes`] exactly.
    pub fn clean_bytes(&self) -> u64 {
        self.clean_bytes
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Records whose `T` line parsed, whether or not they survived.
    /// `records_started == records_emitted + quarantine().records`
    /// once the stream is exhausted.
    pub fn records_started(&self) -> u64 {
        self.records_started
    }

    /// Records actually yielded to the consumer.
    pub fn records_emitted(&self) -> u64 {
        self.records_emitted
    }

    #[inline]
    fn take_line(&mut self) -> Option<(&'a str, usize, u64)> {
        let before = self.rest.len();
        let (line, no, after) = split_line(self.rest, self.line_no)?;
        let consumed = (before - after.len()) as u64;
        self.rest = after;
        self.line_no = no + 1;
        Some((line, no, consumed))
    }

    /// Finish the in-flight record and remember its size so the next
    /// record's arena is allocated with the right capacity up front.
    #[inline]
    fn flush_current(&mut self) -> Option<RecordRef<'a>> {
        let rec = self.current.take()?;
        self.rows_hint = rec.rows.len();
        self.vals_hint = rec.values.len();
        self.clean_bytes += self.current_bytes;
        self.current_bytes = 0;
        self.current_lines = 0;
        self.records_emitted += 1;
        Some(rec)
    }

    /// Quarantine the in-flight record: a later line of its block was
    /// corrupt, so none of it can be trusted.
    fn discard_current(&mut self) {
        if self.current.take().is_some() {
            self.quar.records += 1;
        }
        self.quar.bytes += self.current_bytes;
        self.quar.lines += self.current_lines;
        self.current_bytes = 0;
        self.current_lines = 0;
    }

    /// Quarantine one line; opening a new corrupt region unless already
    /// inside one.
    fn quarantine_line(&mut self, nbytes: u64) {
        self.quar.bytes += nbytes;
        self.quar.lines += 1;
        if !self.skipping {
            self.quar.regions += 1;
        }
    }

    fn parse_mark(line: &str, line_no: usize) -> Result<JobMark, ParseError> {
        let parts: Vec<&str> = line.split_ascii_whitespace().collect();
        if parts.len() != 4 {
            return Err(ParseError::BadLine {
                line: line_no,
                reason: "mark needs `% begin|end <job> <ts>`".into(),
            });
        }
        let job = JobId(parse_u64(parts[2]).ok_or_else(|| ParseError::BadLine {
            line: line_no,
            reason: format!("bad job id {:?}", parts[2]),
        })?);
        let at = Timestamp(parse_u64(parts[3]).ok_or_else(|| ParseError::BadLine {
            line: line_no,
            reason: format!("bad mark timestamp {:?}", parts[3]),
        })?);
        match parts[1] {
            "begin" => Ok(JobMark::Begin { job, at }),
            "end" => Ok(JobMark::End { job, at }),
            other => Err(ParseError::BadLine {
                line: line_no,
                reason: format!("unknown mark kind {other:?}"),
            }),
        }
    }

    fn parse_record_start(
        line: &str,
        line_no: usize,
    ) -> Result<(Timestamp, Option<JobId>), ParseError> {
        let parts: Vec<&str> = line.split_ascii_whitespace().collect();
        if parts.len() != 3 {
            return Err(ParseError::BadLine {
                line: line_no,
                reason: "T line needs `T <ts> <job|->`".into(),
            });
        }
        let ts = Timestamp(parse_u64(parts[1]).ok_or_else(|| ParseError::BadLine {
            line: line_no,
            reason: format!("bad timestamp {:?}", parts[1]),
        })?);
        let job = if parts[2] == "-" {
            None
        } else {
            Some(JobId(parse_u64(parts[2]).ok_or_else(|| ParseError::BadLine {
                line: line_no,
                reason: format!("bad job id {:?}", parts[2]),
            })?))
        };
        Ok((ts, job))
    }

    /// Append one `class device value...` row to the in-flight record,
    /// parsing values straight into the shared arena.
    fn push_row(&mut self, line: &'a str, line_no: usize) -> Result<(), ParseError> {
        let mut parts = line.split_ascii_whitespace();
        let class_name = parts.next().unwrap_or("");
        let class = DeviceClass::from_name(class_name).ok_or_else(|| ParseError::UnknownClass {
            line: line_no,
            class: class_name.to_string(),
        })?;
        let device = parts.next().ok_or_else(|| ParseError::BadLine {
            line: line_no,
            reason: "device record missing instance name".into(),
        })?;
        let want = class.schema().len();
        let Some(rec) = self.current.as_mut() else {
            // Keep the batch parser's error precedence: values and
            // arity are validated before the missing-T check.
            let mut got = 0usize;
            for p in parts {
                parse_u64(p).ok_or_else(|| ParseError::BadLine {
                    line: line_no,
                    reason: format!("bad value {p:?}"),
                })?;
                got += 1;
            }
            if got != want {
                return Err(ParseError::ArityMismatch { line: line_no, class, got, want });
            }
            return Err(ParseError::RecordBeforeTimestamp { line: line_no });
        };
        let start = rec.values.len() as u32;
        let mut got = 0usize;
        for p in parts {
            let v = parse_u64(p).ok_or_else(|| ParseError::BadLine {
                line: line_no,
                reason: format!("bad value {p:?}"),
            })?;
            rec.values.push(v);
            got += 1;
        }
        if got != want {
            return Err(ParseError::ArityMismatch { line: line_no, class, got, want });
        }
        rec.rows.push(RowMeta { class, device, start, len: got as u32 });
        Ok(())
    }
}

impl<'a> Iterator for FileStream<'a> {
    type Item = Result<SampleRef<'a>, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if let Some(mark) = self.stashed_mark.take() {
            return Some(Ok(SampleRef::Mark(mark)));
        }
        loop {
            let Some((line, line_no, nbytes)) = self.take_line() else {
                // Trailing blank lines are clean content.
                self.clean_bytes += self.rest.len() as u64;
                self.rest = "";
                return self.flush_current().map(|rec| Ok(SampleRef::Record(rec)));
            };
            match line.as_bytes()[0] {
                // Metadata or schema lines after the header block carry
                // no data; tolerated as in the batch parser.
                b'$' | b'!' => {
                    self.clean_bytes += nbytes;
                    continue;
                }
                b'%' => match Self::parse_mark(line, line_no) {
                    Ok(mark) => {
                        self.clean_bytes += nbytes;
                        self.skipping = false;
                        if let Some(rec) = self.flush_current() {
                            self.stashed_mark = Some(mark);
                            return Some(Ok(SampleRef::Record(rec)));
                        }
                        return Some(Ok(SampleRef::Mark(mark)));
                    }
                    Err(e) => {
                        if self.strict {
                            self.failed = true;
                            return Some(Err(e));
                        }
                        // A garbled mark loses only itself; the record
                        // block around it is still coherent.
                        self.quarantine_line(nbytes);
                    }
                },
                b'T' => match Self::parse_record_start(line, line_no) {
                    Ok((ts, job)) => {
                        self.records_started += 1;
                        self.skipping = false;
                        let fresh = RecordRef::new(ts, job, self.rows_hint, self.vals_hint);
                        if let Some(rec) = self.flush_current() {
                            self.current = Some(fresh);
                            self.current_bytes = nbytes;
                            self.current_lines = 1;
                            return Some(Ok(SampleRef::Record(rec)));
                        }
                        self.current = Some(fresh);
                        self.current_bytes = nbytes;
                        self.current_lines = 1;
                    }
                    Err(e) => {
                        if self.strict {
                            self.failed = true;
                            return Some(Err(e));
                        }
                        // A bad T line is still a record boundary: the
                        // previous block is complete and emittable; the
                        // rows that follow belong to an unknown
                        // timestamp and are skipped until resync.
                        self.quarantine_line(nbytes);
                        self.skipping = true;
                        if let Some(rec) = self.flush_current() {
                            return Some(Ok(SampleRef::Record(rec)));
                        }
                    }
                },
                _ => {
                    if self.skipping {
                        self.quar.bytes += nbytes;
                        self.quar.lines += 1;
                        continue;
                    }
                    if let Err(e) = self.push_row(line, line_no) {
                        if self.strict {
                            self.failed = true;
                            return Some(Err(e));
                        }
                        // A corrupt row poisons its whole block: discard
                        // the in-flight record and resync at the next
                        // T/% line.
                        self.quarantine_line(nbytes);
                        self.discard_current();
                        self.skipping = true;
                    } else if self.current.is_some() {
                        self.current_bytes += nbytes;
                        self.current_lines += 1;
                    }
                }
            }
        }
    }
}

/// Parse a raw file produced by [`FileWriter`] (or the real tool,
/// modulo the exact header dialect) into owned samples. Thin shim over
/// [`stream`].
pub fn parse(text: &str) -> Result<ParsedFile, ParseError> {
    let s = stream(text)?;
    let header = s.header().clone();
    let mut samples: Vec<Sample> = Vec::new();
    for item in s {
        match item? {
            SampleRef::Record(rec) => samples.push(Sample::Record(rec.to_record())),
            SampleRef::Mark(mark) => samples.push(Sample::Mark(mark)),
        }
    }
    Ok(ParsedFile {
        hostname: header.hostname.to_string(),
        arch: header.arch.to_string(),
        cores: header.cores,
        start: header.start,
        classes: header.classes,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(ts: u64, job: Option<u64>) -> Record {
        let mut readings = BTreeMap::new();
        readings.insert(
            DeviceClass::Cpu,
            vec![
                DeviceReading { device: "0".into(), values: vec![1, 0, 2, 3, 0, 0, 0] },
                DeviceReading { device: "1".into(), values: vec![4, 0, 5, 6, 0, 0, 0] },
            ],
        );
        readings.insert(
            DeviceClass::Lnet,
            vec![DeviceReading { device: "lnet".into(), values: vec![10, 20, 1, 2, 0] }],
        );
        Record { ts: Timestamp(ts), job: job.map(JobId), readings }
    }

    fn write_small_file() -> String {
        let classes = [DeviceClass::Cpu, DeviceClass::Lnet];
        let mut w = FileWriter::new("c0007", "amd64_core", 16, Timestamp(86_400), &classes);
        w.write_mark(JobMark::Begin { job: JobId(42), at: Timestamp(86_400) });
        w.write_record(&sample_record(86_400, Some(42)));
        w.write_record(&sample_record(87_000, Some(42)));
        w.write_mark(JobMark::End { job: JobId(42), at: Timestamp(87_300) });
        w.write_record(&sample_record(87_600, None));
        w.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let text = write_small_file();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.hostname, "c0007");
        assert_eq!(parsed.arch, "amd64_core");
        assert_eq!(parsed.cores, 16);
        assert_eq!(parsed.start, Timestamp(86_400));
        assert_eq!(parsed.classes, vec![DeviceClass::Cpu, DeviceClass::Lnet]);
        assert_eq!(parsed.records().count(), 3);
        assert_eq!(parsed.marks().count(), 2);
        let recs: Vec<_> = parsed.records().collect();
        assert_eq!(recs[0], &sample_record(86_400, Some(42)));
        assert_eq!(recs[2].job, None);
    }

    #[test]
    fn file_is_self_describing() {
        // The schema block alone should let a reader reconstruct every
        // device schema arity — no out-of-band knowledge.
        let text = write_small_file();
        for class in [DeviceClass::Cpu, DeviceClass::Lnet] {
            let tag = format!("!{} ", class.name());
            assert!(text.contains(&tag), "missing schema line for {class}");
        }
        // Each cpu record line has exactly 2 + schema-len fields.
        let cpu_line =
            text.lines().find(|l| l.starts_with("cpu 0")).expect("cpu record present");
        assert_eq!(cpu_line.split_whitespace().count(), 2 + DeviceClass::Cpu.schema().len());
    }

    #[test]
    fn marks_flush_open_records_in_order() {
        let text = write_small_file();
        let parsed = parse(&text).unwrap();
        // Order: begin, rec, rec, end, rec.
        let kinds: Vec<&str> = parsed
            .samples
            .iter()
            .map(|s| match s {
                Sample::Mark(JobMark::Begin { .. }) => "begin",
                Sample::Mark(JobMark::End { .. }) => "end",
                Sample::Record(_) => "rec",
            })
            .collect();
        assert_eq!(kinds, vec!["begin", "rec", "rec", "end", "rec"]);
    }

    #[test]
    fn parse_rejects_arity_mismatch() {
        let bad = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\n!lnet x\nT 0 -\nlnet lnet 1 2\n";
        match parse(bad) {
            Err(ParseError::ArityMismatch { class: DeviceClass::Lnet, got: 2, want: 5, .. }) => {}
            other => panic!("expected arity mismatch, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_record_before_timestamp() {
        let bad = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\ncpu 0 1 2 3 4 5 6 7\n";
        assert!(matches!(parse(bad), Err(ParseError::RecordBeforeTimestamp { line: 5 })));
    }

    #[test]
    fn parse_rejects_missing_headers() {
        assert!(matches!(parse("T 0 -\n"), Err(ParseError::BadLine { .. }) | Err(_)));
        let no_host = "$arch a\n$cores 1\n$timestamp 0\n";
        assert_eq!(parse(no_host), Err(ParseError::MissingHeader("hostname")));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let bad = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\nT 5 bogus\n";
        match parse(bad) {
            Err(ParseError::BadLine { line: 5, .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_dollar_keys_are_tolerated() {
        let text = format!("$flavor vanilla\n{}", write_small_file());
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn idle_records_have_dash_job() {
        let text = write_small_file();
        assert!(text.contains("T 87600 -"));
    }

    #[test]
    fn parse_error_display_is_informative() {
        let e = ParseError::ArityMismatch {
            line: 7,
            class: DeviceClass::Cpu,
            got: 3,
            want: 7,
        };
        let s = e.to_string();
        assert!(s.contains("line 7") && s.contains("cpu"), "{s}");
    }

    #[test]
    fn stream_yields_borrowed_samples_matching_parse() {
        let text = write_small_file();
        let parsed = parse(&text).unwrap();
        let s = stream(&text).unwrap();
        assert_eq!(s.header().hostname, "c0007");
        assert_eq!(s.header().classes, parsed.classes);
        let streamed: Vec<Sample> = s
            .map(|item| match item.unwrap() {
                SampleRef::Record(r) => Sample::Record(r.to_record()),
                SampleRef::Mark(m) => Sample::Mark(m),
            })
            .collect();
        assert_eq!(streamed, parsed.samples);
    }

    #[test]
    fn stream_device_names_borrow_the_file_text() {
        let text = write_small_file();
        let range = text.as_ptr() as usize..text.as_ptr() as usize + text.len();
        for item in stream(&text).unwrap() {
            let SampleRef::Record(rec) = item.unwrap() else { continue };
            for (_, device, _) in rec.rows() {
                let p = device.as_ptr() as usize;
                assert!(range.contains(&p), "device name was copied out of the file text");
            }
        }
    }

    #[test]
    fn stream_is_fused_after_an_error() {
        let bad = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\nT 0 -\nT zz -\nT 9 -\n";
        let mut s = stream(bad).unwrap();
        // The bad T line errors before the in-flight record from line 5
        // can be flushed; corrupt files surface nothing but the error.
        let first = s.next().unwrap();
        assert!(first.is_err(), "expected the bad T line to error, got {first:?}");
        assert!(s.next().is_none(), "stream must fuse after an error");
    }

    #[test]
    fn record_ref_row_lookup() {
        let rec = sample_record(5, Some(7));
        let view = RecordRef::from_record(&rec);
        assert_eq!(view.row_count(), 3);
        assert_eq!(view.row(DeviceClass::Cpu, "1").unwrap()[0], 4);
        assert_eq!(view.row(DeviceClass::Lnet, "lnet").unwrap(), &[10, 20, 1, 2, 0][..]);
        assert!(view.row(DeviceClass::Mem, "0").is_none());
        assert_eq!(view.class_rows(DeviceClass::Cpu).count(), 2);
        assert_eq!(view.to_record(), rec);
    }

    /// Exhaust a lenient stream, returning the clean samples, and
    /// assert the byte + record conservation invariants.
    fn drain_lenient(text: &str) -> (Vec<Sample>, ScanQuarantine) {
        let mut s = stream_lenient(text).unwrap();
        let mut out = Vec::new();
        while let Some(item) = s.next() {
            match item.expect("lenient streams never yield Err") {
                SampleRef::Record(r) => out.push(Sample::Record(r.to_record())),
                SampleRef::Mark(m) => out.push(Sample::Mark(m)),
            }
        }
        let q = s.quarantine();
        assert_eq!(
            s.clean_bytes() + q.bytes,
            s.total_bytes(),
            "byte conservation: every byte is clean or quarantined"
        );
        assert_eq!(
            s.records_started(),
            s.records_emitted() + q.records,
            "record conservation: every started record is emitted or quarantined"
        );
        (out, q)
    }

    #[test]
    fn lenient_on_a_clean_file_matches_strict_exactly() {
        let text = write_small_file();
        let (samples, q) = drain_lenient(&text);
        assert!(q.is_empty());
        assert_eq!(samples, parse(&text).unwrap().samples);
    }

    #[test]
    fn lenient_skips_a_torn_row_and_its_block() {
        // Three records; the middle one's row is torn mid-value.
        let good = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\n!lnet x\n\
            T 0 -\nlnet lnet 1 2 3 4 5\n\
            T 600 -\nlnet lnet 1 2 zz#\n\
            T 1200 -\nlnet lnet 6 7 8 9 10\n";
        let (samples, q) = drain_lenient(good);
        let recs: Vec<&Record> = samples
            .iter()
            .filter_map(|s| match s {
                Sample::Record(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(recs.len(), 2, "torn middle record quarantined");
        assert_eq!(recs[0].ts, Timestamp(0));
        assert_eq!(recs[1].ts, Timestamp(1200));
        assert_eq!(q.records, 1);
        assert_eq!(q.lines, 2, "the T 600 line and its bad row");
        assert_eq!(q.regions, 1);
    }

    #[test]
    fn lenient_resyncs_after_a_bad_t_line() {
        // The bad T orphans its rows; the next good T resyncs.
        let text = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\n!lnet x\n\
            T 0 -\nlnet lnet 1 2 3 4 5\n\
            T zz -\nlnet lnet 9 9 9 9 9\n\
            T 1200 -\nlnet lnet 6 7 8 9 10\n";
        let (samples, q) = drain_lenient(text);
        let recs: Vec<&Record> = samples
            .iter()
            .filter_map(|s| match s {
                Sample::Record(r) => Some(r),
                _ => None,
            })
            .collect();
        // The record before the bad T is complete — it survives.
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, Timestamp(0));
        assert_eq!(q.records, 0, "no started record was torn");
        assert_eq!(q.lines, 2, "bad T plus its orphaned row");
        assert_eq!(q.regions, 1);
    }

    #[test]
    fn lenient_garbled_mark_loses_only_itself() {
        let text = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\n!lnet x\n\
            % begin 7 0\nT 0 7\nlnet lnet 1 2 3 4 5\n% end zz 600\nT 600 -\n\
            lnet lnet 2 3 4 5 6\n";
        let (samples, q) = drain_lenient(text);
        assert_eq!(q.lines, 1);
        assert_eq!(q.records, 0);
        let marks = samples
            .iter()
            .filter(|s| matches!(s, Sample::Mark(_)))
            .count();
        let recs = samples
            .iter()
            .filter(|s| matches!(s, Sample::Record(_)))
            .count();
        assert_eq!((marks, recs), (1, 2), "both records and the good mark survive");
    }

    #[test]
    fn lenient_still_rejects_headerless_files() {
        // No schema → nothing downstream can be trusted.
        assert!(stream_lenient("garbage\nmore garbage\n").is_err());
        assert!(stream_lenient("$hostname h\nT 0 -\n").is_err());
    }

    #[test]
    fn lenient_truncated_tail_quarantines_the_last_record() {
        let full = write_small_file();
        // Cut mid-way through the last record's final row.
        let cut = full.len() - 9;
        let text = &full[..cut];
        let (_, q) = drain_lenient(text);
        assert_eq!(q.records, 1, "truncated final block discarded");
        assert_eq!(q.regions, 1);
    }

    #[test]
    fn strict_and_lenient_flags_do_not_mix_state() {
        let text = write_small_file();
        // Strict path still fails hard on a bad line.
        let bad = format!("{text}T zz -\n");
        let strict_err = stream(&bad).unwrap().find_map(Result::err);
        assert!(strict_err.is_some());
        // Lenient path quarantines the same file.
        let (_, q) = drain_lenient(&bad);
        assert_eq!(q.lines, 1);
    }

    #[test]
    fn parse_u64_rejects_nondigits_and_overflow() {
        assert_eq!(super::parse_u64("0"), Some(0));
        assert_eq!(super::parse_u64("18446744073709551615"), Some(u64::MAX));
        assert_eq!(super::parse_u64("18446744073709551616"), None);
        assert_eq!(super::parse_u64(""), None);
        assert_eq!(super::parse_u64("+1"), None);
        assert_eq!(super::parse_u64("-1"), None);
        assert_eq!(super::parse_u64("1x"), None);
    }
}
