//! The unified, self-describing plain-text format (§3).
//!
//! One raw file per host per day. Layout:
//!
//! ```text
//! $tacc_stats 2.0
//! $hostname c0412
//! $arch amd64_core
//! $cores 16
//! $timestamp 86400
//! !cpu user,E,U=J nice,E,U=J system,E,U=J idle,E,U=J ...
//! !mem MemTotal,U=KB MemFree,U=KB ...
//! ... (one ! line per collected device class)
//! % begin 4321 86400
//! T 86400 4321
//! cpu 0 120 0 13 467 0 0 0
//! cpu 1 118 0 14 468 0 0 0
//! mem 0 8388608 6291456 51200 204800 2097152 2048 1843200 40960
//! ...
//! T 87000 4321
//! ...
//! % end 4321 129600
//! T 129600 -
//! ...
//! ```
//!
//! `$` lines are file metadata, `!` lines carry the schema (making every
//! file parseable with no out-of-band knowledge — the paper's answer to
//! the "many different formats" problem of stock Linux tools), `%` lines
//! are job-boundary marks, `T` lines start a timestamped record, and the
//! remaining lines are `class device value...` in schema order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use supremm_metrics::schema::DeviceClass;
use supremm_metrics::{JobId, Timestamp};
use supremm_procsim::DeviceReading;

/// Format version emitted by this writer.
pub const FORMAT_VERSION: &str = "2.0";

/// A job-boundary mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobMark {
    Begin { job: JobId, at: Timestamp },
    End { job: JobId, at: Timestamp },
}

/// One timestamped record: every device class instance read at `ts`.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    pub ts: Timestamp,
    /// The job running on the node at sample time; `None` when idle.
    pub job: Option<JobId>,
    pub readings: BTreeMap<DeviceClass, Vec<DeviceReading>>,
}

/// Either a record or a mark, in file order.
#[derive(Debug, Clone, PartialEq)]
pub enum Sample {
    Record(Record),
    Mark(JobMark),
}

/// A fully parsed raw file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFile {
    pub hostname: String,
    pub arch: String,
    pub cores: u32,
    /// First timestamp covered by the file (rotation boundary).
    pub start: Timestamp,
    /// Device classes declared in the schema header, in declaration order.
    pub classes: Vec<DeviceClass>,
    pub samples: Vec<Sample>,
}

impl ParsedFile {
    /// Iterate only the records.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.samples.iter().filter_map(|s| match s {
            Sample::Record(r) => Some(r),
            Sample::Mark(_) => None,
        })
    }

    /// Iterate only the marks.
    pub fn marks(&self) -> impl Iterator<Item = &JobMark> {
        self.samples.iter().filter_map(|s| match s {
            Sample::Mark(m) => Some(m),
            Sample::Record(_) => None,
        })
    }
}

/// Incremental writer for one raw file.
#[derive(Debug, Clone)]
pub struct FileWriter {
    buf: String,
    classes: Vec<DeviceClass>,
}

impl FileWriter {
    /// Start a file: emit `$` metadata and the `!` schema block.
    pub fn new(
        hostname: &str,
        arch: &str,
        cores: u32,
        start: Timestamp,
        classes: &[DeviceClass],
    ) -> FileWriter {
        let mut buf = String::with_capacity(4096);
        let _ = writeln!(buf, "$tacc_stats {FORMAT_VERSION}");
        let _ = writeln!(buf, "$hostname {hostname}");
        let _ = writeln!(buf, "$arch {arch}");
        let _ = writeln!(buf, "$cores {cores}");
        let _ = writeln!(buf, "$timestamp {}", start.0);
        for class in classes {
            let _ = writeln!(buf, "!{} {}", class.name(), class.schema().header());
        }
        FileWriter { buf, classes: classes.to_vec() }
    }

    pub fn write_mark(&mut self, mark: JobMark) {
        match mark {
            JobMark::Begin { job, at } => {
                let _ = writeln!(self.buf, "% begin {} {}", job.0, at.0);
            }
            JobMark::End { job, at } => {
                let _ = writeln!(self.buf, "% end {} {}", job.0, at.0);
            }
        }
    }

    pub fn write_record(&mut self, rec: &Record) {
        match rec.job {
            Some(j) => {
                let _ = writeln!(self.buf, "T {} {}", rec.ts.0, j.0);
            }
            None => {
                let _ = writeln!(self.buf, "T {} -", rec.ts.0);
            }
        }
        // Emit classes in the declared order for deterministic files.
        for class in &self.classes {
            let Some(readings) = rec.readings.get(class) else { continue };
            for r in readings {
                let _ = write!(self.buf, "{} {}", class.name(), r.device);
                for v in &r.values {
                    let _ = write!(self.buf, " {v}");
                }
                self.buf.push('\n');
            }
        }
    }

    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    pub fn finish(self) -> String {
        self.buf
    }

    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

/// Errors the parser can report. Every variant carries the 1-based line
/// number for operator-grade diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    MissingHeader(&'static str),
    BadLine { line: usize, reason: String },
    UnknownClass { line: usize, class: String },
    ArityMismatch { line: usize, class: DeviceClass, got: usize, want: usize },
    RecordBeforeTimestamp { line: usize },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader(h) => write!(f, "missing ${h} header"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::UnknownClass { line, class } => {
                write!(f, "line {line}: unknown device class {class:?}")
            }
            ParseError::ArityMismatch { line, class, got, want } => {
                write!(f, "line {line}: {class} record has {got} values, schema wants {want}")
            }
            ParseError::RecordBeforeTimestamp { line } => {
                write!(f, "line {line}: device record before any T line")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a raw file produced by [`FileWriter`] (or the real tool, modulo
/// the exact header dialect).
pub fn parse(text: &str) -> Result<ParsedFile, ParseError> {
    let mut hostname = None;
    let mut arch = None;
    let mut cores = None;
    let mut start = None;
    let mut classes: Vec<DeviceClass> = Vec::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut current: Option<Record> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim_end();
        if line.is_empty() {
            continue;
        }
        match line.as_bytes()[0] {
            b'$' => {
                let mut parts = line[1..].splitn(2, ' ');
                let key = parts.next().unwrap_or("");
                let val = parts.next().unwrap_or("").trim();
                match key {
                    "hostname" => hostname = Some(val.to_string()),
                    "arch" => arch = Some(val.to_string()),
                    "cores" => {
                        cores = Some(val.parse().map_err(|_| ParseError::BadLine {
                            line: line_no,
                            reason: format!("bad core count {val:?}"),
                        })?)
                    }
                    "timestamp" => {
                        start = Some(Timestamp(val.parse().map_err(|_| {
                            ParseError::BadLine {
                                line: line_no,
                                reason: format!("bad timestamp {val:?}"),
                            }
                        })?))
                    }
                    // Version and unknown $-keys are tolerated for forward
                    // compatibility.
                    _ => {}
                }
            }
            b'!' => {
                let name = line[1..].split_whitespace().next().unwrap_or("");
                let class = DeviceClass::from_name(name).ok_or(ParseError::UnknownClass {
                    line: line_no,
                    class: name.to_string(),
                })?;
                classes.push(class);
            }
            b'%' => {
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() != 4 {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        reason: "mark needs `% begin|end <job> <ts>`".into(),
                    });
                }
                let job = JobId(parts[2].parse().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    reason: format!("bad job id {:?}", parts[2]),
                })?);
                let at = Timestamp(parts[3].parse().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    reason: format!("bad mark timestamp {:?}", parts[3]),
                })?);
                let mark = match parts[1] {
                    "begin" => JobMark::Begin { job, at },
                    "end" => JobMark::End { job, at },
                    other => {
                        return Err(ParseError::BadLine {
                            line: line_no,
                            reason: format!("unknown mark kind {other:?}"),
                        })
                    }
                };
                if let Some(rec) = current.take() {
                    samples.push(Sample::Record(rec));
                }
                samples.push(Sample::Mark(mark));
            }
            b'T' => {
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        reason: "T line needs `T <ts> <job|->`".into(),
                    });
                }
                let ts = Timestamp(parts[1].parse().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    reason: format!("bad timestamp {:?}", parts[1]),
                })?);
                let job = if parts[2] == "-" {
                    None
                } else {
                    Some(JobId(parts[2].parse().map_err(|_| ParseError::BadLine {
                        line: line_no,
                        reason: format!("bad job id {:?}", parts[2]),
                    })?))
                };
                if let Some(rec) = current.take() {
                    samples.push(Sample::Record(rec));
                }
                current = Some(Record { ts, job, readings: BTreeMap::new() });
            }
            _ => {
                let mut parts = line.split_whitespace();
                let class_name = parts.next().unwrap_or("");
                let class =
                    DeviceClass::from_name(class_name).ok_or(ParseError::UnknownClass {
                        line: line_no,
                        class: class_name.to_string(),
                    })?;
                let device = parts
                    .next()
                    .ok_or(ParseError::BadLine {
                        line: line_no,
                        reason: "device record missing instance name".into(),
                    })?
                    .to_string();
                let values: Vec<u64> = parts
                    .map(|p| {
                        p.parse().map_err(|_| ParseError::BadLine {
                            line: line_no,
                            reason: format!("bad value {p:?}"),
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let want = class.schema().len();
                if values.len() != want {
                    return Err(ParseError::ArityMismatch {
                        line: line_no,
                        class,
                        got: values.len(),
                        want,
                    });
                }
                let rec =
                    current.as_mut().ok_or(ParseError::RecordBeforeTimestamp { line: line_no })?;
                rec.readings.entry(class).or_default().push(DeviceReading { device, values });
            }
        }
    }
    if let Some(rec) = current.take() {
        samples.push(Sample::Record(rec));
    }

    Ok(ParsedFile {
        hostname: hostname.ok_or(ParseError::MissingHeader("hostname"))?,
        arch: arch.ok_or(ParseError::MissingHeader("arch"))?,
        cores: cores.ok_or(ParseError::MissingHeader("cores"))?,
        start: start.ok_or(ParseError::MissingHeader("timestamp"))?,
        classes,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(ts: u64, job: Option<u64>) -> Record {
        let mut readings = BTreeMap::new();
        readings.insert(
            DeviceClass::Cpu,
            vec![
                DeviceReading { device: "0".into(), values: vec![1, 0, 2, 3, 0, 0, 0] },
                DeviceReading { device: "1".into(), values: vec![4, 0, 5, 6, 0, 0, 0] },
            ],
        );
        readings.insert(
            DeviceClass::Lnet,
            vec![DeviceReading { device: "lnet".into(), values: vec![10, 20, 1, 2, 0] }],
        );
        Record { ts: Timestamp(ts), job: job.map(JobId), readings }
    }

    fn write_small_file() -> String {
        let classes = [DeviceClass::Cpu, DeviceClass::Lnet];
        let mut w = FileWriter::new("c0007", "amd64_core", 16, Timestamp(86_400), &classes);
        w.write_mark(JobMark::Begin { job: JobId(42), at: Timestamp(86_400) });
        w.write_record(&sample_record(86_400, Some(42)));
        w.write_record(&sample_record(87_000, Some(42)));
        w.write_mark(JobMark::End { job: JobId(42), at: Timestamp(87_300) });
        w.write_record(&sample_record(87_600, None));
        w.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let text = write_small_file();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.hostname, "c0007");
        assert_eq!(parsed.arch, "amd64_core");
        assert_eq!(parsed.cores, 16);
        assert_eq!(parsed.start, Timestamp(86_400));
        assert_eq!(parsed.classes, vec![DeviceClass::Cpu, DeviceClass::Lnet]);
        assert_eq!(parsed.records().count(), 3);
        assert_eq!(parsed.marks().count(), 2);
        let recs: Vec<_> = parsed.records().collect();
        assert_eq!(recs[0], &sample_record(86_400, Some(42)));
        assert_eq!(recs[2].job, None);
    }

    #[test]
    fn file_is_self_describing() {
        // The schema block alone should let a reader reconstruct every
        // device schema arity — no out-of-band knowledge.
        let text = write_small_file();
        for class in [DeviceClass::Cpu, DeviceClass::Lnet] {
            let tag = format!("!{} ", class.name());
            assert!(text.contains(&tag), "missing schema line for {class}");
        }
        // Each cpu record line has exactly 2 + schema-len fields.
        let cpu_line =
            text.lines().find(|l| l.starts_with("cpu 0")).expect("cpu record present");
        assert_eq!(cpu_line.split_whitespace().count(), 2 + DeviceClass::Cpu.schema().len());
    }

    #[test]
    fn marks_flush_open_records_in_order() {
        let text = write_small_file();
        let parsed = parse(&text).unwrap();
        // Order: begin, rec, rec, end, rec.
        let kinds: Vec<&str> = parsed
            .samples
            .iter()
            .map(|s| match s {
                Sample::Mark(JobMark::Begin { .. }) => "begin",
                Sample::Mark(JobMark::End { .. }) => "end",
                Sample::Record(_) => "rec",
            })
            .collect();
        assert_eq!(kinds, vec!["begin", "rec", "rec", "end", "rec"]);
    }

    #[test]
    fn parse_rejects_arity_mismatch() {
        let bad = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\n!lnet x\nT 0 -\nlnet lnet 1 2\n";
        match parse(bad) {
            Err(ParseError::ArityMismatch { class: DeviceClass::Lnet, got: 2, want: 5, .. }) => {}
            other => panic!("expected arity mismatch, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_record_before_timestamp() {
        let bad = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\ncpu 0 1 2 3 4 5 6 7\n";
        assert!(matches!(parse(bad), Err(ParseError::RecordBeforeTimestamp { line: 5 })));
    }

    #[test]
    fn parse_rejects_missing_headers() {
        assert!(matches!(parse("T 0 -\n"), Err(ParseError::BadLine { .. }) | Err(_)));
        let no_host = "$arch a\n$cores 1\n$timestamp 0\n";
        assert_eq!(parse(no_host), Err(ParseError::MissingHeader("hostname")));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let bad = "$hostname h\n$arch a\n$cores 1\n$timestamp 0\nT 5 bogus\n";
        match parse(bad) {
            Err(ParseError::BadLine { line: 5, .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_dollar_keys_are_tolerated() {
        let text = format!("$flavor vanilla\n{}", write_small_file());
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn idle_records_have_dash_job() {
        let text = write_small_file();
        assert!(text.contains("T 87600 -"));
    }

    #[test]
    fn parse_error_display_is_informative() {
        let e = ParseError::ArityMismatch {
            line: 7,
            class: DeviceClass::Cpu,
            got: 3,
            want: 7,
        };
        let s = e.to_string();
        assert!(s.contains("line 7") && s.contains("cpu"), "{s}");
    }
}
