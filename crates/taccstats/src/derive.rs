//! Deriving the paper's measured metrics from adjacent raw records.
//!
//! This is the first analysis step of the tool chain: turn a pair of
//! consecutive samples of one node into the per-interval values of the
//! [`ExtendedMetric`] set — CPU state fractions from jiffy deltas, byte
//! rates from I/O and fabric counters, memory gauges, and FLOP/s from the
//! programmed performance counters (validated against user reprogramming:
//! if the select code read back is not the one TACC_Stats programmed, the
//! FLOPS value for the interval is marked invalid rather than misread).

use supremm_metrics::schema::{CounterKind, DeviceClass};
use supremm_metrics::ExtendedMetric;
use supremm_procsim::PerfEvent;

use crate::delta::counter_delta;
use crate::format::{stream_lenient, Record, RecordRef, SampleRef};

/// Per-interval derived metrics for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalMetrics {
    /// Interval length, seconds.
    pub dt_secs: f64,
    /// Values indexed by [`ExtendedMetric::index`]. Fractions for CPU
    /// states, bytes/s for rates, bytes for memory gauges, FLOP/s for
    /// `CpuFlops`.
    values: [f64; ExtendedMetric::ALL.len()],
    /// False when the FLOPS counter was clobbered by a user reprogram
    /// during the interval.
    pub flops_valid: bool,
}

impl IntervalMetrics {
    pub fn get(&self, m: ExtendedMetric) -> f64 {
        self.values[m.index()]
    }

    fn set(&mut self, m: ExtendedMetric, v: f64) {
        self.values[m.index()] = v;
    }
}

/// Sum one event-counter column's delta over all matching device instances.
fn sum_delta(prev: &RecordRef<'_>, cur: &RecordRef<'_>, class: DeviceClass, col: usize) -> f64 {
    let kind = class.schema().entries[col].kind;
    debug_assert!(kind.is_event());
    let mut total = 0u64;
    for (device, values) in cur.class_rows(class) {
        if let Some(pvals) = prev.row(class, device) {
            total += counter_delta(pvals[col], values[col], kind);
        }
    }
    total as f64
}

/// Same, but restricted to one device instance by name.
fn instance_delta(
    prev: &RecordRef<'_>,
    cur: &RecordRef<'_>,
    class: DeviceClass,
    device: &str,
    col: usize,
) -> f64 {
    let kind = class.schema().entries[col].kind;
    let (Some(pvals), Some(cvals)) = (prev.row(class, device), cur.row(class, device)) else {
        return 0.0;
    };
    counter_delta(pvals[col], cvals[col], kind) as f64
}

/// Sum a gauge column over instances of the current record.
fn sum_gauge(cur: &RecordRef<'_>, class: DeviceClass, col: usize) -> f64 {
    debug_assert!(matches!(class.schema().entries[col].kind, CounterKind::Gauge));
    cur.class_rows(class).map(|(_, values)| values[col] as f64).sum()
}

/// Parse a perfctr instance name `"<core>:<c0>,<c1>,<c2>,<c3>"` into the
/// core index and the four select codes.
fn parse_perfctr_device(device: &str) -> Option<(u32, [u16; 4])> {
    let (core, codes) = device.split_once(':')?;
    let core = core.parse().ok()?;
    let mut out = [0u16; 4];
    let mut it = codes.split(',');
    for slot in &mut out {
        *slot = u16::from_str_radix(it.next()?, 16).ok()?;
    }
    if it.next().is_some() {
        return None;
    }
    Some((core, out))
}

/// FLOPS over the interval, `None` if any core's FLOPS slot was
/// reprogrammed (select code mismatch) between the two reads.
fn flops_delta(prev: &RecordRef<'_>, cur: &RecordRef<'_>) -> Option<f64> {
    let flops_code = PerfEvent::Flops.select_code();
    let kind = DeviceClass::PerfCtr.schema().entries[0].kind;
    let mut total = 0u64;
    let mut counted = false;
    for (device, values) in cur.class_rows(DeviceClass::PerfCtr) {
        let (core, cur_codes) = parse_perfctr_device(device)?;
        // Pair by core index: the instance *name* changes when codes do.
        let (pdev, pvals) = prev.class_rows(DeviceClass::PerfCtr).find(|(d, _)| {
            parse_perfctr_device(d).is_some_and(|(pc, _)| pc == core)
        })?;
        let (_, prev_codes) = parse_perfctr_device(pdev)?;
        for slot in 0..4 {
            if cur_codes[slot] == flops_code {
                if prev_codes[slot] != flops_code {
                    // Clobbered mid-interval: invalid.
                    return None;
                }
                total += counter_delta(pvals[slot], values[slot], kind);
                counted = true;
            }
        }
        if cur_codes.iter().all(|&code| code != flops_code) {
            // FLOPS slot gone entirely on this core.
            return None;
        }
    }
    counted.then_some(total as f64)
}

/// Derive interval metrics from two consecutive owned records. Thin
/// wrapper over [`interval_metrics_ref`] for callers holding batch
/// [`Record`]s; the streaming path skips the view-building step.
pub fn interval_metrics(prev: &Record, cur: &Record) -> Option<IntervalMetrics> {
    interval_metrics_ref(&RecordRef::from_record(prev), &RecordRef::from_record(cur))
}

/// Derive interval metrics from two consecutive records of one node.
///
/// Returns `None` when the pair is unusable (non-positive interval).
pub fn interval_metrics_ref(prev: &RecordRef<'_>, cur: &RecordRef<'_>) -> Option<IntervalMetrics> {
    let dt = cur.ts.since(prev.ts).seconds() as f64;
    if dt <= 0.0 {
        return None;
    }
    let mut m = IntervalMetrics {
        dt_secs: dt,
        values: [0.0; ExtendedMetric::ALL.len()],
        flops_valid: false,
    };

    // CPU fractions from jiffy deltas summed over cores.
    let user = sum_delta(prev, cur, DeviceClass::Cpu, 0);
    let nice = sum_delta(prev, cur, DeviceClass::Cpu, 1);
    let system = sum_delta(prev, cur, DeviceClass::Cpu, 2);
    let idle = sum_delta(prev, cur, DeviceClass::Cpu, 3);
    let iowait = sum_delta(prev, cur, DeviceClass::Cpu, 4);
    let total_j = user + nice + system + idle + iowait;
    if total_j > 0.0 {
        m.set(ExtendedMetric::CpuUser, (user + nice) / total_j);
        m.set(ExtendedMetric::CpuSystem, system / total_j);
        m.set(ExtendedMetric::CpuIdle, idle / total_j);
        m.set(ExtendedMetric::CpuIowait, iowait / total_j);
    }

    // Memory gauges (schema stores KiB).
    let used = sum_gauge(cur, DeviceClass::Mem, 4) * 1024.0;
    m.set(ExtendedMetric::MemUsed, used);
    m.set(ExtendedMetric::MemUsedMax, used); // max is taken at aggregation
    m.set(ExtendedMetric::MemCached, sum_gauge(cur, DeviceClass::Mem, 3) * 1024.0);

    // FLOPS from the programmed counters.
    if let Some(flops) = flops_delta(prev, cur) {
        m.set(ExtendedMetric::CpuFlops, flops / dt);
        m.flops_valid = true;
    }

    // Lustre filesystem rates by mount.
    m.set(
        ExtendedMetric::IoScratchRead,
        instance_delta(prev, cur, DeviceClass::Llite, "scratch", 0) / dt,
    );
    m.set(
        ExtendedMetric::IoScratchWrite,
        instance_delta(prev, cur, DeviceClass::Llite, "scratch", 1) / dt,
    );
    m.set(
        ExtendedMetric::IoWorkRead,
        instance_delta(prev, cur, DeviceClass::Llite, "work", 0) / dt,
    );
    m.set(
        ExtendedMetric::IoWorkWrite,
        instance_delta(prev, cur, DeviceClass::Llite, "work", 1) / dt,
    );
    m.set(
        ExtendedMetric::IoShareRead,
        instance_delta(prev, cur, DeviceClass::Llite, "share", 0) / dt,
    );
    m.set(
        ExtendedMetric::IoShareWrite,
        instance_delta(prev, cur, DeviceClass::Llite, "share", 1) / dt,
    );

    // Fabric rates.
    m.set(ExtendedMetric::NetIbTx, sum_delta(prev, cur, DeviceClass::Ib, 0) / dt);
    m.set(ExtendedMetric::NetIbRx, sum_delta(prev, cur, DeviceClass::Ib, 1) / dt);
    m.set(ExtendedMetric::NetLnetTx, sum_delta(prev, cur, DeviceClass::Lnet, 0) / dt);
    m.set(ExtendedMetric::NetLnetRx, sum_delta(prev, cur, DeviceClass::Lnet, 1) / dt);
    m.set(ExtendedMetric::NetEthTx, sum_delta(prev, cur, DeviceClass::Net, 2) / dt);

    // Load average gauge is stored ×100.
    m.set(ExtendedMetric::LoadAvg, sum_gauge(cur, DeviceClass::Ps, 2) / 100.0);

    Some(m)
}

/// Reduce one raw archive file to its per-interval [`ExtendedMetric`]
/// series: for every consecutive same-job record pair, one sample per
/// metric at the timestamp of the later record.
///
/// This is the single reduction shared by the batch store path
/// (`warehouse::tsdbio::store_archive_series`) and the live collector
/// agent (`relay::agent`) — both call it, so a store fed over the wire
/// is bit-identical to one fed from disk by construction. Metrics with
/// no usable interval are omitted; a file that fails to parse reduces
/// to an empty series set (the lenient scanner quarantines torn tails).
pub fn file_extended_series(text: &str) -> Vec<(ExtendedMetric, Vec<(u64, f64)>)> {
    let Ok(mut samples) = stream_lenient(text) else { return Vec::new() };
    let mut batches: Vec<Vec<(u64, f64)>> = vec![Vec::new(); ExtendedMetric::ALL.len()];
    let mut prev: Option<RecordRef<'_>> = None;
    while let Some(item) = samples.next() {
        let Ok(sample) = item else { break };
        let SampleRef::Record(rec) = sample else { continue };
        if let Some(p) = &prev {
            if p.job == rec.job {
                if let Some(m) = interval_metrics_ref(p, &rec) {
                    for (i, metric) in ExtendedMetric::ALL.iter().enumerate() {
                        batches[i].push((rec.ts.0, m.get(*metric)));
                    }
                }
            }
        }
        prev = Some(rec);
    }
    let mut out = Vec::new();
    for (i, metric) in ExtendedMetric::ALL.iter().enumerate() {
        if !batches[i].is_empty() {
            out.push((*metric, std::mem::take(&mut batches[i])));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::{JobId, Timestamp};
    use supremm_procsim::{
        CpuArch, KernelSource, KernelState, NodeActivity, NodeSpec,
    };

    fn snap(kernel: &KernelState, ts: u64, job: Option<u64>) -> Record {
        let mut readings = std::collections::BTreeMap::new();
        for class in DeviceClass::ALL {
            readings.insert(class, kernel.read_class(class));
        }
        Record { ts: Timestamp(ts), job: job.map(JobId), readings }
    }

    fn driven_pair(act: NodeActivity, dt: f64) -> (Record, Record) {
        let mut kernel = KernelState::new(NodeSpec::ranger());
        kernel.program_perfctrs(CpuArch::AmdOpteron.tacc_stats_events());
        let prev = snap(&kernel, 600, Some(1));
        kernel.advance(&act, dt);
        let cur = snap(&kernel, 600 + dt as u64, Some(1));
        (prev, cur)
    }

    #[test]
    fn cpu_fractions_recovered() {
        let act = NodeActivity { user_frac: 0.7, system_frac: 0.1, ..NodeActivity::idle() };
        let (p, c) = driven_pair(act, 600.0);
        let m = interval_metrics(&p, &c).unwrap();
        assert!((m.get(ExtendedMetric::CpuUser) - 0.7).abs() < 0.01);
        assert!((m.get(ExtendedMetric::CpuIdle) - 0.2).abs() < 0.02);
    }

    #[test]
    fn flops_rate_recovered() {
        let act = NodeActivity {
            flops: 5.0e9 * 600.0,
            user_frac: 0.9,
            ..NodeActivity::idle()
        };
        let (p, c) = driven_pair(act, 600.0);
        let m = interval_metrics(&p, &c).unwrap();
        assert!(m.flops_valid);
        let rate = m.get(ExtendedMetric::CpuFlops);
        assert!((rate - 5.0e9).abs() / 5.0e9 < 0.02, "{rate}");
    }

    #[test]
    fn io_rates_split_by_mount() {
        let act = NodeActivity {
            scratch_write_bytes: 600 << 20,
            work_write_bytes: 60 << 20,
            ..NodeActivity::idle()
        };
        let (p, c) = driven_pair(act, 600.0);
        let m = interval_metrics(&p, &c).unwrap();
        let sw = m.get(ExtendedMetric::IoScratchWrite);
        let ww = m.get(ExtendedMetric::IoWorkWrite);
        assert!((sw - (600 << 20) as f64 / 600.0).abs() < 1.0, "{sw}");
        assert!((ww - (60 << 20) as f64 / 600.0).abs() < 1.0, "{ww}");
    }

    #[test]
    fn ib_rate_exact_for_multi_gib_transfers() {
        // 64-bit extended counters: multi-GiB intervals derive exactly.
        let act = NodeActivity { ib_tx_bytes: 5 << 30, ..NodeActivity::idle() };
        let (p, c) = driven_pair(act, 600.0);
        let m = interval_metrics(&p, &c).unwrap();
        let expect = (5u64 << 30) as f64 / 600.0;
        let got = m.get(ExtendedMetric::NetIbTx);
        assert!((got - expect).abs() < 1.0, "got {got}, want {expect}");
    }

    #[test]
    fn flops_rate_survives_48_bit_wrap() {
        // Run the per-core counter close to 2^48, then add more so the
        // second read is below the first — the wrap case the delta logic
        // corrects for mid-job.
        let mut kernel = KernelState::new(NodeSpec::ranger());
        kernel.program_perfctrs(CpuArch::AmdOpteron.tacc_stats_events());
        let near_wrap = ((1u64 << 48) - (1 << 40)) as f64 * 16.0;
        kernel.advance(
            &NodeActivity { flops: near_wrap, user_frac: 0.9, ..NodeActivity::idle() },
            600.0,
        );
        let prev = snap(&kernel, 600, Some(1));
        // Per-node flops this interval; per-core (÷16) it must exceed the
        // 2^40 gap left below the wrap point.
        let extra = 3.2e13;
        kernel.advance(
            &NodeActivity { flops: extra, user_frac: 0.9, ..NodeActivity::idle() },
            600.0,
        );
        let cur = snap(&kernel, 1200, Some(1));
        let prev_v = prev.readings[&DeviceClass::PerfCtr][0].values[0];
        let cur_v = cur.readings[&DeviceClass::PerfCtr][0].values[0];
        assert!(cur_v < prev_v, "test setup must produce a visible wrap");
        let m = interval_metrics(&prev, &cur).unwrap();
        assert!(m.flops_valid);
        let got = m.get(ExtendedMetric::CpuFlops);
        let expect = extra / 600.0;
        assert!((got - expect).abs() / expect < 0.05, "got {got}, want {expect}");
    }

    #[test]
    fn user_reprogram_invalidates_flops_only() {
        let mut kernel = KernelState::new(NodeSpec::ranger());
        kernel.program_perfctrs(CpuArch::AmdOpteron.tacc_stats_events());
        let prev = snap(&kernel, 600, Some(1));
        let act = NodeActivity { flops: 1e12, user_frac: 0.9, ..NodeActivity::idle() };
        kernel.advance(&act, 300.0);
        kernel.perfctrs_mut().user_reprogram(0, PerfEvent::UserDefined(0x123));
        kernel.advance(&act, 300.0);
        let cur = snap(&kernel, 1200, Some(1));
        let m = interval_metrics(&prev, &cur).unwrap();
        assert!(!m.flops_valid);
        assert_eq!(m.get(ExtendedMetric::CpuFlops), 0.0);
        // Everything else still derives.
        assert!(m.get(ExtendedMetric::CpuUser) > 0.8);
    }

    #[test]
    fn mem_used_is_node_level_bytes() {
        let act = NodeActivity { mem_used_bytes: 12 << 30, ..NodeActivity::idle() };
        let (p, c) = driven_pair(act, 600.0);
        let m = interval_metrics(&p, &c).unwrap();
        let used = m.get(ExtendedMetric::MemUsed);
        assert!((used - (12u64 << 30) as f64).abs() < (64 << 20) as f64, "{used}");
    }

    #[test]
    fn zero_dt_is_rejected() {
        let (p, _) = driven_pair(NodeActivity::idle(), 600.0);
        assert!(interval_metrics(&p, &p.clone()).is_none());
    }

    #[test]
    fn perfctr_device_parse() {
        assert_eq!(
            parse_perfctr_device("3:003,029,042,1e0"),
            Some((3, [0x003, 0x029, 0x042, 0x1e0]))
        );
        assert_eq!(parse_perfctr_device("nope"), None);
        assert_eq!(parse_perfctr_device("1:003"), None);
    }
}
