//! Cumulative-counter post-processing: deltas, wrap correction, reset
//! detection.
//!
//! Event counters in the raw files are cumulative reads of hardware/kernel
//! registers. Analysis wants per-interval increments, which requires
//! handling two ugly realities the paper's deployment hit: narrow
//! registers (32-bit IB port counters, 48-bit perf MSRs) that wrap between
//! ten-minute samples, and counters that restart from zero when a node
//! reboots or a module reloads.

use std::collections::BTreeMap;

use supremm_metrics::schema::{CounterKind, DeviceClass};
use supremm_procsim::DeviceReading;

use crate::format::Record;

/// Per-interval values of one device instance: increments for event
/// counters, current values for gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDelta {
    pub device: String,
    pub values: Vec<u64>,
}

/// The increment of a single counter between two reads.
///
/// - Non-decreasing: plain difference.
/// - Decreased on a narrow register: assume exactly one wrap (at a
///   ten-minute cadence more than one wrap of a 32-bit byte counter means
///   >2.3 GB/s sustained per counter, beyond these fabrics).
/// - Decreased on a full-width register: a counter reset (reboot); the
///   best estimate of the increment is the current value itself.
pub fn counter_delta(prev: u64, cur: u64, kind: CounterKind) -> u64 {
    if cur >= prev {
        return cur - prev;
    }
    match kind.wrap_modulus() {
        Some(m) => cur + (m - prev),
        None => cur,
    }
}

/// Compute per-instance deltas between two consecutive records.
///
/// Devices are matched by instance name; instances present in only one
/// record (hot-plug, reprogram renames) are dropped — a conservative
/// choice that can only lose one interval of data.
pub fn record_delta(prev: &Record, cur: &Record) -> BTreeMap<DeviceClass, Vec<DeviceDelta>> {
    let mut out = BTreeMap::new();
    for (&class, cur_readings) in &cur.readings {
        let Some(prev_readings) = prev.readings.get(&class) else { continue };
        let schema = class.schema();
        let prev_by_name: BTreeMap<&str, &DeviceReading> =
            prev_readings.iter().map(|r| (r.device.as_str(), r)).collect();
        let mut deltas = Vec::with_capacity(cur_readings.len());
        for c in cur_readings {
            let Some(p) = prev_by_name.get(c.device.as_str()) else { continue };
            let values = c
                .values
                .iter()
                .zip(&p.values)
                .zip(schema.entries)
                .map(|((&cv, &pv), entry)| match entry.kind {
                    CounterKind::Event { .. } => counter_delta(pv, cv, entry.kind),
                    CounterKind::Gauge => cv,
                })
                .collect();
            deltas.push(DeviceDelta { device: c.device.clone(), values });
        }
        out.insert(class, deltas);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::{JobId, Timestamp};

    #[test]
    fn plain_delta() {
        let k = CounterKind::Event { width: 64 };
        assert_eq!(counter_delta(100, 350, k), 250);
        assert_eq!(counter_delta(0, 0, k), 0);
    }

    #[test]
    fn wrap_correction_32_bit() {
        let k = CounterKind::Event { width: 32 };
        let m = 1u64 << 32;
        // prev near top, cur wrapped past zero.
        assert_eq!(counter_delta(m - 10, 20, k), 30);
        // Exactly at wrap.
        assert_eq!(counter_delta(m - 1, 0, k), 1);
    }

    #[test]
    fn full_width_decrease_is_reset() {
        let k = CounterKind::Event { width: 64 };
        assert_eq!(counter_delta(1_000_000, 250, k), 250);
    }

    #[test]
    fn gauge_passes_through_current_value() {
        let mk = |cpu_vals: Vec<u64>, mem_vals: Vec<u64>| {
            let mut readings = BTreeMap::new();
            readings.insert(
                DeviceClass::Cpu,
                vec![DeviceReading { device: "0".into(), values: cpu_vals }],
            );
            readings.insert(
                DeviceClass::Mem,
                vec![DeviceReading { device: "0".into(), values: mem_vals }],
            );
            Record { ts: Timestamp(0), job: Some(JobId(1)), readings }
        };
        let prev = mk(vec![10, 0, 5, 100, 0, 0, 0], vec![100, 50, 1, 2, 40, 1, 30, 2]);
        let cur = mk(vec![40, 0, 9, 160, 0, 0, 0], vec![100, 20, 2, 4, 70, 1, 60, 2]);
        let d = record_delta(&prev, &cur);
        // Events are differenced...
        assert_eq!(d[&DeviceClass::Cpu][0].values[0], 30);
        assert_eq!(d[&DeviceClass::Cpu][0].values[3], 60);
        // ...gauges are the current reading.
        assert_eq!(d[&DeviceClass::Mem][0].values[4], 70);
    }

    #[test]
    fn unmatched_instances_are_dropped() {
        let mk = |device: &str| {
            let mut readings = BTreeMap::new();
            readings.insert(
                DeviceClass::Irq,
                vec![DeviceReading { device: device.into(), values: vec![5] }],
            );
            Record { ts: Timestamp(0), job: None, readings }
        };
        let d = record_delta(&mk("0"), &mk("1"));
        assert!(d[&DeviceClass::Irq].is_empty());
    }

    #[test]
    fn class_missing_from_prev_is_skipped() {
        let mut readings = BTreeMap::new();
        readings.insert(
            DeviceClass::Irq,
            vec![DeviceReading { device: "0".into(), values: vec![5] }],
        );
        let cur = Record { ts: Timestamp(600), job: None, readings };
        let prev = Record { ts: Timestamp(0), job: None, readings: BTreeMap::new() };
        assert!(record_delta(&prev, &cur).is_empty());
    }
}
