//! The per-node collection loop (§3).
//!
//! TACC_Stats executes at the *beginning* of a job (programs the
//! performance counters, writes a `%begin` mark and a sample), then
//! *periodically* during the job (reads values without reprogramming, so
//! user-initiated counter use is neither clobbered nor misread), and at the
//! *end* of the job. Raw output rotates into one file per host per day.

use supremm_metrics::schema::DeviceClass;
use supremm_metrics::{HostId, JobId, Timestamp};
use supremm_procsim::KernelSource;

use crate::archive::RawFileKey;
use crate::format::{FileWriter, JobMark, Record};

/// Per-node collector state.
#[derive(Debug)]
pub struct Collector {
    host: HostId,
    classes: Vec<DeviceClass>,
    current_job: Option<JobId>,
    writer: Option<(u64, FileWriter)>,
    finished: Vec<(RawFileKey, String)>,
    samples_taken: u64,
}

impl Collector {
    /// A collector gathering every device class.
    pub fn new(host: HostId) -> Collector {
        Collector::with_classes(host, DeviceClass::ALL.to_vec())
    }

    /// A collector gathering only the given classes (the real tool's
    /// modules are individually selectable).
    pub fn with_classes(host: HostId, classes: Vec<DeviceClass>) -> Collector {
        Collector { host, classes, current_job: None, writer: None, finished: Vec::new(), samples_taken: 0 }
    }

    pub fn host(&self) -> HostId {
        self.host
    }

    pub fn current_job(&self) -> Option<JobId> {
        self.current_job
    }

    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    fn writer_for(&mut self, ts: Timestamp, src: &dyn KernelSource) -> &mut FileWriter {
        let day = ts.day();
        let needs_new = match &self.writer {
            Some((d, _)) => *d != day,
            None => true,
        };
        if needs_new {
            if let Some((old_day, w)) = self.writer.take() {
                self.finished.push((RawFileKey { host: self.host, day: old_day }, w.finish()));
            }
            let spec = src.spec();
            let w = FileWriter::new(
                &self.host.hostname(),
                spec.arch.name(),
                spec.cores,
                Timestamp(day * 86_400),
                &self.classes,
            );
            self.writer = Some((day, w));
        }
        &mut self.writer.as_mut().expect("writer just ensured").1
    }

    fn read_record(&self, src: &dyn KernelSource, ts: Timestamp) -> Record {
        let mut readings = std::collections::BTreeMap::new();
        for &class in &self.classes {
            readings.insert(class, src.read_class(class));
        }
        Record { ts, job: self.current_job, readings }
    }

    /// Job start: program the performance counters for this architecture,
    /// write the `%begin` mark and an initial sample.
    pub fn begin_job(&mut self, src: &mut dyn KernelSource, job: JobId, ts: Timestamp) {
        src.program_perfctrs(src.spec().arch.tacc_stats_events());
        self.current_job = Some(job);
        self.writer_for(ts, src).write_mark(JobMark::Begin { job, at: ts });
        self.sample(src, ts);
    }

    /// Periodic sample. Reads only — never reprograms counters.
    pub fn sample(&mut self, src: &dyn KernelSource, ts: Timestamp) {
        let rec = self.read_record(src, ts);
        self.writer_for(ts, src).write_record(&rec);
        self.samples_taken += 1;
    }

    /// Job end: final sample plus the `%end` mark.
    pub fn end_job(&mut self, src: &mut dyn KernelSource, job: JobId, ts: Timestamp) {
        self.sample(src, ts);
        self.writer_for(ts, src).write_mark(JobMark::End { job, at: ts });
        self.current_job = None;
    }

    /// Take the files already rotated out (day boundaries crossed so
    /// far). The in-flight day's writer is untouched, so this can be
    /// called after every step to hand finished files to a streaming
    /// consumer while collection continues.
    pub fn take_finished(&mut self) -> Vec<(RawFileKey, String)> {
        std::mem::take(&mut self.finished)
    }

    /// Flush and return every raw file produced so far.
    pub fn into_files(mut self) -> Vec<(RawFileKey, String)> {
        if let Some((day, w)) = self.writer.take() {
            self.finished.push((RawFileKey { host: self.host, day }, w.finish()));
        }
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{parse, Sample};
    use supremm_procsim::{KernelState, NodeActivity, NodeSpec};

    fn run_one_job(secs_per_slice: u64, slices: u64) -> Vec<(RawFileKey, String)> {
        let mut kernel = KernelState::new(NodeSpec::ranger());
        let mut c = Collector::new(HostId(12));
        let mut ts = Timestamp(600);
        c.begin_job(&mut kernel, JobId(99), ts);
        let act = NodeActivity { user_frac: 0.8, flops: 1e12, ..NodeActivity::idle() };
        for _ in 0..slices {
            kernel.advance(&act, secs_per_slice as f64);
            ts = ts + supremm_metrics::Duration(secs_per_slice);
            c.sample(&kernel, ts);
        }
        c.end_job(&mut kernel, JobId(99), ts);
        c.into_files()
    }

    #[test]
    fn records_are_job_tagged_between_marks() {
        let files = run_one_job(600, 3);
        assert_eq!(files.len(), 1);
        let parsed = parse(&files[0].1).unwrap();
        for rec in parsed.records() {
            assert_eq!(rec.job, Some(JobId(99)));
        }
        let marks: Vec<_> = parsed.marks().collect();
        assert_eq!(marks.len(), 2);
    }

    #[test]
    fn begin_and_end_take_samples() {
        // begin + 3 periodic + end = 5 records.
        let files = run_one_job(600, 3);
        let parsed = parse(&files[0].1).unwrap();
        assert_eq!(parsed.records().count(), 5);
    }

    #[test]
    fn rotation_splits_files_at_midnight() {
        // 2 slices of half a day each crosses one midnight.
        let files = run_one_job(43_200, 3);
        let days: Vec<u64> = files.iter().map(|(k, _)| k.day).collect();
        assert!(days.len() >= 2, "expected rotation, got {days:?}");
        assert!(days.windows(2).all(|w| w[0] < w[1]));
        // Every file parses on its own: rotation must repeat the headers.
        for (_, content) in &files {
            let p = parse(content).unwrap();
            assert_eq!(p.hostname, "c0012");
            assert!(!p.classes.is_empty());
        }
    }

    #[test]
    fn idle_samples_have_no_job() {
        let mut kernel = KernelState::new(NodeSpec::ranger());
        let mut c = Collector::new(HostId(1));
        c.sample(&kernel, Timestamp(600));
        kernel.advance(&NodeActivity::idle(), 600.0);
        c.sample(&kernel, Timestamp(1200));
        let files = c.into_files();
        let parsed = parse(&files[0].1).unwrap();
        assert!(parsed.records().all(|r| r.job.is_none()));
    }

    #[test]
    fn job_begin_programs_flops_counter() {
        let mut kernel = KernelState::new(NodeSpec::ranger());
        let mut c = Collector::new(HostId(1));
        c.begin_job(&mut kernel, JobId(7), Timestamp(600));
        let act = NodeActivity { flops: 1e12, user_frac: 0.9, ..NodeActivity::idle() };
        kernel.advance(&act, 600.0);
        c.sample(&kernel, Timestamp(1200));
        c.end_job(&mut kernel, JobId(7), Timestamp(1800));
        let files = c.into_files();
        let parsed = parse(&files[0].1).unwrap();
        let recs: Vec<_> = parsed.records().collect();
        // The perfctr instance names carry the FLOPS select code (0x003).
        let perf = &recs[1].readings[&DeviceClass::PerfCtr];
        assert!(perf[0].device.contains(":003,"), "{}", perf[0].device);
        // And the counter actually advanced.
        assert!(perf[0].values[0] > 0);
    }

    #[test]
    fn subset_collector_only_writes_selected_classes() {
        let kernel = KernelState::new(NodeSpec::ranger());
        let mut c = Collector::with_classes(HostId(1), vec![DeviceClass::Cpu]);
        c.sample(&kernel, Timestamp(600));
        let files = c.into_files();
        let parsed = parse(&files[0].1).unwrap();
        assert_eq!(parsed.classes, vec![DeviceClass::Cpu]);
        let rec = parsed.records().next().unwrap();
        assert_eq!(rec.readings.len(), 1);
    }

    #[test]
    fn marks_carry_correct_timestamps() {
        let files = run_one_job(600, 1);
        let parsed = parse(&files[0].1).unwrap();
        let mut marks = parsed.marks();
        match marks.next().unwrap() {
            JobMark::Begin { job, at } => {
                assert_eq!((*job, *at), (JobId(99), Timestamp(600)));
            }
            m => panic!("{m:?}"),
        }
        match marks.next().unwrap() {
            JobMark::End { job, at } => {
                assert_eq!((*job, *at), (JobId(99), Timestamp(1200)));
            }
            m => panic!("{m:?}"),
        }
    }

    #[test]
    fn sample_order_is_chronological_within_file() {
        let files = run_one_job(600, 5);
        let parsed = parse(&files[0].1).unwrap();
        let times: Vec<u64> = parsed
            .samples
            .iter()
            .filter_map(|s| match s {
                Sample::Record(r) => Some(r.ts.0),
                _ => None,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }
}
