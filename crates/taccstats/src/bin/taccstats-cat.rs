//! `taccstats-cat` — inspect and validate raw TACC_Stats files.
//!
//! ```text
//! taccstats-cat <file>...          summary of each file
//! taccstats-cat --jobs <file>...   per-job sample counts
//! taccstats-cat --check <file>...  validate only; exit 1 on any error
//! ```
//!
//! The self-describing format means this tool needs no configuration: the
//! schema ships inside every file (§3's answer to the format-zoo problem).

use std::collections::BTreeMap;

use supremm_taccstats::format::{parse, JobMark};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs_mode = false;
    let mut check_mode = false;
    let mut files = Vec::new();
    for a in &args {
        match a.as_str() {
            "--jobs" => jobs_mode = true,
            "--check" => check_mode = true,
            "--help" | "-h" => {
                println!("usage: taccstats-cat [--jobs|--check] <file>...");
                return;
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: taccstats-cat [--jobs|--check] <file>...");
        std::process::exit(2);
    }

    let mut failures = 0;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        match parse(&text) {
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failures += 1;
            }
            Ok(parsed) => {
                if check_mode {
                    println!("{path}: ok");
                    continue;
                }
                println!(
                    "{path}: host {} arch {} cores {} | {} classes, {} records, {} marks",
                    parsed.hostname,
                    parsed.arch,
                    parsed.cores,
                    parsed.classes.len(),
                    parsed.records().count(),
                    parsed.marks().count()
                );
                if jobs_mode {
                    let mut per_job: BTreeMap<u64, (usize, bool, bool)> = BTreeMap::new();
                    for rec in parsed.records() {
                        if let Some(j) = rec.job {
                            per_job.entry(j.0).or_default().0 += 1;
                        }
                    }
                    for mark in parsed.marks() {
                        match mark {
                            JobMark::Begin { job, .. } => {
                                per_job.entry(job.0).or_default().1 = true;
                            }
                            JobMark::End { job, .. } => {
                                per_job.entry(job.0).or_default().2 = true;
                            }
                        }
                    }
                    for (job, (samples, begun, ended)) in per_job {
                        println!(
                            "  job {job}: {samples} samples{}{}",
                            if begun { "" } else { " [no begin mark]" },
                            if ended { "" } else { " [no end mark]" }
                        );
                    }
                }
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
