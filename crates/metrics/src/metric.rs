//! The derived metrics the paper's analyses are built on.
//!
//! §4.2: a correlation analysis over all measured metrics showed many are
//! highly (anti-)correlated, and the paper selects a smallest independent
//! set of **eight key metrics** that describe job execution behaviour.
//! [`KeyMetric`] is that set; [`ExtendedMetric`] is the wider measured set
//! the correlation analysis runs over.

use serde::{Deserialize, Serialize};

/// The eight key metrics of §4.2.
///
/// Units, per the paper's definitions:
/// - `CpuIdle`: fraction of CPU time not used by the job or the system.
/// - `MemUsed`: per-node memory used (bytes), *including* the kernel disk
///   buffer/page cache.
/// - `MemUsedMax`: peak `MemUsed` over all nodes and samples of a job.
/// - `CpuFlops`: floating-point operations per second.
/// - `IoScratchWrite` / `IoWorkWrite`: write rates (bytes/s) to the purged
///   `$SCRATCH` and the quota-limited `$WORK` Lustre filesystems.
/// - `NetIbTx` / `NetLnetTx`: InfiniBand and Lustre-networking transmit
///   rates (bytes/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KeyMetric {
    CpuIdle,
    MemUsed,
    MemUsedMax,
    CpuFlops,
    IoScratchWrite,
    IoWorkWrite,
    NetIbTx,
    NetLnetTx,
}

impl KeyMetric {
    /// All eight, in the order the paper's radar charts list them.
    pub const ALL: [KeyMetric; 8] = [
        KeyMetric::CpuIdle,
        KeyMetric::MemUsed,
        KeyMetric::MemUsedMax,
        KeyMetric::CpuFlops,
        KeyMetric::IoScratchWrite,
        KeyMetric::IoWorkWrite,
        KeyMetric::NetIbTx,
        KeyMetric::NetLnetTx,
    ];

    /// The five metrics used for the persistence analysis (Table 1).
    pub const PERSISTENCE_FIVE: [KeyMetric; 5] = [
        KeyMetric::CpuFlops,
        KeyMetric::MemUsed,
        KeyMetric::IoScratchWrite,
        KeyMetric::NetIbTx,
        KeyMetric::CpuIdle,
    ];

    /// Snake-case name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            KeyMetric::CpuIdle => "cpu_idle",
            KeyMetric::MemUsed => "mem_used",
            KeyMetric::MemUsedMax => "mem_used_max",
            KeyMetric::CpuFlops => "cpu_flops",
            KeyMetric::IoScratchWrite => "io_scratch_write",
            KeyMetric::IoWorkWrite => "io_work_write",
            KeyMetric::NetIbTx => "net_ib_tx",
            KeyMetric::NetLnetTx => "net_lnet_tx",
        }
    }

    pub fn from_name(s: &str) -> Option<KeyMetric> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }

    /// Index into dense per-metric arrays.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&m| m == self).expect("member of ALL")
    }
}

impl std::fmt::Display for KeyMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A dense `f64` vector indexed by [`KeyMetric`]; the shape of a usage
/// profile (one radar chart octagon).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KeyMetricVec(pub [f64; 8]);

impl KeyMetricVec {
    pub fn get(&self, m: KeyMetric) -> f64 {
        self.0[m.index()]
    }

    pub fn set(&mut self, m: KeyMetric, v: f64) {
        self.0[m.index()] = v;
    }

    pub fn map(&self, f: impl Fn(KeyMetric, f64) -> f64) -> KeyMetricVec {
        let mut out = *self;
        for m in KeyMetric::ALL {
            out.set(m, f(m, self.get(m)));
        }
        out
    }

    pub fn iter(&self) -> impl Iterator<Item = (KeyMetric, f64)> + '_ {
        KeyMetric::ALL.into_iter().map(move |m| (m, self.get(m)))
    }
}

/// The wider set of measured metrics the §4.2 correlation analysis runs
/// over. The paper notes e.g. `cpu_user` is strongly anti-correlated with
/// `cpu_idle` and `net_ib_rx` strongly correlated with `net_ib_tx`; those
/// redundant partners live here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ExtendedMetric {
    CpuUser,
    CpuSystem,
    CpuIdle,
    CpuIowait,
    MemUsed,
    MemUsedMax,
    MemCached,
    CpuFlops,
    IoScratchWrite,
    IoScratchRead,
    IoWorkWrite,
    IoWorkRead,
    IoShareWrite,
    IoShareRead,
    NetIbTx,
    NetIbRx,
    NetLnetTx,
    NetLnetRx,
    NetEthTx,
    LoadAvg,
}

impl ExtendedMetric {
    pub const ALL: [ExtendedMetric; 20] = [
        ExtendedMetric::CpuUser,
        ExtendedMetric::CpuSystem,
        ExtendedMetric::CpuIdle,
        ExtendedMetric::CpuIowait,
        ExtendedMetric::MemUsed,
        ExtendedMetric::MemUsedMax,
        ExtendedMetric::MemCached,
        ExtendedMetric::CpuFlops,
        ExtendedMetric::IoScratchWrite,
        ExtendedMetric::IoScratchRead,
        ExtendedMetric::IoWorkWrite,
        ExtendedMetric::IoWorkRead,
        ExtendedMetric::IoShareWrite,
        ExtendedMetric::IoShareRead,
        ExtendedMetric::NetIbTx,
        ExtendedMetric::NetIbRx,
        ExtendedMetric::NetLnetTx,
        ExtendedMetric::NetLnetRx,
        ExtendedMetric::NetEthTx,
        ExtendedMetric::LoadAvg,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ExtendedMetric::CpuUser => "cpu_user",
            ExtendedMetric::CpuSystem => "cpu_system",
            ExtendedMetric::CpuIdle => "cpu_idle",
            ExtendedMetric::CpuIowait => "cpu_iowait",
            ExtendedMetric::MemUsed => "mem_used",
            ExtendedMetric::MemUsedMax => "mem_used_max",
            ExtendedMetric::MemCached => "mem_cached",
            ExtendedMetric::CpuFlops => "cpu_flops",
            ExtendedMetric::IoScratchWrite => "io_scratch_write",
            ExtendedMetric::IoScratchRead => "io_scratch_read",
            ExtendedMetric::IoWorkWrite => "io_work_write",
            ExtendedMetric::IoWorkRead => "io_work_read",
            ExtendedMetric::IoShareWrite => "io_share_write",
            ExtendedMetric::IoShareRead => "io_share_read",
            ExtendedMetric::NetIbTx => "net_ib_tx",
            ExtendedMetric::NetIbRx => "net_ib_rx",
            ExtendedMetric::NetLnetTx => "net_lnet_tx",
            ExtendedMetric::NetLnetRx => "net_lnet_rx",
            ExtendedMetric::NetEthTx => "net_eth_tx",
            ExtendedMetric::LoadAvg => "load_avg",
        }
    }

    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&m| m == self).expect("member of ALL")
    }

    /// The key metric this extended metric reduces to, if it is one of the
    /// independent eight.
    pub fn as_key(self) -> Option<KeyMetric> {
        Some(match self {
            ExtendedMetric::CpuIdle => KeyMetric::CpuIdle,
            ExtendedMetric::MemUsed => KeyMetric::MemUsed,
            ExtendedMetric::MemUsedMax => KeyMetric::MemUsedMax,
            ExtendedMetric::CpuFlops => KeyMetric::CpuFlops,
            ExtendedMetric::IoScratchWrite => KeyMetric::IoScratchWrite,
            ExtendedMetric::IoWorkWrite => KeyMetric::IoWorkWrite,
            ExtendedMetric::NetIbTx => KeyMetric::NetIbTx,
            ExtendedMetric::NetLnetTx => KeyMetric::NetLnetTx,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ExtendedMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_metric_names_round_trip() {
        for m in KeyMetric::ALL {
            assert_eq!(KeyMetric::from_name(m.name()), Some(m));
        }
        assert_eq!(KeyMetric::from_name("bogus"), None);
    }

    #[test]
    fn key_metric_indices_are_dense_and_unique() {
        let mut seen = [false; 8];
        for m in KeyMetric::ALL {
            assert!(!seen[m.index()]);
            seen[m.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn every_key_metric_has_an_extended_twin() {
        for k in KeyMetric::ALL {
            assert!(
                ExtendedMetric::ALL.iter().any(|e| e.as_key() == Some(k)),
                "{k} missing from ExtendedMetric"
            );
        }
    }

    #[test]
    fn key_metric_vec_get_set() {
        let mut v = KeyMetricVec::default();
        v.set(KeyMetric::CpuFlops, 3.5);
        assert_eq!(v.get(KeyMetric::CpuFlops), 3.5);
        assert_eq!(v.get(KeyMetric::CpuIdle), 0.0);
        let doubled = v.map(|_, x| x * 2.0);
        assert_eq!(doubled.get(KeyMetric::CpuFlops), 7.0);
    }

    #[test]
    fn persistence_five_are_key_metrics() {
        for m in KeyMetric::PERSISTENCE_FIVE {
            assert!(KeyMetric::ALL.contains(&m));
        }
    }
}
