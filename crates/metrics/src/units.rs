//! Physical units for schema entries and report axes.

use serde::{Deserialize, Serialize};

/// Unit of a measured quantity.
///
/// TACC_Stats' self-describing format annotates every schema key with its
/// unit (e.g. `U=KB`); reports convert to human scales at render time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Dimensionless count (events, packets, processes...).
    Count,
    /// CPU scheduler ticks (centiseconds on the simulated kernel).
    Jiffies,
    /// Bytes.
    Bytes,
    /// Kibibytes (the unit /proc/meminfo and Lustre stats use).
    Kibibytes,
    /// Floating point operations.
    Flops,
    /// Seconds.
    Seconds,
    /// Fraction in `[0, 1]`.
    Fraction,
}

impl Unit {
    /// Short tag written into schema headers (`U=...`).
    pub fn tag(self) -> &'static str {
        match self {
            Unit::Count => "C",
            Unit::Jiffies => "J",
            Unit::Bytes => "B",
            Unit::Kibibytes => "KB",
            Unit::Flops => "F",
            Unit::Seconds => "s",
            Unit::Fraction => "fr",
        }
    }

    pub fn parse_tag(s: &str) -> Option<Unit> {
        Some(match s {
            "C" => Unit::Count,
            "J" => Unit::Jiffies,
            "B" => Unit::Bytes,
            "KB" => Unit::Kibibytes,
            "F" => Unit::Flops,
            "s" => Unit::Seconds,
            "fr" => Unit::Fraction,
            _ => return None,
        })
    }

    /// Multiplier converting a value in this unit to base SI-ish units
    /// (bytes for sizes, seconds for times, 1.0 otherwise).
    pub fn to_base(self) -> f64 {
        match self {
            Unit::Kibibytes => 1024.0,
            Unit::Jiffies => 0.01,
            _ => 1.0,
        }
    }
}

/// Convenience byte-scale constants used throughout the reports.
pub mod scale {
    pub const KB: f64 = 1024.0;
    pub const MB: f64 = 1024.0 * 1024.0;
    pub const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    pub const GIGA: f64 = 1e9;
    pub const TERA: f64 = 1e12;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for u in [
            Unit::Count,
            Unit::Jiffies,
            Unit::Bytes,
            Unit::Kibibytes,
            Unit::Flops,
            Unit::Seconds,
            Unit::Fraction,
        ] {
            assert_eq!(Unit::parse_tag(u.tag()), Some(u));
        }
        assert_eq!(Unit::parse_tag("nope"), None);
    }

    #[test]
    fn base_conversions() {
        assert_eq!(Unit::Kibibytes.to_base(), 1024.0);
        assert_eq!(Unit::Jiffies.to_base(), 0.01);
        assert_eq!(Unit::Bytes.to_base(), 1.0);
    }
}
