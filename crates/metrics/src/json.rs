//! A minimal, dependency-free JSON value type, parser, and writer.
//!
//! The tool chain exchanges small JSON documents at its edges — Lariat
//! job summaries, XDMoD datasets over HTTP, legacy job-table exports.
//! Those paths need a *real* JSON implementation that works the same in
//! every build environment, and the documents are tiny, so this module
//! trades completeness for zero dependencies:
//!
//! - numbers are `f64` (integers up to 2^53 survive exactly, which
//!   covers every id and counter we serialise);
//! - object keys keep insertion order (no sorting, no dedup);
//! - non-finite numbers serialise as `null`, as in browsers.
//!
//! Ergonomics mirror the common serde_json idioms: `v["rows"][0][1]`
//! indexing (returning `Null` for absent paths) and direct comparison
//! with literals (`v["jobs"] == 3`).

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

/// Nesting depth cap: parsing is recursive, and corrupt or adversarial
/// input must not overflow the stack.
const MAX_DEPTH: u32 = 128;

impl Value {
    /// Parse a JSON document. `None` on any syntax error, trailing
    /// garbage included.
    pub fn parse(s: &str) -> Option<Value> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Num(v as f64)
            }
        }
    )*};
}
from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Build an object value from `(key, value)` pairs, preserving order.
pub fn obj<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

// --- writer ---------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's f64 Display is the shortest round-trip representation.
        out.push_str(&format!("{n}"));
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Value {
    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

// --- parser ---------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &[u8]) -> Option<()> {
    if b.get(*pos..*pos + lit.len())? == lit {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: u32) -> Option<Value> {
    if depth > MAX_DEPTH {
        return None;
    }
    match *b.get(*pos)? {
        b'n' => {
            expect(b, pos, b"null")?;
            Some(Value::Null)
        }
        b't' => {
            expect(b, pos, b"true")?;
            Some(Value::Bool(true))
        }
        b'f' => {
            expect(b, pos, b"false")?;
            Some(Value::Bool(false))
        }
        b'"' => parse_string(b, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Value::Array(items));
            }
            loop {
                skip_ws(b, pos);
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Value::Array(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if *b.get(*pos)? != b':' {
                    return None;
                }
                *pos += 1;
                skip_ws(b, pos);
                let value = parse_value(b, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Value::Object(fields));
                    }
                    _ => return None,
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => None,
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if *b.get(*pos)? != b'"' {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if b.get(*pos + 1..*pos + 3)? != b"\\u" {
                                return None;
                            }
                            let lo = parse_hex4(b, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return None;
                            }
                            *pos += 6;
                            char::from_u32(
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00),
                            )?
                        } else {
                            char::from_u32(hi)?
                        };
                        out.push(c);
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            c if c < 0x20 => return None,
            _ => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while b.get(*pos).map_or(false, |&c| c & 0xC0 == 0x80) {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).ok()?);
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Option<u32> {
    let s = std::str::from_utf8(b.get(at..at + 4)?).ok()?;
    u32::from_str_radix(s, 16).ok()
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while b.get(*pos).map_or(false, |c| c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == digits_start {
        return None;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).map_or(false, |c| c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return None;
        }
    }
    if matches!(b.get(*pos), Some(&b'e') | Some(&b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(&b'+') | Some(&b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).map_or(false, |c| c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return None;
        }
    }
    std::str::from_utf8(&b[start..*pos]).ok()?.parse().ok().map(Value::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null"), Some(Value::Null));
        assert_eq!(Value::parse("true"), Some(Value::Bool(true)));
        assert_eq!(Value::parse("false"), Some(Value::Bool(false)));
        assert_eq!(Value::parse("42"), Some(Value::Num(42.0)));
        assert_eq!(Value::parse("-3.5e2"), Some(Value::Num(-350.0)));
        assert_eq!(Value::parse("\"hi\""), Some(Value::Str("hi".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"rows":[["NAMD",320.5],["AMBER",50]],"n":2}"#).unwrap();
        assert_eq!(v["rows"][0][0], "NAMD");
        assert_eq!(v["rows"][0][1], 320.5);
        assert_eq!(v["rows"][1][1], 50.0);
        assert_eq!(v["n"], 2u64);
        assert!(v["missing"].is_null());
        assert!(v["rows"][9][9].is_null());
    }

    #[test]
    fn round_trips_through_display() {
        let cases = [
            r#"{"a":1,"b":[true,null,"x"],"c":{"d":-2.5}}"#,
            r#"[]"#,
            r#"{}"#,
            r#""escaped \"quote\" and \\ backslash""#,
            r#"{"unicode":"héllo ✓"}"#,
        ];
        for s in cases {
            let v = Value::parse(s).unwrap();
            let printed = v.to_string();
            assert_eq!(Value::parse(&printed), Some(v), "{s}");
        }
    }

    #[test]
    fn string_escapes_decode() {
        let v = Value::parse(r#""a\nb\tc\u0041\u00e9""#).unwrap();
        assert_eq!(v, "a\nb\tcAé");
        let v = Value::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, "😀");
        // Control characters re-escape on output.
        let v = Value::Str("a\u{01}b".into());
        assert_eq!(v.to_string(), r#""a\u0001b""#);
    }

    #[test]
    fn rejects_malformed_documents() {
        for s in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "nul", "tru", "01x", "1 2",
            "\"unterminated", "{\"a\":1,}", "[1]extra", "\"\\u12\"", "\"\\ud800\"",
            "--1", "1.", ".5", "1e",
        ] {
            assert_eq!(Value::parse(s), None, "{s:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let s = "[".repeat(100_000) + &"]".repeat(100_000);
        assert_eq!(Value::parse(&s), None);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::Num(3.25).to_string(), "3.25");
        assert_eq!(Value::Num(-0.5).to_string(), "-0.5");
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(1e16).to_string(), "10000000000000000");
    }

    #[test]
    fn large_u64_survive_exactly_up_to_2_53() {
        let v = Value::parse("9007199254740992").unwrap();
        assert_eq!(v.as_u64(), Some(9007199254740992));
    }

    #[test]
    fn obj_builder_preserves_order() {
        let v = obj([("b", 1.into()), ("a", "x".into()), ("c", Value::Null)]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":"x","c":null}"#);
        assert_eq!(v["b"], 1u64);
    }
}
