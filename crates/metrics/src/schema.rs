//! Self-describing device schemas of the TACC_Stats format (§3).
//!
//! Real TACC_Stats is organised as one module per device class (cpu, mem,
//! net, ib, lustre, ...). Each module declares a *schema*: the ordered list
//! of keys it reports per device instance, each tagged as an event counter
//! (`E`, optionally with a register width `W=32/64` so readers can correct
//! wraparound) or a gauge, plus a unit. The raw files repeat the schema in
//! their header, making every file parseable without out-of-band knowledge.

use crate::units::Unit;
use serde::{Deserialize, Serialize};

/// How a schema key behaves over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterKind {
    /// Monotonically increasing cumulative counter with the given register
    /// width in bits; readers take deltas and must handle wraparound.
    Event { width: u32 },
    /// Instantaneous value; readers use it directly.
    Gauge,
}

impl CounterKind {
    pub fn is_event(self) -> bool {
        matches!(self, CounterKind::Event { .. })
    }

    /// Modulus of the underlying register (`2^width`), `None` for gauges or
    /// full-width 64-bit counters.
    pub fn wrap_modulus(self) -> Option<u64> {
        match self {
            CounterKind::Event { width } if width < 64 => Some(1u64 << width),
            _ => None,
        }
    }
}

/// One key of a device schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaEntry {
    pub key: &'static str,
    pub kind: CounterKind,
    pub unit: Unit,
}

impl SchemaEntry {
    pub const fn event(key: &'static str, width: u32, unit: Unit) -> SchemaEntry {
        SchemaEntry { key, kind: CounterKind::Event { width }, unit }
    }

    pub const fn gauge(key: &'static str, unit: Unit) -> SchemaEntry {
        SchemaEntry { key, kind: CounterKind::Gauge, unit }
    }
}

/// An ordered device schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Schema {
    pub entries: &'static [SchemaEntry],
}

impl Schema {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn position(&self, key: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.key == key)
    }

    /// Header text for this schema, e.g. `user,E,U=J sys,E,U=J idle,E,U=J`.
    pub fn header(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 12);
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(e.key);
            match e.kind {
                CounterKind::Event { width } => {
                    out.push_str(",E");
                    if width != 64 {
                        out.push_str(&format!(",W={width}"));
                    }
                }
                CounterKind::Gauge => {}
            }
            out.push_str(",U=");
            out.push_str(e.unit.tag());
        }
        out
    }
}

/// The device classes TACC_Stats collects (§2 lists them: performance
/// counters per core/socket, block devices, scheduler accounting, IB,
/// Lustre filesystem + network, memory per socket, net devices, NUMA,
/// process stats, SysV shm, ram-backed fs, vm stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Per-core scheduler accounting (user/sys/idle/iowait jiffies).
    Cpu,
    /// Per-socket memory usage.
    Mem,
    /// Per-interface Ethernet device counters.
    Net,
    /// Per-HCA InfiniBand traffic counters.
    Ib,
    /// Per-mount Lustre filesystem client stats.
    Llite,
    /// Lustre networking (LNET) counters.
    Lnet,
    /// Per-device block I/O counters.
    Block,
    /// Virtual memory statistics (paging/swapping).
    Vm,
    /// Per-socket NUMA locality counters.
    Numa,
    /// Process statistics.
    Ps,
    /// SysV shared-memory segment usage.
    SysvShm,
    /// RAM-backed filesystem usage.
    Tmpfs,
    /// Interrupt request counts.
    Irq,
    /// Programmable hardware performance counters (per core).
    PerfCtr,
}

impl DeviceClass {
    pub const ALL: [DeviceClass; 14] = [
        DeviceClass::Cpu,
        DeviceClass::Mem,
        DeviceClass::Net,
        DeviceClass::Ib,
        DeviceClass::Llite,
        DeviceClass::Lnet,
        DeviceClass::Block,
        DeviceClass::Vm,
        DeviceClass::Numa,
        DeviceClass::Ps,
        DeviceClass::SysvShm,
        DeviceClass::Tmpfs,
        DeviceClass::Irq,
        DeviceClass::PerfCtr,
    ];

    /// Type name written into raw-file schema headers.
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Cpu => "cpu",
            DeviceClass::Mem => "mem",
            DeviceClass::Net => "net",
            DeviceClass::Ib => "ib",
            DeviceClass::Llite => "llite",
            DeviceClass::Lnet => "lnet",
            DeviceClass::Block => "block",
            DeviceClass::Vm => "vm",
            DeviceClass::Numa => "numa",
            DeviceClass::Ps => "ps",
            DeviceClass::SysvShm => "sysv_shm",
            DeviceClass::Tmpfs => "tmpfs",
            DeviceClass::Irq => "irq",
            DeviceClass::PerfCtr => "perfctr",
        }
    }

    pub fn from_name(s: &str) -> Option<DeviceClass> {
        Self::ALL.into_iter().find(|d| d.name() == s)
    }

    /// Canonical schema for this device class.
    pub fn schema(self) -> Schema {
        use SchemaEntry as E;
        use Unit::*;
        macro_rules! schema {
            ($($e:expr),* $(,)?) => {{
                const ENTRIES: &[SchemaEntry] = &[$($e),*];
                Schema { entries: ENTRIES }
            }};
        }
        match self {
            DeviceClass::Cpu => schema![
                E::event("user", 64, Jiffies),
                E::event("nice", 64, Jiffies),
                E::event("system", 64, Jiffies),
                E::event("idle", 64, Jiffies),
                E::event("iowait", 64, Jiffies),
                E::event("irq", 64, Jiffies),
                E::event("softirq", 64, Jiffies),
            ],
            DeviceClass::Mem => schema![
                E::gauge("MemTotal", Kibibytes),
                E::gauge("MemFree", Kibibytes),
                E::gauge("Buffers", Kibibytes),
                E::gauge("Cached", Kibibytes),
                E::gauge("MemUsed", Kibibytes),
                E::gauge("Dirty", Kibibytes),
                E::gauge("AnonPages", Kibibytes),
                E::gauge("Slab", Kibibytes),
            ],
            DeviceClass::Net => schema![
                E::event("rx_bytes", 64, Bytes),
                E::event("rx_packets", 64, Count),
                E::event("tx_bytes", 64, Bytes),
                E::event("tx_packets", 64, Count),
                E::event("rx_errors", 64, Count),
                E::event("tx_errors", 64, Count),
            ],
            DeviceClass::Ib => schema![
                // The legacy 32-bit IB port counters alias hopelessly at a
                // ten-minute cadence (QDR wraps 2^32 bytes in ~1 s), so —
                // like the real deployment — we read the 64-bit *extended*
                // port counters. Narrow-register wrap handling is still
                // exercised by the 48-bit performance-counter MSRs.
                E::event("port_xmit_data_64", 64, Bytes),
                E::event("port_rcv_data_64", 64, Bytes),
                E::event("port_xmit_pkts_64", 64, Count),
                E::event("port_rcv_pkts_64", 64, Count),
            ],
            DeviceClass::Llite => schema![
                E::event("read_bytes", 64, Bytes),
                E::event("write_bytes", 64, Bytes),
                E::event("open", 64, Count),
                E::event("close", 64, Count),
                E::event("fsync", 64, Count),
                E::event("getattr", 64, Count),
            ],
            DeviceClass::Lnet => schema![
                E::event("tx_bytes", 64, Bytes),
                E::event("rx_bytes", 64, Bytes),
                E::event("tx_msgs", 64, Count),
                E::event("rx_msgs", 64, Count),
                E::event("drop_count", 64, Count),
            ],
            DeviceClass::Block => schema![
                E::event("rd_sectors", 64, Count),
                E::event("wr_sectors", 64, Count),
                E::event("rd_ios", 64, Count),
                E::event("wr_ios", 64, Count),
                E::event("io_ticks", 64, Jiffies),
            ],
            DeviceClass::Vm => schema![
                E::event("pgpgin", 64, Count),
                E::event("pgpgout", 64, Count),
                E::event("pswpin", 64, Count),
                E::event("pswpout", 64, Count),
                E::event("pgfault", 64, Count),
                E::event("pgmajfault", 64, Count),
            ],
            DeviceClass::Numa => schema![
                E::event("numa_hit", 64, Count),
                E::event("numa_miss", 64, Count),
                E::event("numa_foreign", 64, Count),
                E::event("local_node", 64, Count),
                E::event("other_node", 64, Count),
            ],
            DeviceClass::Ps => schema![
                E::gauge("nr_running", Count),
                E::gauge("nr_threads", Count),
                E::gauge("load_1", Fraction),
                E::gauge("load_5", Fraction),
                E::gauge("load_15", Fraction),
                E::event("ctxt", 64, Count),
                E::event("processes", 64, Count),
            ],
            DeviceClass::SysvShm => schema![
                E::gauge("used_bytes", Bytes),
                E::gauge("segments", Count),
            ],
            DeviceClass::Tmpfs => schema![
                E::gauge("used_bytes", Bytes),
                E::gauge("files", Count),
            ],
            DeviceClass::Irq => schema![E::event("count", 64, Count)],
            DeviceClass::PerfCtr => schema![
                E::event("ctr0", 48, Count),
                E::event("ctr1", 48, Count),
                E::event("ctr2", 48, Count),
                E::event("ctr3", 48, Count),
            ],
        }
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_names_round_trip() {
        for d in DeviceClass::ALL {
            assert_eq!(DeviceClass::from_name(d.name()), Some(d));
        }
        assert_eq!(DeviceClass::from_name("gpu"), None);
    }

    #[test]
    fn schemas_are_nonempty_with_unique_keys() {
        for d in DeviceClass::ALL {
            let s = d.schema();
            assert!(!s.is_empty(), "{d}");
            let mut keys: Vec<_> = s.entries.iter().map(|e| e.key).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), s.len(), "{d} has duplicate keys");
        }
    }

    #[test]
    fn position_finds_keys() {
        let s = DeviceClass::Cpu.schema();
        assert_eq!(s.position("user"), Some(0));
        assert_eq!(s.position("idle"), Some(3));
        assert_eq!(s.position("bogus"), None);
    }

    #[test]
    fn wrap_modulus_only_for_narrow_events() {
        assert_eq!(CounterKind::Event { width: 32 }.wrap_modulus(), Some(1 << 32));
        assert_eq!(CounterKind::Event { width: 64 }.wrap_modulus(), None);
        assert_eq!(CounterKind::Gauge.wrap_modulus(), None);
    }

    #[test]
    fn header_mentions_every_key_and_widths() {
        let h = DeviceClass::PerfCtr.schema().header();
        assert!(h.contains("ctr0,E,W=48,U=C"), "{h}");
        let h = DeviceClass::Cpu.schema().header();
        // 64-bit events omit the width tag.
        assert!(h.contains("user,E,U=J"), "{h}");
        let h = DeviceClass::Mem.schema().header();
        // Gauges carry no E flag.
        assert!(h.contains("MemTotal,U=KB"), "{h}");
    }

    #[test]
    fn perfctr_registers_are_narrow() {
        // Guards the wrap-correction code path in the collector: the 48-bit
        // perf MSRs are the narrow registers that legitimately wrap
        // mid-job; if someone "widens" them the wrap tests stop testing
        // anything real.
        for e in DeviceClass::PerfCtr.schema().entries {
            assert_eq!(e.kind, CounterKind::Event { width: 48 });
        }
    }

    #[test]
    fn ib_uses_extended_64_bit_counters() {
        for e in DeviceClass::Ib.schema().entries {
            assert_eq!(e.kind, CounterKind::Event { width: 64 }, "{}", e.key);
        }
    }
}
