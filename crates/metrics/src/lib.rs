//! `supremm-metrics`: the shared vocabulary of the SUPReMM tool chain.
//!
//! Every other crate in the workspace speaks in terms of the types defined
//! here: timestamps and sampling intervals, job/user/host identifiers, the
//! *eight key metrics* the paper's analyses are built on (§4.2), the wider
//! set of measured metrics used for the correlation analysis, and the
//! self-describing device schemas of the TACC_Stats on-disk format (§3).
//!
//! This crate is dependency-light on purpose: it is the bottom of the
//! workspace dependency graph.

pub mod ids;
pub mod json;
pub mod metric;
pub mod schema;
pub mod time;
pub mod units;

pub use ids::{AppId, HostId, JobId, ScienceField, UserId};
pub use metric::{ExtendedMetric, KeyMetric};
pub use schema::{CounterKind, DeviceClass, Schema, SchemaEntry};
pub use time::{Duration, SampleInterval, Timestamp};
pub use units::Unit;
