//! Identifiers for the entities the tool chain resolves data by.
//!
//! The whole point of TACC_Stats over sysstat/SAR (§1.3) is that measurements
//! are resolved *by job and by user*, so these identifiers thread through
//! every layer from the collector's job-boundary marks to XDMoD dimensions.

use serde::{Deserialize, Serialize};

/// Batch job identifier, as assigned by the scheduler and stamped into every
/// TACC_Stats record between the job's `%begin`/`%end` marks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

/// A user account on the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

/// A compute node. Hostnames render as `c<id>` (e.g. `c0412`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HostId(pub u32);

/// An application code (NAMD, AMBER, GROMACS, ...), as identified by Lariat
/// from the job's executable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AppId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{:05}", self.0)
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app{:03}", self.0)
    }
}

impl HostId {
    /// Canonical hostname used in raw-file names and log lines.
    pub fn hostname(self) -> String {
        format!("c{:04}", self.0)
    }

    /// Inverse of [`HostId::hostname`]; `None` if the string is not one.
    pub fn parse_hostname(s: &str) -> Option<HostId> {
        let digits = s.strip_prefix('c')?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok().map(HostId)
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.hostname())
    }
}

/// Parent science of an allocation, used by the Figure 7a style reports
/// ("average memory usage per core broken up by parent science").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ScienceField {
    MolecularBiosciences,
    Physics,
    MaterialsResearch,
    ChemicalThermalSystems,
    AtmosphericSciences,
    Astronomy,
    EarthSciences,
    ComputerScience,
    Engineering,
    SocialSciences,
}

impl ScienceField {
    pub const ALL: [ScienceField; 10] = [
        ScienceField::MolecularBiosciences,
        ScienceField::Physics,
        ScienceField::MaterialsResearch,
        ScienceField::ChemicalThermalSystems,
        ScienceField::AtmosphericSciences,
        ScienceField::Astronomy,
        ScienceField::EarthSciences,
        ScienceField::ComputerScience,
        ScienceField::Engineering,
        ScienceField::SocialSciences,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ScienceField::MolecularBiosciences => "Molecular Biosciences",
            ScienceField::Physics => "Physics",
            ScienceField::MaterialsResearch => "Materials Research",
            ScienceField::ChemicalThermalSystems => "Chemical, Thermal Systems",
            ScienceField::AtmosphericSciences => "Atmospheric Sciences",
            ScienceField::Astronomy => "Astronomical Sciences",
            ScienceField::EarthSciences => "Earth Sciences",
            ScienceField::ComputerScience => "Computer and Computation Research",
            ScienceField::Engineering => "Engineering",
            ScienceField::SocialSciences => "Social and Economic Science",
        }
    }
}

impl std::fmt::Display for ScienceField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostname_round_trips() {
        for id in [0u32, 7, 412, 3935, 10_000] {
            let h = HostId(id);
            assert_eq!(HostId::parse_hostname(&h.hostname()), Some(h));
        }
    }

    #[test]
    fn parse_hostname_rejects_garbage() {
        for s in ["", "c", "x0412", "c04a2", "0412", "c-1"] {
            assert_eq!(HostId::parse_hostname(s), None, "{s:?}");
        }
    }

    #[test]
    fn science_fields_have_unique_names() {
        let mut names: Vec<_> = ScienceField::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ScienceField::ALL.len());
    }
}
