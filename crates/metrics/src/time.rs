//! Simulation time.
//!
//! The tool chain samples every node on a fixed cadence (ten minutes in the
//! paper's deployment). Everything downstream — persistence offsets, system
//! time series bins, job durations — is expressed in these types, so we keep
//! them small, `Copy`, and arithmetic-friendly.

use serde::{Deserialize, Serialize};

/// Seconds since the simulation epoch (the moment the cluster "boots").
///
/// Real TACC_Stats stamps records with Unix time; a simulation epoch plays
/// the same role without pretending to be wall-clock time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of simulated time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Timestamp {
    pub const EPOCH: Timestamp = Timestamp(0);

    pub fn seconds(self) -> u64 {
        self.0
    }

    pub fn minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    pub fn hours(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Day index since the epoch; used for per-host per-day file rotation.
    pub fn day(self) -> u64 {
        self.0 / 86_400
    }

    /// Elapsed time since `earlier`; saturates at zero rather than wrapping.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    pub fn from_secs(s: u64) -> Duration {
        Duration(s)
    }

    pub fn from_minutes(m: u64) -> Duration {
        Duration(m * 60)
    }

    pub fn from_hours(h: u64) -> Duration {
        Duration(h * 3600)
    }

    pub fn from_days(d: u64) -> Duration {
        Duration(d * 86_400)
    }

    pub fn seconds(self) -> u64 {
        self.0
    }

    pub fn minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    pub fn hours(self) -> f64 {
        self.0 as f64 / 3600.0
    }
}

impl std::ops::Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl std::ops::Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, o: Duration) -> Duration {
        Duration(self.0 + o.0)
    }
}

impl std::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, o: Duration) -> Duration {
        Duration(self.0.saturating_sub(o.0))
    }
}

impl std::ops::Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}s", self.0)
    }
}

/// The collector's sampling cadence.
///
/// The paper's deployment samples every ten minutes; analyses exclude jobs
/// shorter than one interval, because such jobs never receive a periodic
/// sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleInterval(pub Duration);

impl SampleInterval {
    /// The paper's production cadence: ten minutes.
    pub const TEN_MINUTES: SampleInterval = SampleInterval(Duration(600));

    pub fn duration(self) -> Duration {
        self.0
    }

    pub fn seconds(self) -> u64 {
        self.0 .0
    }

    /// Sample instants covering `[start, end)`, aligned to the interval.
    pub fn ticks(self, start: Timestamp, end: Timestamp) -> impl Iterator<Item = Timestamp> {
        let step = self.0 .0.max(1);
        let first = start.0.div_ceil(step) * step;
        (first..end.0).step_by(step as usize).map(Timestamp)
    }
}

impl Default for SampleInterval {
    fn default() -> Self {
        SampleInterval::TEN_MINUTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_round_trips() {
        let t = Timestamp(1000) + Duration::from_minutes(10);
        assert_eq!(t, Timestamp(1600));
        assert_eq!(t.since(Timestamp(1000)), Duration(600));
        assert_eq!((t - Duration(600)), Timestamp(1000));
    }

    #[test]
    fn since_saturates_instead_of_wrapping() {
        assert_eq!(Timestamp(5).since(Timestamp(10)), Duration::ZERO);
        assert_eq!(Timestamp(5) - Duration(10), Timestamp(0));
    }

    #[test]
    fn day_index_rotates_at_midnight() {
        assert_eq!(Timestamp(0).day(), 0);
        assert_eq!(Timestamp(86_399).day(), 0);
        assert_eq!(Timestamp(86_400).day(), 1);
    }

    #[test]
    fn ticks_align_to_interval() {
        let iv = SampleInterval(Duration(600));
        let ticks: Vec<_> = iv.ticks(Timestamp(100), Timestamp(1900)).collect();
        assert_eq!(ticks, vec![Timestamp(600), Timestamp(1200), Timestamp(1800)]);
    }

    #[test]
    fn ticks_empty_when_window_too_short() {
        let iv = SampleInterval::TEN_MINUTES;
        assert_eq!(iv.ticks(Timestamp(601), Timestamp(1199)).count(), 0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(Duration::from_hours(2).minutes(), 120.0);
        assert_eq!(Duration::from_days(1).hours(), 24.0);
        assert_eq!(Timestamp(7200).hours(), 2.0);
    }
}
