//! The simulation driver: arrivals → scheduling → activity → kernels.
//!
//! [`Simulation::step`] advances one sample interval and reports what
//! happened, so the integration layer can drive the TACC_Stats fleet
//! (job begin/end marks, periodic samples) and the log generators exactly
//! the way the real deployment's hooks do.

use rayon::prelude::*;

use supremm_metrics::{Duration, HostId, JobId, Timestamp, UserId};
use supremm_procsim::{KernelState, NodeActivity, PerfEvent};

use crate::apps::AppCatalog;
use crate::config::ClusterConfig;
use crate::job::{CompletedJob, ExitStatus, JobSpec, RunningJob};
use crate::outage::down_frac_at;
use crate::rng::Sampler;
use crate::scheduler::{Reservation, Scheduler};
use crate::users::UserPopulation;

/// What happened during one step. The step advances time to `ts`; ends
/// and starts happen *at* `ts`.
#[derive(Debug)]
pub struct StepEvents {
    pub ts: Timestamp,
    pub started: Vec<(JobSpec, Vec<HostId>)>,
    pub ended: Vec<CompletedJob>,
    /// Nodes whose perf counters were clobbered by a user PAPI session
    /// during this interval.
    pub papi_clobbers: Vec<HostId>,
}

/// One machine plus its workload, stepping in sample intervals.
pub struct Simulation {
    cfg: ClusterConfig,
    catalog: AppCatalog,
    users: UserPopulation,
    user_weights: Vec<f64>,
    kernels: Vec<KernelState>,
    node_up: Vec<bool>,
    running: Vec<RunningJob>,
    scheduler: Scheduler,
    sampler: Sampler,
    now: Timestamp,
    next_job_id: u64,
    total_submitted: u64,
    /// Per-user, per-day campaign intensity: users run in bursts of
    /// activity spanning days (paper-scale "campaigns"), which is the
    /// aperiodic slow component behind Table 1's short-offset
    /// predictability. `campaigns[user][day]` multiplies the user's
    /// submission weight.
    campaigns: Vec<Vec<f64>>,
}

impl Simulation {
    pub fn new(cfg: ClusterConfig) -> Simulation {
        let catalog = AppCatalog::standard();
        let mut sampler = Sampler::new(cfg.seed);
        let users = UserPopulation::generate(&cfg, &catalog, &mut sampler);
        let user_weights = users.activity_weights();
        let kernels =
            (0..cfg.node_count).map(|_| KernelState::new(cfg.node_spec.clone())).collect();
        let scheduler = Scheduler::with_policy(cfg.node_count, cfg.sched_policy);
        // Day-scale AR(1) campaign factor per user (log-space, ρ = 0.75,
        // stationary σ ≈ 0.7): multi-day activity bursts.
        let days = cfg.sim_days as usize + 1;
        let campaigns: Vec<Vec<f64>> = (0..users.len())
            .map(|u| {
                let mut s = sampler.fork(0xCA3F_0000 ^ u as u64);
                let mut x = s.normal(0.0, 0.7);
                (0..days)
                    .map(|_| {
                        x = 0.75 * x + s.normal(0.0, 0.7 * (1.0f64 - 0.75 * 0.75).sqrt());
                        x.exp()
                    })
                    .collect()
            })
            .collect();
        Simulation {
            node_up: vec![true; cfg.node_count as usize],
            kernels,
            users,
            user_weights,
            catalog,
            running: Vec::new(),
            scheduler,
            sampler,
            now: Timestamp::EPOCH,
            next_job_id: 1,
            total_submitted: 0,
            campaigns,
            cfg,
        }
    }

    pub fn cfg(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn catalog(&self) -> &AppCatalog {
        &self.catalog
    }

    pub fn users(&self) -> &UserPopulation {
        &self.users
    }

    pub fn now(&self) -> Timestamp {
        self.now
    }

    pub fn is_done(&self) -> bool {
        self.now >= self.cfg.end()
    }

    pub fn kernels(&self) -> &[KernelState] {
        &self.kernels
    }

    pub fn kernels_mut(&mut self) -> &mut [KernelState] {
        &mut self.kernels
    }

    /// Which nodes are powered on (Figure 8's "active nodes").
    pub fn node_up(&self) -> &[bool] {
        &self.node_up
    }

    pub fn running_jobs(&self) -> usize {
        self.running.len()
    }

    pub fn busy_nodes(&self) -> usize {
        self.running.iter().map(|j| j.hosts.len()).sum()
    }

    pub fn queue_len(&self) -> usize {
        self.scheduler.queue_len()
    }

    pub fn total_submitted(&self) -> u64 {
        self.total_submitted
    }

    /// Draw a fresh job for a weighted-random user, folding in the
    /// current day's campaign intensities.
    fn draw_job(&mut self, submit: Timestamp) -> JobSpec {
        let day = (submit.day() as usize).min(self.campaigns[0].len() - 1);
        let weights: Vec<f64> = self
            .user_weights
            .iter()
            .zip(&self.campaigns)
            .map(|(w, c)| w * c[day])
            .collect();
        let uidx = self.sampler.weighted_index(&weights);
        let user = self.users.get(UserId(uidx as u32)).clone();
        let app_weights: Vec<f64> = user.apps.iter().map(|&(_, w)| w).collect();
        let app_id = user.apps[self.sampler.weighted_index(&app_weights)].0;
        let app = self.catalog.get(app_id);
        let papi_prob =
            app.signature_for(self.cfg.is_lonestar4, 1.0, 1.0).papi_prob;

        let nodes = (self
            .sampler
            .lognormal(user.job_nodes_median, self.cfg.job_nodes_sigma)
            .round() as u32)
            .clamp(1, self.cfg.node_count / 2);
        // Durations quantise to whole sample intervals (the paper's
        // analyses exclude sub-interval jobs anyway).
        let iv = self.cfg.interval.seconds();
        let minutes = self
            .sampler
            .lognormal(user.job_len_median_min, self.cfg.job_len_sigma_job)
            .clamp(10.0, 14.0 * 1440.0);
        let dur_secs = ((minutes * 60.0 / iv as f64).round().max(1.0) as u64) * iv;
        let duration = Duration(dur_secs);
        let requested = Duration(((dur_secs as f64 * self.sampler.uniform_range(1.1, 2.5))
            / iv as f64)
            .ceil() as u64
            * iv);
        let id = JobId(self.next_job_id);
        self.next_job_id += 1;
        JobSpec {
            id,
            user: user.id,
            app: app_id,
            science: user.science,
            nodes,
            submit,
            duration,
            requested,
            papi: self.sampler.chance(papi_prob),
        }
    }

    fn launch(&mut self, spec: JobSpec, hosts: Vec<HostId>, at: Timestamp) -> RunningJob {
        let user = self.users.get(spec.user);
        let app = self.catalog.get(spec.app);
        let sig = app.signature_for(
            self.cfg.is_lonestar4,
            self.cfg.mem_scale,
            self.cfg.idle_scale,
        );
        RunningJob::launch(
            spec,
            hosts,
            at,
            &self.cfg.node_spec,
            &sig,
            user.efficiency_trait,
            user.idle_anomaly,
            &mut self.sampler,
        )
    }

    /// Advance one sample interval.
    pub fn step(&mut self) -> StepEvents {
        let dt = self.cfg.interval.seconds();
        let t1 = self.now + Duration(dt);

        // 1. Arrivals during [now, t1): Poisson at the offered rate,
        //    modulated by the diurnal/weekly submission cycle. Day peaks
        //    over-request the machine (the regime the paper describes);
        //    nights partially drain the backlog — the slow breathing this
        //    induces in every aggregate metric is what Table 1 measures.
        let lambda =
            self.cfg.arrival_rate_per_sec() * self.cfg.load_factor(self.now) * dt as f64;
        let arrivals = self.sampler.poisson(lambda);
        for _ in 0..arrivals {
            let job = self.draw_job(self.now);
            self.total_submitted += 1;
            self.scheduler.submit(job);
        }

        // 2. Generate this interval's activity (serial: mutates each job
        //    once) and apply to kernels in parallel (disjoint nodes).
        let n = self.kernels.len();
        let mut acts: Vec<Option<NodeActivity>> = vec![None; n];
        let mut papi_clobbers = Vec::new();
        for job in &mut self.running {
            if job.papi_fires() {
                papi_clobbers.extend(job.hosts.iter().copied());
            }
            let act = job.next_slice(dt as f64);
            for &h in &job.hosts {
                acts[h.0 as usize] = Some(act);
            }
        }
        for &h in &papi_clobbers {
            self.kernels[h.0 as usize]
                .perfctrs_mut()
                .user_reprogram(0, PerfEvent::UserDefined(0x5aa5));
        }
        let node_up = &self.node_up;
        self.kernels
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, kernel)| {
                if !node_up[i] {
                    return; // powered off
                }
                let act = acts[i].unwrap_or_else(NodeActivity::idle);
                kernel.advance(&act, dt as f64);
            });

        self.now = t1;

        // 3. Natural job completions at t1.
        let mut ended = Vec::new();
        let mut still_running = Vec::new();
        for job in self.running.drain(..) {
            if job.end <= t1 {
                self.scheduler.release(&job.hosts);
                let exit = {
                    // A small tail of abnormal terminations (§4.3.1's
                    // "job completion failure profiles"); jobs flying
                    // close to the memory ceiling fail (OOM) far more
                    // often.
                    let u = self.sampler.uniform();
                    let fail_p = if job.mem_frac > 0.85 { 0.30 } else { 0.03 };
                    if u < fail_p {
                        ExitStatus::Failed
                    } else if u < fail_p + 0.02 {
                        ExitStatus::Cancelled
                    } else {
                        ExitStatus::Completed
                    }
                };
                ended.push(CompletedJob {
                    hosts: job.hosts.clone(),
                    start: job.start,
                    end: t1.min(job.end),
                    exit,
                    mem_frac: job.mem_frac,
                    spec: job.spec,
                });
            } else {
                still_running.push(job);
            }
        }
        self.running = still_running;

        // 4. Outage transitions at t1. The deterministic "first k nodes"
        //    subset keeps runs reproducible.
        let down_frac = down_frac_at(&self.cfg.outages, t1);
        let down_count = (down_frac * n as f64).ceil() as usize;
        let newly_down: Vec<HostId> = (0..n)
            .filter(|&i| i < down_count && self.node_up[i])
            .map(|i| HostId(i as u32))
            .collect();
        if !newly_down.is_empty() {
            // Kill jobs touching newly-down nodes.
            let mut survivors = Vec::new();
            for job in self.running.drain(..) {
                if job.hosts.iter().any(|h| newly_down.contains(h)) {
                    // Surviving nodes of the killed job go back to free.
                    let up_hosts: Vec<HostId> = job
                        .hosts
                        .iter()
                        .copied()
                        .filter(|h| (h.0 as usize) >= down_count)
                        .collect();
                    self.scheduler.release(&up_hosts);
                    ended.push(CompletedJob {
                        hosts: job.hosts.clone(),
                        start: job.start,
                        end: t1,
                        exit: ExitStatus::NodeFailure,
                        mem_frac: job.mem_frac,
                        spec: job.spec,
                    });
                } else {
                    survivors.push(job);
                }
            }
            self.running = survivors;
            self.scheduler.remove_nodes(&newly_down);
            for h in &newly_down {
                self.node_up[h.0 as usize] = false;
            }
        }
        // Nodes coming back up.
        let newly_up: Vec<HostId> = (0..n)
            .filter(|&i| i >= down_count && !self.node_up[i])
            .map(|i| HostId(i as u32))
            .collect();
        if !newly_up.is_empty() {
            for h in &newly_up {
                self.node_up[h.0 as usize] = true;
            }
            self.scheduler.release(&newly_up);
        }

        // 5. Schedule at t1.
        let reservations: Vec<Reservation> = self
            .running
            .iter()
            .map(|j| Reservation { end: j.end, nodes: j.hosts.len() as u32 })
            .collect();
        let placements = self.scheduler.schedule(t1, &reservations);
        let mut started = Vec::with_capacity(placements.len());
        for (spec, hosts) in placements {
            started.push((spec.clone(), hosts.clone()));
            let job = self.launch(spec, hosts, t1);
            self.running.push(job);
        }

        StepEvents { ts: t1, started, ended, papi_clobbers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ClusterConfig {
        ClusterConfig::ranger().scaled(32, 2)
    }

    #[test]
    fn simulation_fills_the_machine() {
        let mut sim = Simulation::new(tiny_cfg());
        // Warm up half a day.
        for _ in 0..72 {
            sim.step();
        }
        // Judge utilisation and backlog over the following half day (any
        // single instant can transiently drain the queue).
        let mut util_sum = 0.0;
        let mut saw_backlog = false;
        for _ in 0..72 {
            sim.step();
            util_sum += sim.busy_nodes() as f64 / 32.0;
            saw_backlog |= sim.queue_len() > 0;
        }
        let util = util_sum / 72.0;
        assert!(util > 0.75, "utilisation {util}");
        assert!(saw_backlog, "over-requested machine keeps a backlog");
    }

    #[test]
    fn events_are_consistent() {
        let mut sim = Simulation::new(tiny_cfg());
        let mut started = 0usize;
        let mut ended = 0usize;
        while !sim.is_done() {
            let ev = sim.step();
            started += ev.started.len();
            ended += ev.ended.len();
            for (spec, hosts) in &ev.started {
                assert_eq!(spec.nodes as usize, hosts.len());
            }
        }
        assert!(started > 50, "{started}");
        assert!(ended > 30, "{ended}");
        assert_eq!(started, ended + sim.running_jobs());
    }

    #[test]
    fn no_node_runs_two_jobs_at_once() {
        let mut sim = Simulation::new(tiny_cfg());
        let mut owner: std::collections::HashMap<HostId, JobId> = Default::default();
        for _ in 0..144 {
            let ev = sim.step();
            for job in &ev.ended {
                for h in &job.hosts {
                    owner.remove(h);
                }
            }
            for (spec, hosts) in &ev.started {
                for h in hosts {
                    let prev = owner.insert(*h, spec.id);
                    assert!(prev.is_none(), "node {h} double-booked");
                }
            }
        }
    }

    #[test]
    fn outage_kills_jobs_and_empties_nodes() {
        let mut cfg = tiny_cfg();
        cfg.outages = vec![crate::outage::Outage {
            start: Timestamp(86_400 / 2),
            duration: Duration::from_hours(3),
            frac: 1.0,
        }];
        let mut sim = Simulation::new(cfg);
        let mut saw_node_failures = false;
        let mut saw_full_down = false;
        while !sim.is_done() {
            let ev = sim.step();
            if ev.ended.iter().any(|j| j.exit == ExitStatus::NodeFailure) {
                saw_node_failures = true;
            }
            if sim.node_up().iter().all(|&u| !u) {
                saw_full_down = true;
                assert_eq!(sim.busy_nodes(), 0);
            }
        }
        assert!(saw_node_failures);
        assert!(saw_full_down);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut sim = Simulation::new(tiny_cfg());
            let mut log = Vec::new();
            for _ in 0..100 {
                let ev = sim.step();
                log.push((
                    ev.started.iter().map(|(s, _)| s.id.0).collect::<Vec<_>>(),
                    ev.ended.iter().map(|j| j.spec.id.0).collect::<Vec<_>>(),
                ));
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn job_durations_are_interval_aligned_and_bounded() {
        let mut sim = Simulation::new(tiny_cfg());
        let iv = sim.cfg().interval.seconds();
        for _ in 0..144 {
            let ev = sim.step();
            for (spec, _) in &ev.started {
                assert_eq!(spec.duration.seconds() % iv, 0);
                assert!(spec.duration.seconds() >= iv);
                assert!(spec.requested >= spec.duration);
            }
        }
    }

    #[test]
    fn papi_clobbers_eventually_happen() {
        // PAPI jobs are a few percent of submissions, so give the test a
        // week of a busy 64-node machine (seed pinned, fully
        // deterministic).
        let mut sim = Simulation::new(ClusterConfig::ranger().scaled(64, 7).with_seed(1234));
        let mut clobbers = 0;
        while !sim.is_done() {
            clobbers += sim.step().papi_clobbers.len();
        }
        assert!(clobbers > 0);
    }
}
