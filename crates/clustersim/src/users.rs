//! The simulated user population.
//!
//! §4.3.1: ~2000 users submitted jobs to Ranger over the study period,
//! with usage profiles that vary wildly even among the heaviest users
//! (Figure 2). The population model gives each user a heavy-tailed
//! activity weight (a few users dominate node-hours), one or two
//! preferred applications, a science field, personal job size/length
//! scales and an efficiency trait. A small injected fraction carries the
//! pathological-idle trait that produces the circled outliers of
//! Figures 4/5 (87–89 % of consumed node-hours spent idle, all other
//! metrics normal).

use supremm_metrics::{AppId, ScienceField, UserId};

use crate::apps::AppCatalog;
use crate::config::ClusterConfig;
use crate::rng::Sampler;

/// One user account.
#[derive(Debug, Clone)]
pub struct UserProfile {
    pub id: UserId,
    /// Relative submission intensity (Pareto-tailed).
    pub activity_weight: f64,
    /// Preferred applications with choice weights.
    pub apps: Vec<(AppId, f64)>,
    pub science: ScienceField,
    /// Median job length for this user, minutes.
    pub job_len_median_min: f64,
    /// Median nodes per job for this user.
    pub job_nodes_median: f64,
    /// Multiplier on the application idle fraction: <1 = tuned code,
    /// >1 = sloppier than average.
    pub efficiency_trait: f64,
    /// When set, the user's jobs idle at this fraction regardless of the
    /// application — the Figure 4/5 pathology (e.g. requesting whole
    /// nodes and using one core, or spin-waiting on a dead rank).
    pub idle_anomaly: Option<f64>,
}

/// The whole population.
#[derive(Debug, Clone)]
pub struct UserPopulation {
    users: Vec<UserProfile>,
}

impl UserPopulation {
    /// Generate a population for a cluster config.
    pub fn generate(cfg: &ClusterConfig, catalog: &AppCatalog, sampler: &mut Sampler) -> UserPopulation {
        let n = cfg.users as usize;
        let anomaly_count = ((n as f64 * cfg.anomaly_user_frac).round() as usize).max(1);
        let app_weights = catalog.popularity_weights();
        let mut users = Vec::with_capacity(n);
        for i in 0..n {
            let mut s = sampler.fork(i as u64);
            // The *last* `anomaly_count` users get the idle pathology;
            // picking by index keeps them deterministic across runs.
            let is_anomalous = i >= n - anomaly_count;
            // Anomalous users run a home-grown code (the Figure 5
            // pathology is a broken custom MPI job, not a community
            // application — keeping Figure 3's app profiles clean).
            let primary = if is_anomalous {
                catalog.by_name("CustomMPI").expect("catalog app").id
            } else {
                AppId(s.weighted_index(&app_weights) as u32)
            };
            let mut apps = vec![(primary, 0.8)];
            if !is_anomalous && s.chance(0.5) {
                let secondary = AppId(s.weighted_index(&app_weights) as u32);
                if secondary != primary {
                    apps.push((secondary, 0.2));
                }
            }
            // Science follows the primary application's field mix.
            let sci_weights: Vec<f64> =
                catalog.get(primary).science.iter().map(|&(_, w)| w).collect();
            let science = catalog.get(primary).science[s.weighted_index(&sci_weights)].0;

            let idle_anomaly = is_anomalous.then(|| s.uniform_range(0.82, 0.92));

            // The paper's circled anomalies are heavy consumers; give
            // anomalous users enough activity to register on Figure 4.
            let mut activity_weight = s.pareto(1.0, 1.15);
            if idle_anomaly.is_some() {
                activity_weight = activity_weight.max(4.0);
            }
            users.push(UserProfile {
                id: UserId(i as u32),
                activity_weight,
                apps,
                science,
                job_len_median_min: s
                    .lognormal(cfg.job_len_median_min, cfg.job_len_sigma_user)
                    .clamp(12.0, 2880.0),
                job_nodes_median: s
                    .lognormal(cfg.job_nodes_median, 0.7)
                    .clamp(1.0, cfg.node_count as f64 / 4.0),
                efficiency_trait: s.lognormal(1.0, 0.35).clamp(0.3, 3.0),
                idle_anomaly,
            });
        }
        UserPopulation { users }
    }

    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    pub fn len(&self) -> usize {
        self.users.len()
    }

    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    pub fn get(&self, id: UserId) -> &UserProfile {
        &self.users[id.0 as usize]
    }

    /// Submission weights for arrival sampling.
    pub fn activity_weights(&self) -> Vec<f64> {
        self.users.iter().map(|u| u.activity_weight).collect()
    }

    /// The anomalous users (for test assertions and report cross-checks).
    pub fn anomalous(&self) -> impl Iterator<Item = &UserProfile> {
        self.users.iter().filter(|u| u.idle_anomaly.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> UserPopulation {
        let cfg = ClusterConfig::ranger();
        let catalog = AppCatalog::standard();
        let mut s = Sampler::new(cfg.seed);
        UserPopulation::generate(&cfg, &catalog, &mut s)
    }

    #[test]
    fn population_size_matches_config() {
        let p = population();
        assert_eq!(p.len(), ClusterConfig::ranger().users as usize);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = population();
        let b = population();
        for (ua, ub) in a.users().iter().zip(b.users()) {
            assert_eq!(ua.activity_weight, ub.activity_weight);
            assert_eq!(ua.job_len_median_min, ub.job_len_median_min);
            assert_eq!(ua.idle_anomaly, ub.idle_anomaly);
        }
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let p = population();
        let mut w = p.activity_weights();
        w.sort_by(f64::total_cmp);
        w.reverse();
        let total: f64 = w.iter().sum();
        let top10: f64 = w.iter().take(p.len() / 10).sum();
        assert!(
            top10 / total > 0.35,
            "top 10% of users should dominate, got {}",
            top10 / total
        );
    }

    #[test]
    fn anomalous_users_exist_and_idle_hard() {
        let p = population();
        let anomalous: Vec<_> = p.anomalous().collect();
        assert!(!anomalous.is_empty());
        for u in &anomalous {
            let idle = u.idle_anomaly.unwrap();
            assert!((0.82..0.92).contains(&idle), "{idle}");
        }
        // Rough count matches the config fraction.
        let expect = (ClusterConfig::ranger().users as f64 * 0.02).round() as usize;
        assert_eq!(anomalous.len(), expect.max(1));
    }

    #[test]
    fn app_preferences_are_valid_catalog_ids() {
        let p = population();
        let catalog = AppCatalog::standard();
        for u in p.users() {
            assert!(!u.apps.is_empty());
            for &(app, w) in &u.apps {
                assert!((app.0 as usize) < catalog.len());
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn job_sizes_are_schedulable() {
        let p = population();
        let cfg = ClusterConfig::ranger();
        for u in p.users() {
            assert!(u.job_nodes_median >= 1.0);
            assert!(u.job_nodes_median <= cfg.node_count as f64 / 4.0);
        }
    }
}
