//! `supremm-clustersim`: the cluster + workload substrate.
//!
//! The paper's evaluation runs on 20 months of production workload from
//! two real XSEDE machines. This crate is the substitution (see
//! DESIGN.md): a discrete-time simulator of a Linux cluster — node
//! hardware, an EASY-backfill scheduler, outages, and a statistical
//! workload model (heavy-tailed user population, application resource
//! signatures, job phase structure) calibrated to the aggregates the
//! paper publishes, so that every downstream analysis sees data with the
//! published *shape*.
//!
//! - [`config`] — cluster presets (Ranger, Lonestar4) and scaling knobs.
//! - [`apps`] — the application catalog with per-app resource signatures
//!   (NAMD / AMBER / GROMACS calibrated to Figure 3's contrasts).
//! - [`users`] — the user population (heavy-tailed sizes, efficiency
//!   traits, injected idle-anomaly users for Figures 4/5).
//! - [`job`] — job specs and the per-slice activity model (AR(1)
//!   intensity + checkpoint bursts, which produce Table 1's persistence
//!   structure).
//! - [`scheduler`] — FCFS + EASY backfill over the node pool.
//! - [`outage`] — scheduled/unscheduled downtime windows (Figure 8 dips).
//! - [`faultsim`] — seeded fault injection for raw collector files
//!   (crashes, truncation, torn lines, duplicated ticks, clock skew).
//! - [`sim`] — the driving loop, emitting step events for the collector
//!   and log layers.
//! - [`rng`] — deterministic distribution sampling.

pub mod apps;
pub mod config;
pub mod faultsim;
pub mod job;
pub mod outage;
pub mod rng;
pub mod scheduler;
pub mod sim;
pub mod users;

pub use apps::{AppCatalog, AppProfile, ResourceSignature};
pub use config::ClusterConfig;
pub use faultsim::{FaultPlan, FaultRates, InjectionLog};
pub use job::{ExitStatus, JobSpec};
pub use scheduler::SchedPolicy;
pub use sim::{Simulation, StepEvents};
pub use users::{UserPopulation, UserProfile};
