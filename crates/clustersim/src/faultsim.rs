//! Deterministic fault injection at the collector → archive boundary.
//!
//! The paper's pipeline ran for 20 months on production machines where
//! node crashes, reboots and collector restarts routinely produced
//! truncated or missing raw files — and the tool chain had to keep
//! producing job-resolved reports anyway. This module reproduces those
//! failure modes on the simulated fleet's output so the degradation
//! behaviour of every downstream layer can be tested deterministically.
//!
//! A [`FaultPlan`] is seeded; the faults applied to one host-day file
//! depend only on `(seed, host, day, rates)`, never on iteration order
//! or thread count, so faulted runs are exactly reproducible. A plan
//! whose rates are all zero returns every file untouched (the same
//! `String`, no reallocation), which is what the differential test
//! suite leans on: fault rate 0 must be bit-identical to fault
//! injection disabled.
//!
//! Fault taxonomy (each independently rated):
//!
//! | fault            | real-world cause                         | file effect |
//! |------------------|------------------------------------------|-------------|
//! | `file_loss`      | node crash before rotation / disk death  | whole host-day file missing |
//! | `truncation`     | collector killed mid-write               | file cut at an arbitrary byte |
//! | `torn_line`      | interrupted write, corrupted block       | a line's tail garbled |
//! | `duplicate_tick` | collector restart replaying its buffer   | one record block duplicated |
//! | `clock_skew`     | ntpd step on reboot                      | a run of `T` stamps shifted |
//! | `drop_record`    | dropped heartbeat / scheduler stall      | record blocks silently missing |

use supremm_metrics::HostId;

/// Per-fault-kind probabilities, each in `[0, 1]`.
///
/// `file_loss` and `truncation` are drawn once per file; the line-level
/// kinds are drawn per record block, so a rate of 0.05 garbles roughly
/// one block in twenty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Whole host-day file lost (collector crash before rotation).
    pub file_loss: f64,
    /// File cut at an arbitrary byte (collector killed mid-write).
    pub truncation: f64,
    /// A record line's tail overwritten with garbage.
    pub torn_line: f64,
    /// A record block duplicated in place (restart replay).
    pub duplicate_tick: f64,
    /// A record's `T` stamp shifted by up to ±15 minutes.
    pub clock_skew: f64,
    /// A record block removed (dropped heartbeat).
    pub drop_record: f64,
}

impl FaultRates {
    /// No faults of any kind.
    pub const ZERO: FaultRates = FaultRates {
        file_loss: 0.0,
        truncation: 0.0,
        torn_line: 0.0,
        duplicate_tick: 0.0,
        clock_skew: 0.0,
        drop_record: 0.0,
    };

    /// Every fault kind at the same rate, except the two whole-file
    /// kinds which get `rate / 10` (losing a file destroys ~100 records;
    /// at equal rates the whole-file faults would dominate everything).
    pub fn uniform(rate: f64) -> FaultRates {
        let rate = rate.clamp(0.0, 1.0);
        FaultRates {
            file_loss: rate / 10.0,
            truncation: rate / 10.0,
            torn_line: rate,
            duplicate_tick: rate,
            clock_skew: rate,
            drop_record: rate,
        }
    }

    pub fn is_zero(&self) -> bool {
        *self == FaultRates::ZERO
    }
}

/// A seeded, deterministic fault schedule over raw collector files.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub rates: FaultRates,
}

/// What [`FaultPlan::apply`] decided for one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionLog {
    pub files_lost: u32,
    pub files_truncated: u32,
    pub lines_torn: u32,
    pub ticks_duplicated: u32,
    pub records_skewed: u32,
    pub records_dropped: u32,
}

impl InjectionLog {
    pub fn merge(&mut self, other: &InjectionLog) {
        self.files_lost += other.files_lost;
        self.files_truncated += other.files_truncated;
        self.lines_torn += other.lines_torn;
        self.ticks_duplicated += other.ticks_duplicated;
        self.records_skewed += other.records_skewed;
        self.records_dropped += other.records_dropped;
    }

    pub fn total_events(&self) -> u32 {
        self.files_lost
            + self.files_truncated
            + self.lines_torn
            + self.ticks_duplicated
            + self.records_skewed
            + self.records_dropped
    }
}

/// splitmix64 — tiny, seedable, no external dependency, and good enough
/// for scheduling faults (we need determinism, not statistical quality).
#[derive(Debug, Clone)]
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.uniform() < p
    }

    /// Uniform integer in `[0, n)`; 0 when `n == 0`.
    fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }
}

impl FaultPlan {
    pub fn new(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan { seed, rates }
    }

    /// The identity plan: applies nothing, to anything, ever.
    pub fn disabled() -> FaultPlan {
        FaultPlan { seed: 0, rates: FaultRates::ZERO }
    }

    /// A plan with [`FaultRates::uniform`] rates.
    pub fn with_rate(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan { seed, rates: FaultRates::uniform(rate) }
    }

    pub fn is_disabled(&self) -> bool {
        self.rates.is_zero()
    }

    /// Per-file RNG: depends only on the plan seed and the file identity,
    /// so the schedule is independent of processing order.
    fn rng_for(&self, host: HostId, day: u64) -> FaultRng {
        let mut h = self.seed ^ 0x5f61_756c_7473_696d; // "_faultsim"
        for k in [u64::from(host.0), day] {
            h ^= k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h = h.rotate_left(29).wrapping_mul(0x85eb_ca6b_c2b2_ae35);
        }
        FaultRng::new(h)
    }

    /// Apply the plan to one host-day file. Returns `None` when the file
    /// is lost entirely; otherwise the (possibly mutated) text. With
    /// all-zero rates the input `String` is returned untouched.
    pub fn apply(&self, host: HostId, day: u64, text: String) -> Option<String> {
        let (out, _) = self.apply_logged(host, day, text);
        out
    }

    /// [`FaultPlan::apply`], also reporting which faults fired.
    pub fn apply_logged(
        &self,
        host: HostId,
        day: u64,
        text: String,
    ) -> (Option<String>, InjectionLog) {
        let mut log = InjectionLog::default();
        if self.is_disabled() {
            return (Some(text), log);
        }
        let mut rng = self.rng_for(host, day);
        if rng.chance(self.rates.file_loss) {
            log.files_lost = 1;
            return (None, log);
        }

        let mut out = self.mutate_blocks(&text, &mut rng, &mut log);

        if rng.chance(self.rates.truncation) && out.len() > 64 {
            // Cut somewhere in the back three quarters so the header
            // usually survives — a truncated file should mostly degrade,
            // not vanish.
            let cut = out.len() / 4 + rng.index(out.len() - out.len() / 4);
            out.truncate(cut);
            log.files_truncated = 1;
        }
        (Some(out), log)
    }

    /// Line-level faults. The file is walked block-wise: a *block* is a
    /// `T` line plus its device rows (one record). Header (`$`/`!`) and
    /// mark (`%`) lines pass through untouched — marks carry job
    /// attribution and losing them is modelled by `file_loss` instead.
    fn mutate_blocks(&self, text: &str, rng: &mut FaultRng, log: &mut InjectionLog) -> String {
        let mut out = String::with_capacity(text.len());
        // Collect record blocks as line-index ranges.
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        let mut i = 0usize;
        while i < lines.len() {
            let line = lines[i];
            if !line.starts_with('T') {
                out.push_str(line);
                i += 1;
                continue;
            }
            // Block: this T line and every following row line.
            let mut end = i + 1;
            while end < lines.len() {
                let b = lines[end].as_bytes()[0];
                if matches!(b, b'T' | b'%' | b'$' | b'!') {
                    break;
                }
                end += 1;
            }
            let block = &lines[i..end];
            if rng.chance(self.rates.drop_record) {
                log.records_dropped += 1;
            } else {
                let copies = if rng.chance(self.rates.duplicate_tick) {
                    log.ticks_duplicated += 1;
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    self.emit_block(block, &mut out, rng, log);
                }
            }
            i = end;
        }
        out
    }

    /// Write one record block, possibly skewing its stamp or tearing one
    /// of its lines.
    fn emit_block(&self, block: &[&str], out: &mut String, rng: &mut FaultRng, log: &mut InjectionLog) {
        let skew = if rng.chance(self.rates.clock_skew) {
            log.records_skewed += 1;
            // ±1..900 s, never exactly zero.
            let mag = 1 + rng.index(900) as i64;
            if rng.chance(0.5) {
                -mag
            } else {
                mag
            }
        } else {
            0
        };
        let tear = if rng.chance(self.rates.torn_line) {
            log.lines_torn += 1;
            Some(rng.index(block.len()))
        } else {
            None
        };
        for (j, line) in block.iter().enumerate() {
            let skewed;
            let s: &str = if j == 0 && skew != 0 {
                skewed = skew_t_line(line, skew);
                &skewed
            } else {
                line
            };
            if tear == Some(j) {
                // Keep a prefix and overwrite the tail with filler — the
                // classic shape of an interrupted block write. NUL cannot
                // re-form a valid row, and everything stays ASCII so the
                // file remains valid UTF-8.
                let keep = rng.index(s.trim_end().len().max(1));
                out.push_str(&s[..keep]);
                out.push_str("\u{0}###torn###\n");
            } else {
                out.push_str(s);
            }
        }
    }
}

/// Shift the timestamp field of a `T <ts> <job|->` line by `skew`
/// seconds, clamping at zero. Lines that do not parse (already torn)
/// pass through unchanged.
fn skew_t_line(line: &str, skew: i64) -> String {
    let mut parts = line.split_ascii_whitespace();
    let (Some("T"), Some(ts), Some(job)) = (parts.next(), parts.next(), parts.next()) else {
        return line.to_string();
    };
    let Ok(ts) = ts.parse::<i64>() else {
        return line.to_string();
    };
    format!("T {} {}\n", (ts + skew).max(0), job)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "$tacc_stats 2.0\n$hostname c0001\n$arch amd64_core\n$cores 2\n\
        $timestamp 0\n!lnet x\n% begin 7 0\nT 0 7\nlnet lnet 1 2 3 4 5\n\
        T 600 7\nlnet lnet 2 3 4 5 6\nT 1200 7\nlnet lnet 3 4 5 6 7\n% end 7 1200\n";

    #[test]
    fn disabled_plan_is_the_identity() {
        let plan = FaultPlan::disabled();
        let text = FILE.to_string();
        let ptr = text.as_ptr();
        let out = plan.apply(HostId(3), 11, text).unwrap();
        assert_eq!(out, FILE);
        // Not just equal: the very same allocation (no copy at rate 0).
        assert_eq!(out.as_ptr(), ptr);
    }

    #[test]
    fn zero_rate_uniform_is_disabled() {
        assert!(FaultPlan::with_rate(99, 0.0).is_disabled());
        assert!(!FaultPlan::with_rate(99, 0.1).is_disabled());
    }

    #[test]
    fn plan_is_deterministic_and_order_independent() {
        let plan = FaultPlan::with_rate(42, 0.5);
        let a1 = plan.apply(HostId(0), 0, FILE.to_string());
        let b1 = plan.apply(HostId(1), 0, FILE.to_string());
        // Same calls in the opposite order give the same results.
        let b2 = plan.apply(HostId(1), 0, FILE.to_string());
        let a2 = plan.apply(HostId(0), 0, FILE.to_string());
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn different_seeds_fault_differently() {
        // With everything-at-1 rates the first draw decides file loss;
        // across seeds both outcomes must occur somewhere.
        let mut lost = 0;
        for seed in 0..64u64 {
            let plan = FaultPlan::with_rate(seed, 1.0);
            if plan.apply(HostId(0), 0, FILE.to_string()).is_none() {
                lost += 1;
            }
        }
        assert!(lost > 0 && lost < 64, "{lost}/64 lost");
    }

    #[test]
    fn drop_record_removes_whole_blocks() {
        let rates = FaultRates { drop_record: 1.0, ..FaultRates::ZERO };
        let plan = FaultPlan::new(7, rates);
        let (out, log) = plan.apply_logged(HostId(0), 0, FILE.to_string());
        let out = out.unwrap();
        assert_eq!(log.records_dropped, 3);
        assert!(!out.contains("T 600"));
        // Marks and header survive.
        assert!(out.contains("% begin 7 0"));
        assert!(out.contains("$hostname c0001"));
        assert!(!out.contains("lnet lnet"));
    }

    #[test]
    fn duplicate_tick_repeats_blocks_verbatim() {
        let rates = FaultRates { duplicate_tick: 1.0, ..FaultRates::ZERO };
        let plan = FaultPlan::new(7, rates);
        let (out, log) = plan.apply_logged(HostId(0), 0, FILE.to_string());
        let out = out.unwrap();
        assert_eq!(log.ticks_duplicated, 3);
        assert_eq!(out.matches("T 600 7").count(), 2);
        assert_eq!(out.matches("lnet lnet 2 3 4 5 6").count(), 2);
    }

    #[test]
    fn clock_skew_rewrites_only_the_stamp() {
        let rates = FaultRates { clock_skew: 1.0, ..FaultRates::ZERO };
        let plan = FaultPlan::new(11, rates);
        let (out, log) = plan.apply_logged(HostId(0), 0, FILE.to_string());
        let out = out.unwrap();
        assert_eq!(log.records_skewed, 3);
        // Every record line still parses as `T <n> 7`, values intact.
        for line in out.lines().filter(|l| l.starts_with('T')) {
            let f: Vec<&str> = line.split_ascii_whitespace().collect();
            assert_eq!(f.len(), 3);
            f[1].parse::<u64>().unwrap();
            assert_eq!(f[2], "7");
        }
        assert_eq!(out.matches("lnet lnet").count(), 3, "rows untouched");
    }

    #[test]
    fn torn_lines_keep_the_file_utf8_and_line_structured() {
        let rates = FaultRates { torn_line: 1.0, ..FaultRates::ZERO };
        let plan = FaultPlan::new(13, rates);
        let (out, log) = plan.apply_logged(HostId(0), 0, FILE.to_string());
        let out = out.unwrap();
        assert_eq!(log.lines_torn, 3);
        assert!(out.contains("###torn###"));
        // The torn marker ends its line, so the line count is unchanged.
        assert_eq!(out.lines().count(), FILE.lines().count());
    }

    #[test]
    fn truncation_cuts_but_keeps_a_prefix() {
        let rates = FaultRates { truncation: 1.0, ..FaultRates::ZERO };
        let plan = FaultPlan::new(3, rates);
        let (out, log) = plan.apply_logged(HostId(0), 0, FILE.to_string());
        let out = out.unwrap();
        assert_eq!(log.files_truncated, 1);
        assert!(out.len() < FILE.len());
        assert!(out.len() >= FILE.len() / 4);
        assert!(FILE.starts_with(&out));
    }

    #[test]
    fn injection_log_merges() {
        let mut a = InjectionLog { files_lost: 1, lines_torn: 2, ..Default::default() };
        let b = InjectionLog { lines_torn: 3, records_dropped: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.files_lost, 1);
        assert_eq!(a.lines_torn, 5);
        assert_eq!(a.records_dropped, 4);
        assert_eq!(a.total_events(), 10);
    }
}
