//! Deterministic sampling helpers for the workload model.
//!
//! Everything in the simulator draws through [`Sampler`], seeded from the
//! cluster config, so runs are exactly reproducible — a property both the
//! test suite and the benchmark harness rely on.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A seeded source of the distributions the workload model needs.
#[derive(Debug, Clone)]
pub struct Sampler {
    rng: SmallRng,
    spare_normal: Option<f64>,
}

impl Sampler {
    pub fn new(seed: u64) -> Sampler {
        Sampler { rng: SmallRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Derive an independent sampler (e.g. one per job) without consuming
    /// much parent state.
    pub fn fork(&mut self, salt: u64) -> Sampler {
        let seed = self.rng.random::<u64>() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Sampler::new(seed)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.rng.random_range(0..n)
    }

    /// Standard normal via Box–Muller (with the spare cached).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.spare_normal = Some(r * s);
        r * c
    }

    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }

    /// Log-normal parameterised by its *median* and log-space sigma.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        (median.ln() + sigma * self.std_normal()).exp()
    }

    /// Pareto with scale `xmin` and shape `alpha` (heavy-tailed user
    /// activity).
    pub fn pareto(&mut self, xmin: f64, alpha: f64) -> f64 {
        xmin / self.uniform().max(1e-12).powf(1.0 / alpha)
    }

    /// Exponential with the given rate.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        -self.uniform().max(1e-12).ln() / rate
    }

    /// Poisson count. Knuth's method for small λ, normal approximation
    /// above 30 (error is irrelevant at that scale here).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            return self.normal(lambda, lambda.sqrt()).round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Draw an index with the given (unnormalised, non-negative) weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Bernoulli.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Sampler::new(42);
        let mut b = Sampler::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let mut a = Sampler::new(1);
        let mut b = Sampler::new(1);
        let mut fa = a.fork(7);
        let mut fb = b.fork(7);
        assert_eq!(fa.uniform(), fb.uniform());
        let mut other = a.fork(8);
        assert_ne!(fa.uniform(), other.uniform());
    }

    #[test]
    fn normal_moments() {
        let mut s = Sampler::new(3);
        let xs: Vec<f64> = (0..20_000).map(|_| s.normal(5.0, 2.0)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 5.0).abs() < 0.05, "{mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "{}", var.sqrt());
    }

    #[test]
    fn lognormal_median() {
        let mut s = Sampler::new(4);
        let mut xs: Vec<f64> = (0..20_001).map(|_| s.lognormal(100.0, 1.0)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median / 100.0 - 1.0).abs() < 0.08, "{median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut s = Sampler::new(5);
        for lambda in [2.0, 80.0] {
            let xs: Vec<f64> = (0..20_000).map(|_| s.poisson(lambda) as f64).collect();
            let (mean, _) = moments(&xs);
            assert!((mean / lambda - 1.0).abs() < 0.05, "λ={lambda}: {mean}");
        }
        assert_eq!(s.poisson(0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut s = Sampler::new(6);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[s.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        let total: usize = counts.iter().sum();
        let f2 = counts[2] as f64 / total as f64;
        assert!((f2 - 0.7).abs() < 0.02, "{f2}");
        assert!(counts[0] > 0);
    }

    #[test]
    fn pareto_is_heavy_tailed_above_xmin() {
        let mut s = Sampler::new(7);
        let xs: Vec<f64> = (0..10_000).map(|_| s.pareto(1.0, 1.5)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 20.0, "heavy tail expected, max={max}");
    }

    #[test]
    fn exponential_mean() {
        let mut s = Sampler::new(8);
        let xs: Vec<f64> = (0..20_000).map(|_| s.exponential(0.5)).collect();
        let (mean, _) = moments(&xs);
        assert!((mean - 2.0).abs() < 0.1, "{mean}");
    }
}
