//! FCFS + EASY-backfill batch scheduler.
//!
//! The paper's machines ran SGE with backfill; what matters downstream is
//! that (a) the machine stays packed under the over-requested load the
//! paper describes, and (b) small/short jobs flow around the big ones, so
//! the node-assignment mosaic looks like a production machine's.

use std::collections::VecDeque;

use supremm_metrics::{HostId, Timestamp};

use crate::job::JobSpec;

/// Scheduling policy — the §4.3.4 "determining optimal settings for
/// system software such as job schedulers" knob. The ablation bench and
/// experiment compare the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict first-come-first-served: nothing runs ahead of a blocked
    /// queue head.
    Fcfs,
    /// FCFS head + EASY backfill behind it (the production default).
    EasyBackfill,
}

/// A running-job reservation the scheduler knows about: when its nodes
/// come back.
#[derive(Debug, Clone, Copy)]
pub struct Reservation {
    pub end: Timestamp,
    pub nodes: u32,
}

/// The scheduler: a free-node pool plus a FIFO queue with EASY backfill.
#[derive(Debug)]
pub struct Scheduler {
    free: Vec<HostId>,
    queue: VecDeque<JobSpec>,
    policy: SchedPolicy,
}

impl Scheduler {
    pub fn new(node_count: u32) -> Scheduler {
        Scheduler::with_policy(node_count, SchedPolicy::EasyBackfill)
    }

    pub fn with_policy(node_count: u32, policy: SchedPolicy) -> Scheduler {
        Scheduler {
            free: (0..node_count).map(HostId).collect(),
            queue: VecDeque::new(),
            policy,
        }
    }

    pub fn submit(&mut self, job: JobSpec) {
        self.queue.push_back(job);
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Nodes released by a finished job.
    pub fn release(&mut self, hosts: &[HostId]) {
        self.free.extend_from_slice(hosts);
    }

    /// Remove specific nodes from the free pool (they went down). Nodes
    /// not in the pool (busy or already removed) are ignored — the caller
    /// handles killing the jobs on them.
    pub fn remove_nodes(&mut self, down: &[HostId]) {
        self.free.retain(|h| !down.contains(h));
    }

    /// EASY backfill pass. `reservations` describes currently running
    /// jobs (end time and node count). Returns `(job, hosts)` placements;
    /// the caller launches them.
    pub fn schedule(
        &mut self,
        now: Timestamp,
        reservations: &[Reservation],
    ) -> Vec<(JobSpec, Vec<HostId>)> {
        let mut placements = Vec::new();
        // Plain FCFS from the head while it fits.
        while let Some(head) = self.queue.front() {
            if head.nodes as usize <= self.free.len() {
                let job = self.queue.pop_front().expect("front exists");
                let hosts = self.take_nodes(job.nodes);
                placements.push((job, hosts));
            } else {
                break;
            }
        }
        let Some(head) = self.queue.front() else {
            return placements;
        };
        if self.policy == SchedPolicy::Fcfs {
            // Strict FCFS: a blocked head blocks everyone.
            return placements;
        }

        // Head is blocked: compute its shadow time and spare node count.
        let needed = head.nodes as usize - self.free.len();
        let mut ends: Vec<Reservation> = reservations.to_vec();
        ends.sort_by_key(|r| r.end);
        let mut reclaimed = 0usize;
        let mut shadow = None;
        for r in &ends {
            reclaimed += r.nodes as usize;
            if reclaimed >= needed {
                shadow = Some((r.end, reclaimed - needed));
                break;
            }
        }
        let Some((shadow_time, spare)) = shadow else {
            // Head can never run with current reservations (e.g. nodes
            // down); leave the queue as is.
            return placements;
        };

        // Backfill: any later job that fits in the current free pool and
        // cannot delay the head — it either finishes before the shadow
        // time, or it is small enough to run on nodes the head will not
        // need even at shadow time (the over-reclaimed `spare`).
        let mut i = 1; // skip the blocked head
        while i < self.queue.len() {
            let cand = &self.queue[i];
            let fits_now = cand.nodes as usize <= self.free.len();
            let ends_before_shadow = now + cand.requested <= shadow_time;
            let harmless = ends_before_shadow || cand.nodes as usize <= spare;
            if fits_now && harmless {
                let job = self.queue.remove(i).expect("index in range");
                let hosts = self.take_nodes(job.nodes);
                placements.push((job, hosts));
                // Queue shifted; same index now holds the next candidate.
            } else {
                i += 1;
            }
        }
        placements
    }

    fn take_nodes(&mut self, n: u32) -> Vec<HostId> {
        let n = n as usize;
        debug_assert!(n <= self.free.len());
        self.free.split_off(self.free.len() - n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supremm_metrics::{AppId, Duration, JobId, ScienceField, UserId};

    fn job(id: u64, nodes: u32, req_min: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: UserId(0),
            app: AppId(0),
            science: ScienceField::Physics,
            nodes,
            submit: Timestamp(0),
            duration: Duration::from_minutes(req_min),
            requested: Duration::from_minutes(req_min),
            papi: false,
        }
    }

    #[test]
    fn fcfs_places_jobs_in_order_while_they_fit() {
        let mut s = Scheduler::new(10);
        s.submit(job(1, 4, 60));
        s.submit(job(2, 4, 60));
        s.submit(job(3, 4, 60));
        let placed = s.schedule(Timestamp(0), &[]);
        let ids: Vec<u64> = placed.iter().map(|(j, _)| j.id.0).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.free_count(), 2);
    }

    #[test]
    fn placements_use_disjoint_nodes() {
        let mut s = Scheduler::new(12);
        s.submit(job(1, 5, 60));
        s.submit(job(2, 5, 60));
        let placed = s.schedule(Timestamp(0), &[]);
        let mut all: Vec<HostId> = placed.iter().flat_map(|(_, h)| h.clone()).collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before);
        assert_eq!(before, 10);
    }

    #[test]
    fn backfill_runs_short_small_job_behind_blocked_head() {
        let mut s = Scheduler::new(10);
        // 8 nodes busy until t=7200.
        s.remove_nodes(&(0..8).map(HostId).collect::<Vec<_>>());
        let res = [Reservation { end: Timestamp(7200), nodes: 8 }];
        s.submit(job(1, 6, 600)); // head: needs 6, only 2 free -> blocked
        s.submit(job(2, 2, 60)); // short small: ends (3600) before shadow (7200)
        let placed = s.schedule(Timestamp(0), &res);
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].0.id.0, 2);
        // Head still queued, at the front.
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn backfill_refuses_job_that_would_delay_head() {
        let mut s = Scheduler::new(10);
        s.remove_nodes(&(0..8).map(HostId).collect::<Vec<_>>());
        // Two running 4-node jobs; the head (6 nodes) must wait for the
        // first to end (shadow t=3600) and there is no spare at shadow.
        let res = [
            Reservation { end: Timestamp(3600), nodes: 4 },
            Reservation { end: Timestamp(7200), nodes: 4 },
        ];
        s.submit(job(1, 6, 600)); // head blocked until 3600
        s.submit(job(2, 2, 600)); // would run 0..36000, past the shadow
        let placed = s.schedule(Timestamp(0), &res);
        assert!(placed.is_empty(), "{placed:?}");
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn backfill_allows_long_job_on_spare_nodes() {
        let mut s = Scheduler::new(10);
        s.remove_nodes(&(0..8).map(HostId).collect::<Vec<_>>());
        // One 8-node job ends at 3600: head takes 6 of (2 free + 8), so 4
        // nodes are spare at shadow — a long 2-node job cannot delay it.
        let res = [Reservation { end: Timestamp(3600), nodes: 8 }];
        s.submit(job(1, 6, 600));
        s.submit(job(2, 2, 600));
        let placed = s.schedule(Timestamp(0), &res);
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].0.id.0, 2);
    }

    #[test]
    fn release_makes_nodes_schedulable_again() {
        let mut s = Scheduler::new(4);
        s.submit(job(1, 4, 60));
        let placed = s.schedule(Timestamp(0), &[]);
        let hosts = placed[0].1.clone();
        assert_eq!(s.free_count(), 0);
        s.release(&hosts);
        assert_eq!(s.free_count(), 4);
        s.submit(job(2, 4, 60));
        assert_eq!(s.schedule(Timestamp(0), &[]).len(), 1);
    }

    #[test]
    fn unsatisfiable_head_does_not_deadlock_scheduler() {
        let mut s = Scheduler::new(4);
        s.submit(job(1, 100, 60)); // bigger than the machine
        let placed = s.schedule(Timestamp(0), &[]);
        assert!(placed.is_empty());
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn remove_nodes_ignores_busy_nodes() {
        let mut s = Scheduler::new(4);
        s.submit(job(1, 2, 60));
        let placed = s.schedule(Timestamp(0), &[]);
        let busy = placed[0].1.clone();
        s.remove_nodes(&busy); // not in free pool; no-op
        assert_eq!(s.free_count(), 2);
    }
}
