//! Job specifications and the per-slice activity model.
//!
//! Each running job produces one [`NodeActivity`] per sample slice, built
//! from its application signature drawn at start time:
//!
//! - a slowly-varying AR(1) *intensity* multiplies compute and fabric
//!   rates, giving the within-job temporal persistence that Table 1
//!   measures;
//! - `$SCRATCH` writes concentrate into periodic checkpoint slices, which
//!   is why `io_scratch_write` is the *least* persistent metric in the
//!   paper's ordering;
//! - memory ramps up over the first slices then plateaus (so
//!   `mem_used_max` > mean `mem_used`, Figure 12's red-vs-black gap).

use supremm_metrics::{AppId, Duration, HostId, JobId, ScienceField, Timestamp, UserId};
use supremm_procsim::{NodeActivity, NodeSpec};

use crate::apps::ResourceSignature;
use crate::rng::Sampler;

/// How a job finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitStatus {
    Completed,
    /// Application-level failure (nonzero exit, exception, OOM...).
    Failed,
    /// Killed because a node it ran on went down.
    NodeFailure,
    /// Cancelled from the queue or mid-run by the user.
    Cancelled,
}

impl ExitStatus {
    pub fn name(self) -> &'static str {
        match self {
            ExitStatus::Completed => "completed",
            ExitStatus::Failed => "failed",
            ExitStatus::NodeFailure => "node_failure",
            ExitStatus::Cancelled => "cancelled",
        }
    }
}

/// Immutable description of a submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub id: JobId,
    pub user: UserId,
    pub app: AppId,
    pub science: ScienceField,
    pub nodes: u32,
    pub submit: Timestamp,
    /// Actual runtime (the scheduler also sees a padded request).
    pub duration: Duration,
    /// Requested wall time, ≥ duration.
    pub requested: Duration,
    /// Whether this job runs its own PAPI session mid-way (clobbering the
    /// collector's counter programming).
    pub papi: bool,
}

/// A job that has been placed on nodes and is producing activity.
#[derive(Debug, Clone)]
pub struct RunningJob {
    pub spec: JobSpec,
    pub hosts: Vec<HostId>,
    pub start: Timestamp,
    /// Scheduled end (start + duration); outages may end it earlier.
    pub end: Timestamp,
    /// Fraction of node memory this job's plateau occupies — drives the
    /// OOM-failure channel and the diagnosis ground truth.
    pub mem_frac: f64,
    sig: JobDraw,
    intensity: f64,
    slice_idx: u64,
    checkpoint_phase: u32,
    sampler: Sampler,
}

/// Per-job realisation of the application signature.
#[derive(Debug, Clone)]
struct JobDraw {
    flops_per_sec: f64,
    /// Physical ceiling: even vectorised kernels rarely retire more than
    /// ~a third of nominal peak.
    max_flops_per_sec: f64,
    mem_bytes: f64,
    idle_frac: f64,
    system_frac: f64,
    scratch_write_bps: f64,
    scratch_read_bps: f64,
    work_write_bps: f64,
    ib_tx_bps: f64,
    checkpoint_period: u32,
    checkpoint_burst: f64,
    ar1_rho: f64,
    ar1_sigma: f64,
}

const MB: f64 = 1024.0 * 1024.0;

impl RunningJob {
    /// Materialise a job on its nodes, drawing the per-job signature.
    ///
    /// `idle_override` (the user anomaly trait) pins the idle fraction;
    /// `efficiency_trait` scales it multiplicatively.
    #[allow(clippy::too_many_arguments)]
    pub fn launch(
        spec: JobSpec,
        hosts: Vec<HostId>,
        start: Timestamp,
        node_spec: &NodeSpec,
        sig: &ResourceSignature,
        efficiency_trait: f64,
        idle_override: Option<f64>,
        sampler: &mut Sampler,
    ) -> RunningJob {
        let mut s = sampler.fork(spec.id.0);
        let mut idle = (s.lognormal(sig.idle_frac.0, sig.idle_frac.1)
            * efficiency_trait.powf(sig.trait_sensitivity))
        .clamp(0.005, 0.93);
        let mut flops_frac = s.lognormal(sig.flops_frac_peak.0, sig.flops_frac_peak.1);
        if let Some(anomaly_idle) = idle_override {
            // The Figure 5 pathology: massive idle, every *other* resource
            // at normal levels; flops scale with the CPU actually used.
            idle = anomaly_idle;
            flops_frac *= (1.0 - anomaly_idle).max(0.05);
        }
        let draw = JobDraw {
            flops_per_sec: (flops_frac * (1.0 - idle)).min(0.35)
                * node_spec.peak_gflops
                * 1.0e9,
            max_flops_per_sec: 0.35 * node_spec.peak_gflops * 1.0e9,
            mem_bytes: (s.lognormal(sig.mem_gb.0, sig.mem_gb.1) * 1.073_741_824e9)
                .min(node_spec.mem_bytes as f64 * 0.98),
            idle_frac: idle,
            system_frac: sig.system_frac,
            scratch_write_bps: s.lognormal(sig.scratch_write_mbs.0, sig.scratch_write_mbs.1) * MB,
            scratch_read_bps: s.lognormal(sig.scratch_read_mbs.0, sig.scratch_read_mbs.1) * MB,
            work_write_bps: s.lognormal(sig.work_write_mbs.0, sig.work_write_mbs.1) * MB,
            ib_tx_bps: s.lognormal(sig.ib_tx_mbs.0, sig.ib_tx_mbs.1) * MB,
            // Per-job period jitter: real checkpoint cadences are set per
            // run, so aggregate write traffic carries no cluster-wide
            // periodicity.
            checkpoint_period: ((sig.checkpoint_period as f64
                * s.uniform_range(0.75, 1.35))
                .round() as u32)
                .max(3),
            checkpoint_burst: sig.checkpoint_burst.max(1.0),
            ar1_rho: sig.ar1_rho,
            ar1_sigma: sig.ar1_sigma,
        };
        let checkpoint_phase = s.index(draw.checkpoint_period as usize) as u32;
        let end = start + spec.duration;
        let mem_frac = draw.mem_bytes / node_spec.mem_bytes as f64;
        RunningJob {
            spec,
            hosts,
            start,
            end,
            mem_frac,
            sig: draw,
            intensity: 1.0,
            slice_idx: 0,
            checkpoint_phase,
            sampler: s,
        }
    }

    /// Whether this slice is a checkpoint slice. Each checkpoint spans
    /// *two* adjacent slices — real checkpoint dumps straddle ten-minute
    /// sample boundaries, which keeps adjacent write samples positively
    /// correlated (part of Table 1's io_scratch_write behaviour).
    fn is_checkpoint(&self) -> bool {
        let period = self.sig.checkpoint_period;
        let pos = self.slice_idx as u32 % period;
        pos == self.checkpoint_phase || (pos + period - 1) % period == self.checkpoint_phase
    }

    /// Whether the PAPI clobber fires this slice (mid-job, once).
    pub fn papi_fires(&self) -> bool {
        if !self.spec.papi {
            return false;
        }
        let total_slices =
            (self.spec.duration.seconds() / 600).max(2);
        self.slice_idx == total_slices / 2
    }

    /// Produce the next slice of activity (same on every node of the job;
    /// rank-level skew is below the resolution of any analysis here).
    pub fn next_slice(&mut self, slice_secs: f64) -> NodeActivity {
        let d = &self.sig;

        // AR(1) intensity with stationary mean 1.
        let z = self.sampler.std_normal();
        self.intensity = (1.0
            + d.ar1_rho * (self.intensity - 1.0)
            + d.ar1_sigma * (1.0 - d.ar1_rho * d.ar1_rho).sqrt() * z)
            .clamp(0.25, 2.5);

        // Memory ramp: 45 % → 100 % across the first three slices, with a
        // little ongoing jitter above the plateau (AMR growth etc.).
        let ramp = match self.slice_idx {
            0 => 0.45,
            1 => 0.75,
            2 => 0.92,
            _ => 1.0 + 0.06 * (self.sampler.uniform() - 0.3),
        };
        let mem = (d.mem_bytes * ramp).max(256.0 * MB);

        // Checkpoint burst: concentrate scratch writes into the two burst
        // slices, keeping the configured time average.
        let period = d.checkpoint_period as f64;
        let burst = d.checkpoint_burst;
        // avg = (2·burst + (period-2)·base) / period with base chosen so
        // avg == 1.
        let base_scale = ((period - 2.0 * burst) / (period - 2.0)).max(0.05);
        let write_scale = if self.is_checkpoint() { burst } else { base_scale };

        let busy = 1.0 - d.idle_frac;
        let io_bytes = |rate: f64, scale: f64| (rate * scale * slice_secs) as u64;

        let scratch_write = io_bytes(d.scratch_write_bps, write_scale * self.intensity);
        let scratch_read = io_bytes(
            d.scratch_read_bps,
            if self.slice_idx == 0 { 6.0 } else { 0.7 }, // startup input read
        );
        let work_write = io_bytes(d.work_write_bps, self.intensity);
        let lustre_total = scratch_write + scratch_read + work_write;

        let ib_tx = io_bytes(d.ib_tx_bps, self.intensity * busy);
        // LNET carries the Lustre bytes (plus ~6 % RPC overhead); the IB
        // port counters see both MPI and LNET traffic.
        let lnet_tx = (lustre_total as f64 * 1.06) as u64;

        let act = NodeActivity {
            user_frac: busy * (1.0 - d.system_frac) * (0.97 + 0.03 * self.intensity),
            system_frac: busy * d.system_frac
                + (ib_tx as f64 / slice_secs) / (2.0e9) * 0.05,
            iowait_frac: (lustre_total as f64 / slice_secs) / (500.0 * MB) * 0.05,
            flops: (d.flops_per_sec * self.intensity).min(d.max_flops_per_sec) * slice_secs,
            mem_accesses: 0.0, // derived from flops

            mem_used_bytes: mem as u64,
            mem_cached_bytes: (mem * 0.25) as u64,
            scratch_read_bytes: scratch_read,
            scratch_write_bytes: scratch_write,
            work_read_bytes: io_bytes(d.work_write_bps, 0.3),
            work_write_bytes: work_write,
            share_read_bytes: io_bytes(d.work_write_bps, 0.15),
            share_write_bytes: io_bytes(d.work_write_bps, 0.08),
            ib_tx_bytes: ib_tx + lnet_tx,
            ib_rx_bytes: ((ib_tx + lnet_tx) as f64 * (0.92 + 0.12 * self.sampler.uniform()))
                as u64,
            lnet_tx_bytes: lnet_tx,
            lnet_rx_bytes: (scratch_read as f64 * 1.06) as u64,
            eth_tx_bytes: 40 << 10,
            eth_rx_bytes: 50 << 10,
            pgfault: (mem / 4096.0 * 0.02) as u64 + 500,
            pgmajfault: if self.slice_idx == 0 { 200 } else { 2 },
            pswpin: 0,
            pswpout: 0,
            nr_running: ((1.0 - d.idle_frac) * 16.0).round() as u32,
            load_1: (1.0 - d.idle_frac) * 16.0,
            numa_local_frac: 0.9,
            sysv_shm_bytes: (mem * 0.05) as u64,
            tmpfs_bytes: 64 << 20,
            }
        .normalized();
        self.slice_idx += 1;
        act
    }

    pub fn slices_produced(&self) -> u64 {
        self.slice_idx
    }
}

/// A finished job, as recorded by the simulator (ground truth for the
/// accounting log).
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedJob {
    pub spec: JobSpec,
    pub hosts: Vec<HostId>,
    pub start: Timestamp,
    pub end: Timestamp,
    pub exit: ExitStatus,
    /// Plateau memory fraction (ground truth for OOM diagnosis).
    pub mem_frac: f64,
}

impl CompletedJob {
    pub fn node_hours(&self) -> f64 {
        self.end.since(self.start).hours() * self.hosts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppCatalog;

    fn test_spec(duration_min: u64) -> JobSpec {
        JobSpec {
            id: JobId(1),
            user: UserId(0),
            app: AppId(0),
            science: ScienceField::Physics,
            nodes: 2,
            submit: Timestamp(0),
            duration: Duration::from_minutes(duration_min),
            requested: Duration::from_minutes(duration_min * 2),
            papi: false,
        }
    }

    fn launch(idle_override: Option<f64>) -> RunningJob {
        let catalog = AppCatalog::standard();
        let sig = catalog.by_name("NAMD").unwrap().signature_for(false, 1.0, 1.0);
        let mut s = Sampler::new(9);
        RunningJob::launch(
            test_spec(600),
            vec![HostId(0), HostId(1)],
            Timestamp(600),
            &NodeSpec::ranger(),
            &sig,
            1.0,
            idle_override,
            &mut s,
        )
    }

    #[test]
    fn activity_is_valid_and_busy_for_namd() {
        let mut job = launch(None);
        for i in 0..20 {
            let a = job.next_slice(600.0);
            let total = a.user_frac + a.system_frac + a.iowait_frac;
            assert!(total <= 1.0 + 1e-9, "slice {i}: {total}");
            assert!(a.idle_frac() < 0.30, "NAMD should be busy, idle={}", a.idle_frac());
            assert!(a.flops > 0.0);
        }
    }

    #[test]
    fn intensity_is_autocorrelated() {
        let mut job = launch(None);
        let flops: Vec<f64> = (0..200).map(|_| job.next_slice(600.0).flops).collect();
        // Lag-1 autocorrelation of the flops series should be high.
        let n = flops.len();
        let mean = flops.iter().sum::<f64>() / n as f64;
        let var: f64 = flops.iter().map(|x| (x - mean).powi(2)).sum();
        let cov: f64 =
            flops.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let rho = cov / var;
        assert!(rho > 0.7, "lag-1 autocorrelation {rho}");
    }

    #[test]
    fn checkpoints_make_write_traffic_bursty() {
        let mut job = launch(None);
        let writes: Vec<u64> =
            (0..64).map(|_| job.next_slice(600.0).scratch_write_bytes).collect();
        let max = *writes.iter().max().unwrap() as f64;
        let mean = writes.iter().sum::<u64>() as f64 / writes.len() as f64;
        assert!(max / mean > 1.7, "burstiness {max}/{mean}");
    }

    #[test]
    fn memory_ramps_then_plateaus() {
        let mut job = launch(None);
        let mem: Vec<u64> = (0..8).map(|_| job.next_slice(600.0).mem_used_bytes).collect();
        assert!(mem[0] < mem[1] && mem[1] < mem[2], "{mem:?}");
        let plateau = mem[3] as f64;
        for &m in &mem[4..] {
            assert!((m as f64 / plateau - 1.0).abs() < 0.2);
        }
    }

    #[test]
    fn idle_override_pins_idle_but_keeps_other_resources() {
        let mut normal = launch(None);
        let mut anomalous = launch(Some(0.88));
        let (mut an_idle, mut an_mem, mut n_mem) = (0.0, 0.0, 0.0);
        for _ in 0..10 {
            let a = anomalous.next_slice(600.0);
            let n = normal.next_slice(600.0);
            an_idle += a.idle_frac() / 10.0;
            an_mem += a.mem_used_bytes as f64 / 10.0;
            n_mem += n.mem_used_bytes as f64 / 10.0;
        }
        assert!(an_idle > 0.8, "{an_idle}");
        // Memory stays in the normal band (same draw distribution).
        assert!(an_mem / n_mem > 0.2 && an_mem / n_mem < 5.0);
    }

    #[test]
    fn papi_fires_once_mid_job() {
        let catalog = AppCatalog::standard();
        let sig = catalog.by_name("NAMD").unwrap().signature_for(false, 1.0, 1.0);
        let mut s = Sampler::new(3);
        let mut spec = test_spec(100); // 10 slices
        spec.papi = true;
        let mut job = RunningJob::launch(
            spec,
            vec![HostId(0)],
            Timestamp(0),
            &NodeSpec::ranger(),
            &sig,
            1.0,
            None,
            &mut s,
        );
        let mut fired = 0;
        for _ in 0..10 {
            if job.papi_fires() {
                fired += 1;
            }
            job.next_slice(600.0);
        }
        assert_eq!(fired, 1);
    }

    #[test]
    fn lnet_traffic_tracks_lustre_not_mpi() {
        let mut job = launch(None);
        for _ in 0..10 {
            let a = job.next_slice(600.0);
            let lustre = a.scratch_read_bytes + a.scratch_write_bytes + a.work_write_bytes;
            assert!(a.lnet_tx_bytes >= lustre, "LNET carries lustre bytes");
            assert!(a.ib_tx_bytes >= a.lnet_tx_bytes, "IB carries LNET + MPI");
        }
    }

    #[test]
    fn node_hours_accounting() {
        let job = CompletedJob {
            spec: test_spec(600),
            hosts: vec![HostId(0), HostId(1), HostId(2), HostId(3)],
            start: Timestamp(0),
            end: Timestamp(3600 * 10),
            exit: ExitStatus::Completed,
            mem_frac: 0.3,
        };
        assert_eq!(job.node_hours(), 40.0);
    }

    #[test]
    fn memory_never_exceeds_node_capacity() {
        let catalog = AppCatalog::standard();
        // Force a huge memory draw via mem_scale.
        let sig = catalog.by_name("QuantumESPRESSO").unwrap().signature_for(true, 10.0, 1.0);
        let mut s = Sampler::new(11);
        let spec_node = NodeSpec::lonestar4();
        let mut job = RunningJob::launch(
            test_spec(600),
            vec![HostId(0)],
            Timestamp(0),
            &spec_node,
            &sig,
            1.0,
            None,
            &mut s,
        );
        for _ in 0..10 {
            let a = job.next_slice(600.0);
            assert!(a.mem_used_bytes as f64 <= spec_node.mem_bytes as f64 * 1.05);
        }
    }
}
