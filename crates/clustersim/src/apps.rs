//! The application catalog and per-application resource signatures.
//!
//! Figure 3 of the paper contrasts the three most-used molecular dynamics
//! codes: NAMD and GROMACS run CPU-efficiently on both machines, AMBER has
//! a much higher cpu_idle fraction and different floating-point behaviour;
//! NAMD's usage pattern is nearly identical across Ranger and Lonestar4
//! while GROMACS and AMBER differ per machine. The signatures below are
//! calibrated to those contrasts (plus the §4.3 system-level aggregates);
//! all magnitudes are medians of log-normal draws made per job.

use supremm_metrics::{AppId, ScienceField};

/// Median/σ pair of a log-normal draw.
pub type LogDist = (f64, f64);

/// Per-node, time-averaged resource signature of an application.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSignature {
    /// Fraction of the node's peak FLOP rate actually retired.
    pub flops_frac_peak: LogDist,
    /// Memory used per node, GB (including page cache).
    pub mem_gb: LogDist,
    /// CPU idle fraction while the job runs.
    pub idle_frac: LogDist,
    /// CPU time in the kernel (communication stacks mostly).
    pub system_frac: f64,
    /// Lustre `$SCRATCH` write rate, MB/s per node (time average).
    pub scratch_write_mbs: LogDist,
    /// Lustre `$SCRATCH` read rate, MB/s per node.
    pub scratch_read_mbs: LogDist,
    /// Lustre `$WORK` write rate, MB/s per node.
    pub work_write_mbs: LogDist,
    /// MPI fabric transmit rate, MB/s per node.
    pub ib_tx_mbs: LogDist,
    /// Checkpoint cadence, in sample slices; scratch writes concentrate
    /// into every N-th slice (this burstiness is what makes
    /// `io_scratch_write` the *least* persistent metric in Table 1).
    pub checkpoint_period: u32,
    /// Write-rate multiplier during a checkpoint slice.
    pub checkpoint_burst: f64,
    /// AR(1) coefficient of the within-job intensity process, per slice.
    pub ar1_rho: f64,
    /// Innovation scale of the intensity process.
    pub ar1_sigma: f64,
    /// Probability a job of this app runs its own PAPI session and
    /// clobbers the collector's counter programming mid-job.
    pub papi_prob: f64,
    /// How much the submitting user's tuning skill moves this code's
    /// idle fraction (exponent on the efficiency trait). Community codes
    /// ship pre-tuned (low sensitivity); home-grown codes live and die by
    /// their author.
    pub trait_sensitivity: f64,
}

impl ResourceSignature {
    /// A conservative baseline signature; catalog entries override fields.
    fn base() -> ResourceSignature {
        ResourceSignature {
            flops_frac_peak: (0.03, 0.5),
            mem_gb: (7.0, 0.45),
            idle_frac: (0.12, 0.4),
            system_frac: 0.04,
            scratch_write_mbs: (2.0, 1.3),
            scratch_read_mbs: (1.0, 0.8),
            work_write_mbs: (0.15, 0.9),
            ib_tx_mbs: (25.0, 0.6),
            checkpoint_period: 8,
            checkpoint_burst: 1.8,
            ar1_rho: 0.97,
            ar1_sigma: 0.10,
            papi_prob: 0.01,
            trait_sensitivity: 1.0,
        }
    }
}

/// One catalog application.
#[derive(Debug, Clone)]
pub struct AppProfile {
    pub id: AppId,
    pub name: &'static str,
    /// Relative share of submitted jobs.
    pub popularity: f64,
    /// Science fields this code serves, with weights.
    pub science: &'static [(ScienceField, f64)],
    signature: ResourceSignature,
    /// Multipliers applied on Lonestar4 (machine-dependent behaviour;
    /// NAMD's are 1.0 — the paper observes its profile is the same on
    /// both machines).
    ls4_mods: MachineMods,
}

/// Per-machine multipliers on selected signature fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineMods {
    pub flops: f64,
    pub idle: f64,
    pub mem: f64,
    pub ib: f64,
}

impl MachineMods {
    pub const NONE: MachineMods = MachineMods { flops: 1.0, idle: 1.0, mem: 1.0, ib: 1.0 };
}

impl AppProfile {
    /// The signature this app exhibits on the given machine.
    ///
    /// `mem_scale` and `idle_scale` are cluster-wide calibration knobs
    /// (Lonestar4 runs memory-hungrier configurations and averages 85 %
    /// efficiency vs Ranger's 90 %).
    pub fn signature_for(&self, on_lonestar4: bool, mem_scale: f64, idle_scale: f64) -> ResourceSignature {
        let mut s = self.signature.clone();
        let mods = if on_lonestar4 { self.ls4_mods } else { MachineMods::NONE };
        s.flops_frac_peak.0 *= mods.flops;
        s.idle_frac.0 = (s.idle_frac.0 * mods.idle * idle_scale).min(0.95);
        s.mem_gb.0 *= mods.mem * mem_scale;
        s.ib_tx_mbs.0 *= mods.ib;
        s
    }
}

/// The fixed application catalog.
#[derive(Debug, Clone)]
pub struct AppCatalog {
    apps: Vec<AppProfile>,
}

use ScienceField as SF;

impl AppCatalog {
    /// The standard catalog used by every simulation.
    pub fn standard() -> AppCatalog {
        let b = ResourceSignature::base;
        let mut apps = Vec::new();
        let mut push = |name: &'static str,
                        popularity: f64,
                        science: &'static [(SF, f64)],
                        signature: ResourceSignature,
                        ls4_mods: MachineMods| {
            apps.push(AppProfile {
                id: AppId(apps.len() as u32),
                name,
                popularity,
                science,
                signature,
                ls4_mods,
            });
        };

        // The three MD codes of Figure 3. NAMD: efficient, FLOP- and
        // network-heavy, identical across machines.
        push(
            "NAMD",
            0.16,
            &[(SF::MolecularBiosciences, 0.8), (SF::ChemicalThermalSystems, 0.2)],
            ResourceSignature {
                flops_frac_peak: (0.055, 0.35),
                trait_sensitivity: 0.35,
                mem_gb: (6.0, 0.35),
                idle_frac: (0.055, 0.30),
                ib_tx_mbs: (60.0, 0.4),
                scratch_write_mbs: (1.2, 1.3),
                checkpoint_period: 10,
                checkpoint_burst: 1.8,
                ar1_rho: 0.985,
                ar1_sigma: 0.05,
                ..b()
            },
            // Tracks the workload-average machine shift, so NAMD's
            // *normalized* profile is the machine-invariant one (the
            // paper's Figure 3 observation).
            MachineMods { flops: 1.25, idle: 0.95, mem: 1.2, ib: 1.0 },
        );
        // AMBER: the inefficient MD code — high idle, low flops; behaves
        // differently on Lonestar4 (Figure 3's right-hand contrast).
        push(
            "AMBER",
            0.09,
            &[(SF::MolecularBiosciences, 0.9), (SF::ChemicalThermalSystems, 0.1)],
            ResourceSignature {
                flops_frac_peak: (0.018, 0.45),
                trait_sensitivity: 0.35,
                mem_gb: (4.5, 0.4),
                idle_frac: (0.30, 0.35),
                ib_tx_mbs: (18.0, 0.5),
                scratch_write_mbs: (1.5, 1.3),
                checkpoint_period: 8,
                checkpoint_burst: 1.8,
                ar1_rho: 0.96,
                ..b()
            },
            MachineMods { flops: 3.0, idle: 0.55, mem: 1.15, ib: 1.3 },
        );
        // GROMACS: efficient but machine-sensitive.
        push(
            "GROMACS",
            0.10,
            &[(SF::MolecularBiosciences, 0.7), (SF::MaterialsResearch, 0.3)],
            ResourceSignature {
                flops_frac_peak: (0.06, 0.4),
                trait_sensitivity: 0.35,
                mem_gb: (5.0, 0.35),
                idle_frac: (0.07, 0.3),
                ib_tx_mbs: (40.0, 0.5),
                scratch_write_mbs: (0.9, 1.3),
                checkpoint_period: 10,
                checkpoint_burst: 1.8,
                ar1_rho: 0.98,
                ..b()
            },
            MachineMods { flops: 1.4, idle: 0.85, mem: 1.35, ib: 0.6 },
        );
        // WRF: atmospheric model, heavy periodic history writes.
        push(
            "WRF",
            0.08,
            &[(SF::AtmosphericSciences, 0.9), (SF::EarthSciences, 0.1)],
            ResourceSignature {
                flops_frac_peak: (0.035, 0.4),
                mem_gb: (11.0, 0.35),
                idle_frac: (0.13, 0.35),
                scratch_write_mbs: (9.0, 1.1),
                scratch_read_mbs: (2.5, 0.7),
                checkpoint_period: 4,
                checkpoint_burst: 1.8,
                ib_tx_mbs: (30.0, 0.5),
                ar1_rho: 0.95,
                ..b()
            },
            MachineMods { flops: 1.2, idle: 1.0, mem: 1.2, ib: 1.0 },
        );
        // LAMMPS: materials MD, balanced.
        push(
            "LAMMPS",
            0.08,
            &[(SF::MaterialsResearch, 0.8), (SF::Physics, 0.2)],
            ResourceSignature {
                flops_frac_peak: (0.04, 0.4),
                trait_sensitivity: 0.35,
                mem_gb: (5.5, 0.4),
                idle_frac: (0.10, 0.35),
                ib_tx_mbs: (35.0, 0.5),
                ..b()
            },
            MachineMods { flops: 1.3, idle: 0.9, mem: 1.2, ib: 1.0 },
        );
        // Quantum ESPRESSO: DFT, memory-hungry, moderate idle.
        push(
            "QuantumESPRESSO",
            0.08,
            &[(SF::MaterialsResearch, 0.5), (SF::ChemicalThermalSystems, 0.5)],
            ResourceSignature {
                flops_frac_peak: (0.045, 0.45),
                mem_gb: (14.0, 0.4),
                idle_frac: (0.16, 0.35),
                ib_tx_mbs: (45.0, 0.5),
                scratch_write_mbs: (3.0, 0.7),
                ..b()
            },
            MachineMods { flops: 1.2, idle: 1.0, mem: 1.25, ib: 1.1 },
        );
        // OpenFOAM: CFD, I/O-heavy with frequent field dumps.
        push(
            "OpenFOAM",
            0.06,
            &[(SF::Engineering, 0.9), (SF::ChemicalThermalSystems, 0.1)],
            ResourceSignature {
                flops_frac_peak: (0.022, 0.45),
                mem_gb: (8.0, 0.4),
                idle_frac: (0.20, 0.35),
                scratch_write_mbs: (6.0, 1.1),
                work_write_mbs: (0.6, 0.8),
                checkpoint_period: 5,
                ib_tx_mbs: (22.0, 0.5),
                ar1_rho: 0.94,
                ..b()
            },
            MachineMods { flops: 1.1, idle: 1.05, mem: 1.15, ib: 0.9 },
        );
        // ENZO: astrophysics AMR, bursty memory and deep checkpoints.
        push(
            "ENZO",
            0.05,
            &[(SF::Astronomy, 0.9), (SF::Physics, 0.1)],
            ResourceSignature {
                flops_frac_peak: (0.03, 0.5),
                mem_gb: (13.0, 0.5),
                idle_frac: (0.12, 0.4),
                scratch_write_mbs: (5.0, 1.2),
                checkpoint_period: 12,
                checkpoint_burst: 5.0,
                ib_tx_mbs: (28.0, 0.6),
                ar1_rho: 0.96,
                ..b()
            },
            MachineMods { flops: 1.2, idle: 1.0, mem: 1.1, ib: 1.0 },
        );
        // High-throughput serial farming: very idle in CPU terms (one
        // active core per node), negligible flops and fabric use.
        push(
            "SerialFarm",
            0.05,
            &[(SF::MolecularBiosciences, 0.4), (SF::SocialSciences, 0.3), (SF::ComputerScience, 0.3)],
            ResourceSignature {
                flops_frac_peak: (0.004, 0.6),
                mem_gb: (3.0, 0.5),
                idle_frac: (0.55, 0.25),
                ib_tx_mbs: (0.5, 0.8),
                scratch_write_mbs: (0.8, 0.9),
                work_write_mbs: (0.4, 0.9),
                ar1_rho: 0.90,
                ar1_sigma: 0.2,
                ..b()
            },
            MachineMods { flops: 1.0, idle: 1.0, mem: 1.4, ib: 1.0 },
        );
        // The long tail of home-grown MPI codes.
        push(
            "CustomMPI",
            0.25,
            &[
                (SF::Physics, 0.25),
                (SF::Engineering, 0.2),
                (SF::ComputerScience, 0.15),
                (SF::EarthSciences, 0.15),
                (SF::Astronomy, 0.1),
                (SF::MaterialsResearch, 0.15),
            ],
            ResourceSignature {
                flops_frac_peak: (0.025, 0.7),
                mem_gb: (7.5, 0.55),
                idle_frac: (0.17, 0.5),
                ib_tx_mbs: (20.0, 0.8),
                scratch_write_mbs: (2.5, 1.3),
                ar1_rho: 0.95,
                ar1_sigma: 0.15,
                papi_prob: 0.04,
                ..b()
            },
            MachineMods { flops: 1.15, idle: 1.0, mem: 1.25, ib: 1.0 },
        );

        AppCatalog { apps }
    }

    pub fn apps(&self) -> &[AppProfile] {
        &self.apps
    }

    pub fn len(&self) -> usize {
        self.apps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    pub fn get(&self, id: AppId) -> &AppProfile {
        &self.apps[id.0 as usize]
    }

    pub fn by_name(&self, name: &str) -> Option<&AppProfile> {
        self.apps.iter().find(|a| a.name == name)
    }

    pub fn popularity_weights(&self) -> Vec<f64> {
        self.apps.iter().map(|a| a.popularity).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_figure3_md_codes() {
        let c = AppCatalog::standard();
        for name in ["NAMD", "AMBER", "GROMACS"] {
            assert!(c.by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn ids_are_dense_and_match_positions() {
        let c = AppCatalog::standard();
        for (i, a) in c.apps().iter().enumerate() {
            assert_eq!(a.id, AppId(i as u32));
            assert_eq!(c.get(a.id).name, a.name);
        }
    }

    #[test]
    fn namd_shifts_with_the_machine_average_amber_swings_wide() {
        // NAMD's Lonestar4 modifiers sit at the workload average, so after
        // the per-machine normalization its profile is the invariant one;
        // AMBER's are far off-average in both directions.
        let c = AppCatalog::standard();
        let namd = c.by_name("NAMD").unwrap();
        let amber = c.by_name("AMBER").unwrap();
        let (n_r, n_l) = (
            namd.signature_for(false, 1.0, 1.0),
            namd.signature_for(true, 1.0, 1.0),
        );
        let namd_flops_shift = n_l.flops_frac_peak.0 / n_r.flops_frac_peak.0;
        assert!((1.0..1.4).contains(&namd_flops_shift), "{namd_flops_shift}");
        let (a_r, a_l) = (
            amber.signature_for(false, 1.0, 1.0),
            amber.signature_for(true, 1.0, 1.0),
        );
        let amber_flops_shift = a_l.flops_frac_peak.0 / a_r.flops_frac_peak.0;
        assert!(amber_flops_shift > namd_flops_shift * 1.2, "{amber_flops_shift}");
        assert!(a_l.idle_frac.0 < a_r.idle_frac.0 * 0.8);
    }

    #[test]
    fn amber_idles_more_than_namd_and_gromacs_everywhere() {
        let c = AppCatalog::standard();
        for ls4 in [false, true] {
            let idle = |name: &str| {
                c.by_name(name).unwrap().signature_for(ls4, 1.0, 1.0).idle_frac.0
            };
            assert!(idle("AMBER") > 2.0 * idle("NAMD"), "ls4={ls4}");
            assert!(idle("AMBER") > 2.0 * idle("GROMACS"), "ls4={ls4}");
        }
    }

    #[test]
    fn popularity_sums_to_one() {
        let c = AppCatalog::standard();
        let total: f64 = c.popularity_weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn science_weights_are_positive() {
        for a in AppCatalog::standard().apps() {
            assert!(!a.science.is_empty());
            assert!(a.science.iter().all(|&(_, w)| w > 0.0), "{}", a.name);
        }
    }

    #[test]
    fn calibration_scales_apply() {
        let c = AppCatalog::standard();
        let namd = c.by_name("NAMD").unwrap();
        let s = namd.signature_for(false, 1.6, 0.5);
        let base = namd.signature_for(false, 1.0, 1.0);
        assert!((s.mem_gb.0 / base.mem_gb.0 - 1.6).abs() < 1e-9);
        assert!((s.idle_frac.0 / base.idle_frac.0 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn idle_never_exceeds_95_percent() {
        let c = AppCatalog::standard();
        for a in c.apps() {
            let s = a.signature_for(true, 1.0, 10.0);
            assert!(s.idle_frac.0 <= 0.95, "{}", a.name);
        }
    }
}
