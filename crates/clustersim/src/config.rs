//! Cluster configuration presets and workload calibration knobs.
//!
//! The presets encode both machines of §4.1 and the calibration targets
//! scattered through §4.3: node-hour-weighted mean job lengths of 549
//! (Ranger) and 446 (Lonestar4) minutes, ~90 %/85 % average CPU
//! efficiency, sub-10 GB / ~15 GB mean per-node memory use, and a few-
//! percent-of-peak FLOP rate. Everything scales down with
//! [`ClusterConfig::scaled`] — all downstream quantities are intensive or
//! normalized, so shapes survive.

use supremm_metrics::{SampleInterval, Timestamp};
use supremm_procsim::NodeSpec;

use crate::outage::{default_calendar, Outage};
use crate::scheduler::SchedPolicy;

/// Full description of one simulated machine + workload.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub name: &'static str,
    pub is_lonestar4: bool,
    pub node_spec: NodeSpec,
    pub node_count: u32,
    pub sim_days: u64,
    pub interval: SampleInterval,
    pub seed: u64,
    /// Size of the user population.
    pub users: u32,

    /// Cluster-wide median job length, minutes. Combined with the two
    /// sigmas below this pins the node-hour-weighted mean length.
    pub job_len_median_min: f64,
    /// Log-σ of per-user median lengths around the cluster median.
    pub job_len_sigma_user: f64,
    /// Log-σ of job lengths around the user median.
    pub job_len_sigma_job: f64,

    /// Median nodes per job and its log-σ.
    pub job_nodes_median: f64,
    pub job_nodes_sigma: f64,

    /// Cluster-wide multiplier on application memory footprints.
    pub mem_scale: f64,
    /// Cluster-wide multiplier on application idle fractions.
    pub idle_scale: f64,

    /// Offered load relative to capacity (long-run average). Day peaks of
    /// the diurnal cycle over-request the machine — the regime the paper
    /// describes ("over-request of most if not all HPC resources") —
    /// while nights drain the backlog, so the queue stays bounded and
    /// long jobs eventually run.
    pub arrival_oversubscription: f64,

    /// Fraction of users carrying the pathological-idle trait that
    /// produces Figure 4/5's circled outliers.
    pub anomaly_user_frac: f64,

    pub outages: Vec<Outage>,

    /// Scheduling policy (EASY backfill in production; FCFS exists for
    /// the ablation).
    pub sched_policy: SchedPolicy,
}

impl ClusterConfig {
    /// Ranger at a simulation-friendly scale (128 nodes, 30 days). Use
    /// [`ClusterConfig::scaled`] to change.
    pub fn ranger() -> ClusterConfig {
        let days = 30;
        let seed = 0x5261_6e67; // "Rang"
        ClusterConfig {
            name: "ranger",
            is_lonestar4: false,
            node_spec: NodeSpec::ranger(),
            node_count: 128,
            sim_days: days,
            interval: SampleInterval::TEN_MINUTES,
            seed,
            users: 400,
            // median 122 min, total log-σ ≈ 1.0 ⇒ weighted mean
            // exp(ln 122 + 1.5·1.0) ≈ 547 min (paper: 549).
            job_len_median_min: 122.0,
            job_len_sigma_user: 0.6,
            job_len_sigma_job: 0.8,
            job_nodes_median: 4.0,
            job_nodes_sigma: 1.1,
            mem_scale: 0.72,
            idle_scale: 0.62,
            arrival_oversubscription: 1.0,
            anomaly_user_frac: 0.02,
            outages: default_calendar(days, seed),
            sched_policy: SchedPolicy::EasyBackfill,
        }
    }

    /// Lonestar4 at simulation scale.
    pub fn lonestar4() -> ClusterConfig {
        let days = 30;
        let seed = 0x4c6f_6e65; // "Lone"
        ClusterConfig {
            name: "lonestar4",
            is_lonestar4: true,
            node_spec: NodeSpec::lonestar4(),
            node_count: 96,
            sim_days: days,
            interval: SampleInterval::TEN_MINUTES,
            seed,
            users: 320,
            // median 100 min ⇒ weighted mean ≈ 448 min (paper: 446).
            job_len_median_min: 100.0,
            job_len_sigma_user: 0.6,
            job_len_sigma_job: 0.8,
            job_nodes_median: 3.0,
            job_nodes_sigma: 1.1,
            // Lonestar4 runs memory-hungrier configurations: mean
            // mem_used ≈ 15 of 24 GB with job maxima near capacity.
            mem_scale: 1.8,
            idle_scale: 0.95,
            arrival_oversubscription: 1.0,
            anomaly_user_frac: 0.02,
            outages: default_calendar(days, seed),
            sched_policy: SchedPolicy::EasyBackfill,
        }
    }

    /// Stampede at simulation scale — the §5 deployment target. Workload
    /// parameters follow Lonestar4's (same user community) with the newer
    /// node hardware; memory scale sits between the two older machines
    /// (32 GB nodes relieve the pressure Lonestar4 users felt).
    pub fn stampede() -> ClusterConfig {
        let days = 30;
        let seed = 0x5374_616d; // "Stam"
        ClusterConfig {
            name: "stampede",
            is_lonestar4: true, // Intel event set + LS4-style app mods
            node_spec: NodeSpec::stampede(),
            node_count: 160,
            sim_days: days,
            interval: SampleInterval::TEN_MINUTES,
            seed,
            users: 400,
            job_len_median_min: 110.0,
            job_len_sigma_user: 0.6,
            job_len_sigma_job: 0.8,
            job_nodes_median: 4.0,
            job_nodes_sigma: 1.1,
            mem_scale: 1.4,
            idle_scale: 0.8,
            arrival_oversubscription: 1.0,
            anomaly_user_frac: 0.02,
            outages: default_calendar(days, seed),
            sched_policy: SchedPolicy::EasyBackfill,
        }
    }

    /// Re-scale the simulation (node count, days). The outage calendar is
    /// regenerated and the user population scaled with the node count so
    /// per-user statistics stay comparable.
    pub fn scaled(mut self, node_count: u32, days: u64) -> ClusterConfig {
        let user_ratio = node_count as f64 / self.node_count as f64;
        self.users = ((self.users as f64 * user_ratio).round() as u32).max(20);
        self.node_count = node_count;
        self.sim_days = days;
        self.outages = default_calendar(days, self.seed);
        self
    }

    pub fn with_seed(mut self, seed: u64) -> ClusterConfig {
        self.seed = seed;
        self.outages = default_calendar(self.sim_days, seed);
        self
    }

    /// Simulation end time.
    pub fn end(&self) -> Timestamp {
        Timestamp(self.sim_days * 86_400)
    }

    /// Mean job length in seconds implied by the length distribution.
    pub fn mean_job_len_secs(&self) -> f64 {
        let sigma2 = self.job_len_sigma_user.powi(2) + self.job_len_sigma_job.powi(2);
        self.job_len_median_min * 60.0 * (sigma2 / 2.0).exp()
    }

    /// Mean nodes per job implied by the size distribution (before
    /// clamping to the machine size).
    pub fn mean_job_nodes(&self) -> f64 {
        self.job_nodes_median * (self.job_nodes_sigma.powi(2) / 2.0).exp()
    }

    /// Mean nodes per job *after* clamping to what the machine can
    /// schedule — `E[min(X, cap)]` for the log-normal size distribution.
    /// Matters at small simulation scales, where the cap bites hard; the
    /// arrival rate must use this or the offered load falls short.
    pub fn effective_mean_job_nodes(&self) -> f64 {
        // Combined spread of the user-median and per-job draws; the
        // double clamp (user median at n/4, job at n/2) is approximated
        // by one cap at n/3.
        let sigma = (0.7f64.powi(2) + self.job_nodes_sigma.powi(2)).sqrt();
        let mu = self.job_nodes_median.ln();
        let cap = (self.node_count as f64 / 3.0).max(1.0);
        let z = (cap.ln() - mu) / sigma;
        let mean_below = (mu + sigma * sigma / 2.0).exp() * normal_cdf(z - sigma);
        let mass_above = 1.0 - normal_cdf(z);
        (mean_below + cap * mass_above).max(1.0)
    }

    /// Poisson arrival rate (jobs per second) that offers
    /// `arrival_oversubscription` × capacity on an average day.
    pub fn arrival_rate_per_sec(&self) -> f64 {
        let node_secs_per_job = self.mean_job_len_secs() * self.effective_mean_job_nodes();
        self.arrival_oversubscription * self.node_count as f64 / node_secs_per_job
    }

    /// Diurnal + weekly submission-load factor at `ts` (mean ≈ 1). HPC
    /// submission rates peak in the working day and sag on weekends;
    /// this slow common modulation is what gives every system-level
    /// metric its short-offset persistence in Table 1.
    pub fn load_factor(&self, ts: Timestamp) -> f64 {
        let day_secs = ts.0 % 86_400;
        let phase = (day_secs as f64 / 86_400.0 - 14.0 / 24.0) * std::f64::consts::TAU;
        let diurnal = 1.0 + 0.25 * phase.cos();
        let weekday = (ts.0 / 86_400) % 7;
        let weekly = if weekday >= 5 { 0.8 } else { 1.0 };
        diurnal * weekly
    }

    /// Node-hour-weighted mean job length (minutes) implied by the
    /// distribution: for log-normal lengths, `exp(μ + 1.5σ²)` — lengths
    /// weight themselves once more through node-hours.
    pub fn weighted_mean_job_len_min(&self) -> f64 {
        let sigma2 = self.job_len_sigma_user.powi(2) + self.job_len_sigma_job.powi(2);
        (self.job_len_median_min.ln() + 1.5 * sigma2).exp()
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7, ample for load calibration).
fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let signed = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + signed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.0) - 0.1587).abs() < 1e-3);
    }

    #[test]
    fn effective_mean_nodes_is_below_unclamped_on_small_machines() {
        let small = ClusterConfig::ranger().scaled(32, 2);
        assert!(small.effective_mean_job_nodes() < small.mean_job_nodes());
        // On a huge machine the clamp barely matters.
        let big = ClusterConfig::ranger().scaled(100_000, 2);
        let ratio = big.effective_mean_job_nodes() / big.mean_job_nodes();
        assert!(ratio > 0.95, "{ratio}");
    }

    #[test]
    fn load_factor_peaks_in_the_working_day() {
        let cfg = ClusterConfig::ranger();
        let t_afternoon = Timestamp(14 * 3600);
        let t_night = Timestamp(2 * 3600);
        assert!(cfg.load_factor(t_afternoon) > 1.15);
        assert!(cfg.load_factor(t_night) < 0.8);
        // Weekend sag (day 5 is the first weekend day of the sim week).
        let t_weekend = Timestamp(5 * 86_400 + 14 * 3600);
        assert!(cfg.load_factor(t_weekend) < cfg.load_factor(t_afternoon));
    }

    #[test]
    fn ranger_weighted_length_matches_paper() {
        let c = ClusterConfig::ranger();
        let w = c.weighted_mean_job_len_min();
        assert!((w - 549.0).abs() < 15.0, "weighted mean {w}, paper 549");
    }

    #[test]
    fn lonestar4_weighted_length_matches_paper() {
        let c = ClusterConfig::lonestar4();
        let w = c.weighted_mean_job_len_min();
        assert!((w - 446.0).abs() < 15.0, "weighted mean {w}, paper 446");
    }

    #[test]
    fn arrival_rate_offers_oversubscribed_load() {
        let c = ClusterConfig::ranger();
        let offered = c.arrival_rate_per_sec()
            * c.mean_job_len_secs()
            * c.effective_mean_job_nodes();
        let ratio = offered / c.node_count as f64;
        assert!((ratio - 1.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn scaling_keeps_user_density() {
        let base = ClusterConfig::ranger();
        let big = ClusterConfig::ranger().scaled(256, 60);
        assert_eq!(big.node_count, 256);
        assert_eq!(big.sim_days, 60);
        let density_base = base.users as f64 / base.node_count as f64;
        let density_big = big.users as f64 / big.node_count as f64;
        assert!((density_base - density_big).abs() < 0.05);
        assert!(!big.outages.is_empty());
    }

    #[test]
    fn seeds_differ_between_machines() {
        assert_ne!(ClusterConfig::ranger().seed, ClusterConfig::lonestar4().seed);
        assert_ne!(ClusterConfig::stampede().seed, ClusterConfig::lonestar4().seed);
    }

    #[test]
    fn stampede_preset_is_simulable() {
        use crate::sim::Simulation;
        let mut sim = Simulation::new(ClusterConfig::stampede().scaled(16, 1));
        let mut busy = 0usize;
        while !sim.is_done() {
            sim.step();
            busy = busy.max(sim.busy_nodes());
        }
        assert!(busy > 8, "stampede workload never filled the machine");
    }
}
