//! Downtime windows.
//!
//! Figure 8 of the paper shows active-node counts dipping to zero during
//! "relatively infrequent planned or unplanned shutdowns", with smaller
//! wiggles from scheduling gaps. Outages here reproduce the big dips:
//! whole-cluster maintenance windows plus partial unscheduled failures.

use supremm_metrics::{Duration, Timestamp};

/// One downtime window affecting a fraction of the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    pub start: Timestamp,
    pub duration: Duration,
    /// Fraction of nodes down during the window, `(0, 1]`.
    pub frac: f64,
}

impl Outage {
    pub fn end(&self) -> Timestamp {
        self.start + self.duration
    }

    pub fn contains(&self, ts: Timestamp) -> bool {
        ts >= self.start && ts < self.end()
    }
}

/// The default maintenance calendar for a simulation of `days` days:
/// a full 8-hour scheduled outage mid-way through every 30-day block and
/// a 3-hour unscheduled partial (35 % of nodes) outage per block, placed
/// deterministically from the seed.
pub fn default_calendar(days: u64, seed: u64) -> Vec<Outage> {
    let mut out = Vec::new();
    let blocks = days / 30;
    for b in 0..blocks {
        let block_start = b * 30;
        // Scheduled full-cluster maintenance, day 15 of the block, 08:00.
        out.push(Outage {
            start: Timestamp((block_start + 15) * 86_400 + 8 * 3600),
            duration: Duration::from_hours(8),
            frac: 1.0,
        });
        // One unscheduled partial failure at a seed-dependent day/hour.
        let h = seed.wrapping_mul(0x9e37_79b9).wrapping_add(b * 0x85eb_ca6b);
        let day = block_start + 2 + (h % 26);
        let hour = (h >> 8) % 24;
        out.push(Outage {
            start: Timestamp(day * 86_400 + hour * 3600),
            duration: Duration::from_hours(3),
            frac: 0.35,
        });
    }
    out.sort_by_key(|o| o.start);
    out
}

/// Which fraction of nodes is down at `ts` (max over overlapping windows).
pub fn down_frac_at(outages: &[Outage], ts: Timestamp) -> f64 {
    outages.iter().filter(|o| o.contains(ts)).map(|o| o.frac).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_membership() {
        let o = Outage {
            start: Timestamp(100),
            duration: Duration(50),
            frac: 1.0,
        };
        assert!(!o.contains(Timestamp(99)));
        assert!(o.contains(Timestamp(100)));
        assert!(o.contains(Timestamp(149)));
        assert!(!o.contains(Timestamp(150)));
    }

    #[test]
    fn calendar_has_one_full_and_one_partial_per_block() {
        let cal = default_calendar(90, 7);
        assert_eq!(cal.len(), 6);
        let full = cal.iter().filter(|o| o.frac == 1.0).count();
        assert_eq!(full, 3);
        assert!(cal.windows(2).all(|w| w[0].start <= w[1].start), "sorted");
    }

    #[test]
    fn short_sims_have_no_outages() {
        assert!(default_calendar(29, 1).is_empty());
    }

    #[test]
    fn down_frac_takes_max_of_overlaps() {
        let cal = vec![
            Outage { start: Timestamp(0), duration: Duration(100), frac: 0.3 },
            Outage { start: Timestamp(50), duration: Duration(100), frac: 1.0 },
        ];
        assert_eq!(down_frac_at(&cal, Timestamp(10)), 0.3);
        assert_eq!(down_frac_at(&cal, Timestamp(60)), 1.0);
        assert_eq!(down_frac_at(&cal, Timestamp(200)), 0.0);
    }

    #[test]
    fn calendar_is_deterministic_per_seed() {
        assert_eq!(default_calendar(60, 5), default_calendar(60, 5));
        assert_ne!(default_calendar(60, 5), default_calendar(60, 6));
    }
}
