//! Lariat job summaries.
//!
//! §1.3: "Another tool called Lariat generates unified summary data on the
//! execution of a job such as which libraries are called." The real Lariat
//! wraps `ibrun`/`mpirun` and dumps one JSON object per job; the warehouse
//! uses it to map job → application (accounting logs know only the
//! executable-less job script name).

use serde::{Deserialize, Serialize};
use supremm_metrics::json::{self, Value};
use supremm_metrics::{JobId, UserId};

/// One Lariat summary record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LariatRecord {
    pub job: JobId,
    pub user: UserId,
    /// Executable basename (e.g. `namd2`).
    pub exe: String,
    /// Canonical application name resolved from the executable
    /// (e.g. `NAMD`).
    pub app_name: String,
    pub nodes: u32,
    pub threads_per_rank: u32,
    /// Shared libraries the executable linked.
    pub libraries: Vec<String>,
}

/// Executable names for the catalog applications — what Lariat would see
/// on the compute nodes.
pub fn exe_for_app(app_name: &str) -> &'static str {
    match app_name {
        "NAMD" => "namd2",
        "AMBER" => "pmemd.MPI",
        "GROMACS" => "mdrun_mpi",
        "WRF" => "wrf.exe",
        "LAMMPS" => "lmp_stampede",
        "QuantumESPRESSO" => "pw.x",
        "OpenFOAM" => "simpleFoam",
        "ENZO" => "enzo.exe",
        "SerialFarm" => "launcher",
        _ => "a.out",
    }
}

/// Invert [`exe_for_app`] — how the ingest pipeline resolves app names.
pub fn app_for_exe(exe: &str) -> Option<&'static str> {
    Some(match exe {
        "namd2" => "NAMD",
        "pmemd.MPI" => "AMBER",
        "mdrun_mpi" => "GROMACS",
        "wrf.exe" => "WRF",
        "lmp_stampede" => "LAMMPS",
        "pw.x" => "QuantumESPRESSO",
        "simpleFoam" => "OpenFOAM",
        "enzo.exe" => "ENZO",
        "launcher" => "SerialFarm",
        _ => return None,
    })
}

/// Typical library list per application family.
pub fn libraries_for(app_name: &str) -> Vec<String> {
    let mut libs = vec!["libmpi.so.1".to_string(), "libc.so.6".to_string()];
    match app_name {
        "NAMD" | "GROMACS" | "LAMMPS" => libs.push("libfftw3.so.3".to_string()),
        "AMBER" | "QuantumESPRESSO" => {
            libs.push("libmkl_core.so".to_string());
            libs.push("libfftw3.so.3".to_string());
        }
        "WRF" | "ENZO" => libs.push("libhdf5.so.6".to_string()),
        "OpenFOAM" => libs.push("libscotch.so.5".to_string()),
        _ => {}
    }
    libs
}

impl LariatRecord {
    /// Serialise as one JSON line (the real Lariat appends JSON objects
    /// to a shared log).
    pub fn to_json(&self) -> String {
        json::obj([
            ("job", self.job.0.into()),
            ("user", self.user.0.into()),
            ("exe", self.exe.as_str().into()),
            ("app_name", self.app_name.as_str().into()),
            ("nodes", self.nodes.into()),
            ("threads_per_rank", self.threads_per_rank.into()),
            (
                "libraries",
                Value::Array(self.libraries.iter().map(|l| l.as_str().into()).collect()),
            ),
        ])
        .to_string()
    }

    pub fn from_json(s: &str) -> Option<LariatRecord> {
        let v = Value::parse(s)?;
        Some(LariatRecord {
            job: JobId(v["job"].as_u64()?),
            user: UserId(v["user"].as_u64()? as u32),
            exe: v["exe"].as_str()?.to_string(),
            app_name: v["app_name"].as_str()?.to_string(),
            nodes: v["nodes"].as_u64()? as u32,
            threads_per_rank: v["threads_per_rank"].as_u64()? as u32,
            libraries: v["libraries"]
                .as_array()?
                .iter()
                .map(|l| l.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Parse a Lariat log: one JSON object per line, tolerating corruption.
pub fn parse_log(text: &str) -> Vec<LariatRecord> {
    text.lines().filter_map(LariatRecord::from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> LariatRecord {
        LariatRecord {
            job: JobId(77),
            user: UserId(3),
            exe: "namd2".into(),
            app_name: "NAMD".into(),
            nodes: 8,
            threads_per_rank: 1,
            libraries: libraries_for("NAMD"),
        }
    }

    #[test]
    fn json_round_trip() {
        let r = record();
        assert_eq!(LariatRecord::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn exe_mapping_round_trips_for_known_apps() {
        for app in [
            "NAMD",
            "AMBER",
            "GROMACS",
            "WRF",
            "LAMMPS",
            "QuantumESPRESSO",
            "OpenFOAM",
            "ENZO",
            "SerialFarm",
        ] {
            assert_eq!(app_for_exe(exe_for_app(app)), Some(app));
        }
        assert_eq!(exe_for_app("CustomMPI"), "a.out");
        assert_eq!(app_for_exe("a.out"), None);
    }

    #[test]
    fn parse_log_tolerates_corruption() {
        let text = format!("{}\ngarbage\n{}\n", record().to_json(), record().to_json());
        assert_eq!(parse_log(&text).len(), 2);
    }

    #[test]
    fn md_codes_link_fftw() {
        assert!(libraries_for("NAMD").iter().any(|l| l.contains("fftw")));
        assert!(libraries_for("WRF").iter().any(|l| l.contains("hdf5")));
    }
}
