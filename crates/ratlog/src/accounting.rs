//! Scheduler accounting log (SGE dialect).
//!
//! One colon-separated record per finished job, in the style of Grid
//! Engine's `accounting(5)` file that Ranger and Lonestar4 actually ran.
//! The warehouse joins these against the TACC_Stats raw data by job id.

use serde::{Deserialize, Serialize};
use supremm_metrics::{HostId, JobId, ScienceField, Timestamp, UserId};

/// One accounting record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountingRecord {
    pub queue: String,
    pub owner: UserId,
    pub job: JobId,
    /// Allocation / project identifier; carries the science field the
    /// Figure 7a report groups by.
    pub account: ScienceField,
    pub submit: Timestamp,
    pub start: Timestamp,
    pub end: Timestamp,
    /// SGE `failed` field: 0 ok, 1 generic failure, 19 node failure,
    /// 100 cancelled.
    pub failed: u32,
    /// Process exit status.
    pub exit_status: u32,
    /// Nodes allocated.
    pub nodes: u32,
    /// Slots (cores) allocated.
    pub slots: u32,
    /// Exec host list (real SGE/PBS accounting records carry it; the
    /// time-window-join ablation depends on it).
    pub hosts: Vec<HostId>,
}

impl AccountingRecord {
    pub fn wall_secs(&self) -> u64 {
        self.end.since(self.start).seconds()
    }

    pub fn node_hours(&self) -> f64 {
        self.wall_secs() as f64 / 3600.0 * self.nodes as f64
    }

    fn science_tag(sci: ScienceField) -> usize {
        ScienceField::ALL.iter().position(|&s| s == sci).expect("member of ALL")
    }

    /// Serialise in the colon-separated accounting dialect (hosts joined
    /// with `+`, as PBS exec-host lists are).
    pub fn to_line(&self) -> String {
        let hosts = self
            .hosts
            .iter()
            .map(|h| h.hostname())
            .collect::<Vec<_>>()
            .join("+");
        format!(
            "{}:u{:05}:{}:sci{}:{}:{}:{}:{}:{}:{}:{}:{}",
            self.queue,
            self.owner.0,
            self.job.0,
            Self::science_tag(self.account),
            self.submit.0,
            self.start.0,
            self.end.0,
            self.failed,
            self.exit_status,
            self.nodes,
            self.slots,
            hosts,
        )
    }

    /// Parse a line produced by [`AccountingRecord::to_line`].
    pub fn parse_line(line: &str) -> Option<AccountingRecord> {
        let f: Vec<&str> = line.trim_end().split(':').collect();
        if f.len() != 12 {
            return None;
        }
        let owner = UserId(f[1].strip_prefix('u')?.parse().ok()?);
        let sci_idx: usize = f[3].strip_prefix("sci")?.parse().ok()?;
        let hosts = if f[11].is_empty() {
            Vec::new()
        } else {
            f[11]
                .split('+')
                .map(HostId::parse_hostname)
                .collect::<Option<Vec<_>>>()?
        };
        Some(AccountingRecord {
            queue: f[0].to_string(),
            owner,
            job: JobId(f[2].parse().ok()?),
            account: *ScienceField::ALL.get(sci_idx)?,
            submit: Timestamp(f[4].parse().ok()?),
            start: Timestamp(f[5].parse().ok()?),
            end: Timestamp(f[6].parse().ok()?),
            failed: f[7].parse().ok()?,
            exit_status: f[8].parse().ok()?,
            nodes: f[9].parse().ok()?,
            slots: f[10].parse().ok()?,
            hosts,
        })
    }
}

/// Parse a whole accounting file, skipping comments and malformed lines
/// (real accounting files accumulate both).
pub fn parse_file(text: &str) -> Vec<AccountingRecord> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(AccountingRecord::parse_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> AccountingRecord {
        AccountingRecord {
            queue: "normal".into(),
            owner: UserId(42),
            job: JobId(123_456),
            account: ScienceField::AtmosphericSciences,
            submit: Timestamp(1000),
            start: Timestamp(4000),
            end: Timestamp(40_000),
            failed: 0,
            exit_status: 0,
            nodes: 16,
            slots: 256,
            hosts: (0..16).map(HostId).collect(),
        }
    }

    #[test]
    fn line_round_trip() {
        let r = record();
        let parsed = AccountingRecord::parse_line(&r.to_line()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn derived_quantities() {
        let r = record();
        assert_eq!(r.wall_secs(), 36_000);
        assert_eq!(r.node_hours(), 160.0);
    }

    #[test]
    fn parse_file_skips_comments_and_garbage() {
        let text = format!(
            "# accounting dump\n{}\nnot:a:record\n\n{}\n",
            record().to_line(),
            record().to_line()
        );
        assert_eq!(parse_file(&text).len(), 2);
    }

    #[test]
    fn parse_rejects_wrong_arity() {
        assert!(AccountingRecord::parse_line("a:b:c").is_none());
    }

    #[test]
    fn every_science_field_round_trips() {
        for sci in ScienceField::ALL {
            let mut r = record();
            r.account = sci;
            assert_eq!(AccountingRecord::parse_line(&r.to_line()).unwrap().account, sci);
        }
    }
}
